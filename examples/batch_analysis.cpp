// Embedding the pipeline service layer (DESIGN.md §10): run several
// analysis jobs concurrently without going through the CLI.
//
// The same RunPlan/PipelineRunner/batch API the `dsspy` binary parses
// argv into is available to any program linking dsspy_pipeline — with
// the same guarantees: one ProfilingSession per job, typed RunOutcome,
// byte-stable report emission, exit-code conventions, and per-job output
// identical to running the plans sequentially.
//
// Build: cmake --build build --target batch_analysis
// Run:   ./build/examples/batch_analysis
#include <iostream>
#include <vector>

#include "pipeline/batch.hpp"
#include "pipeline/run_plan.hpp"
#include "pipeline/runner.hpp"

using namespace dsspy;

int main() {
    // Three jobs from three input kinds.  Each plan is plain data — build
    // them from a config file, an RPC request, wherever.
    std::vector<pipeline::RunPlan> plans;

    pipeline::RunPlan app;
    app.input = pipeline::InputKind::App;
    app.target = "Mandelbrot";
    app.outputs.summary = true;
    plans.push_back(app);

    pipeline::RunPlan wordwheel = app;
    wordwheel.target = "WordWheelSolver";
    // Tighten one detector threshold for this job only.
    wordwheel.config.li_min_phase_events = 50;
    plans.push_back(wordwheel);

    pipeline::RunPlan corpus;
    corpus.input = pipeline::InputKind::CorpusProgram;
    corpus.target = "Contentfinder";
    corpus.outputs.report = true;
    plans.push_back(corpus);

    // Reject contradictory plans before spending any work on them.
    for (const pipeline::RunPlan& plan : plans)
        if (const std::string problem =
                pipeline::PipelineRunner::validate(plan);
            !problem.empty()) {
            std::cerr << plan.display_name() << ": " << problem << '\n';
            return pipeline::kExitUsageError;
        }

    // Run up to two jobs at a time.  run_batch_jobs returns the raw
    // per-job results; run_batch additionally formats the stream of
    // headers the CLI prints.
    const pipeline::PipelineRunner runner;
    pipeline::BatchSummary summary;
    const std::vector<pipeline::BatchJobResult> jobs =
        pipeline::run_batch_jobs(runner, plans, /*concurrency=*/2, summary);

    for (const pipeline::BatchJobResult& job : jobs) {
        std::cout << "=== " << job.outcome.label << " (exit "
                  << job.outcome.exit_code << ", " << job.outcome.events
                  << " events";
        if (job.outcome.has_checksum)
            std::cout << ", checksum " << job.outcome.checksum;
        std::cout << ") ===\n" << job.out_text;
        // The typed outcome is richer than the text: the analysis (and
        // the session backing it) ride along for further inspection.
        if (job.outcome.analysis)
            std::cout << "[use cases detected: "
                      << job.outcome.analysis->all_use_cases().size()
                      << "]\n";
    }
    std::cout << summary.jobs << " jobs, " << summary.failed
              << " failed, peak concurrency " << summary.max_concurrent
              << '\n';
    return summary.exit_code;
}
