// Selective profiling: instrument only the instances you care about.
//
// Section IV: "An engineer can use DSspy as a selective profiler that only
// analyzes instances that he manually instrumented before."  Here a small
// order-matching engine has three containers, but only the order book is
// handed to the session — the other two run uninstrumented and never show
// up in the analysis.
#include <iostream>

#include "core/dsspy.hpp"
#include "core/report.hpp"
#include "ds/ds.hpp"
#include "support/rng.hpp"

namespace {

struct Order {
    std::int64_t id;
    std::int64_t price;
    friend bool operator==(const Order&, const Order&) = default;
};

}  // namespace

int main() {
    using namespace dsspy;

    runtime::ProfilingSession session;
    support::Rng rng(77);

    {
        // Manually instrumented: the order book (a list kept sorted by
        // repeated insertion + linear search — worth profiling).
        ds::ProfiledList<Order> book(&session,
                                     {"Exchange.Matching", "OrderBook", 12});

        // NOT instrumented: the trade log and the symbol table.  Pass a
        // null session and the proxies record nothing.
        ds::ProfiledList<std::int64_t> trade_log(nullptr, {"", "", 0});
        ds::ProfiledDictionary<std::int64_t, std::int64_t> symbols(
            nullptr, {"", "", 0});

        for (int i = 0; i < 40; ++i)
            symbols.set(i, 1000 + i);

        for (int step = 0; step < 1500; ++step) {
            const Order order{step,
                              static_cast<std::int64_t>(rng.next_below(500))};
            book.add(order);
            // Match: linear scan for the best counter-offer.
            std::ptrdiff_t hit = book.find_index([&order](const Order& o) {
                return o.price >= order.price && o.id != order.id;
            });
            if (hit >= 0 && book.count() > 400) {
                trade_log.add(book.get(static_cast<std::size_t>(hit)).id);
                book.remove_at(static_cast<std::size_t>(hit));
            }
            // Periodic market-depth sweep over the whole book.
            if (step % 40 == 39) {
                std::int64_t depth = 0;
                for (std::size_t i = 0; i < book.count(); ++i)
                    depth += book.get(i).price;
                (void)depth;
            }
        }
    }

    session.stop();
    const core::AnalysisResult analysis = core::Dsspy{}.analyze(session);

    std::cout << "Registered instances: " << analysis.total_instances()
              << " (only the manually instrumented order book)\n\n";
    core::print_instance_summary(std::cout, analysis);
    std::cout << '\n';
    core::print_use_case_report(std::cout, analysis);
    return 0;
}
