// Multithreaded profiling: DSspy on an already-parallel program.
//
// "We want to be able to support single- and multithreaded code so we are
// aware of access events that occur in parallel" (Section IV).  This
// example profiles a two-stage pipeline:
//   * a producer thread appends work items to a shared list (guarded by a
//     mutex — the list itself is externally synchronized),
//   * two consumer threads repeatedly scan the list for the best item.
// The per-thread pattern detector separates the interleaved event stream
// into clean per-thread patterns, and the recommendations carry the
// "already accessed by N threads" synchronization note.
#include <iostream>
#include <mutex>
#include <thread>

#include "core/dsspy.hpp"
#include "core/report.hpp"
#include "core/transform_plan.hpp"
#include "ds/ds.hpp"
#include "support/rng.hpp"

int main() {
    using namespace dsspy;

    runtime::ProfilingSession session;
    {
        ds::ProfiledList<std::int64_t> work(&session,
                                            {"Pipeline.Shared", "WorkList", 5});
        std::mutex work_mutex;

        std::jthread producer([&work, &work_mutex] {
            support::Rng rng(1);
            for (int batch = 0; batch < 10; ++batch) {
                std::scoped_lock lock(work_mutex);
                for (int i = 0; i < 300; ++i)
                    work.add(static_cast<std::int64_t>(rng.next_below(1000)));
            }
        });

        auto consumer = [&work, &work_mutex](int sweeps) {
            for (int sweep = 0; sweep < sweeps; ++sweep) {
                std::scoped_lock lock(work_mutex);
                if (work.count() < 10) continue;
                std::int64_t best = work.get(0);
                for (std::size_t i = 1; i < work.count(); ++i)
                    best = std::max(best, work.get(i));
                (void)best;
            }
        };
        std::jthread consumer1(consumer, 9);
        std::jthread consumer2(consumer, 9);
    }
    session.stop();

    const core::AnalysisResult analysis = core::Dsspy{}.analyze(session);
    const core::InstanceAnalysis& ia = analysis.instances().front();

    std::cout << "Recorded " << ia.profile.total_events() << " events from "
              << ia.profile.thread_count() << " threads.\n\n";

    // Per-thread pattern separation.
    std::array<std::size_t, 8> per_thread{};
    for (const core::Pattern& p : ia.patterns)
        if (p.thread < per_thread.size()) ++per_thread[p.thread];
    for (std::size_t t = 0; t < per_thread.size(); ++t) {
        if (per_thread[t] != 0)
            std::cout << "Thread " << t << ": " << per_thread[t]
                      << " patterns\n";
    }
    std::cout << '\n';

    core::print_use_case_report(std::cout, analysis);

    const core::TransformPlan plan =
        core::plan_transformations(analysis, /*parallel_only=*/true);
    core::print_transform_plan(std::cout, plan);
    return 0;
}
