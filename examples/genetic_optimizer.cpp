// Genetic optimizer end-to-end: the paper's GPdotNET walkthrough.
//
// Runs the genetic-programming engine sequentially under DSspy, prints
// the Table V style report, then applies the recommended action (parallel
// fitness evaluation) and reports the measured speedup — the workflow of
// Section V's GPdotNET case study.
#include <iostream>

#include "apps/gpdotnet.hpp"
#include "core/dsspy.hpp"
#include "core/report.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main() {
    using namespace dsspy;
    using support::Table;

    std::cout << "=== Step 1: run the sequential engine under DSspy ===\n";
    runtime::ProfilingSession session;
    const apps::RunResult instrumented = apps::run_gpdotnet(&session);
    session.stop();
    std::cout << "Recorded " << session.store().total_events()
              << " access events on " << session.registry().size()
              << " instances.\n\n";

    std::cout << "=== Step 2: DSspy report (cf. Table V) ===\n";
    const core::AnalysisResult analysis = core::Dsspy{}.analyze(session);
    core::print_use_case_report(std::cout, analysis, /*parallel_only=*/true);
    std::cout << "Search space reduction: "
              << Table::pct(analysis.search_space_reduction()) << "\n\n";

    std::cout << "=== Step 3: apply the recommendation ===\n";
    const apps::RunResult sequential = apps::run_gpdotnet(nullptr);
    par::ThreadPool pool;
    const apps::RunResult parallel = apps::run_gpdotnet_parallel(pool);

    Table table({"Variant", "Runtime (ms)", "Checksum"});
    table.add_row({"sequential",
                   Table::fmt(static_cast<double>(sequential.total_ns) / 1e6),
                   Table::fmt(sequential.checksum, 4)});
    table.add_row({"instrumented",
                   Table::fmt(static_cast<double>(instrumented.total_ns) / 1e6),
                   Table::fmt(instrumented.checksum, 4)});
    table.add_row({"parallel (" + std::to_string(pool.thread_count()) +
                       " threads)",
                   Table::fmt(static_cast<double>(parallel.total_ns) / 1e6),
                   Table::fmt(parallel.checksum, 4)});
    table.print(std::cout);

    std::cout << "Speedup: "
              << Table::fmt(support::speedup(
                     static_cast<double>(sequential.total_ns),
                     static_cast<double>(parallel.total_ns)))
              << "x (paper measured 2.93x on 8 cores)\n";
    return 0;
}
