// Mandelbrot with profile visualization and SVG export.
//
// Renders the fractal under DSspy, prints the image array's runtime
// profile as ASCII (Figure 2 style), writes an SVG of the profile to
// ./mandelbrot_profile.svg, and compares sequential vs parallel rendering.
#include <iostream>

#include "apps/mandelbrot.hpp"
#include "core/dsspy.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "viz/ascii_chart.hpp"
#include "viz/svg.hpp"

int main() {
    using namespace dsspy;
    using support::Table;

    runtime::ProfilingSession session;
    (void)apps::run_mandelbrot(&session);
    session.stop();

    const core::AnalysisResult analysis = core::Dsspy{}.analyze(session);

    // Show the profile of every flagged instance.
    for (const core::InstanceAnalysis& ia : analysis.instances()) {
        if (!ia.flagged_parallel()) continue;
        viz::ChartOptions options;
        options.max_width = 100;
        options.max_height = 10;
        options.show_legend = false;
        viz::print_profile(std::cout, ia.profile, options);
        for (const core::UseCase& uc : ia.use_cases)
            std::cout << "  -> " << core::use_case_name(uc.kind) << ": "
                      << uc.recommendation() << '\n';
        std::cout << '\n';
    }

    // Export the image array's profile as SVG.
    for (const core::InstanceAnalysis& ia : analysis.instances()) {
        if (ia.profile.info().location.method == "RenderImage") {
            const std::string svg = viz::profile_to_svg(ia.profile);
            if (viz::write_file("mandelbrot_profile.svg", svg))
                std::cout << "Wrote mandelbrot_profile.svg ("
                          << svg.size() << " bytes)\n";
        }
    }

    // Sequential vs parallel rendering.
    const apps::RunResult seq = apps::run_mandelbrot(nullptr);
    par::ThreadPool pool;
    const apps::RunResult par_run = apps::run_mandelbrot_parallel(pool);
    std::cout << "Sequential: "
              << Table::fmt(static_cast<double>(seq.total_ns) / 1e6)
              << " ms, parallel: "
              << Table::fmt(static_cast<double>(par_run.total_ns) / 1e6)
              << " ms, speedup "
              << Table::fmt(support::speedup(
                     static_cast<double>(seq.total_ns),
                     static_cast<double>(par_run.total_ns)))
              << "x (paper: 3.00x)\n";
    return 0;
}
