// Corpus explorer: browse the empirical-study program models and replay
// one program's workload under DSspy.
//
// Usage: corpus_explorer [program-name]
//   Without arguments, lists the 37 Figure 1 programs.  With a program
//   name (e.g. "gpdotnet"), replays its Table III workload and prints the
//   analysis.
#include <cstring>
#include <iostream>

#include "core/dsspy.hpp"
#include "core/report.hpp"
#include "corpus/program_model.hpp"
#include "corpus/workload.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
    using namespace dsspy;
    using support::Table;

    if (argc < 2) {
        Table table({"Program", "Domain", "LOC", "DS instances", "Lists"});
        for (const corpus::ProgramModel* m : corpus::figure1_programs()) {
            table.add_row(
                {m->name, std::string(corpus::domain_short_name(m->domain)),
                 Table::with_commas(static_cast<long long>(m->loc)),
                 std::to_string(m->total_instances),
                 std::to_string(m->instances[static_cast<std::size_t>(
                     runtime::DsKind::List)])});
        }
        table.print(std::cout);
        std::cout << "\nRun `corpus_explorer <program>` to replay one "
                     "program's workload (e.g. gpdotnet, clipper).\n";
        return 0;
    }

    const corpus::ProgramModel* chosen = nullptr;
    for (const corpus::ProgramModel& m : corpus::all_programs())
        if (m.name == argv[1]) chosen = &m;
    if (chosen == nullptr) {
        std::cerr << "Unknown program: " << argv[1] << '\n';
        return 1;
    }

    runtime::ProfilingSession session;
    if (chosen->in_eval23) {
        corpus::run_eval_workload(*chosen, &session);
    } else {
        corpus::run_study15_workload(*chosen, &session);
    }
    session.stop();

    const core::AnalysisResult analysis = core::Dsspy{}.analyze(session);
    std::cout << "Program " << chosen->name << " ("
              << corpus::domain_name(chosen->domain) << ")\n";
    core::print_instance_summary(std::cout, analysis);
    std::cout << '\n';
    core::print_use_case_report(std::cout, analysis, /*parallel_only=*/true);
    std::cout << "Search space reduction: "
              << Table::pct(analysis.search_space_reduction()) << '\n';
    return 0;
}
