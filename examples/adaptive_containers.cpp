// Self-adapting containers (DESIGN.md §15): the closed loop in ~80
// lines.  An AdaptiveList and an AdaptiveDictionary profile their own
// access streams, reclassify with the same detectors `dsspy analyze`
// runs offline, and migrate their backing when a verdict holds:
//
//   Frequent-Search  -> Indexed     (value -> index dictionary)
//   Implement-Queue  -> DequeBacked (O(1) front traffic)
//   Frequent-Long-Read / Long-Insert -> Parallel (pool traversal)
//
// No session, no trace file, no separate analysis step — the container
// IS the profiler and the remedy.
//
// Build: cmake --build build --target adaptive_containers
// Run:   ./build/examples/adaptive_containers
#include <iostream>
#include <optional>

#include "adapt/adaptive_dictionary.hpp"
#include "adapt/adaptive_list.hpp"
#include "core/use_cases.hpp"

using namespace dsspy;

namespace {

template <typename Container>
void show(const char* label, const Container& c) {
    std::cout << label << ": strategy=" << strategy_name(c.strategy())
              << ", switches=" << c.switch_count()
              << ", suppressed=" << c.suppressed_count() << ", verdicts=[";
    bool first = true;
    for (const core::UseCase& uc : c.verdicts()) {
        std::cout << (first ? "" : ", ") << use_case_name(uc.kind);
        first = false;
    }
    std::cout << "]\n";
}

}  // namespace

int main() {
    // --- a list that learns it is being searched -------------------------
    // Load a phone book, then look numbers up by value.  After enough
    // IndexOf traffic the Frequent-Search verdict fires and the list
    // swaps in a value -> index dictionary: O(n) scans become O(1).
    adapt::AdaptiveList<long> phone_book;
    for (long i = 0; i < 4096; ++i) {
        phone_book.add(i * 7 + 1);
        if (i % 64 == 63)  // interleaved reads, as a UI would issue
            (void)phone_book.get(static_cast<std::size_t>(i));
    }
    long hits = 0;
    for (int round = 0; round < 20; ++round) {
        for (int k = 0; k < 100; ++k)  // sequential directory reads
            (void)phone_book.get(
                static_cast<std::size_t>((round * 113 + k) % 4096));
        for (int k = 0; k < 100; ++k)  // point searches
            if (phone_book.index_of(((round * 53 + k * 97) % 4096) * 7 + 1) >=
                0)
                ++hits;
    }
    show("phone_book", phone_book);
    std::cout << "  " << hits << " lookups answered\n";

    // --- a list that learns it is a queue --------------------------------
    // Append at the back, consume at the front.  Implement-Queue flips
    // the backing to a deque; the O(n) front removals disappear.
    adapt::AdaptiveList<long> mailbox;
    for (long i = 0; i < 2048; ++i) mailbox.add(i);
    long delivered = 0;
    for (int i = 0; i < 6000; ++i) {
        mailbox.add(2048 + i);
        delivered += mailbox.get(0) >= 0 ? 1 : 0;
        mailbox.remove_at(0);
    }
    show("mailbox", mailbox);
    std::cout << "  " << delivered << " messages delivered\n";

    // --- a dictionary that learns to answer reverse lookups --------------
    // Key -> score gets plus score -> key searches; Frequent-Search on
    // the dense entry view builds the value -> key reverse index.
    adapt::AdaptiveDictionary<long, long> scores;
    for (long i = 0; i < 2048; ++i) {
        scores.set(i, i * 11 + 5);
        if (i % 64 == 63) (void)scores.get(i - 1);
    }
    long found = 0;
    for (int round = 0; round < 12; ++round) {
        for (int k = 0; k < 200; ++k)
            (void)scores.get((round * 113 + k) % 2048);
        for (int k = 0; k < 200; ++k) {
            const std::optional<long> key =
                scores.find_key(((round * 53 + k * 97) % 2048) * 11 + 5);
            if (key) ++found;
        }
    }
    show("scores", scores);
    std::cout << "  " << found << " reverse lookups answered\n";
    return 0;
}
