// Quickstart: profile a list, analyze it, read DSspy's advice.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// This walks the full DSspy pipeline from Figure 4 of the paper:
//   instrumentation -> execution -> profiles -> patterns -> use cases ->
//   recommended actions, plus the profile visualization of Figure 2.
#include <iostream>

#include "core/dsspy.hpp"
#include "core/report.hpp"
#include "ds/ds.hpp"
#include "support/table.hpp"
#include "viz/ascii_chart.hpp"

int main() {
    using namespace dsspy;

    // 1. Open a profiling session.  Everything constructed with a session
    //    pointer is instrumented; pass nullptr and the same code runs
    //    uninstrumented.
    runtime::ProfilingSession session;

    {
        // 2. Use a profiled container exactly like a normal one.  This
        //    reproduces the paper's running example: a list used as a
        //    work buffer that is filled, fully scanned, and cleared over
        //    and over (Figure 3).
        ds::ProfiledList<int> tasks(&session,
                                    {"Quickstart.Worker", "ProcessBatch", 7});
        for (int round = 0; round < 15; ++round) {
            for (int i = 0; i < 200; ++i) tasks.add(round * 1000 + i);
            long best = 0;
            for (std::size_t i = 0; i < tasks.count(); ++i)
                best = std::max<long>(best, tasks.get(i));
            for (std::size_t i = 0; i < tasks.count(); ++i)
                (void)tasks.get(i);  // a second "search" sweep
            tasks.clear();
            (void)best;
        }
    }

    // 3. Stop capturing and run the post-mortem analysis.
    session.stop();
    const core::AnalysisResult analysis = core::Dsspy{}.analyze(session);

    // 4. Visualize the runtime profile (Figure 2 style) ...
    for (const core::InstanceAnalysis& ia : analysis.instances()) {
        viz::ChartOptions options;
        options.max_width = 96;
        options.max_height = 12;
        viz::print_profile(std::cout, ia.profile, options);
        std::cout << '\n';
    }

    // 5. ... and read the advice (Table V style).
    core::print_use_case_report(std::cout, analysis);

    std::cout << "Instances analyzed:     "
              << analysis.list_array_instances() << '\n'
              << "Instances flagged:      " << analysis.flagged_instances()
              << '\n'
              << "Search space reduction: "
              << support::Table::pct(analysis.search_space_reduction())
              << '\n';
    return 0;
}
