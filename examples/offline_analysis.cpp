// Offline analysis: capture on one side, analyze on the other.
//
// The paper's pipeline separates data collection from post-mortem analysis.
// This example shows the decoupled workflow an external instrumentation
// layer (e.g. a Pin tool or a patched allocator) would use:
//   1. a "recording process" runs instrumented and serializes the trace,
//   2. an "analysis process" loads the trace file — no access to the
//      original program — and produces the full report, and
//   3. a hand-written trace (as a foreign tool would emit) is analyzed
//      the same way, and
//   4. the same session is persisted as compact DST1 binary and read back
//      through the auto-detecting file API (which throws on missing
//      files — a lost trace is an error, not an empty profile).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "core/dsspy.hpp"
#include "core/report.hpp"
#include "ds/ds.hpp"
#include "runtime/trace_io.hpp"

namespace {

std::string record_phase() {
    using namespace dsspy;
    runtime::ProfilingSession session;
    {
        ds::ProfiledList<double> samples(&session,
                                         {"Sensor.Pipeline", "Collect", 21});
        for (int burst = 0; burst < 14; ++burst) {
            for (int i = 0; i < 180; ++i)
                samples.add(static_cast<double>(burst * 180 + i) * 0.25);
            double mean = 0.0;
            for (std::size_t i = 0; i < samples.count(); ++i)
                mean += samples.get(i);
            double peak = 0.0;
            for (std::size_t i = 0; i < samples.count(); ++i)
                peak = std::max(peak, samples.get(i));
            (void)mean;
            (void)peak;
            samples.clear();
        }
    }
    session.stop();

    std::ostringstream trace;
    const std::size_t events = runtime::write_trace(trace, session);
    std::cout << "[recorder] captured " << events
              << " events, trace is " << trace.str().size() << " bytes\n";
    return trace.str();
}

void analyze_phase(const std::string& trace_text) {
    using namespace dsspy;
    std::istringstream in(trace_text);
    const runtime::Trace trace = runtime::read_trace(in);
    std::cout << "[analyzer] loaded " << trace.instances.size()
              << " instances, " << trace.store.total_events()
              << " events\n\n";
    const core::AnalysisResult analysis =
        core::Dsspy{}.analyze(trace.instances, trace.store);
    core::print_use_case_report(std::cout, analysis);
}

/// A trace a foreign tool might emit by hand: one list, filled and
/// re-read — enough for DSspy to classify without ever seeing the program.
std::string foreign_trace() {
    std::ostringstream out;
    out << "I,0,0,List<Int32>,Foreign.Tool,HotLoop,99,1\n";
    std::uint64_t seq = 0;
    // 12 rounds: 150 appends (op 2 = Add) + two full forward read sweeps
    // (op 0 = Get).
    for (int round = 0; round < 12; ++round) {
        for (int i = 0; i < 150; ++i) {
            out << "E," << seq << ',' << seq * 10 << ",0,2," << i << ','
                << (i + 1) << ",0\n";
            ++seq;
        }
        for (int sweep = 0; sweep < 2; ++sweep) {
            for (int i = 0; i < 150; ++i) {
                out << "E," << seq << ',' << seq * 10 << ",0,0," << i
                    << ",150,0\n";
                ++seq;
            }
        }
        // op 5 = Clear.
        out << "E," << seq << ',' << seq * 10 << ",0,5,-1,0,0\n";
        ++seq;
    }
    return out.str();
}

/// Persist the CSV trace as DST1 binary, reload it through the
/// format-auto-detecting file API, and show the size difference.
void binary_round_trip(const std::string& trace_text) {
    using namespace dsspy;
    std::istringstream in(trace_text);
    const runtime::Trace trace = runtime::read_trace(in);

    const std::string path = "offline_analysis_trace.dst";
    if (!runtime::write_trace_file(path, trace.instances, trace.store,
                                   runtime::TraceFormat::Binary)) {
        std::cerr << "[binary] failed to write " << path << '\n';
        return;
    }
    const runtime::Trace reloaded = runtime::read_trace_file(path);
    std::cout << "[binary] " << trace_text.size() << " bytes of CSV became "
              << "a DST1 file holding " << reloaded.store.total_events()
              << " events\n";
    std::remove(path.c_str());

    // A missing trace file throws — callers cannot confuse "file gone"
    // with "program recorded nothing".
    try {
        (void)runtime::read_trace_file(path);
    } catch (const std::runtime_error& e) {
        std::cout << "[binary] re-reading the deleted file throws: "
                  << e.what() << '\n';
    }
}

}  // namespace

int main() {
    std::cout << "=== Decoupled capture/analysis ===\n";
    const std::string trace_text = record_phase();
    analyze_phase(trace_text);

    std::cout << "\n=== Foreign (hand-written) trace ===\n";
    analyze_phase(foreign_trace());

    std::cout << "\n=== Binary (DST1) persistence ===\n";
    binary_round_trip(trace_text);
    return 0;
}
