// Client side of the DSRV protocol (DESIGN.md §12, docs/SERVE.md).
//
// Two ways into the daemon:
//
//  * push_trace_file — what `dsspy push` runs: open a recorded trace
//    (CSV or DST1), send its bytes verbatim as 'T' frames, wait for the
//    daemon's result line.  The daemon auto-detects the format, so a
//    push is exactly `dsspy analyze <trace>` executed remotely.
//  * SocketTraceSink — a runtime::TraceSink an instrumented app (or a
//    ProfilingSession streaming sink) can write into directly: instance
//    and event records are encoded as CSV on the fly and flushed in
//    framed batches, so a live process profiles into the daemon without
//    ever materializing a trace file.  CSV (not DST1) because DST1's
//    header carries instance/event counts that a live stream cannot know
//    up front; the CSV grammar accepts records in arrival order.
#pragma once

#include <cstdint>
#include <string>

#include "runtime/trace_io.hpp"
#include "serve/socket.hpp"

namespace dsspy::serve {

/// Outcome of one push/stream session.
struct ClientResult {
    bool ok = false;
    std::uint32_t tenant_id = 0;
    std::string summary;  ///< Daemon 'R' line on success.
    std::string error;    ///< Connect/protocol/daemon 'X' text on failure.
};

/// Send a recorded trace file to a daemon; blocks until the daemon
/// finalizes the tenant and answers.  `tenant_name` defaults (when empty)
/// to the trace filename.  `frame_bytes` caps each 'T' frame and must not
/// exceed the daemon's --max-frame-bytes.
[[nodiscard]] ClientResult push_trace_file(const Address& address,
                                           const std::string& trace_path,
                                           const std::string& tenant_name,
                                           std::size_t frame_bytes = 256
                                                                     << 10);

/// Streams instances/events into a daemon as framed CSV.  Not
/// thread-safe; feed it from one thread (a collector, or behind the
/// session's ordered-delivery stage).  Destruction without finish()
/// drops the connection, which the daemon finalizes as an Aborted tenant
/// — i.e. a crashing client degrades to a partial report by default.
class SocketTraceSink final : public runtime::TraceSink {
public:
    /// Connects and performs the DSRV handshake.  Check ok() before use;
    /// a failed sink swallows writes (so instrumented apps never crash
    /// because the daemon is down).
    SocketTraceSink(const Address& address, const std::string& tenant_name,
                    std::size_t flush_bytes = 64 << 10);
    ~SocketTraceSink() override;

    [[nodiscard]] bool ok() const noexcept { return connected_; }
    [[nodiscard]] std::uint32_t tenant_id() const noexcept {
        return tenant_id_;
    }
    [[nodiscard]] const std::string& error() const noexcept { return error_; }

    void on_instance(const runtime::InstanceInfo& info) override;
    void on_events(std::span<const runtime::AccessEvent> events) override;

    /// Flush, send end-of-stream, wait for the daemon's verdict.
    [[nodiscard]] ClientResult finish();

private:
    void flush();
    void send_frame(std::string_view payload);

    Socket socket_;
    bool connected_ = false;
    std::uint32_t tenant_id_ = 0;
    std::string error_;
    std::string buffer_;
    const std::size_t flush_bytes_;
};

/// Shared handshake: connect, hello, parse DSOK/DSNO.  Used by both
/// clients; exposed for tests.
[[nodiscard]] Socket open_tenant_stream(const Address& address,
                                        const std::string& tenant_name,
                                        std::uint32_t* tenant_id,
                                        std::string* error);

/// Shared epilogue: send 'E', read 'R'/'X'.  Exposed for tests.
[[nodiscard]] ClientResult read_stream_result(Socket& socket,
                                              std::uint32_t tenant_id);

}  // namespace dsspy::serve
