#include "serve/daemon.hpp"

#include <algorithm>
#include <array>
#include <charconv>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "runtime/trace_io.hpp"
#include "serve/wire.hpp"

namespace dsspy::serve {

namespace {

/// Daemon-wide obs counters (name-only; per-tenant dimensions render as
/// labeled samples in render_metrics instead).
struct ServeMetricIds {
    obs::MetricId connections;
    obs::MetricId rejected;
    obs::MetricId malformed;
    obs::MetricId http_requests;
    obs::MetricId frames;
    obs::MetricId trace_bytes;
    obs::MetricId tenants_finished;
    obs::MetricId tenants_aborted;
};

const ServeMetricIds& serve_metrics() {
    static const ServeMetricIds ids = [] {
        auto& reg = obs::MetricsRegistry::global();
        return ServeMetricIds{
            reg.counter("serve.connections"),
            reg.counter("serve.rejected"),
            reg.counter("serve.malformed"),
            reg.counter("serve.http_requests"),
            reg.counter("serve.frames"),
            reg.counter("serve.trace_bytes"),
            reg.counter("serve.tenants_finished"),
            reg.counter("serve.tenants_aborted"),
        };
    }();
    return ids;
}

void bump(obs::MetricId id, std::uint64_t delta = 1) {
    if (obs::enabled()) obs::MetricsRegistry::global().add(id, delta);
}

/// Largest HTTP request we bother reading; status endpoints have no
/// bodies, so anything bigger is not one of ours.
constexpr std::size_t kMaxHttpRequestBytes = 8192;

std::string json_escape(const std::string& s) {
    std::string out;
    for (const char ch : s) {
        if (ch == '"' || ch == '\\') {
            out += '\\';
            out += ch;
        } else if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
            out += buf;
        } else {
            out += ch;
        }
    }
    return out;
}

const char* io_status_reason(IoStatus status) {
    switch (status) {
        case IoStatus::Ok: return "ok";
        case IoStatus::Eof: return "client disconnected mid-stream";
        case IoStatus::Error: return "socket error mid-stream";
        case IoStatus::Stopped: return "daemon stopped";
        case IoStatus::Timeout: return "client idle timeout";
    }
    return "unknown";
}

}  // namespace

bool Daemon::start(std::string* error) {
    const std::optional<Address> addr =
        parse_address(options_.listen, error);
    if (!addr.has_value()) return false;
    if (!listener_.listen_on(*addr, error)) return false;
    // A daemon that exports /metrics wants its own telemetry on; this is
    // the serve-process equivalent of the CLI's --metrics-out opt-in.
    // Span tracing likewise: /tenants/<id>/trace serves live timelines,
    // so the recorder is always on in the daemon process.
    obs::MetricsRegistry::global().set_enabled(true);
    obs::TraceRecorder::global().set_enabled(true);
    obs::TraceRecorder::global().set_slow_op_threshold_ns(
        options_.slow_op_ms > 0
            ? static_cast<std::uint64_t>(options_.slow_op_ms) * 1000000u
            : 0);
    stop_.store(false, std::memory_order_release);
    accept_thread_ = std::thread([this] { accept_loop(); });
    return true;
}

void Daemon::stop() {
    stop_.store(true, std::memory_order_release);
    if (accept_thread_.joinable()) accept_thread_.join();
    listener_.close();
    std::vector<Connection> conns;
    {
        const std::lock_guard<std::mutex> lock(conns_mutex_);
        conns.swap(conns_);
    }
    for (Connection& conn : conns)
        if (conn.thread.joinable()) conn.thread.join();
}

void Daemon::accept_loop() {
    while (!stop_.load(std::memory_order_acquire)) {
        Socket sock = listener_.accept_next(stop_);
        if (!sock.valid()) break;
        connections_.fetch_add(1, std::memory_order_relaxed);
        bump(serve_metrics().connections);
        reap_connections();
        Connection conn;
        conn.done = std::make_shared<std::atomic<bool>>(false);
        auto done = conn.done;
        conn.thread = std::thread(
            [this, done](Socket s) {
                handle_connection(std::move(s));
                done->store(true, std::memory_order_release);
            },
            std::move(sock));
        const std::lock_guard<std::mutex> lock(conns_mutex_);
        conns_.push_back(std::move(conn));
    }
}

void Daemon::reap_connections() {
    std::vector<std::thread> finished;
    {
        const std::lock_guard<std::mutex> lock(conns_mutex_);
        auto it = conns_.begin();
        while (it != conns_.end()) {
            if (it->done->load(std::memory_order_acquire)) {
                finished.push_back(std::move(it->thread));
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (std::thread& th : finished)
        if (th.joinable()) th.join();
}

std::shared_ptr<TenantSession> Daemon::admit_tenant(std::string name) {
    const std::lock_guard<std::mutex> lock(tenants_mutex_);
    std::size_t streaming = 0;
    for (const auto& [id, session] : tenants_)
        if (session->summary().state == TenantState::Streaming) ++streaming;
    if (streaming >= options_.max_tenants) return nullptr;
    const std::uint32_t id = next_tenant_id_++;
    if (name.empty()) name = "tenant-" + std::to_string(id);
    auto session = std::make_shared<TenantSession>(
        id, std::move(name), options_.config,
        options_.max_tenant_instances);
    tenants_.emplace(id, session);
    return session;
}

void Daemon::evict_finished() {
    const std::lock_guard<std::mutex> lock(tenants_mutex_);
    std::size_t terminal = 0;
    for (const auto& [id, session] : tenants_)
        if (session->summary().state != TenantState::Streaming) ++terminal;
    // The map is id-ordered and ids are monotonic, so a front-to-back
    // sweep evicts oldest-first.
    auto it = tenants_.begin();
    while (terminal > options_.max_finished_tenants &&
           it != tenants_.end()) {
        if (it->second->summary().state != TenantState::Streaming) {
            it = tenants_.erase(it);
            --terminal;
        } else {
            ++it;
        }
    }
}

void Daemon::handle_connection(Socket sock) {
    // Protocol dispatch on the first four bytes.
    std::array<char, wire::kMagicBytes> magic{};
    const IoStatus st = sock.read_exact(magic.data(), magic.size(), &stop_,
                                        options_.client_timeout_ms);
    if (st != IoStatus::Ok) return;
    const std::string_view head(magic.data(), magic.size());
    if (head == wire::kHelloMagic) {
        handle_stream(sock);
    } else if (head == "GET ") {
        handle_http(sock);
    } else {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        bump(serve_metrics().malformed);
        (void)sock.write_all(
            wire::encode_reject("unrecognized protocol magic"));
    }
}

void Daemon::handle_stream(Socket& sock) {
    // Rest of the hello: version, flags, name length, name.
    std::array<unsigned char, 6> fixed{};
    if (sock.read_exact(fixed.data(), fixed.size(), &stop_,
                        options_.client_timeout_ms) != IoStatus::Ok) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        bump(serve_metrics().malformed);
        return;
    }
    const std::uint16_t version = wire::get_u16(fixed.data());
    const std::uint16_t name_len = wire::get_u16(fixed.data() + 4);
    std::string name(name_len, '\0');
    if (name_len > 0 &&
        sock.read_exact(name.data(), name_len, &stop_,
                        options_.client_timeout_ms) != IoStatus::Ok) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        bump(serve_metrics().malformed);
        return;
    }
    // The spec caps tenant names at 255 bytes; the reference client
    // truncates, but the daemon must not trust that — a hand-rolled
    // client's oversized name would otherwise flow into /tenants JSON
    // and Prometheus labels.
    if (name.size() > wire::kMaxTenantNameBytes)
        name.resize(wire::kMaxTenantNameBytes);
    if (version != wire::kVersion) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        bump(serve_metrics().rejected);
        (void)sock.write_all(wire::encode_reject(
            "unsupported protocol version " + std::to_string(version)));
        return;
    }
    std::shared_ptr<TenantSession> session = admit_tenant(std::move(name));
    if (session == nullptr) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        bump(serve_metrics().rejected);
        (void)sock.write_all(wire::encode_reject(
            "tenant limit reached (" +
            std::to_string(options_.max_tenants) + ")"));
        return;
    }
    if (!sock.write_all(wire::encode_accept(session->id()))) {
        session->abort("client disconnected during handshake");
        bump(serve_metrics().tenants_aborted);
        evict_finished();
        return;
    }

    // Frame loop, shaped as a ChunkSource so the prefix-carry streaming
    // reader consumes the socket directly.  The source never throws: a
    // dead or misbehaving peer sets `conn_error` and ends the stream, and
    // the handler sorts out Finished vs Aborted afterwards.
    std::string frame_buf;
    bool saw_end = false;
    std::string conn_error;
    const runtime::ChunkSource next_chunk = [&]() -> std::string_view {
        if (saw_end || !conn_error.empty()) return {};
        for (;;) {
            std::array<unsigned char, wire::kFrameHeaderBytes> hdr{};
            const IoStatus hst =
                sock.read_exact(hdr.data(), hdr.size(), &stop_,
                                options_.client_timeout_ms);
            if (hst != IoStatus::Ok) {
                conn_error = io_status_reason(hst);
                return {};
            }
            const char type = static_cast<char>(hdr[0]);
            const std::uint32_t len = wire::get_u32(hdr.data() + 1);
            if (type == wire::kFrameEnd) {
                if (len != 0) conn_error = "end frame carries a payload";
                else saw_end = true;
                return {};
            }
            if (type != wire::kFrameTrace || len == 0) {
                conn_error = "malformed frame (type " +
                             std::to_string(hdr[0]) + ", len " +
                             std::to_string(len) + ")";
                return {};
            }
            if (len > options_.max_frame_bytes) {
                conn_error = "frame exceeds max-frame-bytes (" +
                             std::to_string(len) + " > " +
                             std::to_string(options_.max_frame_bytes) + ")";
                return {};
            }
            // Spans the payload read + bookkeeping of one 'T' frame (the
            // idle wait for the header stays outside); decode and fold
            // time shows up as serve.fold siblings from on_events.
            DSSPY_TRACE_SPAN_UNDER("serve.frame", session->trace_context());
            frame_buf.resize(len);
            const IoStatus pst =
                sock.read_exact(frame_buf.data(), len, &stop_,
                                options_.client_timeout_ms);
            if (pst != IoStatus::Ok) {
                conn_error = io_status_reason(pst);
                return {};
            }
            session->add_frame(len);
            bump(serve_metrics().frames);
            bump(serve_metrics().trace_bytes, len);
            return std::string_view(frame_buf);
        }
    };

    std::string parse_error;
    try {
        runtime::read_trace_stream(next_chunk, *session);
    } catch (const std::exception& ex) {
        parse_error = ex.what();
    }

    if (parse_error.empty() && conn_error.empty() && saw_end) {
        session->finish();
        bump(serve_metrics().tenants_finished);
        evict_finished();
        const std::string line = session->summary_line();
        (void)sock.write_all(wire::encode_frame_header(
            wire::kFrameResult, static_cast<std::uint32_t>(line.size())));
        (void)sock.write_all(line);
        return;
    }
    const std::string reason =
        !parse_error.empty() ? "trace error: " + parse_error
        : !conn_error.empty() ? conn_error
                              : "stream ended unexpectedly";
    if (!parse_error.empty() || conn_error.rfind("malformed", 0) == 0 ||
        conn_error.rfind("frame exceeds", 0) == 0 ||
        conn_error.rfind("end frame", 0) == 0) {
        malformed_.fetch_add(1, std::memory_order_relaxed);
        bump(serve_metrics().malformed);
    }
    session->abort(reason);
    bump(serve_metrics().tenants_aborted);
    evict_finished();
    // Best effort: a crashed peer will never read this.
    (void)sock.write_all(wire::encode_frame_header(
        wire::kFrameError, static_cast<std::uint32_t>(reason.size())));
    (void)sock.write_all(reason);
    // Drain until the peer closes: closing a TCP socket with unread bytes
    // in the receive buffer sends RST, which would destroy the 'X' reply
    // before a still-sending client reads it.
    char sink_buf[4096];
    std::size_t got = 0;
    while (sock.read_some(sink_buf, sizeof(sink_buf), &got, &stop_,
                          options_.client_timeout_ms) == IoStatus::Ok) {
    }
}

void Daemon::handle_http(Socket& sock) {
    http_requests_.fetch_add(1, std::memory_order_relaxed);
    bump(serve_metrics().http_requests);
    // "GET " is consumed; read until the blank line ending the headers.
    std::string request;
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < kMaxHttpRequestBytes) {
        char buf[1024];
        std::size_t got = 0;
        if (sock.read_some(buf, sizeof(buf), &got, &stop_,
                           options_.client_timeout_ms) != IoStatus::Ok)
            break;
        request.append(buf, got);
    }
    const std::size_t space = request.find(' ');
    const std::size_t eol = request.find("\r\n");
    std::string target = request.substr(
        0, std::min(space == std::string::npos ? request.size() : space,
                    eol == std::string::npos ? request.size() : eol));
    if (target.empty()) {
        write_http(sock, 400, "bad request\n", "text/plain; charset=utf-8");
        return;
    }
    if (target == "/healthz") {
        write_http(sock, 200, "ok\n", "text/plain; charset=utf-8");
        return;
    }
    if (target == "/metrics") {
        write_http(sock, 200, render_metrics(),
                   "text/plain; version=0.0.4; charset=utf-8");
        return;
    }
    if (target == "/tenants") {
        write_http(sock, 200, render_tenants_json(), "application/json");
        return;
    }
    // /tenants/<id>/report, /tenants/<id>/advice, and /tenants/<id>/trace
    constexpr std::string_view kPrefix = "/tenants/";
    const auto route = [&](std::string_view suffix) {
        return target.rfind(kPrefix, 0) == 0 &&
               target.size() > kPrefix.size() &&
               target.size() >= kPrefix.size() + suffix.size() &&
               target.compare(target.size() - suffix.size(), suffix.size(),
                              suffix) == 0;
    };
    const auto parse_id = [&](std::string_view suffix, std::uint32_t* id) {
        const std::string id_str = target.substr(
            kPrefix.size(), target.size() - kPrefix.size() - suffix.size());
        // from_chars into the id's own width: ids past UINT32_MAX are a
        // range error (404), never an aliased truncation.
        const auto [ptr, ec] = std::from_chars(
            id_str.data(), id_str.data() + id_str.size(), *id);
        return ec == std::errc{} &&
               ptr == id_str.data() + id_str.size() && !id_str.empty();
    };
    if (route("/report")) {
        std::uint32_t id = 0;
        if (parse_id("/report", &id)) {
            const std::optional<std::string> report = tenant_report(id);
            if (report.has_value()) {
                write_http(sock, 200, *report,
                           "text/plain; charset=utf-8");
                return;
            }
        }
        write_http(sock, 404, "no such tenant\n",
                   "text/plain; charset=utf-8");
        return;
    }
    if (route("/advice")) {
        std::uint32_t id = 0;
        if (parse_id("/advice", &id)) {
            const std::optional<std::string> advice = tenant_advice(id);
            if (advice.has_value()) {
                write_http(sock, 200, *advice, "application/json");
                return;
            }
        }
        write_http(sock, 404, "no such tenant\n",
                   "text/plain; charset=utf-8");
        return;
    }
    if (route("/trace")) {
        std::uint32_t id = 0;
        if (parse_id("/trace", &id)) {
            const std::optional<std::string> trace = tenant_trace(id);
            if (trace.has_value()) {
                write_http(sock, 200, *trace, "application/json");
                return;
            }
        }
        write_http(sock, 404, "no such tenant\n",
                   "text/plain; charset=utf-8");
        return;
    }
    write_http(sock, 404, "not found\n", "text/plain; charset=utf-8");
}

void Daemon::write_http(Socket& sock, int status, const std::string& body,
                        const char* content_type) const {
    const char* reason = status == 200   ? "OK"
                         : status == 404 ? "Not Found"
                                         : "Bad Request";
    std::ostringstream os;
    os << "HTTP/1.1 " << status << ' ' << reason << "\r\n"
       << "Content-Type: " << content_type << "\r\n"
       << "Content-Length: " << body.size() << "\r\n"
       << "Connection: close\r\n\r\n"
       << body;
    (void)sock.write_all(os.str());
}

std::vector<TenantSummary> Daemon::tenants() const {
    std::vector<std::shared_ptr<TenantSession>> sessions;
    {
        const std::lock_guard<std::mutex> lock(tenants_mutex_);
        sessions.reserve(tenants_.size());
        for (const auto& [id, session] : tenants_) sessions.push_back(session);
    }
    std::vector<TenantSummary> out;
    out.reserve(sessions.size());
    for (const auto& session : sessions) out.push_back(session->summary());
    return out;
}

std::optional<std::string> Daemon::tenant_report(std::uint32_t id) const {
    std::shared_ptr<TenantSession> session;
    {
        const std::lock_guard<std::mutex> lock(tenants_mutex_);
        const auto it = tenants_.find(id);
        if (it == tenants_.end()) return std::nullopt;
        session = it->second;
    }
    return session->report_text();
}

std::optional<std::string> Daemon::tenant_advice(std::uint32_t id) const {
    std::shared_ptr<TenantSession> session;
    {
        const std::lock_guard<std::mutex> lock(tenants_mutex_);
        const auto it = tenants_.find(id);
        if (it == tenants_.end()) return std::nullopt;
        session = it->second;
    }
    return session->advice_json();
}

std::optional<std::string> Daemon::tenant_trace(std::uint32_t id) const {
    std::shared_ptr<TenantSession> session;
    {
        const std::lock_guard<std::mutex> lock(tenants_mutex_);
        const auto it = tenants_.find(id);
        if (it == tenants_.end()) return std::nullopt;
        session = it->second;
    }
    // Live timelines are legal: snapshot() returns every span published
    // so far, and a streaming tenant's children are already tagged with
    // its root id (the still-open root itself joins once it ends).
    const std::vector<obs::SpanRecord> tree = obs::spans_for_root(
        obs::TraceRecorder::global().snapshot(),
        session->trace_context().root_id);
    std::ostringstream os;
    obs::write_trace_json(os, tree);
    return os.str();
}

DaemonStats Daemon::stats() const {
    DaemonStats out;
    out.connections = connections_.load(std::memory_order_relaxed);
    out.rejected = rejected_.load(std::memory_order_relaxed);
    out.malformed = malformed_.load(std::memory_order_relaxed);
    out.http_requests = http_requests_.load(std::memory_order_relaxed);
    for (const TenantSummary& s : tenants())
        if (s.state == TenantState::Streaming) ++out.streaming;
    return out;
}

std::string Daemon::render_tenants_json() const {
    const std::vector<TenantSummary> all = tenants();
    std::ostringstream os;
    os << "{\n  \"tenants\": [\n";
    for (std::size_t i = 0; i < all.size(); ++i) {
        const TenantSummary& s = all[i];
        os << "    {\"id\": " << s.id << ", \"name\": \""
           << json_escape(s.name) << "\", \"state\": \""
           << tenant_state_name(s.state) << "\", \"events\": " << s.events
           << ", \"instances\": " << s.instances
           << ", \"flagged\": " << s.flagged
           << ", \"orphan_events\": " << s.orphan_events
           << ", \"bytes\": " << s.bytes << ", \"frames\": " << s.frames;
        if (!s.error.empty())
            os << ", \"error\": \"" << json_escape(s.error) << "\"";
        os << "}" << (i + 1 < all.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

std::string Daemon::render_metrics() const {
    std::ostringstream os;
    obs::write_metrics_prometheus(
        os, obs::MetricsRegistry::global().collect());
    // Per-tenant labeled series: the sharded registry aggregates by name
    // only, so the tenant dimension renders here from TenantSummary.
    const std::vector<TenantSummary> all = tenants();
    const DaemonStats st = stats();
    os << "# TYPE dsspy_serve_tenants_streaming gauge\n";
    obs::write_prometheus_sample(os, "serve.tenants_streaming", {},
                                 st.streaming);
    struct Series {
        const char* name;
        std::uint64_t TenantSummary::* field;
    };
    static constexpr Series kSeries[] = {
        {"serve.tenant_events", &TenantSummary::events},
        {"serve.tenant_instances", &TenantSummary::instances},
        {"serve.tenant_orphan_events", &TenantSummary::orphan_events},
        {"serve.tenant_flagged", &TenantSummary::flagged},
        {"serve.tenant_trace_bytes", &TenantSummary::bytes},
    };
    for (const Series& series : kSeries) {
        std::string prom = "dsspy_";
        for (const char ch : std::string_view(series.name))
            prom += ch == '.' ? '_' : ch;
        os << "# TYPE " << prom << " gauge\n";
        for (const TenantSummary& s : all) {
            const std::string id_str = std::to_string(s.id);
            const std::array<obs::PromLabel, 3> labels = {{
                {"tenant", id_str},
                {"name", s.name},
                {"state", tenant_state_name(s.state)},
            }};
            obs::write_prometheus_sample(os, series.name, labels,
                                         s.*(series.field));
        }
    }
    return os.str();
}

}  // namespace dsspy::serve
