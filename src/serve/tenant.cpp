#include "serve/tenant.hpp"

#include <sstream>
#include <utility>

#include "core/export.hpp"
#include "core/report.hpp"
#include "support/table.hpp"

namespace dsspy::serve {

namespace {

/// The `--report` rendering: use-case report plus the search-space
/// reduction footer, exactly as the CLI's report sink emits it — which
/// is what keeps tenant reports byte-identical to `dsspy analyze`.
void render_report(std::ostream& os, const core::StreamReport& report) {
    core::print_use_case_report(os, report);
    os << "Search space reduction: "
       << support::Table::pct(report.search_space_reduction()) << " ("
       << report.flagged_instances() << " of "
       << report.list_array_instances()
       << " list/array instances flagged)\n";
}

}  // namespace

const char* tenant_state_name(TenantState state) {
    switch (state) {
        case TenantState::Streaming: return "streaming";
        case TenantState::Finished: return "finished";
        case TenantState::Aborted: return "aborted";
    }
    return "unknown";
}

TenantSession::TenantSession(std::uint32_t id, std::string name,
                             core::DetectorConfig config,
                             std::size_t max_instances)
    : id_(id),
      name_(std::move(name)),
      max_instances_(max_instances),
      analyzer_(config),
      root_span_(obs::TraceRecorder::global().begin_span("serve.tenant")) {}

TenantSession::~TenantSession() {
    // Evicted or dropped without finalization: close the root span so the
    // tree it anchors still exports.  finish()/abort() already ended it
    // for every other path.
    if (state_ == TenantState::Streaming)
        obs::TraceRecorder::global().end_span(
            root_span_, "tenant=" + name_ + " state=dropped");
}

void TenantSession::on_instance(const runtime::InstanceInfo& info) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (instances_.size() >= max_instances_)
            throw TenantLimitError(
                "tenant instance limit exceeded (" +
                std::to_string(max_instances_) + ")");
        instances_.push_back(info);
    }
    analyzer_.declare_instance(info);
}

void TenantSession::on_events(std::span<const runtime::AccessEvent> events) {
    DSSPY_TRACE_SPAN_UNDER("serve.fold", root_span_.ctx);
    analyzer_.fold(events);
}

void TenantSession::add_frame(std::uint64_t bytes) {
    const std::lock_guard<std::mutex> lock(mutex_);
    frames_ += 1;
    bytes_ += bytes;
}

std::uint64_t TenantSession::count_orphans(
    const core::StreamReport& report) {
    std::uint64_t declared = 0;
    for (const core::StreamInstance& si : report.instances())
        declared += si.stats.total;
    const std::uint64_t total = report.total_events();
    return total > declared ? total - declared : 0;
}

void TenantSession::fill_report_fields(const core::StreamReport& report) {
    orphan_events_ = count_orphans(report);
    flagged_ = report.flagged_instances();
    std::ostringstream os;
    render_report(os, report);
    final_report_ = os.str();
    std::ostringstream advice_os;
    core::write_advice_json(advice_os, report);
    final_advice_ = advice_os.str();
}

void TenantSession::finish() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != TenantState::Streaming) return;
    {
        DSSPY_TRACE_SPAN_UNDER("serve.finalize", root_span_.ctx);
        fill_report_fields(analyzer_.finish(instances_));
    }
    state_ = TenantState::Finished;
    obs::TraceRecorder::global().end_span(
        root_span_, "tenant=" + name_ + " state=finished");
}

void TenantSession::abort(std::string reason) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != TenantState::Streaming) return;
    // Finalize the received prefix: same reduction, partial input.  The
    // report stays byte-identical to an offline analysis of those bytes.
    {
        DSSPY_TRACE_SPAN_UNDER("serve.finalize", root_span_.ctx);
        fill_report_fields(analyzer_.finish(instances_));
    }
    state_ = TenantState::Aborted;
    error_ = std::move(reason);
    obs::TraceRecorder::global().end_span(
        root_span_, "tenant=" + name_ + " state=aborted");
}

TenantSummary TenantSession::summary() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    TenantSummary out;
    out.id = id_;
    out.name = name_;
    out.state = state_;
    out.bytes = bytes_;
    out.frames = frames_;
    out.events = analyzer_.events_folded();
    out.instances = instances_.size();
    out.orphan_events = orphan_events_;
    out.flagged = flagged_;
    out.error = error_;
    return out;
}

std::string TenantSession::report_text() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != TenantState::Streaming) return final_report_;
    // Live view: virtual flush on a copy, stream state undisturbed.
    const core::StreamReport report = analyzer_.snapshot(instances_);
    std::ostringstream os;
    render_report(os, report);
    return os.str();
}

std::string TenantSession::advice_json() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (state_ != TenantState::Streaming) return final_advice_;
    // Live view: virtual flush on a copy, stream state undisturbed.
    const core::StreamReport report = analyzer_.snapshot(instances_);
    std::ostringstream os;
    core::write_advice_json(os, report);
    return os.str();
}

std::string TenantSession::summary_line() const {
    const TenantSummary s = summary();
    std::ostringstream os;
    os << "tenant " << s.id << " (" << s.name << "): "
       << tenant_state_name(s.state) << ", " << s.events << " events, "
       << s.instances << " instances, " << s.flagged << " flagged, "
       << s.orphan_events << " orphan";
    if (!s.error.empty()) os << " [" << s.error << "]";
    return os.str();
}

}  // namespace dsspy::serve
