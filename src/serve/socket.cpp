#include "serve/socket.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

namespace dsspy::serve {

namespace {

/// Poll tick: reads wake this often to check the stop flag.  Matches the
/// collector's idle-backoff ceiling (session.cpp) — the serve layer reuses
/// the capture layer's backoff granularity rather than inventing one.
constexpr int kPollTickMs = 100;

std::string errno_message(const char* what) {
    return std::string(what) + ": " + std::strerror(errno);
}

/// One poll round; true when the fd is readable.
bool poll_readable(int fd, int timeout_ms) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLIN;
    return ::poll(&pfd, 1, timeout_ms) > 0 &&
           (pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0;
}

sockaddr_un make_unix_addr(const std::string& path, bool* ok) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    *ok = path.size() < sizeof(addr.sun_path);
    if (*ok) std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

/// Resolve a tcp host to an IPv4 sockaddr_in.
bool resolve_tcp(const Address& address, sockaddr_in* out,
                 std::string* error) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int rc = ::getaddrinfo(address.host.c_str(), nullptr, &hints, &res);
    if (rc != 0 || res == nullptr) {
        if (error != nullptr)
            *error = "cannot resolve host '" + address.host +
                     "': " + ::gai_strerror(rc);
        return false;
    }
    *out = *reinterpret_cast<const sockaddr_in*>(res->ai_addr);
    out->sin_port = htons(static_cast<std::uint16_t>(address.port));
    ::freeaddrinfo(res);
    return true;
}

}  // namespace

std::string Address::to_string() const {
    if (kind == Kind::Unix) return "unix:" + path;
    return "tcp://" + host + ":" + std::to_string(port);
}

std::optional<Address> parse_address(std::string_view spec,
                                     std::string* error) {
    Address out;
    if (spec.rfind("unix:", 0) == 0) {
        out.kind = Address::Kind::Unix;
        out.path = std::string(spec.substr(5));
        if (out.path.empty()) {
            if (error != nullptr) *error = "unix: address needs a path";
            return std::nullopt;
        }
        return out;
    }
    if (spec.rfind("tcp://", 0) == 0) {
        out.kind = Address::Kind::Tcp;
        const std::string_view rest = spec.substr(6);
        const std::size_t colon = rest.rfind(':');
        if (colon == std::string_view::npos || colon == 0) {
            if (error != nullptr)
                *error = "tcp:// address needs host:port";
            return std::nullopt;
        }
        out.host = std::string(rest.substr(0, colon));
        const std::string_view port_sv = rest.substr(colon + 1);
        unsigned port = 0;
        const auto [ptr, ec] = std::from_chars(
            port_sv.data(), port_sv.data() + port_sv.size(), port);
        if (ec != std::errc{} || ptr != port_sv.data() + port_sv.size() ||
            port > 65535) {
            if (error != nullptr)
                *error = "bad tcp port '" + std::string(port_sv) + "'";
            return std::nullopt;
        }
        out.port = port;
        return out;
    }
    if (error != nullptr)
        *error = "address must be unix:PATH or tcp://host:port (got '" +
                 std::string(spec) + "')";
    return std::nullopt;
}

Socket& Socket::operator=(Socket&& other) noexcept {
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void Socket::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

IoStatus Socket::read_some(void* buf, std::size_t n, std::size_t* got,
                           const std::atomic<bool>* stop,
                           int idle_timeout_ms) const {
    *got = 0;
    int idle_ms = 0;
    for (;;) {
        if (stop != nullptr && stop->load(std::memory_order_acquire))
            return IoStatus::Stopped;
        if (!poll_readable(fd_, kPollTickMs)) {
            idle_ms += kPollTickMs;
            if (idle_timeout_ms > 0 && idle_ms >= idle_timeout_ms)
                return IoStatus::Timeout;
            continue;
        }
        const ssize_t r = ::recv(fd_, buf, n, 0);
        if (r > 0) {
            *got = static_cast<std::size_t>(r);
            return IoStatus::Ok;
        }
        if (r == 0) return IoStatus::Eof;
        if (errno == EINTR || errno == EAGAIN) continue;
        return IoStatus::Error;
    }
}

IoStatus Socket::read_exact(void* buf, std::size_t n,
                            const std::atomic<bool>* stop,
                            int idle_timeout_ms) const {
    auto* p = static_cast<char*>(buf);
    std::size_t have = 0;
    while (have < n) {
        std::size_t got = 0;
        const IoStatus st =
            read_some(p + have, n - have, &got, stop, idle_timeout_ms);
        if (st != IoStatus::Ok) return st;
        have += got;
    }
    return IoStatus::Ok;
}

bool Socket::write_all(std::string_view data) const {
    std::size_t sent = 0;
    while (sent < data.size()) {
        const ssize_t r = ::send(fd_, data.data() + sent, data.size() - sent,
                                 MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        sent += static_cast<std::size_t>(r);
    }
    return true;
}

Socket connect_to(const Address& address, std::string* error) {
    if (address.kind == Address::Kind::Unix) {
        bool ok = false;
        const sockaddr_un addr = make_unix_addr(address.path, &ok);
        if (!ok) {
            if (error != nullptr)
                *error = "unix socket path too long: " + address.path;
            return Socket{};
        }
        Socket sock(::socket(AF_UNIX, SOCK_STREAM, 0));
        if (!sock.valid()) {
            if (error != nullptr) *error = errno_message("socket");
            return Socket{};
        }
        if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) != 0) {
            if (error != nullptr)
                *error = errno_message(
                    ("connect " + address.to_string()).c_str());
            return Socket{};
        }
        return sock;
    }
    sockaddr_in addr{};
    if (!resolve_tcp(address, &addr, error)) return Socket{};
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid()) {
        if (error != nullptr) *error = errno_message("socket");
        return Socket{};
    }
    if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        if (error != nullptr)
            *error =
                errno_message(("connect " + address.to_string()).c_str());
        return Socket{};
    }
    return sock;
}

bool Listener::listen_on(const Address& address, std::string* error) {
    close();
    bound_ = address;
    if (address.kind == Address::Kind::Unix) {
        bool ok = false;
        sockaddr_un addr = make_unix_addr(address.path, &ok);
        if (!ok) {
            if (error != nullptr)
                *error = "unix socket path too long: " + address.path;
            return false;
        }
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0) {
            if (error != nullptr) *error = errno_message("socket");
            return false;
        }
        if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
            // A socket file left by a crashed daemon blocks bind with
            // EADDRINUSE.  Probe it: if nobody answers, it is stale —
            // unlink and retry; if a daemon answers, report it busy.
            if (errno == EADDRINUSE) {
                std::string probe_err;
                Socket probe = connect_to(address, &probe_err);
                if (!probe.valid()) {
                    ::unlink(address.path.c_str());
                    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr),
                               sizeof(addr)) == 0) {
                        owns_path_ = true;
                        if (::listen(fd_, SOMAXCONN) != 0) {
                            if (error != nullptr)
                                *error = errno_message("listen");
                            close();
                            return false;
                        }
                        return true;
                    }
                }
            }
            if (error != nullptr)
                *error = errno_message(
                    ("bind " + address.to_string()).c_str());
            close();
            return false;
        }
        owns_path_ = true;
        if (::listen(fd_, SOMAXCONN) != 0) {
            if (error != nullptr) *error = errno_message("listen");
            close();
            return false;
        }
        return true;
    }

    sockaddr_in addr{};
    if (!resolve_tcp(address, &addr, error)) return false;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error != nullptr) *error = errno_message("socket");
        return false;
    }
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
            0 ||
        ::listen(fd_, SOMAXCONN) != 0) {
        if (error != nullptr)
            *error = errno_message(("bind " + address.to_string()).c_str());
        close();
        return false;
    }
    // Port 0 asked the kernel to choose; report what it picked.
    sockaddr_in actual{};
    socklen_t len = sizeof(actual);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&actual), &len) == 0)
        bound_.port = ntohs(actual.sin_port);
    return true;
}

Socket Listener::accept_next(const std::atomic<bool>& stop) const {
    while (!stop.load(std::memory_order_acquire) && fd_ >= 0) {
        if (!poll_readable(fd_, kPollTickMs)) continue;
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client >= 0) return Socket(client);
        if (errno == EINTR || errno == EAGAIN || errno == ECONNABORTED)
            continue;
        break;  // Listener closed under us or a hard error: give up.
    }
    return Socket{};
}

void Listener::close() noexcept {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        // Unlink only a path WE bound: when bind fails with EADDRINUSE
        // because a live daemon answers, its socket file must survive.
        if (owns_path_ && bound_.kind == Address::Kind::Unix &&
            !bound_.path.empty())
            ::unlink(bound_.path.c_str());
    }
    owns_path_ = false;
}

}  // namespace dsspy::serve
