#include "serve/client.hpp"

#include <array>
#include <fstream>
#include <sstream>
#include <utility>

#include "serve/wire.hpp"

namespace dsspy::serve {

namespace {

/// Read a server frame header; false + *error on anything unexpected.
bool read_frame(Socket& socket, char* type, std::string* payload,
                std::string* error) {
    std::array<unsigned char, wire::kFrameHeaderBytes> hdr{};
    if (socket.read_exact(hdr.data(), hdr.size()) != IoStatus::Ok) {
        *error = "daemon closed the connection before answering";
        return false;
    }
    *type = static_cast<char>(hdr[0]);
    const std::uint32_t len = wire::get_u32(hdr.data() + 1);
    payload->assign(len, '\0');
    if (len > 0 &&
        socket.read_exact(payload->data(), len) != IoStatus::Ok) {
        *error = "daemon closed the connection mid-reply";
        return false;
    }
    return true;
}

}  // namespace

Socket open_tenant_stream(const Address& address,
                          const std::string& tenant_name,
                          std::uint32_t* tenant_id, std::string* error) {
    Socket socket = connect_to(address, error);
    if (!socket.valid()) return Socket{};
    if (!socket.write_all(wire::encode_hello(tenant_name))) {
        *error = "handshake write failed";
        return Socket{};
    }
    std::array<unsigned char, wire::kMagicBytes + 2> head{};
    if (socket.read_exact(head.data(), head.size()) != IoStatus::Ok) {
        *error = "daemon closed the connection during handshake";
        return Socket{};
    }
    const std::string_view magic(reinterpret_cast<const char*>(head.data()),
                                 wire::kMagicBytes);
    if (magic == wire::kRejectMagic) {
        const std::uint16_t rlen = wire::get_u16(head.data() + 4);
        std::string reason(rlen, '\0');
        if (rlen > 0)
            (void)socket.read_exact(reason.data(), rlen);
        *error = "daemon rejected the stream: " + reason;
        return Socket{};
    }
    if (magic != wire::kAcceptMagic) {
        *error = "daemon sent an unrecognized handshake reply";
        return Socket{};
    }
    // DSOK: the 2 bytes after the magic are the version; 4 more carry the
    // tenant id.
    std::array<unsigned char, 4> id_bytes{};
    if (socket.read_exact(id_bytes.data(), id_bytes.size()) != IoStatus::Ok) {
        *error = "daemon closed the connection during handshake";
        return Socket{};
    }
    *tenant_id = wire::get_u32(id_bytes.data());
    return socket;
}

ClientResult read_stream_result(Socket& socket, std::uint32_t tenant_id) {
    ClientResult result;
    result.tenant_id = tenant_id;
    if (!socket.write_all(
            wire::encode_frame_header(wire::kFrameEnd, 0))) {
        result.error = "end-of-stream write failed";
        return result;
    }
    char type = 0;
    std::string payload;
    if (!read_frame(socket, &type, &payload, &result.error)) return result;
    if (type == wire::kFrameResult) {
        result.ok = true;
        result.summary = std::move(payload);
    } else if (type == wire::kFrameError) {
        result.error = payload;
    } else {
        result.error = "daemon sent an unexpected frame type";
    }
    return result;
}

ClientResult push_trace_file(const Address& address,
                             const std::string& trace_path,
                             const std::string& tenant_name,
                             std::size_t frame_bytes) {
    ClientResult result;
    std::ifstream in(trace_path, std::ios::binary);
    if (!in) {
        result.error = "cannot open trace file: " + trace_path;
        return result;
    }
    std::string name = tenant_name;
    if (name.empty()) {
        const std::size_t slash = trace_path.find_last_of('/');
        name = slash == std::string::npos ? trace_path
                                          : trace_path.substr(slash + 1);
    }
    Socket socket =
        open_tenant_stream(address, name, &result.tenant_id, &result.error);
    if (!socket.valid()) return result;

    if (frame_bytes == 0) frame_bytes = 1;
    std::string chunk(frame_bytes, '\0');
    for (;;) {
        in.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));
        const std::size_t got = static_cast<std::size_t>(in.gcount());
        if (got == 0) break;
        if (!socket.write_all(wire::encode_frame_header(
                wire::kFrameTrace, static_cast<std::uint32_t>(got))) ||
            !socket.write_all(std::string_view(chunk.data(), got))) {
            result.error = "trace write failed (daemon gone?)";
            return result;
        }
    }
    if (in.bad()) {
        result.error = "read error on trace file: " + trace_path;
        return result;
    }
    return read_stream_result(socket, result.tenant_id);
}

SocketTraceSink::SocketTraceSink(const Address& address,
                                 const std::string& tenant_name,
                                 std::size_t flush_bytes)
    : flush_bytes_(flush_bytes == 0 ? 1 : flush_bytes) {
    socket_ = open_tenant_stream(address, tenant_name, &tenant_id_, &error_);
    connected_ = socket_.valid();
}

SocketTraceSink::~SocketTraceSink() = default;

void SocketTraceSink::send_frame(std::string_view payload) {
    if (!connected_ || payload.empty()) return;
    if (!socket_.write_all(wire::encode_frame_header(
            wire::kFrameTrace,
            static_cast<std::uint32_t>(payload.size()))) ||
        !socket_.write_all(payload)) {
        connected_ = false;
        error_ = "stream write failed (daemon gone?)";
        socket_.close();
    }
}

void SocketTraceSink::flush() {
    send_frame(buffer_);
    buffer_.clear();
}

void SocketTraceSink::on_instance(const runtime::InstanceInfo& info) {
    if (!connected_) return;
    std::ostringstream os;
    runtime::detail::write_csv_instance_record(os, info);
    buffer_ += os.str();
    if (buffer_.size() >= flush_bytes_) flush();
}

void SocketTraceSink::on_events(
    std::span<const runtime::AccessEvent> events) {
    if (!connected_) return;
    std::ostringstream os;
    for (const runtime::AccessEvent& ev : events)
        runtime::detail::write_csv_event_record(os, ev);
    buffer_ += os.str();
    if (buffer_.size() >= flush_bytes_) flush();
}

ClientResult SocketTraceSink::finish() {
    ClientResult result;
    result.tenant_id = tenant_id_;
    if (!connected_) {
        result.error = error_.empty() ? "not connected" : error_;
        return result;
    }
    flush();
    if (!connected_) {  // flush may have lost the daemon
        result.error = error_;
        return result;
    }
    result = read_stream_result(socket_, tenant_id_);
    connected_ = false;
    socket_.close();
    return result;
}

}  // namespace dsspy::serve
