// The multi-tenant profiling daemon behind `dsspy serve` (DESIGN.md §12).
//
// One Listener accepts every connection; the first four bytes decide the
// protocol: "DSRV" starts a tenant trace stream (wire.hpp), "GET " serves
// a status endpoint over minimal HTTP/1.1:
//
//   GET /healthz              — liveness ("ok")
//   GET /tenants              — JSON array of tenant summaries
//   GET /tenants/<id>/report  — Table V report (live or final)
//   GET /tenants/<id>/advice  — structured advice document (§14)
//   GET /tenants/<id>/trace   — span timeline as Chrome trace JSON (§13)
//   GET /metrics              — Prometheus exposition: the global obs
//                               registry plus per-tenant labeled series
//
// Concurrency model: one accept thread, one thread per connection.  Each
// stream connection folds synchronously into its tenant's analyzer, so
// backpressure is the kernel socket buffer — a slow daemon slows the
// client's sends instead of dropping events, mirroring the capture
// layer's blocking-backpressure policy.  Per-tenant memory is bounded by
// the analyzer's O(instances x threads) state plus the instance-table cap;
// per-connection transient memory by `max_frame_bytes`.  Terminal
// (finished/aborted) sessions stay queryable via /tenants until more than
// `max_finished_tenants` of them accumulate, then the oldest are evicted
// — connection churn cannot grow the tenant table without bound.
//
// Failure isolation: a malformed handshake, oversized frame, or trace
// parse error aborts only the offending connection (its tenant finalizes
// as Aborted); every other tenant keeps streaming.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/detector_config.hpp"
#include "serve/socket.hpp"
#include "serve/tenant.hpp"

namespace dsspy::serve {

struct DaemonOptions {
    std::string listen = "unix:dsspy.sock";
    std::size_t max_tenants = 64;        ///< Concurrent streaming tenants.
    std::size_t max_finished_tenants = 128;  ///< Retained terminal sessions.
    std::size_t max_frame_bytes = 1u << 20;      ///< Per 'T' frame.
    std::size_t max_tenant_instances = 1u << 16; ///< Instance-table cap.
    int client_timeout_ms = 30000;  ///< Idle tenant connections abort.
    /// Spans at least this long log one [slow-op] line to stderr when
    /// they end (`--slow-op-ms=N`); 0 disables the log.
    int slow_op_ms = 0;
    core::DetectorConfig config;    ///< Detector thresholds for analysis.
};

/// Daemon-wide counters (tenant details live in TenantSummary).
struct DaemonStats {
    std::uint64_t connections = 0;    ///< Accepted connections, total.
    std::uint64_t rejected = 0;       ///< DSNO rejections (busy/version).
    std::uint64_t malformed = 0;      ///< Protocol/parse failures.
    std::uint64_t http_requests = 0;  ///< Status-endpoint hits.
    std::uint64_t streaming = 0;      ///< Tenants currently streaming.
};

class Daemon {
public:
    explicit Daemon(DaemonOptions options) : options_(std::move(options)) {}
    ~Daemon() { stop(); }
    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /// Bind the listen address and start the accept thread.
    [[nodiscard]] bool start(std::string* error);

    /// Signal shutdown, close the listener, join every thread.  Streaming
    /// tenants finalize as Aborted ("daemon stopped").  Idempotent.
    void stop();

    /// Resolved listen address (TCP port 0 becomes the kernel's choice).
    [[nodiscard]] const Address& address() const noexcept {
        return listener_.bound();
    }

    [[nodiscard]] std::vector<TenantSummary> tenants() const;
    [[nodiscard]] std::optional<std::string> tenant_report(
        std::uint32_t id) const;
    /// The tenant's structured advice document as JSON
    /// (`GET /tenants/<id>/advice`); nullopt for unknown ids.
    [[nodiscard]] std::optional<std::string> tenant_advice(
        std::uint32_t id) const;
    /// The tenant's live span timeline as Chrome trace-event JSON
    /// (`GET /tenants/<id>/trace`): the global recorder's snapshot
    /// filtered to the tenant's root-span tree.  Empty trace when span
    /// tracing is off; nullopt for unknown ids.
    [[nodiscard]] std::optional<std::string> tenant_trace(
        std::uint32_t id) const;
    [[nodiscard]] DaemonStats stats() const;

private:
    struct Connection {
        std::thread thread;
        std::shared_ptr<std::atomic<bool>> done;
    };

    void accept_loop();
    void handle_connection(Socket sock);
    void handle_stream(Socket& sock);
    void handle_http(Socket& sock);
    void write_http(Socket& sock, int status, const std::string& body,
                    const char* content_type) const;
    [[nodiscard]] std::string render_tenants_json() const;
    [[nodiscard]] std::string render_metrics() const;

    /// Admit a tenant if a slot is free; nullptr when at max_tenants.
    std::shared_ptr<TenantSession> admit_tenant(std::string name);

    /// Drop the oldest finished/aborted sessions past max_finished_tenants,
    /// so connection churn cannot grow tenants_ without bound.  Called
    /// after every finalization; streaming tenants are never evicted.
    void evict_finished();

    /// Join finished connection threads (called from the accept loop).
    void reap_connections();

    DaemonOptions options_;
    Listener listener_;
    std::atomic<bool> stop_{false};
    std::thread accept_thread_;

    mutable std::mutex conns_mutex_;
    std::vector<Connection> conns_;

    mutable std::mutex tenants_mutex_;
    std::map<std::uint32_t, std::shared_ptr<TenantSession>> tenants_;
    std::uint32_t next_tenant_id_ = 1;

    std::atomic<std::uint64_t> connections_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> malformed_{0};
    std::atomic<std::uint64_t> http_requests_{0};
};

}  // namespace dsspy::serve
