// Minimal POSIX socket layer for the serve daemon (DESIGN.md §12).
//
// Two transports, one address grammar:
//
//   unix:PATH            — unix-domain stream socket (the default; no
//                          network exposure, filesystem permissions apply)
//   tcp://host:port      — TCP, for pushing traces across machines
//                          (port 0 asks the kernel for a free port; the
//                          listener reports the resolved address)
//
// Every read loops over poll() with a short tick so it can observe a stop
// flag (daemon shutdown) and an idle timeout (hung clients must not pin a
// tenant slot forever); writes use MSG_NOSIGNAL so a vanished peer surfaces
// as an error return instead of SIGPIPE.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace dsspy::serve {

/// A parsed listen/connect address.
struct Address {
    enum class Kind { Unix, Tcp };
    Kind kind = Kind::Unix;
    std::string path;  ///< Unix: socket file path.
    std::string host;  ///< TCP: numeric address or name.
    unsigned port = 0; ///< TCP: 0 = kernel-chosen (listen only).

    /// Canonical spec string ("unix:PATH" / "tcp://host:port").
    [[nodiscard]] std::string to_string() const;
};

/// Parse "unix:PATH" or "tcp://host:port".  On failure returns nullopt and
/// fills *error with a usage diagnostic.
[[nodiscard]] std::optional<Address> parse_address(std::string_view spec,
                                                   std::string* error);

/// Why a read returned without delivering all requested bytes.
enum class IoStatus {
    Ok,       ///< All requested bytes delivered.
    Eof,      ///< Peer closed before (or at) the requested count.
    Error,    ///< Socket error (errno-level).
    Stopped,  ///< The stop flag was raised mid-read.
    Timeout,  ///< No bytes arrived within the idle timeout.
};

/// RAII wrapper over one connected stream socket.
class Socket {
public:
    Socket() = default;
    explicit Socket(int fd) noexcept : fd_(fd) {}
    ~Socket() { close(); }

    Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket& operator=(Socket&& other) noexcept;
    Socket(const Socket&) = delete;
    Socket& operator=(const Socket&) = delete;

    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
    [[nodiscard]] int fd() const noexcept { return fd_; }
    void close() noexcept;

    /// Read exactly `n` bytes into `buf`.  Polls in short ticks so it can
    /// react to `stop` (optional) and to `idle_timeout_ms` (<= 0 = no
    /// timeout; the timer resets whenever bytes arrive).
    [[nodiscard]] IoStatus read_exact(void* buf, std::size_t n,
                                      const std::atomic<bool>* stop = nullptr,
                                      int idle_timeout_ms = -1) const;

    /// Read at most `n` bytes (returns after the first successful recv).
    /// `*got` receives the byte count (0 on EOF/stop/timeout/error).
    [[nodiscard]] IoStatus read_some(void* buf, std::size_t n,
                                     std::size_t* got,
                                     const std::atomic<bool>* stop = nullptr,
                                     int idle_timeout_ms = -1) const;

    /// Write all of `data`; false on any error (SIGPIPE suppressed).
    [[nodiscard]] bool write_all(std::string_view data) const;

private:
    int fd_ = -1;
};

/// Blocking client connect; invalid socket + *error on failure.
[[nodiscard]] Socket connect_to(const Address& address, std::string* error);

/// Listening socket bound to an Address.
class Listener {
public:
    Listener() = default;
    ~Listener() { close(); }
    Listener(const Listener&) = delete;
    Listener& operator=(const Listener&) = delete;

    /// Bind + listen.  A stale unix socket file (no daemon answering) is
    /// replaced; a live one fails with "address in use".  After success,
    /// bound() reports the resolved address (TCP port 0 becomes real).
    [[nodiscard]] bool listen_on(const Address& address, std::string* error);

    [[nodiscard]] const Address& bound() const noexcept { return bound_; }
    [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

    /// Accept one connection, polling in short ticks until `stop` is
    /// raised or the listener is closed; invalid Socket in those cases.
    [[nodiscard]] Socket accept_next(const std::atomic<bool>& stop) const;

    /// Close the listening fd (wakes accept_next); unlinks the unix path
    /// only when this listener bound it — a failed listen_on never deletes
    /// another daemon's live socket file.
    void close() noexcept;

private:
    int fd_ = -1;
    bool owns_path_ = false;  ///< We bound bound_.path (unix only).
    Address bound_;
};

}  // namespace dsspy::serve
