#include "serve/wire.hpp"

namespace dsspy::serve::wire {

void put_u16(std::string& out, std::uint16_t v) {
    out += static_cast<char>(v & 0xff);
    out += static_cast<char>((v >> 8) & 0xff);
}

void put_u32(std::string& out, std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8)
        out += static_cast<char>((v >> shift) & 0xff);
}

std::uint16_t get_u16(const unsigned char* p) {
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) {
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::string encode_hello(std::string_view tenant_name) {
    if (tenant_name.size() > kMaxTenantNameBytes)
        tenant_name = tenant_name.substr(0, kMaxTenantNameBytes);
    std::string out(kHelloMagic);
    put_u16(out, kVersion);
    put_u16(out, 0);  // flags, reserved
    put_u16(out, static_cast<std::uint16_t>(tenant_name.size()));
    out.append(tenant_name);
    return out;
}

std::string encode_accept(std::uint32_t tenant_id) {
    std::string out(kAcceptMagic);
    put_u16(out, kVersion);
    put_u32(out, tenant_id);
    return out;
}

std::string encode_reject(std::string_view reason) {
    if (reason.size() > 0xffff) reason = reason.substr(0, 0xffff);
    std::string out(kRejectMagic);
    put_u16(out, static_cast<std::uint16_t>(reason.size()));
    out.append(reason);
    return out;
}

std::string encode_frame_header(char type, std::uint32_t len) {
    std::string out(1, type);
    put_u32(out, len);
    return out;
}

}  // namespace dsspy::serve::wire
