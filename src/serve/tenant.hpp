// One tenant of the serve daemon (DESIGN.md §12): a single client's
// trace stream bound to its own IncrementalAnalyzer.
//
// A TenantSession is the daemon-side TraceSink for one DSRV connection.
// Memory stays bounded the same way `dsspy analyze --engine=incremental`
// is bounded: the analyzer folds every event into O(instances x threads)
// state, the instance table is capped (`max_instances`), and trace bytes
// are never retained past the frame that carried them.
//
// Crash recovery: a connection that dies mid-stream (EOF, timeout, stop)
// calls abort(), which finalizes exactly like finish() — the report over
// everything folded so far is still byte-identical to offline analysis of
// the received prefix — but records the state as Aborted plus a reason.
// Events whose instance was never declared are counted as orphans
// (mirroring the capture layer's store.orphan_events semantics), so a
// truncated stream is visible in the numbers, not silently absorbed.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/detector_config.hpp"
#include "core/incremental.hpp"
#include "obs/trace.hpp"
#include "runtime/instance_registry.hpp"
#include "runtime/trace_io.hpp"

namespace dsspy::serve {

/// Lifecycle of a tenant's stream.
enum class TenantState {
    Streaming,  ///< Connection open, events still folding.
    Finished,   ///< Client sent end-of-stream; report is final.
    Aborted,    ///< Connection died or was rejected mid-stream; the
                ///< report covers the received prefix.
};

[[nodiscard]] const char* tenant_state_name(TenantState state);

/// Point-in-time view of a tenant for `GET /tenants` and metrics.
struct TenantSummary {
    std::uint32_t id = 0;
    std::string name;
    TenantState state = TenantState::Streaming;
    std::uint64_t bytes = 0;       ///< Trace payload bytes received.
    std::uint64_t frames = 0;      ///< 'T' frames received.
    std::uint64_t events = 0;      ///< Events folded so far.
    std::uint64_t instances = 0;   ///< Instances declared so far.
    std::uint64_t orphan_events = 0;  ///< Events on undeclared instances
                                      ///< (meaningful once finalized).
    std::uint64_t flagged = 0;     ///< Flagged instances (once finalized).
    std::string error;             ///< Abort reason, empty otherwise.
};

/// Tenant instance-table cap exceeded; the daemon aborts only this
/// tenant's connection, never the process.
class TenantLimitError final : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

class TenantSession final : public runtime::TraceSink {
public:
    TenantSession(std::uint32_t id, std::string name,
                  core::DetectorConfig config, std::size_t max_instances);

    /// Ends the session's root span if the tenant was never finalized.
    ~TenantSession() override;

    // TraceSink: called by runtime::read_trace_stream on the connection
    // thread.  on_instance throws TenantLimitError past `max_instances`.
    void on_instance(const runtime::InstanceInfo& info) override;
    void on_events(std::span<const runtime::AccessEvent> events) override;

    /// Account one received 'T' frame of `bytes` payload bytes.
    void add_frame(std::uint64_t bytes);

    /// Clean end of stream: finalize the report.
    void finish();

    /// Connection died (or the stream was malformed): finalize what was
    /// received and record the reason.
    void abort(std::string reason);

    [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

    [[nodiscard]] TenantSummary summary() const;

    /// Table V use-case report.  Final (and byte-identical to offline
    /// `dsspy analyze --report` of the same bytes) once finalized; a live
    /// snapshot while still streaming.
    [[nodiscard]] std::string report_text() const;

    /// The structured advice document (JSON, advice_version 1).  Final
    /// (and byte-identical to offline `dsspy advise` of the same bytes)
    /// once finalized; a live snapshot while still streaming.
    [[nodiscard]] std::string advice_json() const;

    /// One-line result for the DSRV 'R' frame and the push client.
    [[nodiscard]] std::string summary_line() const;

    /// The session's root-span context: frame/fold spans parent here, and
    /// `GET /tenants/<id>/trace` selects the tenant's tree by its root id.
    /// Invalid when tracing was off at construction.
    [[nodiscard]] obs::TraceContext trace_context() const noexcept {
        return root_span_.ctx;
    }

private:
    /// Orphans = folded events minus events attributed to declared
    /// instances (the same subtraction ProfileStore does post-mortem).
    static std::uint64_t count_orphans(const core::StreamReport& report);
    void fill_report_fields(const core::StreamReport& report);

    const std::uint32_t id_;
    const std::string name_;
    const std::size_t max_instances_;
    core::IncrementalAnalyzer analyzer_;
    /// Root span covering the whole session, begun on the connection
    /// thread and ended wherever finalization happens (finish, abort, or
    /// daemon shutdown) — the manual begin/end pair exists exactly for
    /// spans whose ends change threads.
    obs::ManualSpan root_span_;

    mutable std::mutex mutex_;  ///< Guards everything below.
    std::vector<runtime::InstanceInfo> instances_;
    TenantState state_ = TenantState::Streaming;
    std::uint64_t bytes_ = 0;
    std::uint64_t frames_ = 0;
    std::uint64_t orphan_events_ = 0;
    std::uint64_t flagged_ = 0;
    std::string error_;
    std::string final_report_;  ///< Rendered at finalize time.
    std::string final_advice_;  ///< Advice JSON, rendered at finalize time.
};

}  // namespace dsspy::serve
