// DSRV/1 wire protocol: framed DST1/CSV trace streams over a stream
// socket (documented in docs/SERVE.md; layering in DESIGN.md §12).
//
// Connection lifetime:
//
//   client -> server   hello     "DSRV" ver:u16 flags:u16 nlen:u16 name
//   server -> client   accept    "DSOK" ver:u16 tenant_id:u32
//                  or  reject    "DSNO" rlen:u16 reason
//   client -> server   frames    type:u8 len:u32  payload[len]
//                                  'T'  trace bytes (len >= 1)
//                                  'E'  end of stream (len == 0)
//   server -> client   result    'R' len:u32 summary-line
//                  or  error     'X' len:u32 message
//
// All integers are little-endian.  The concatenation of every 'T' payload
// is ONE trace document in any format runtime::read_trace_stream accepts
// (CSV or DST1, auto-detected); frame boundaries are arbitrary and carry
// no meaning — the prefix-carry reader reassembles records across them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace dsspy::serve::wire {

inline constexpr std::string_view kHelloMagic = "DSRV";
inline constexpr std::string_view kAcceptMagic = "DSOK";
inline constexpr std::string_view kRejectMagic = "DSNO";
inline constexpr std::uint16_t kVersion = 1;

inline constexpr char kFrameTrace = 'T';
inline constexpr char kFrameEnd = 'E';
inline constexpr char kFrameResult = 'R';
inline constexpr char kFrameError = 'X';

inline constexpr std::size_t kMagicBytes = 4;
inline constexpr std::size_t kFrameHeaderBytes = 5;  ///< type:u8 + len:u32.
inline constexpr std::size_t kMaxTenantNameBytes = 255;

void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
[[nodiscard]] std::uint16_t get_u16(const unsigned char* p);
[[nodiscard]] std::uint32_t get_u32(const unsigned char* p);

/// Client hello.  Names longer than kMaxTenantNameBytes are truncated.
[[nodiscard]] std::string encode_hello(std::string_view tenant_name);

/// Server accept carrying the assigned tenant id.
[[nodiscard]] std::string encode_accept(std::uint32_t tenant_id);

/// Server rejection with a human-readable reason.
[[nodiscard]] std::string encode_reject(std::string_view reason);

/// Frame header for `type` with `len` payload bytes (payload sent
/// separately so trace chunks need no copy into the header buffer).
[[nodiscard]] std::string encode_frame_header(char type, std::uint32_t len);

}  // namespace dsspy::serve::wire
