// Per-instance analysis over event columns (DESIGN.md §11).
//
// The columnar twin of the AoS pipeline profile -> patterns -> stats: the
// same aggregates, patterns, and InstanceStats the event-struct path
// produces, computed from raw ColumnStore ranges with the vectorized
// kernels in detector_kernels.hpp.  Everything downstream (UseCaseEngine,
// reports) consumes the shared InstanceStats/RuntimeProfile types, so
// verdicts are bit-identical by construction; the differential suite in
// tests/test_column_analysis.cpp enforces it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/detector_config.hpp"
#include "core/instance_stats.hpp"
#include "core/patterns.hpp"
#include "core/profile.hpp"
#include "runtime/column_store.hpp"
#include "runtime/instance_registry.hpp"

namespace dsspy::core {

/// One instance's event rows as raw column pointers.  `types` is the
/// derived access-type column (kernels::derive_types over the op column),
/// indexed like the others; all pointers cover exactly `n` rows.
struct ColumnSlice {
    const std::uint64_t* time_ns = nullptr;
    const std::int64_t* positions = nullptr;
    const std::uint32_t* sizes = nullptr;
    const std::uint8_t* ops = nullptr;
    const std::uint8_t* types = nullptr;
    const std::uint16_t* threads = nullptr;
    std::size_t n = 0;
};

/// Slice one instance's range out of the store.  `types_base` indexes the
/// whole store like the other columns (row 0 = store row 0).
[[nodiscard]] ColumnSlice make_slice(const runtime::ColumnStore& store,
                                     runtime::ColumnRange range,
                                     const std::uint8_t* types_base);

/// Profile aggregates (counts, phases, max size, duration, thread count) —
/// the numbers the RuntimeProfile AoS constructor derives per event.
[[nodiscard]] ProfileAggregates aggregates_from_columns(const ColumnSlice& s);

/// The eight-pattern detector over columns.  Emits exactly the patterns
/// PatternDetector::detect finds on the equivalent event span, in the same
/// order: the per-thread PatternMachine still arbitrates run state, but
/// rows that provably extend the current run are consumed in bulk by the
/// vectorized streak scans instead of one step() call each.
[[nodiscard]] std::vector<Pattern> detect_patterns_columns(
    const ColumnSlice& s, const DetectorConfig& config);

/// InstanceStats from columns + detected patterns, field-for-field equal
/// to compute_instance_stats on the equivalent profile.  `agg` must come
/// from aggregates_from_columns over the same slice.
[[nodiscard]] InstanceStats instance_stats_from_columns(
    const runtime::InstanceInfo& info, const ColumnSlice& s,
    const ProfileAggregates& agg, const std::vector<Pattern>& patterns,
    const DetectorConfig& config);

}  // namespace dsspy::core
