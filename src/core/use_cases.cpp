#include "core/use_cases.hpp"

#include <algorithm>

#include "support/table.hpp"

namespace dsspy::core {

namespace {

using support::Table;

/// Linear data structures — the ones positional use cases apply to.
bool is_linear(runtime::DsKind kind) noexcept {
    switch (kind) {
        case runtime::DsKind::List:
        case runtime::DsKind::Array:
        case runtime::DsKind::Stack:
        case runtime::DsKind::Queue:
        case runtime::DsKind::LinkedList:
            return true;
        default:
            return false;
    }
}

/// End-of-structure traffic statistics for the Implement-Queue and
/// Stack-Implementation rules.
struct EndTraffic {
    std::size_t front_insert = 0;
    std::size_t back_insert = 0;
    std::size_t front_delete = 0;
    std::size_t back_delete = 0;
    std::size_t front_read = 0;
    std::size_t back_read = 0;

    [[nodiscard]] std::size_t inserts() const noexcept {
        return front_insert + back_insert;
    }
    [[nodiscard]] std::size_t deletes() const noexcept {
        return front_delete + back_delete;
    }
};

EndTraffic end_traffic(const RuntimeProfile& profile, std::size_t window) {
    EndTraffic t;
    const auto w = static_cast<std::int64_t>(window);
    for (const runtime::AccessEvent& ev : profile.events()) {
        if (ev.position < 0) continue;
        const auto size = static_cast<std::int64_t>(ev.size);
        const AccessType type = derive_access_type(ev.op);
        switch (type) {
            case AccessType::Insert:
                // size recorded after the insert; back == landing at size-1.
                if (ev.position >= size - w) ++t.back_insert;
                else if (ev.position < w) ++t.front_insert;
                break;
            case AccessType::Delete:
                // size recorded after the removal; back == position >= size.
                if (ev.position >= size - w + 1) ++t.back_delete;
                else if (ev.position < w) ++t.front_delete;
                break;
            case AccessType::Read:
            case AccessType::Write:
                if (ev.position >= size - w) ++t.back_read;
                else if (ev.position < w) ++t.front_read;
                break;
            default:
                break;
        }
    }
    return t;
}

/// Long "insertion" patterns: Insert-Front/Back for dynamic structures;
/// for fixed-size arrays, end-anchored Write-Forward/Backward streaks play
/// the insertion role (sequential initialization of the buffer).
bool counts_as_insertion_pattern(const Pattern& p, runtime::DsKind kind) {
    if (is_insert_pattern(p.kind)) return true;
    if (kind != runtime::DsKind::Array) return false;
    if (p.kind == PatternKind::WriteForward && p.start_pos == 0) return true;
    if (p.kind == PatternKind::WriteBackward &&
        p.end_pos == 0)  // descending streak that reaches the front
        return true;
    return false;
}

std::size_t count_resizes(const RuntimeProfile& profile) {
    std::size_t n = 0;
    for (const runtime::AccessEvent& ev : profile.events())
        if (ev.op == runtime::OpKind::Resize) ++n;
    return n;
}

/// Read-like share with ForAll traversals weighted by the number of
/// elements they read: one for_each over n elements is n reads, not one
/// access, for the purposes of the Frequent-Long-Read 50%-reads rule.
double weighted_read_share(const RuntimeProfile& profile) {
    double reads = 0.0;
    double total = 0.0;
    for (const runtime::AccessEvent& ev : profile.events()) {
        const AccessType type = derive_access_type(ev.op);
        const double weight =
            type == AccessType::ForAll && ev.size > 0
                ? static_cast<double>(ev.size)
                : 1.0;
        total += weight;
        if (is_read_like(type)) reads += weight;
    }
    return total > 0.0 ? reads / total : 0.0;
}

}  // namespace

std::string_view recommended_action(UseCaseKind kind) noexcept {
    switch (kind) {
        case UseCaseKind::LongInsert:
            return "Parallelize the insert operation.";
        case UseCaseKind::ImplementQueue:
            return "Employ a parallel queue as data container.";
        case UseCaseKind::SortAfterInsert:
            return "The insertion order is not important: parallelize both "
                   "the insert and the search phases.";
        case UseCaseKind::FrequentSearch:
            return "Either employ a parallel data structure that is "
                   "optimized for searches or parallelize the search "
                   "operation by splitting the list into smaller chunks "
                   "searched in parallel.";
        case UseCaseKind::FrequentLongRead:
            return "Check the origin of this access. If it contains a "
                   "program loop that looks for a specific element, "
                   "transform the operation into a parallel search.";
        case UseCaseKind::InsertDeleteFront:
            return "Insert/delete traffic causes high copy overhead on a "
                   "fixed-size array: a dynamic data structure like a list "
                   "might be better suited.";
        case UseCaseKind::StackImplementation:
            return "Insert and delete operations always access a common "
                   "end: think about using a stack implementation.";
        case UseCaseKind::WriteWithoutRead:
            return "The results of the trailing write accesses are never "
                   "read; check whether these writes are necessary or can "
                   "be left to deallocation/garbage collection.";
        case UseCaseKind::Count: break;
    }
    return "?";
}

std::vector<UseCase> UseCaseEngine::classify(
    const RuntimeProfile& profile,
    const std::vector<Pattern>& patterns) const {
    std::vector<UseCase> out;
    const runtime::InstanceInfo& info = profile.info();
    const std::size_t total = profile.total_events();
    if (total == 0) return out;

    // Confidence: ~0.5 when the evidence sits exactly at the rule's
    // threshold, saturating at 1.0 from twice the threshold upward.
    auto confidence_of = [](double metric, double threshold) {
        if (threshold <= 0.0) return 1.0;
        return std::clamp(metric / (2.0 * threshold), 0.0, 1.0);
    };

    auto emit = [&out, &info, &profile](UseCaseKind kind,
                                        double confidence,
                                        std::string reason) {
        UseCase uc;
        uc.kind = kind;
        uc.instance = info;
        uc.confidence = confidence;
        uc.reason = std::move(reason);
        uc.recommendation = std::string(recommended_action(kind));
        uc.parallel_potential = has_parallel_potential(kind);
        // DSspy captures thread ids so it can support multithreaded code:
        // an instance that is already accessed concurrently needs a
        // synchronization review before further parallelization.
        if (profile.thread_count() > 1 && uc.parallel_potential) {
            uc.recommendation +=
                " Note: this instance is already accessed by " +
                std::to_string(profile.thread_count()) +
                " threads; verify synchronization before transforming.";
        }
        out.push_back(std::move(uc));
    };

    const bool linear = is_linear(info.kind);

    // ---- Long-Insert evidence (shared with Sort-After-Insert) -----------
    std::size_t long_insert_events = 0;
    std::uint64_t long_insert_ns = 0;
    const Pattern* longest_insert = nullptr;
    const auto all_events = profile.events();
    for (const Pattern& p : patterns) {
        if (!counts_as_insertion_pattern(p, info.kind)) continue;
        if (p.length >= config_.li_min_phase_events) {
            long_insert_events += p.length;
            if (!p.synthetic)
                long_insert_ns += all_events[p.last].time_ns -
                                  all_events[p.first].time_ns;
            if (longest_insert == nullptr ||
                p.length > longest_insert->length)
                longest_insert = &p;
        }
    }
    // "Insertion phases >30% of runtime": measured in events (default) or
    // wall-clock time between each qualifying phase's first/last event.
    const double insert_share =
        config_.share_basis == ShareBasis::Time
            ? (profile.duration_ns() > 0
                   ? static_cast<double>(long_insert_ns) /
                         static_cast<double>(profile.duration_ns())
                   : 0.0)
            : static_cast<double>(long_insert_events) /
                  static_cast<double>(total);
    const bool li_conditions = linear && longest_insert != nullptr &&
                               insert_share > config_.li_min_insert_share;

    // ---- Sort-After-Insert: a Sort directly after a long insertion ------
    bool sai_fired = false;
    if (li_conditions) {
        const auto events = profile.events();
        for (std::uint32_t i = 0; i < events.size(); ++i) {
            if (derive_access_type(events[i].op) != AccessType::Sort)
                continue;
            for (const Pattern& p : patterns) {
                if (!counts_as_insertion_pattern(p, info.kind)) continue;
                if (p.length < config_.sai_min_phase_events) continue;
                if (p.last < i && i - p.last <= config_.sai_max_gap_events) {
                    emit(UseCaseKind::SortAfterInsert,
                         confidence_of(insert_share,
                                       config_.sai_min_insert_share),
                         "Sort follows an insertion phase of " +
                             std::to_string(p.length) + " events (" +
                             Table::pct(insert_share) +
                             " of the profile is long insertions); the "
                             "insertion order is obviously not important.");
                    sai_fired = true;
                    break;
                }
            }
            if (sai_fired) break;
        }
    }

    // ---- Long-Insert (suppressed when subsumed by Sort-After-Insert) ----
    if (li_conditions && !sai_fired) {
        emit(UseCaseKind::LongInsert,
             confidence_of(insert_share, config_.li_min_insert_share),
             "Insertion phases cover " + Table::pct(insert_share) +
                 " of the profile (threshold " +
                 Table::pct(config_.li_min_insert_share) +
                 "); longest consecutive insertion streak: " +
                 std::to_string(longest_insert->length) + " events from the " +
                 (longest_insert->kind == PatternKind::InsertFront
                      ? "front."
                      : "end."));
    }

    // ---- Implement-Queue: two-end traffic on a list ----------------------
    if (info.kind == runtime::DsKind::List &&
        total >= config_.iq_min_events) {
        const EndTraffic t = end_traffic(profile, config_.iq_end_window);
        // A queue inserts at one end and consumes (reads/deletes) at the
        // other.  Evaluate both orientations.
        const std::size_t fifo1 =
            t.back_insert + t.front_delete + t.front_read;  // enqueue back
        const std::size_t fifo2 =
            t.front_insert + t.back_delete + t.back_read;   // enqueue front
        const bool orientation1 = fifo1 >= fifo2;
        const std::size_t insert_side =
            orientation1 ? t.back_insert : t.front_insert;
        const std::size_t consume_side =
            orientation1 ? t.front_delete + t.front_read
                         : t.back_delete + t.back_read;
        const double two_end_share =
            static_cast<double>(insert_side + consume_side) /
            static_cast<double>(total);
        const double balance =
            insert_side + consume_side == 0
                ? 0.0
                : static_cast<double>(std::min(insert_side, consume_side)) /
                      static_cast<double>(insert_side + consume_side);
        if (two_end_share > config_.iq_min_two_end_share &&
            balance >= config_.iq_min_per_end_share && insert_side > 0 &&
            consume_side > 0) {
            emit(UseCaseKind::ImplementQueue,
                 confidence_of(two_end_share,
                               config_.iq_min_two_end_share),
                 Table::pct(two_end_share) +
                     " of all accesses affect two different ends of the "
                     "list (" +
                     std::to_string(insert_side) + " inserts at the " +
                     (orientation1 ? "back" : "front") + ", " +
                     std::to_string(consume_side) +
                     " reads/deletes at the " +
                     (orientation1 ? "front" : "back") +
                     "): the list is used like a queue.");
        }
    }

    // ---- Frequent-Search --------------------------------------------------
    const std::size_t search_ops = profile.count(AccessType::Search);
    if (linear && search_ops > config_.fs_min_search_ops) {
        std::size_t read_pattern_events = 0;
        for (const Pattern& p : patterns) {
            if (is_read_pattern(p.kind) && !p.synthetic)
                read_pattern_events += p.length;
        }
        const double read_pattern_share =
            static_cast<double>(read_pattern_events) /
            static_cast<double>(total);
        if (read_pattern_share >= config_.fs_min_read_pattern_share) {
            emit(UseCaseKind::FrequentSearch,
                 confidence_of(static_cast<double>(search_ops),
                               static_cast<double>(
                                   config_.fs_min_search_ops)),
                 std::to_string(search_ops) +
                     " search operations (threshold " +
                     std::to_string(config_.fs_min_search_ops) + "); " +
                     Table::pct(read_pattern_share) +
                     " of all access events are Read-Forward/Read-Backward "
                     "patterns.");
        }
    }

    // ---- Frequent-Long-Read -------------------------------------------------
    if (linear) {
        std::size_t long_read_patterns = 0;
        for (const Pattern& p : patterns) {
            if (is_read_pattern(p.kind) &&
                p.coverage >= config_.flr_min_coverage)
                ++long_read_patterns;
        }
        const double read_share = weighted_read_share(profile);
        if (long_read_patterns > config_.flr_min_read_patterns &&
            read_share >= config_.flr_min_read_share) {
            emit(UseCaseKind::FrequentLongRead,
                 confidence_of(static_cast<double>(long_read_patterns),
                               static_cast<double>(
                                   config_.flr_min_read_patterns)),
                 std::to_string(long_read_patterns) +
                     " sequential read patterns each covering at least " +
                     Table::pct(config_.flr_min_coverage) +
                     " of the structure; " + Table::pct(read_share) +
                     " of all access types are Read or Search — this looks "
                     "like a disguised search operation.");
        }
    }

    // ---- Insert/Delete-Front (sequential) --------------------------------
    if (info.kind == runtime::DsKind::Array) {
        const std::size_t resizes = count_resizes(profile);
        if (resizes >= config_.idf_min_resizes) {
            emit(UseCaseKind::InsertDeleteFront,
                 confidence_of(static_cast<double>(resizes),
                               static_cast<double>(
                                   config_.idf_min_resizes)),
                 std::to_string(resizes) +
                     " array reallocations: every resize copies all "
                     "elements.");
        }
    } else if (info.kind == runtime::DsKind::List) {
        const EndTraffic t = end_traffic(profile, 1);
        if (t.front_insert >= config_.idf_min_front_ops &&
            t.front_delete >= config_.idf_min_front_ops) {
            emit(UseCaseKind::InsertDeleteFront,
                 confidence_of(
                     static_cast<double>(
                         std::min(t.front_insert, t.front_delete)),
                     static_cast<double>(config_.idf_min_front_ops)),
                 std::to_string(t.front_insert) + " front inserts and " +
                     std::to_string(t.front_delete) +
                     " front deletes each shift the whole tail.");
        }
    }

    // ---- Stack-Implementation (sequential) ---------------------------------
    if (info.kind == runtime::DsKind::List) {
        const EndTraffic t = end_traffic(profile, 1);
        const std::size_t muts = t.inserts() + t.deletes();
        // Count *all* insert/delete events to catch mid-structure traffic
        // that would disqualify the stack pattern.
        const std::size_t all_muts = profile.count(AccessType::Insert) +
                                     profile.count(AccessType::Delete);
        if (all_muts >= config_.si_min_ops && muts > 0 &&
            profile.count(AccessType::Insert) > 0 &&
            profile.count(AccessType::Delete) > 0) {
            const double back_share =
                static_cast<double>(t.back_insert + t.back_delete) /
                static_cast<double>(all_muts);
            const double front_share =
                static_cast<double>(t.front_insert + t.front_delete) /
                static_cast<double>(all_muts);
            if (back_share >= config_.si_min_common_end_share ||
                front_share >= config_.si_min_common_end_share) {
                emit(UseCaseKind::StackImplementation,
                     confidence_of(std::max(back_share, front_share),
                                   config_.si_min_common_end_share),
                     Table::pct(std::max(back_share, front_share)) +
                         " of all insert/delete operations access the " +
                         (back_share >= front_share ? "back" : "front") +
                         " of the list: this is a stack implementation.");
            }
        }
    }

    // ---- Write-Without-Read (sequential) -------------------------------------
    if (!profile.phases().empty()) {
        const Phase& tail = profile.phases().back();
        if (tail.type == AccessType::Write &&
            tail.length() >= config_.wwr_min_events) {
            const runtime::AccessEvent& last_ev =
                profile.events()[tail.last];
            const double denom =
                last_ev.size > 0 ? static_cast<double>(last_ev.size) : 1.0;
            const double coverage =
                std::min(1.0, static_cast<double>(tail.length()) / denom);
            if (coverage >= config_.wwr_min_coverage) {
                emit(UseCaseKind::WriteWithoutRead,
                     confidence_of(coverage, config_.wwr_min_coverage),
                     "The profile ends with a write phase of " +
                         std::to_string(tail.length()) +
                         " events covering " + Table::pct(coverage) +
                         " of the structure whose results are never read.");
            }
        }
    }

    return out;
}

}  // namespace dsspy::core
