#include "core/use_cases.hpp"

#include <algorithm>

namespace dsspy::core {

namespace {

/// Linear data structures — the ones positional use cases apply to.
bool is_linear(runtime::DsKind kind) noexcept {
    switch (kind) {
        case runtime::DsKind::List:
        case runtime::DsKind::Array:
        case runtime::DsKind::Stack:
        case runtime::DsKind::Queue:
        case runtime::DsKind::LinkedList:
            return true;
        default:
            return false;
    }
}

}  // namespace

std::string_view recommended_action(UseCaseKind kind) noexcept {
    return advice_action_text(advice_action_for(kind));
}

InstanceStats compute_instance_stats(const RuntimeProfile& profile,
                                     const std::vector<Pattern>& patterns,
                                     const DetectorConfig& config) {
    InstanceStats s;
    s.info = profile.info();
    s.total = profile.total_events();
    for (std::size_t t = 0; t < kAccessTypeCount; ++t)
        s.counts[t] = profile.count(static_cast<AccessType>(t));
    s.thread_count = profile.thread_count();
    s.duration_ns = profile.duration_ns();
    s.max_size = profile.max_size();

    const auto events = profile.events();
    for (const runtime::AccessEvent& ev : events) {
        accumulate_end_traffic(s.iq_traffic, ev, config.iq_end_window);
        accumulate_end_traffic(s.edge_traffic, ev, 1);
        if (ev.op == runtime::OpKind::Resize) ++s.resizes;
        // ForAll traversals weigh as many reads as elements they touch:
        // one for_each over n elements is n reads for the 50%-reads rule.
        const AccessType type = derive_access_type(ev.op);
        const double weight = type == AccessType::ForAll && ev.size > 0
                                  ? static_cast<double>(ev.size)
                                  : 1.0;
        s.weighted_total += weight;
        if (is_read_like(type)) s.weighted_reads += weight;
    }

    for (const Pattern& p : patterns) {
        ++s.pattern_counts[static_cast<std::size_t>(p.kind)];
        if (is_read_pattern(p.kind)) {
            if (!p.synthetic) s.read_pattern_events += p.length;
            if (p.coverage >= config.flr_min_coverage) ++s.long_read_patterns;
        }
        if (!counts_as_insertion_pattern(p, s.info.kind)) continue;
        if (p.length >= config.li_min_phase_events) {
            s.long_insert_events += p.length;
            if (!p.synthetic)
                s.long_insert_ns +=
                    events[p.last].time_ns - events[p.first].time_ns;
            // Longest qualifying phase; first-seen wins ties (patterns are
            // ordered by first event index).
            if (!s.has_longest_insert ||
                p.length > s.longest_insert_length) {
                s.has_longest_insert = true;
                s.longest_insert_length = p.length;
                s.longest_insert_front = p.kind == PatternKind::InsertFront;
            }
        }
    }

    // Sort-After-Insert: the earliest Sort trailing a qualifying insertion
    // phase within the gap window; among that Sort's phases, the earliest.
    for (std::uint32_t i = 0; i < events.size() && !s.sai_match; ++i) {
        if (derive_access_type(events[i].op) != AccessType::Sort) continue;
        for (const Pattern& p : patterns) {
            if (!counts_as_insertion_pattern(p, s.info.kind)) continue;
            if (p.length < config.sai_min_phase_events) continue;
            if (p.last < i && i - p.last <= config.sai_max_gap_events) {
                s.sai_match = true;
                s.sai_phase_length = p.length;
                break;
            }
        }
    }

    if (!profile.phases().empty()) {
        const Phase& tail = profile.phases().back();
        s.tail_type = tail.type;
        s.tail_length = tail.length();
        s.tail_last_size = events[tail.last].size;
    }
    return s;
}

std::vector<UseCase> UseCaseEngine::classify(
    const RuntimeProfile& profile,
    const std::vector<Pattern>& patterns) const {
    return classify(compute_instance_stats(profile, patterns, config_));
}

std::vector<UseCase> UseCaseEngine::classify(const InstanceStats& s) const {
    std::vector<UseCase> out;
    const runtime::InstanceInfo& info = s.info;
    const std::size_t total = s.total;
    if (total == 0) return out;

    // Confidence: ~0.5 when the evidence sits exactly at the rule's
    // threshold, saturating at 1.0 from twice the threshold upward.
    auto confidence_of = [](double metric, double threshold) {
        if (threshold <= 0.0) return 1.0;
        return std::clamp(metric / (2.0 * threshold), 0.0, 1.0);
    };

    auto emit = [&out, &info, &s](UseCaseKind kind, double confidence,
                                  AdviceEvidence evidence) {
        UseCase uc;
        uc.kind = kind;
        uc.instance = info;
        uc.advice.action = advice_action_for(kind);
        uc.advice.confidence = confidence;
        evidence.thread_count = s.thread_count;
        uc.advice.evidence = evidence;
        out.push_back(std::move(uc));
    };

    const bool linear = is_linear(info.kind);

    // ---- Long-Insert evidence (shared with Sort-After-Insert) -----------
    // "Insertion phases >30% of runtime": measured in events (default) or
    // wall-clock time between each qualifying phase's first/last event.
    const double insert_share =
        config_.share_basis == ShareBasis::Time
            ? (s.duration_ns > 0
                   ? static_cast<double>(s.long_insert_ns) /
                         static_cast<double>(s.duration_ns)
                   : 0.0)
            : static_cast<double>(s.long_insert_events) /
                  static_cast<double>(total);
    const bool li_conditions = linear && s.has_longest_insert &&
                               insert_share > config_.li_min_insert_share;

    // ---- Sort-After-Insert: a Sort directly after a long insertion ------
    bool sai_fired = false;
    if (li_conditions && s.sai_match) {
        AdviceEvidence e;
        e.share = insert_share;
        e.share_threshold = config_.sai_min_insert_share;
        e.phase_length = s.sai_phase_length;
        emit(UseCaseKind::SortAfterInsert,
             confidence_of(insert_share, config_.sai_min_insert_share), e);
        sai_fired = true;
    }

    // ---- Long-Insert (suppressed when subsumed by Sort-After-Insert) ----
    if (li_conditions && !sai_fired) {
        AdviceEvidence e;
        e.share = insert_share;
        e.share_threshold = config_.li_min_insert_share;
        e.phase_length = s.longest_insert_length;
        e.at_front = s.longest_insert_front;
        emit(UseCaseKind::LongInsert,
             confidence_of(insert_share, config_.li_min_insert_share), e);
    }

    // ---- Implement-Queue: two-end traffic on a list ----------------------
    if (info.kind == runtime::DsKind::List &&
        total >= config_.iq_min_events) {
        const EndTraffic& t = s.iq_traffic;
        // A queue inserts at one end and consumes (reads/deletes) at the
        // other.  Evaluate both orientations.
        const std::size_t fifo1 =
            t.back_insert + t.front_delete + t.front_read;  // enqueue back
        const std::size_t fifo2 =
            t.front_insert + t.back_delete + t.back_read;   // enqueue front
        const bool orientation1 = fifo1 >= fifo2;
        const std::size_t insert_side =
            orientation1 ? t.back_insert : t.front_insert;
        const std::size_t consume_side =
            orientation1 ? t.front_delete + t.front_read
                         : t.back_delete + t.back_read;
        const double two_end_share =
            static_cast<double>(insert_side + consume_side) /
            static_cast<double>(total);
        const double balance =
            insert_side + consume_side == 0
                ? 0.0
                : static_cast<double>(std::min(insert_side, consume_side)) /
                      static_cast<double>(insert_side + consume_side);
        if (two_end_share > config_.iq_min_two_end_share &&
            balance >= config_.iq_min_per_end_share && insert_side > 0 &&
            consume_side > 0) {
            AdviceEvidence e;
            e.share = two_end_share;
            e.share_threshold = config_.iq_min_two_end_share;
            e.ops = insert_side;
            e.aux_ops = consume_side;
            e.at_front = !orientation1;
            emit(UseCaseKind::ImplementQueue,
                 confidence_of(two_end_share,
                               config_.iq_min_two_end_share),
                 e);
        }
    }

    // ---- Frequent-Search --------------------------------------------------
    const std::size_t search_ops =
        s.counts[static_cast<std::size_t>(AccessType::Search)];
    if (linear && search_ops > config_.fs_min_search_ops) {
        const double read_pattern_share =
            static_cast<double>(s.read_pattern_events) /
            static_cast<double>(total);
        if (read_pattern_share >= config_.fs_min_read_pattern_share) {
            AdviceEvidence e;
            e.share = read_pattern_share;
            e.share_threshold = config_.fs_min_read_pattern_share;
            e.ops = search_ops;
            e.ops_threshold = config_.fs_min_search_ops;
            emit(UseCaseKind::FrequentSearch,
                 confidence_of(static_cast<double>(search_ops),
                               static_cast<double>(
                                   config_.fs_min_search_ops)),
                 e);
        }
    }

    // ---- Frequent-Long-Read -------------------------------------------------
    if (linear) {
        const double read_share =
            s.weighted_total > 0.0 ? s.weighted_reads / s.weighted_total
                                   : 0.0;
        if (s.long_read_patterns > config_.flr_min_read_patterns &&
            read_share >= config_.flr_min_read_share) {
            AdviceEvidence e;
            e.share = read_share;
            e.share_threshold = config_.flr_min_coverage;
            e.ops = s.long_read_patterns;
            e.ops_threshold = config_.flr_min_read_patterns;
            emit(UseCaseKind::FrequentLongRead,
                 confidence_of(static_cast<double>(s.long_read_patterns),
                               static_cast<double>(
                                   config_.flr_min_read_patterns)),
                 e);
        }
    }

    // ---- Insert/Delete-Front (sequential) --------------------------------
    if (info.kind == runtime::DsKind::Array) {
        if (s.resizes >= config_.idf_min_resizes) {
            AdviceEvidence e;
            e.ops = s.resizes;
            e.ops_threshold = config_.idf_min_resizes;
            emit(UseCaseKind::InsertDeleteFront,
                 confidence_of(static_cast<double>(s.resizes),
                               static_cast<double>(
                                   config_.idf_min_resizes)),
                 e);
        }
    } else if (info.kind == runtime::DsKind::List) {
        const EndTraffic& t = s.edge_traffic;
        if (t.front_insert >= config_.idf_min_front_ops &&
            t.front_delete >= config_.idf_min_front_ops) {
            AdviceEvidence e;
            e.ops = t.front_insert;
            e.aux_ops = t.front_delete;
            e.ops_threshold = config_.idf_min_front_ops;
            e.at_front = true;
            emit(UseCaseKind::InsertDeleteFront,
                 confidence_of(
                     static_cast<double>(
                         std::min(t.front_insert, t.front_delete)),
                     static_cast<double>(config_.idf_min_front_ops)),
                 e);
        }
    }

    // ---- Stack-Implementation (sequential) ---------------------------------
    if (info.kind == runtime::DsKind::List) {
        const EndTraffic& t = s.edge_traffic;
        const std::size_t muts = t.inserts() + t.deletes();
        // Count *all* insert/delete events to catch mid-structure traffic
        // that would disqualify the stack pattern.
        const std::size_t inserts =
            s.counts[static_cast<std::size_t>(AccessType::Insert)];
        const std::size_t deletes =
            s.counts[static_cast<std::size_t>(AccessType::Delete)];
        const std::size_t all_muts = inserts + deletes;
        if (all_muts >= config_.si_min_ops && muts > 0 && inserts > 0 &&
            deletes > 0) {
            const double back_share =
                static_cast<double>(t.back_insert + t.back_delete) /
                static_cast<double>(all_muts);
            const double front_share =
                static_cast<double>(t.front_insert + t.front_delete) /
                static_cast<double>(all_muts);
            if (back_share >= config_.si_min_common_end_share ||
                front_share >= config_.si_min_common_end_share) {
                AdviceEvidence e;
                e.share = std::max(back_share, front_share);
                e.share_threshold = config_.si_min_common_end_share;
                e.ops = all_muts;
                e.at_front = back_share < front_share;
                emit(UseCaseKind::StackImplementation,
                     confidence_of(std::max(back_share, front_share),
                                   config_.si_min_common_end_share),
                     e);
            }
        }
    }

    // ---- Write-Without-Read (sequential) -------------------------------------
    if (s.tail_type == AccessType::Write &&
        s.tail_length >= config_.wwr_min_events) {
        const double denom = s.tail_last_size > 0
                                 ? static_cast<double>(s.tail_last_size)
                                 : 1.0;
        const double coverage =
            std::min(1.0, static_cast<double>(s.tail_length) / denom);
        if (coverage >= config_.wwr_min_coverage) {
            AdviceEvidence e;
            e.share = coverage;
            e.share_threshold = config_.wwr_min_coverage;
            e.phase_length = s.tail_length;
            emit(UseCaseKind::WriteWithoutRead,
                 confidence_of(coverage, config_.wwr_min_coverage),
                 e);
        }
    }

    return out;
}

}  // namespace dsspy::core
