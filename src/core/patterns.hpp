// The eight access-pattern types and their detector (Section III-A).
//
//   Read-Forward / Write-Forward   : adjacent reads/writes, ascending.
//   Read-Backward / Write-Backward : adjacent reads/writes, descending.
//   Insert-Front / Insert-Back     : adjacent inserts at the front / end.
//   Delete-Front / Delete-Back     : adjacent deletes at the front / end.
//
// Patterns are detected per thread ("In order to detect successive access
// events we also capture the thread id and bind it to each access event").
// A ForAll event (whole-container traversal through the interface) is
// materialized as a synthetic full-coverage Read-Forward pattern, since the
// traversal reads every element in order.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/detector_config.hpp"
#include "core/profile.hpp"

namespace dsspy::core {

/// The eight access-pattern types of the paper.
enum class PatternKind : std::uint8_t {
    ReadForward,
    WriteForward,
    ReadBackward,
    WriteBackward,
    InsertFront,
    InsertBack,
    DeleteFront,
    DeleteBack,
    Count,
};

inline constexpr std::size_t kPatternKindCount =
    static_cast<std::size_t>(PatternKind::Count);

[[nodiscard]] constexpr std::string_view pattern_name(
    PatternKind kind) noexcept {
    switch (kind) {
        case PatternKind::ReadForward: return "Read-Forward";
        case PatternKind::WriteForward: return "Write-Forward";
        case PatternKind::ReadBackward: return "Read-Backward";
        case PatternKind::WriteBackward: return "Write-Backward";
        case PatternKind::InsertFront: return "Insert-Front";
        case PatternKind::InsertBack: return "Insert-Back";
        case PatternKind::DeleteFront: return "Delete-Front";
        case PatternKind::DeleteBack: return "Delete-Back";
        case PatternKind::Count: break;
    }
    return "?";
}

/// True for Read-Forward / Read-Backward.
[[nodiscard]] constexpr bool is_read_pattern(PatternKind kind) noexcept {
    return kind == PatternKind::ReadForward ||
           kind == PatternKind::ReadBackward;
}

/// True for Insert-Front / Insert-Back.
[[nodiscard]] constexpr bool is_insert_pattern(PatternKind kind) noexcept {
    return kind == PatternKind::InsertFront ||
           kind == PatternKind::InsertBack;
}

/// True for Delete-Front / Delete-Back.
[[nodiscard]] constexpr bool is_delete_pattern(PatternKind kind) noexcept {
    return kind == PatternKind::DeleteFront ||
           kind == PatternKind::DeleteBack;
}

/// One located pattern instance inside a runtime profile.
struct Pattern {
    PatternKind kind = PatternKind::ReadForward;
    std::uint32_t first = 0;    ///< Index of the first event in the profile.
    std::uint32_t last = 0;     ///< Index of the last event (inclusive).
    std::uint32_t length = 0;   ///< Number of events in the run.
    std::int64_t start_pos = 0; ///< Position of the first access.
    std::int64_t end_pos = 0;   ///< Position of the last access.
    double coverage = 0.0;      ///< Touched share of the container (0..1].
    runtime::ThreadId thread = 0;
    bool synthetic = false;     ///< Materialized from a ForAll event.

    friend bool operator==(const Pattern&, const Pattern&) = default;
};

/// Locates the eight patterns in a runtime profile.
class PatternDetector {
public:
    explicit PatternDetector(DetectorConfig config = {})
        : config_(config) {}

    /// All patterns of the profile, ordered by first event index.
    [[nodiscard]] std::vector<Pattern> detect(
        const RuntimeProfile& profile) const;

    [[nodiscard]] const DetectorConfig& config() const noexcept {
        return config_;
    }

private:
    DetectorConfig config_;
};

/// Per-kind pattern counts (e.g. for Table II / Table III style summaries).
[[nodiscard]] std::vector<std::size_t> count_by_kind(
    const std::vector<Pattern>& patterns);

}  // namespace dsspy::core
