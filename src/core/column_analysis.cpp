#include "core/column_analysis.hpp"

#include <algorithm>

#include "core/detector_kernels.hpp"
#include "core/pattern_machine.hpp"

namespace dsspy::core {

namespace {

constexpr std::uint8_t kTypeRead =
    static_cast<std::uint8_t>(AccessType::Read);
constexpr std::uint8_t kTypeWrite =
    static_cast<std::uint8_t>(AccessType::Write);
constexpr std::uint8_t kTypeInsert =
    static_cast<std::uint8_t>(AccessType::Insert);
constexpr std::uint8_t kTypeDelete =
    static_cast<std::uint8_t>(AccessType::Delete);
constexpr std::uint8_t kTypeSearch =
    static_cast<std::uint8_t>(AccessType::Search);
constexpr std::uint8_t kTypeForAll =
    static_cast<std::uint8_t>(AccessType::ForAll);

/// Reconstruct the event-struct view of row `i` for the generic machine
/// step (the slow path of the detector: rows that open, close, or redirect
/// a run).
runtime::AccessEvent row_event(const ColumnSlice& s, std::size_t i) {
    runtime::AccessEvent ev{};
    ev.seq = i;
    ev.time_ns = s.time_ns[i];
    ev.position = s.positions[i];
    ev.size = s.sizes[i];
    ev.op = static_cast<runtime::OpKind>(s.ops[i]);
    ev.thread = s.threads[i];
    return ev;
}

/// Longest prefix of rows starting at `i` that provably extend `run`
/// (kernels::* streak scans); 0 when no bulk fast path applies and the
/// row must go through the generic machine step.
///
/// Each case first tests row `i` alone with the scalar predicate: when the
/// very first row does not continue the run the kernel would return 0
/// anyway, and skipping its dispatch/setup keeps streak-hostile streams
/// (alternating categories, queue churn) no slower than the plain
/// per-event machine.
std::size_t run_streak(const ColumnSlice& s, std::size_t i,
                       const detail::PatternRun& run) {
    const std::size_t n = s.n - i;
    const std::uint16_t tid = s.threads[i];
    switch (run.cat) {
        case detail::RunCat::Read:
        case detail::RunCat::Write: {
            // Direction still open after one event: the next row fixes it
            // (generic step).  Locked direction: monotone position chain.
            if (run.direction == 0) return 0;
            const std::uint8_t code =
                run.cat == detail::RunCat::Read ? kTypeRead : kTypeWrite;
            const std::int64_t expect = run.last_pos + run.direction;
            if (expect < 0 || s.types[i] != code || s.positions[i] != expect)
                return 0;
            return kernels::monotone_streak(s.types + i, s.positions + i,
                                            s.threads + i, n, code, tid,
                                            run.last_pos, run.direction);
        }
        case detail::RunCat::Insert:
        case detail::RunCat::Delete: {
            // Ambiguous runs (every access both front and back so far,
            // e.g. inserts while size stays 1) keep stepping generically;
            // single-anchor runs are absorbing and scan in bulk.
            if (run.all_front == run.all_back) return 0;
            const bool is_insert = run.cat == detail::RunCat::Insert;
            const std::uint8_t code = is_insert ? kTypeInsert : kTypeDelete;
            const kernels::EndAnchor anchor =
                run.all_front ? kernels::EndAnchor::Front
                : is_insert   ? kernels::EndAnchor::InsertBack
                              : kernels::EndAnchor::DeleteBack;
            const std::int64_t want =
                anchor == kernels::EndAnchor::Front ? 0
                : anchor == kernels::EndAnchor::InsertBack
                    ? static_cast<std::int64_t>(s.sizes[i]) - 1
                    : static_cast<std::int64_t>(s.sizes[i]);
            if (s.types[i] != code || s.positions[i] != want) return 0;
            return kernels::end_anchor_streak(s.types + i, s.positions + i,
                                              s.sizes + i, s.threads + i, n,
                                              code, tid, anchor);
        }
        case detail::RunCat::None: {
            // Closed run: category-None rows on this thread are no-ops.
            const std::uint8_t ty = s.types[i];
            const bool flushable =
                (ty >= kTypeSearch && ty < kTypeForAll) ||
                (ty <= kTypeWrite && s.positions[i] < 0);
            if (!flushable) return 0;
            return kernels::flushable_streak(s.types + i, s.positions + i,
                                             s.threads + i, n, tid);
        }
    }
    return 0;
}

}  // namespace

ColumnSlice make_slice(const runtime::ColumnStore& store,
                       runtime::ColumnRange range,
                       const std::uint8_t* types_base) {
    ColumnSlice s;
    s.time_ns = store.time_ns() + range.begin;
    s.positions = store.position() + range.begin;
    s.sizes = store.sizes() + range.begin;
    s.ops = store.op() + range.begin;
    s.types = types_base + range.begin;
    s.threads = store.thread() + range.begin;
    s.n = range.size();
    return s;
}

ProfileAggregates aggregates_from_columns(const ColumnSlice& s) {
    ProfileAggregates agg;
    agg.total_events = s.n;
    if (s.n == 0) return agg;
    agg.phases = kernels::phases_from_types(s.types, s.n);
    // Every row belongs to exactly one same-type phase, so the type
    // histogram is the phase lengths summed per type — no second pass
    // over the column.
    for (const Phase& p : agg.phases)
        agg.counts[static_cast<std::size_t>(p.type)] += p.length();
    agg.max_size = kernels::max_size_u32(s.sizes, s.n);
    agg.duration_ns = s.time_ns[s.n - 1] - s.time_ns[0];
    agg.thread_count = kernels::distinct_threads(s.threads, s.n);
    return agg;
}

std::vector<Pattern> detect_patterns_columns(const ColumnSlice& s,
                                             const DetectorConfig& config) {
    std::vector<Pattern> out;
    if (s.n == 0) return out;

    detail::PatternMachine machine(config.min_pattern_events);
    const auto collect = [&out](const Pattern& p, std::uint64_t /*first_ns*/,
                                std::uint64_t /*last_ns*/) {
        out.push_back(p);
    };

    std::size_t i = 0;
    while (i < s.n) {
        const std::uint16_t tid = s.threads[i];
        const detail::PatternRun& run = machine.peek_run(tid);
        const std::size_t streak = run_streak(s, i, run);
        if (streak > 0) {
            if (run.cat != detail::RunCat::None) {
                const std::size_t tail = i + streak - 1;
                machine.extend_run(tid, static_cast<std::uint32_t>(tail),
                                   s.positions[tail], s.sizes[tail],
                                   s.time_ns[tail],
                                   static_cast<std::uint32_t>(streak));
            }
            // RunCat::None streaks are pure skips: flushing a closed run
            // does nothing, so the machine state is already right.
            i += streak;
            continue;
        }
        machine.step(static_cast<std::uint32_t>(i), row_event(s, i),
                     static_cast<AccessType>(s.types[i]), collect);
        ++i;
    }
    machine.finish(collect);

    std::sort(out.begin(), out.end(),
              [](const Pattern& a, const Pattern& b) {
                  return a.first < b.first;
              });
    return out;
}

InstanceStats instance_stats_from_columns(const runtime::InstanceInfo& info,
                                          const ColumnSlice& s,
                                          const ProfileAggregates& agg,
                                          const std::vector<Pattern>& patterns,
                                          const DetectorConfig& config) {
    InstanceStats st;
    st.info = info;
    st.total = agg.total_events;
    st.counts = agg.counts;
    st.thread_count = agg.thread_count;
    st.duration_ns = agg.duration_ns;
    st.max_size = agg.max_size;

    // End traffic folds per constant-type phase: types other than
    // Insert/Delete/Read/Write never touch the counters
    // (accumulate_end_traffic), so their phases are skipped outright and
    // the span kernel hoists the type test out of the row loop.
    for (const Phase& ph : agg.phases) {
        const auto ty = static_cast<std::uint8_t>(ph.type);
        if (ty > kTypeDelete) continue;
        kernels::end_traffic_span(ty, s.positions + ph.first,
                                  s.sizes + ph.first, ph.length(),
                                  config.iq_end_window, st.iq_traffic,
                                  st.edge_traffic);
    }
    st.resizes = kernels::count_op(s.ops, s.n, runtime::OpKind::Resize);
    // Weighted read share from the histogram: every row weighs 1 except
    // ForAll rows with size > 0, which weigh their size — so only the
    // (rare) ForAll rows need a lookup.  Doubles here are exact: the sums
    // are integers well below 2^53, the same values the per-event double
    // accumulation reaches.
    const std::size_t forall_rows =
        agg.counts[static_cast<std::size_t>(AccessType::ForAll)];
    std::uint64_t forall_extra = 0;
    if (forall_rows > 0) {
        std::vector<std::uint32_t> rows;
        kernels::collect_type_indices(s.types, s.n, kTypeForAll, rows);
        for (const std::uint32_t r : rows)
            if (s.sizes[r] > 0) forall_extra += s.sizes[r] - 1;
    }
    st.weighted_total = static_cast<double>(s.n + forall_extra);
    st.weighted_reads = static_cast<double>(
        agg.counts[static_cast<std::size_t>(AccessType::Read)] +
        agg.counts[static_cast<std::size_t>(AccessType::Search)] +
        agg.counts[static_cast<std::size_t>(AccessType::Copy)] +
        forall_rows + forall_extra);

    for (const Pattern& p : patterns) {
        ++st.pattern_counts[static_cast<std::size_t>(p.kind)];
        if (is_read_pattern(p.kind)) {
            if (!p.synthetic) st.read_pattern_events += p.length;
            if (p.coverage >= config.flr_min_coverage)
                ++st.long_read_patterns;
        }
        if (!counts_as_insertion_pattern(p, st.info.kind)) continue;
        if (p.length >= config.li_min_phase_events) {
            st.long_insert_events += p.length;
            if (!p.synthetic)
                st.long_insert_ns += s.time_ns[p.last] - s.time_ns[p.first];
            if (!st.has_longest_insert ||
                p.length > st.longest_insert_length) {
                st.has_longest_insert = true;
                st.longest_insert_length = p.length;
                st.longest_insert_front = p.kind == PatternKind::InsertFront;
            }
        }
    }

    // Sort-After-Insert: only Sort rows can match, so scan the collected
    // Sort indices instead of every event (same earliest-first result).
    std::vector<std::uint32_t> sort_rows;
    kernels::collect_type_indices(
        s.types, s.n, static_cast<std::uint8_t>(AccessType::Sort),
        sort_rows);
    for (const std::uint32_t i : sort_rows) {
        if (st.sai_match) break;
        for (const Pattern& p : patterns) {
            if (!counts_as_insertion_pattern(p, st.info.kind)) continue;
            if (p.length < config.sai_min_phase_events) continue;
            if (p.last < i && i - p.last <= config.sai_max_gap_events) {
                st.sai_match = true;
                st.sai_phase_length = p.length;
                break;
            }
        }
    }

    if (!agg.phases.empty()) {
        const Phase& tail = agg.phases.back();
        st.tail_type = tail.type;
        st.tail_length = tail.length();
        st.tail_last_size = s.sizes[tail.last];
    }
    return st;
}

}  // namespace dsspy::core
