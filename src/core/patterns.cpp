#include "core/patterns.hpp"

#include <algorithm>

#include "core/pattern_machine.hpp"

namespace dsspy::core {

std::vector<Pattern> PatternDetector::detect(
    const RuntimeProfile& profile) const {
    std::vector<Pattern> out;
    const auto events = profile.events();
    if (events.empty()) return out;

    detail::PatternMachine machine(config_.min_pattern_events);
    const auto collect = [&out](const Pattern& p, std::uint64_t /*first_ns*/,
                                std::uint64_t /*last_ns*/) {
        out.push_back(p);
    };
    for (std::uint32_t i = 0; i < events.size(); ++i)
        machine.step(i, events[i], collect);
    machine.finish(collect);

    std::sort(out.begin(), out.end(),
              [](const Pattern& a, const Pattern& b) {
                  return a.first < b.first;
              });
    return out;
}

std::vector<std::size_t> count_by_kind(const std::vector<Pattern>& patterns) {
    std::vector<std::size_t> counts(kPatternKindCount, 0);
    for (const Pattern& p : patterns)
        ++counts[static_cast<std::size_t>(p.kind)];
    return counts;
}

}  // namespace dsspy::core
