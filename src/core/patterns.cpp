#include "core/patterns.hpp"

#include <algorithm>

namespace dsspy::core {

namespace {

/// Run category the state machine tracks per thread.
enum class RunCat : std::uint8_t { None, Read, Write, Insert, Delete };

/// Per-thread open run.
struct RunState {
    RunCat cat = RunCat::None;
    std::uint32_t first = 0;     // profile event index of the first event
    std::uint32_t last = 0;      // profile event index of the last event
    std::uint32_t length = 0;
    std::int64_t start_pos = 0;
    std::int64_t last_pos = 0;
    std::uint32_t last_size = 0;
    int direction = 0;           // 0 until the second event fixes it
    bool all_front = true;       // insert/delete: every access at the front
    bool all_back = true;        // insert/delete: every access at the back
    runtime::ThreadId thread = 0;
};

RunCat category_of(AccessType type, std::int64_t position) noexcept {
    if (position < 0 &&
        (type == AccessType::Read || type == AccessType::Write))
        return RunCat::None;  // positionless reads/writes cannot form runs
    switch (type) {
        case AccessType::Read: return RunCat::Read;
        case AccessType::Write: return RunCat::Write;
        case AccessType::Insert: return RunCat::Insert;
        case AccessType::Delete: return RunCat::Delete;
        default: return RunCat::None;
    }
}

/// Insert lands at the front?  Positions follow the proxy conventions:
/// size is recorded *after* the insert, position is the landing index.
bool insert_at_front(std::int64_t pos, std::uint32_t /*size*/) noexcept {
    return pos == 0;
}
bool insert_at_back(std::int64_t pos, std::uint32_t size) noexcept {
    return pos == static_cast<std::int64_t>(size) - 1;
}
/// Delete from the front/back?  Size is recorded *after* the removal, so a
/// back-removal has position == size.
bool delete_at_front(std::int64_t pos, std::uint32_t /*size*/) noexcept {
    return pos == 0;
}
bool delete_at_back(std::int64_t pos, std::uint32_t size) noexcept {
    return pos == static_cast<std::int64_t>(size);
}

}  // namespace

std::vector<Pattern> PatternDetector::detect(
    const RuntimeProfile& profile) const {
    std::vector<Pattern> out;
    const auto events = profile.events();
    if (events.empty()) return out;

    std::vector<RunState> per_thread;
    auto state_for = [&per_thread](runtime::ThreadId tid) -> RunState& {
        if (tid >= per_thread.size()) per_thread.resize(tid + 1);
        per_thread[tid].thread = tid;
        return per_thread[tid];
    };

    auto flush = [this, &out](RunState& run) {
        if (run.cat != RunCat::None &&
            run.length >= config_.min_pattern_events) {
            Pattern p;
            p.first = run.first;
            p.last = run.last;
            p.length = run.length;
            p.start_pos = run.start_pos;
            p.end_pos = run.last_pos;
            p.thread = run.thread;
            const double denom =
                run.last_size > 0 ? static_cast<double>(run.last_size) : 1.0;
            p.coverage = std::min(1.0, static_cast<double>(run.length) / denom);

            bool emit = true;
            switch (run.cat) {
                case RunCat::Read:
                    p.kind = run.direction >= 0 ? PatternKind::ReadForward
                                                : PatternKind::ReadBackward;
                    break;
                case RunCat::Write:
                    p.kind = run.direction >= 0 ? PatternKind::WriteForward
                                                : PatternKind::WriteBackward;
                    break;
                case RunCat::Insert:
                    // Prefer Back when both hold (size stayed at 1).
                    if (run.all_back) {
                        p.kind = PatternKind::InsertBack;
                    } else if (run.all_front) {
                        p.kind = PatternKind::InsertFront;
                    } else {
                        emit = false;
                    }
                    break;
                case RunCat::Delete:
                    if (run.all_back) {
                        p.kind = PatternKind::DeleteBack;
                    } else if (run.all_front) {
                        p.kind = PatternKind::DeleteFront;
                    } else {
                        emit = false;
                    }
                    break;
                case RunCat::None: emit = false; break;
            }
            if (emit) out.push_back(p);
        }
        run = RunState{.thread = run.thread};
    };

    auto start_run = [](RunState& run, RunCat cat, std::uint32_t index,
                        const runtime::AccessEvent& ev) {
        run.cat = cat;
        run.first = run.last = index;
        run.length = 1;
        run.start_pos = run.last_pos = ev.position;
        run.last_size = ev.size;
        run.direction = 0;
        run.all_front = true;
        run.all_back = true;
        if (cat == RunCat::Insert) {
            run.all_front = insert_at_front(ev.position, ev.size);
            run.all_back = insert_at_back(ev.position, ev.size);
        } else if (cat == RunCat::Delete) {
            run.all_front = delete_at_front(ev.position, ev.size);
            run.all_back = delete_at_back(ev.position, ev.size);
        }
    };

    for (std::uint32_t i = 0; i < events.size(); ++i) {
        const runtime::AccessEvent& ev = events[i];
        const AccessType type = derive_access_type(ev.op);
        RunState& run = state_for(ev.thread);

        // ForAll: a whole-container traversal is a full sequential read.
        if (type == AccessType::ForAll) {
            flush(run);
            if (ev.size > 0) {
                Pattern p;
                p.kind = PatternKind::ReadForward;
                p.first = p.last = i;
                p.length = ev.size;
                p.start_pos = 0;
                p.end_pos = static_cast<std::int64_t>(ev.size) - 1;
                p.coverage = 1.0;
                p.thread = ev.thread;
                p.synthetic = true;
                out.push_back(p);
            }
            continue;
        }

        const RunCat cat = category_of(type, ev.position);
        if (cat == RunCat::None) {
            flush(run);
            continue;
        }

        if (run.cat != cat) {
            flush(run);
            start_run(run, cat, i, ev);
            continue;
        }

        bool extends = false;
        switch (cat) {
            case RunCat::Read:
            case RunCat::Write: {
                const std::int64_t step = ev.position - run.last_pos;
                if (run.direction == 0) {
                    extends = (step == 1 || step == -1);
                    if (extends) run.direction = static_cast<int>(step);
                } else {
                    extends = (step == run.direction);
                }
                break;
            }
            case RunCat::Insert: {
                const bool front = run.all_front &&
                                   insert_at_front(ev.position, ev.size);
                const bool back =
                    run.all_back && insert_at_back(ev.position, ev.size);
                extends = front || back;
                if (extends) {
                    run.all_front = front;
                    run.all_back = back;
                }
                break;
            }
            case RunCat::Delete: {
                const bool front = run.all_front &&
                                   delete_at_front(ev.position, ev.size);
                const bool back =
                    run.all_back && delete_at_back(ev.position, ev.size);
                extends = front || back;
                if (extends) {
                    run.all_front = front;
                    run.all_back = back;
                }
                break;
            }
            case RunCat::None: break;
        }

        if (extends) {
            run.last = i;
            ++run.length;
            run.last_pos = ev.position;
            run.last_size = ev.size;
        } else {
            flush(run);
            start_run(run, cat, i, ev);
        }
    }

    for (RunState& run : per_thread) flush(run);

    std::sort(out.begin(), out.end(),
              [](const Pattern& a, const Pattern& b) {
                  return a.first < b.first;
              });
    return out;
}

std::vector<std::size_t> count_by_kind(const std::vector<Pattern>& patterns) {
    std::vector<std::size_t> counts(kPatternKindCount, 0);
    for (const Pattern& p : patterns)
        ++counts[static_cast<std::size_t>(p.kind)];
    return counts;
}

}  // namespace dsspy::core
