// The eight use cases and the classification engine (Section III-B).
//
// Five use cases carry parallel potential:
//   Long-Insert (LI), Implement-Queue (IQ), Sort-After-Insert (SAI),
//   Frequent-Search (FS), Frequent-Long-Read (FLR).
// Three are sequential optimizations:
//   Insert/Delete-Front (IDF), Stack-Implementation (SI),
//   Write-Without-Read (WWR).
//
// Each use case combines access patterns with threshold values
// (DetectorConfig) and carries a recommended action for the engineer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/advice.hpp"
#include "core/detector_config.hpp"
#include "core/instance_stats.hpp"
#include "core/patterns.hpp"
#include "core/profile.hpp"

namespace dsspy::core {

/// Use-case categories.
enum class UseCaseKind : std::uint8_t {
    LongInsert,
    ImplementQueue,
    SortAfterInsert,
    FrequentSearch,
    FrequentLongRead,
    InsertDeleteFront,
    StackImplementation,
    WriteWithoutRead,
    Count,
};

inline constexpr std::size_t kUseCaseKindCount =
    static_cast<std::size_t>(UseCaseKind::Count);

/// Full name as used in the paper.
[[nodiscard]] constexpr std::string_view use_case_name(
    UseCaseKind kind) noexcept {
    switch (kind) {
        case UseCaseKind::LongInsert: return "Long-Insert";
        case UseCaseKind::ImplementQueue: return "Implement-Queue";
        case UseCaseKind::SortAfterInsert: return "Sort-After-Insert";
        case UseCaseKind::FrequentSearch: return "Frequent-Search";
        case UseCaseKind::FrequentLongRead: return "Frequent-Long-Read";
        case UseCaseKind::InsertDeleteFront: return "Insert/Delete-Front";
        case UseCaseKind::StackImplementation: return "Stack-Implementation";
        case UseCaseKind::WriteWithoutRead: return "Write-Without-Read";
        case UseCaseKind::Count: break;
    }
    return "?";
}

/// Short code (column headers of Table III).
[[nodiscard]] constexpr std::string_view use_case_code(
    UseCaseKind kind) noexcept {
    switch (kind) {
        case UseCaseKind::LongInsert: return "LI";
        case UseCaseKind::ImplementQueue: return "IQ";
        case UseCaseKind::SortAfterInsert: return "SAI";
        case UseCaseKind::FrequentSearch: return "FS";
        case UseCaseKind::FrequentLongRead: return "FLR";
        case UseCaseKind::InsertDeleteFront: return "IDF";
        case UseCaseKind::StackImplementation: return "SI";
        case UseCaseKind::WriteWithoutRead: return "WWR";
        case UseCaseKind::Count: break;
    }
    return "?";
}

/// True for the five use cases that address parallelization.
[[nodiscard]] constexpr bool has_parallel_potential(
    UseCaseKind kind) noexcept {
    switch (kind) {
        case UseCaseKind::LongInsert:
        case UseCaseKind::ImplementQueue:
        case UseCaseKind::SortAfterInsert:
        case UseCaseKind::FrequentSearch:
        case UseCaseKind::FrequentLongRead:
            return true;
        default:
            return false;
    }
}

/// The structured action each use case maps to (a bijection; the action
/// is the machine-readable verdict code).
[[nodiscard]] constexpr AdviceAction advice_action_for(
    UseCaseKind kind) noexcept {
    switch (kind) {
        case UseCaseKind::LongInsert: return AdviceAction::ParallelInsert;
        case UseCaseKind::ImplementQueue:
            return AdviceAction::ParallelContainer;
        case UseCaseKind::SortAfterInsert:
            return AdviceAction::ParallelPhases;
        case UseCaseKind::FrequentSearch: return AdviceAction::BuildIndex;
        case UseCaseKind::FrequentLongRead:
            return AdviceAction::ParallelForAll;
        case UseCaseKind::InsertDeleteFront: return AdviceAction::UseDeque;
        case UseCaseKind::StackImplementation: return AdviceAction::UseStack;
        case UseCaseKind::WriteWithoutRead: return AdviceAction::DropWrites;
        case UseCaseKind::Count: break;
    }
    return AdviceAction::Count;
}

/// The recommended action the paper attaches to each use case.
[[nodiscard]] std::string_view recommended_action(UseCaseKind kind) noexcept;

/// One detected use case on one instance.  The verdict is stored as a
/// structured Advice (action + evidence + confidence); the report text is
/// rendered from the structure on demand, so a million flagged instances
/// no longer each hold a copy of the static recommendation string.
struct UseCase {
    UseCaseKind kind = UseCaseKind::LongInsert;
    runtime::InstanceInfo instance;  ///< Where it was found.
    Advice advice;                   ///< Structured verdict.

    /// Measured evidence (numbers), rendered from the structure.
    [[nodiscard]] std::string reason() const {
        return render_advice_reason(advice, instance.kind);
    }
    /// Recommended action text (plus the multithread note when the
    /// instance was already accessed concurrently).
    [[nodiscard]] std::string recommendation() const {
        return render_advice_recommendation(advice);
    }
    [[nodiscard]] bool parallel_potential() const noexcept {
        return has_parallel_potential(kind);
    }
    /// How far the evidence clears the rule's thresholds, in (0, 1]:
    /// ~0.5 at the threshold, 1.0 at twice the threshold or beyond.
    /// Used to rank recommendations (most clear-cut first).
    [[nodiscard]] double confidence() const noexcept {
        return advice.confidence;
    }

    friend bool operator==(const UseCase&, const UseCase&) = default;
};

/// Applies the use-case rules to a profile and its detected patterns.
class UseCaseEngine {
public:
    explicit UseCaseEngine(DetectorConfig config = {}) : config_(config) {}

    /// Classify a profile.  `patterns` must come from a PatternDetector
    /// with the same configuration, run over the same profile.  Equivalent
    /// to `classify(compute_instance_stats(profile, patterns, config()))`.
    [[nodiscard]] std::vector<UseCase> classify(
        const RuntimeProfile& profile,
        const std::vector<Pattern>& patterns) const;

    /// Classify from pre-folded aggregates.  This is the single emission
    /// path both the post-mortem and the incremental pipeline go through;
    /// the stats must have been folded with the same configuration.
    [[nodiscard]] std::vector<UseCase> classify(
        const InstanceStats& stats) const;

    [[nodiscard]] const DetectorConfig& config() const noexcept {
        return config_;
    }

private:
    DetectorConfig config_;
};

}  // namespace dsspy::core
