// Textual DetectorConfig overrides ("key=value") for the CLI and scripts.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/detector_config.hpp"

namespace dsspy::core {

/// Apply one "key=value" override to `config`.
/// Keys are the DetectorConfig field names (e.g. "li_min_phase_events=50",
/// "flr_min_coverage=0.4").  Returns false (config untouched) for unknown
/// keys or unparsable values.
bool apply_config_override(DetectorConfig& config, std::string_view entry);

/// Apply a batch of overrides; returns the list of rejected entries.
std::vector<std::string> apply_config_overrides(
    DetectorConfig& config, const std::vector<std::string>& entries);

/// All recognized keys with their current values (for --help output).
[[nodiscard]] std::vector<std::string> config_to_strings(
    const DetectorConfig& config);

}  // namespace dsspy::core
