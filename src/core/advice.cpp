#include "core/advice.hpp"

#include "support/table.hpp"

namespace dsspy::core {

using support::Table;

std::string_view advice_action_text(AdviceAction action) noexcept {
    switch (action) {
        case AdviceAction::ParallelInsert:
            return "Parallelize the insert operation.";
        case AdviceAction::ParallelContainer:
            return "Employ a parallel queue as data container.";
        case AdviceAction::ParallelPhases:
            return "The insertion order is not important: parallelize both "
                   "the insert and the search phases.";
        case AdviceAction::BuildIndex:
            return "Either employ a parallel data structure that is "
                   "optimized for searches or parallelize the search "
                   "operation by splitting the list into smaller chunks "
                   "searched in parallel.";
        case AdviceAction::ParallelForAll:
            return "Check the origin of this access. If it contains a "
                   "program loop that looks for a specific element, "
                   "transform the operation into a parallel search.";
        case AdviceAction::UseDeque:
            return "Insert/delete traffic causes high copy overhead on a "
                   "fixed-size array: a dynamic data structure like a list "
                   "might be better suited.";
        case AdviceAction::UseStack:
            return "Insert and delete operations always access a common "
                   "end: think about using a stack implementation.";
        case AdviceAction::DropWrites:
            return "The results of the trailing write accesses are never "
                   "read; check whether these writes are necessary or can "
                   "be left to deallocation/garbage collection.";
        case AdviceAction::Count: break;
    }
    return "?";
}

std::string render_advice_reason(const Advice& advice,
                                 runtime::DsKind ds_kind) {
    const AdviceEvidence& e = advice.evidence;
    switch (advice.action) {
        case AdviceAction::ParallelPhases:
            return "Sort follows an insertion phase of " +
                   std::to_string(e.phase_length) + " events (" +
                   Table::pct(e.share) +
                   " of the profile is long insertions); the "
                   "insertion order is obviously not important.";
        case AdviceAction::ParallelInsert:
            return "Insertion phases cover " + Table::pct(e.share) +
                   " of the profile (threshold " +
                   Table::pct(e.share_threshold) +
                   "); longest consecutive insertion streak: " +
                   std::to_string(e.phase_length) + " events from the " +
                   (e.at_front ? "front." : "end.");
        case AdviceAction::ParallelContainer:
            return Table::pct(e.share) +
                   " of all accesses affect two different ends of the "
                   "list (" +
                   std::to_string(e.ops) + " inserts at the " +
                   (e.at_front ? "front" : "back") + ", " +
                   std::to_string(e.aux_ops) + " reads/deletes at the " +
                   (e.at_front ? "back" : "front") +
                   "): the list is used like a queue.";
        case AdviceAction::BuildIndex:
            return std::to_string(e.ops) + " search operations (threshold " +
                   std::to_string(e.ops_threshold) + "); " +
                   Table::pct(e.share) +
                   " of all access events are Read-Forward/Read-Backward "
                   "patterns.";
        case AdviceAction::ParallelForAll:
            return std::to_string(e.ops) +
                   " sequential read patterns each covering at least " +
                   Table::pct(e.share_threshold) + " of the structure; " +
                   Table::pct(e.share) +
                   " of all access types are Read or Search — this looks "
                   "like a disguised search operation.";
        case AdviceAction::UseDeque:
            if (ds_kind == runtime::DsKind::Array)
                return std::to_string(e.ops) +
                       " array reallocations: every resize copies all "
                       "elements.";
            return std::to_string(e.ops) + " front inserts and " +
                   std::to_string(e.aux_ops) +
                   " front deletes each shift the whole tail.";
        case AdviceAction::UseStack:
            return Table::pct(e.share) +
                   " of all insert/delete operations access the " +
                   (e.at_front ? "front" : "back") +
                   " of the list: this is a stack implementation.";
        case AdviceAction::DropWrites:
            return "The profile ends with a write phase of " +
                   std::to_string(e.phase_length) + " events covering " +
                   Table::pct(e.share) +
                   " of the structure whose results are never read.";
        case AdviceAction::Count: break;
    }
    return "?";
}

std::string render_advice_recommendation(const Advice& advice) {
    std::string text(advice_action_text(advice.action));
    // DSspy captures thread ids so it can support multithreaded code: an
    // instance that is already accessed concurrently needs a
    // synchronization review before further parallelization.
    if (advice.evidence.thread_count > 1 &&
        advice_action_parallel(advice.action)) {
        text += " Note: this instance is already accessed by " +
                std::to_string(advice.evidence.thread_count) +
                " threads; verify synchronization before transforming.";
    }
    return text;
}

}  // namespace dsspy::core
