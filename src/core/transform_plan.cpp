#include "core/transform_plan.hpp"

#include <algorithm>
#include <ostream>

#include "support/table.hpp"

namespace dsspy::core {

std::string_view transform_action_name(TransformAction action) noexcept {
    switch (action) {
        case TransformAction::ParallelizeInsert:
            return "parallelize-insert";
        case TransformAction::UseParallelQueue:
            return "use-parallel-queue";
        case TransformAction::ParallelSortAndFill:
            return "parallel-sort-and-fill";
        case TransformAction::ParallelizeSearch:
            return "parallelize-search";
        case TransformAction::ParallelizeReadLoop:
            return "parallelize-read-loop";
        case TransformAction::UseDynamicStructure:
            return "use-dynamic-structure";
        case TransformAction::UseStackContainer:
            return "use-stack-container";
        case TransformAction::DropDeadWrites:
            return "drop-dead-writes";
        case TransformAction::Count: break;
    }
    return "?";
}

std::string_view transform_code_hint(TransformAction action) noexcept {
    switch (action) {
        case TransformAction::ParallelizeInsert:
            return "par::parallel_build<T>(pool, n, make) or "
                   "par::parallel_append(pool, list, n, make)";
        case TransformAction::UseParallelQueue:
            return "par::ConcurrentQueue<T> (push/pop/close)";
        case TransformAction::ParallelSortAndFill:
            return "par::parallel_build + par::parallel_sort(pool, span)";
        case TransformAction::ParallelizeSearch:
            return "par::parallel_index_of(pool, span, value) or "
                   "par::ParallelList<T>";
        case TransformAction::ParallelizeReadLoop:
            return "par::parallel_reduce / par::parallel_max_index(pool, "
                   "span)";
        case TransformAction::UseDynamicStructure:
            return "ds::List<T> (amortized growth, no full-copy resize)";
        case TransformAction::UseStackContainer:
            return "ds::Stack<T> (push/pop/peek)";
        case TransformAction::DropDeadWrites:
            return "remove the trailing write loop; rely on destruction";
        case TransformAction::Count: break;
    }
    return "?";
}

TransformAction action_for(UseCaseKind kind) noexcept {
    switch (kind) {
        case UseCaseKind::LongInsert:
            return TransformAction::ParallelizeInsert;
        case UseCaseKind::ImplementQueue:
            return TransformAction::UseParallelQueue;
        case UseCaseKind::SortAfterInsert:
            return TransformAction::ParallelSortAndFill;
        case UseCaseKind::FrequentSearch:
            return TransformAction::ParallelizeSearch;
        case UseCaseKind::FrequentLongRead:
            return TransformAction::ParallelizeReadLoop;
        case UseCaseKind::InsertDeleteFront:
            return TransformAction::UseDynamicStructure;
        case UseCaseKind::StackImplementation:
            return TransformAction::UseStackContainer;
        case UseCaseKind::WriteWithoutRead:
            return TransformAction::DropDeadWrites;
        case UseCaseKind::Count: break;
    }
    return TransformAction::ParallelizeInsert;
}

TransformPlan plan_transformations(const AnalysisResult& result,
                                   bool parallel_only) {
    TransformPlan plan;
    for (const InstanceAnalysis& ia : result.instances()) {
        for (const UseCase& uc : ia.use_cases) {
            if (parallel_only && !uc.parallel_potential()) continue;
            TransformStep step;
            step.action = action_for(uc.kind);
            step.source = uc.kind;
            step.instance = uc.instance;
            step.confidence = uc.confidence();
            step.events = ia.profile.total_events();
            step.impact =
                static_cast<double>(step.events) * uc.confidence();
            step.parallel = uc.parallel_potential();
            step.code_hint = std::string(transform_code_hint(step.action));
            plan.steps.push_back(std::move(step));
        }
    }
    std::stable_sort(plan.steps.begin(), plan.steps.end(),
                     [](const TransformStep& a, const TransformStep& b) {
                         return a.impact > b.impact;
                     });
    return plan;
}

void print_transform_plan(std::ostream& os, const TransformPlan& plan) {
    if (plan.steps.empty()) {
        os << "Nothing to transform.\n";
        return;
    }
    os << "Transformation plan (" << plan.steps.size() << " steps, "
       << plan.parallel_steps() << " parallel):\n";
    std::size_t ordinal = 0;
    for (const TransformStep& step : plan.steps) {
        os << "  " << ++ordinal << ". ["
           << transform_action_name(step.action) << "] "
           << step.instance.location.to_string() << " ("
           << step.instance.type_name << ")\n"
           << "     from " << use_case_name(step.source) << ", confidence "
           << support::Table::fmt(step.confidence) << ", "
           << step.events << " events, impact "
           << support::Table::fmt(step.impact, 0) << '\n'
           << "     apply: " << step.code_hint << '\n';
    }
}

}  // namespace dsspy::core
