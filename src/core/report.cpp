#include "core/report.hpp"

#include "support/table.hpp"

namespace dsspy::core {

std::string format_use_case(const UseCase& use_case, std::size_t ordinal) {
    std::string out;
    out += "Use Case " + std::to_string(ordinal) + "\n";
    out += "  Class:          " + use_case.instance.location.class_name + "\n";
    out += "  Method:         " + use_case.instance.location.method + "\n";
    out += "  Position:       " +
           std::to_string(use_case.instance.location.position) + "\n";
    out += "  Data structure: " + use_case.instance.type_name + "\n";
    out += "  Use Case:       " + std::string(use_case_name(use_case.kind)) +
           "\n";
    out += "  Reason:         " + use_case.reason() + "\n";
    out += "  Recommendation: " + use_case.recommendation() + "\n";
    return out;
}

void print_use_case_report(std::ostream& os, const AnalysisResult& result,
                           bool parallel_only) {
    std::size_t ordinal = 0;
    for (const InstanceAnalysis& ia : result.instances()) {
        for (const UseCase& uc : ia.use_cases) {
            if (parallel_only && !uc.parallel_potential()) continue;
            os << format_use_case(uc, ++ordinal) << '\n';
        }
    }
    if (ordinal == 0) os << "No use cases detected.\n";
}

void print_instance_summary(std::ostream& os, const AnalysisResult& result) {
    support::Table table({"Instance", "Type", "Events", "Patterns",
                          "Use cases"});
    for (const InstanceAnalysis& ia : result.instances()) {
        if (ia.profile.total_events() == 0) continue;
        std::string codes;
        for (const UseCase& uc : ia.use_cases) {
            if (!codes.empty()) codes += ", ";
            codes += use_case_code(uc.kind);
        }
        table.add_row({ia.profile.info().location.to_string(),
                       ia.profile.info().type_name,
                       std::to_string(ia.profile.total_events()),
                       std::to_string(ia.patterns.size()),
                       codes.empty() ? "-" : codes});
    }
    table.print(os);
}

void print_use_case_report(std::ostream& os, const StreamReport& report,
                           bool parallel_only) {
    std::size_t ordinal = 0;
    for (const StreamInstance& si : report.instances()) {
        for (const UseCase& uc : si.use_cases) {
            if (parallel_only && !uc.parallel_potential()) continue;
            os << format_use_case(uc, ++ordinal) << '\n';
        }
    }
    if (ordinal == 0) os << "No use cases detected.\n";
}

void print_instance_summary(std::ostream& os, const StreamReport& report) {
    support::Table table({"Instance", "Type", "Events", "Patterns",
                          "Use cases"});
    for (const StreamInstance& si : report.instances()) {
        if (si.stats.total == 0) continue;
        std::string codes;
        for (const UseCase& uc : si.use_cases) {
            if (!codes.empty()) codes += ", ";
            codes += use_case_code(uc.kind);
        }
        table.add_row({si.stats.info.location.to_string(),
                       si.stats.info.type_name,
                       std::to_string(si.stats.total),
                       std::to_string(si.total_patterns()),
                       codes.empty() ? "-" : codes});
    }
    table.print(os);
}

}  // namespace dsspy::core
