// Order-folded aggregates of one instance's event stream.
//
// InstanceStats is everything the eight use-case rules (Section III-B)
// consume, reduced to O(1) numbers per instance.  Two producers fill it:
//
//   * compute_instance_stats — post-mortem, from a finalized RuntimeProfile
//     and its detected patterns (use_cases.cpp);
//   * IncrementalAnalyzer — streaming, folding one event at a time
//     (incremental.hpp, DESIGN.md §8).
//
// Both feed the same UseCaseEngine::classify(const InstanceStats&), so the
// two pipelines cannot drift apart: equal stats imply byte-identical use
// cases, reasons, recommendations, and confidences.
#pragma once

#include <array>
#include <cstdint>

#include "core/access_type.hpp"
#include "core/detector_config.hpp"
#include "core/patterns.hpp"
#include "runtime/access_event.hpp"
#include "runtime/instance_registry.hpp"

namespace dsspy::core {

/// End-of-structure traffic statistics for the Implement-Queue and
/// Stack-Implementation rules.
struct EndTraffic {
    std::size_t front_insert = 0;
    std::size_t back_insert = 0;
    std::size_t front_delete = 0;
    std::size_t back_delete = 0;
    std::size_t front_read = 0;
    std::size_t back_read = 0;

    [[nodiscard]] std::size_t inserts() const noexcept {
        return front_insert + back_insert;
    }
    [[nodiscard]] std::size_t deletes() const noexcept {
        return front_delete + back_delete;
    }
};

/// Fold one access into the end-traffic counters (accesses within `window`
/// slots of position 0 / the last index count as front / back traffic).
/// This field form is the single source of truth: the AoS event overload
/// below and the columnar scalar kernel (detector_kernels.hpp) both call
/// it, so the two analysis paths cannot drift.
inline void accumulate_end_traffic(EndTraffic& t, AccessType type,
                                   std::int64_t position, std::uint32_t size,
                                   std::size_t window) noexcept {
    if (position < 0) return;
    const auto w = static_cast<std::int64_t>(window);
    const auto sz = static_cast<std::int64_t>(size);
    switch (type) {
        case AccessType::Insert:
            // size recorded after the insert; back == landing at size-1.
            if (position >= sz - w) ++t.back_insert;
            else if (position < w) ++t.front_insert;
            break;
        case AccessType::Delete:
            // size recorded after the removal; back == position >= size.
            if (position >= sz - w + 1) ++t.back_delete;
            else if (position < w) ++t.front_delete;
            break;
        case AccessType::Read:
        case AccessType::Write:
            if (position >= sz - w) ++t.back_read;
            else if (position < w) ++t.front_read;
            break;
        default:
            break;
    }
}

/// Fold one event into the end-traffic counters.
inline void accumulate_end_traffic(EndTraffic& t,
                                   const runtime::AccessEvent& ev,
                                   std::size_t window) noexcept {
    accumulate_end_traffic(t, derive_access_type(ev.op), ev.position,
                           ev.size, window);
}

/// Long "insertion" patterns: Insert-Front/Back for dynamic structures;
/// for fixed-size arrays, end-anchored Write-Forward/Backward streaks play
/// the insertion role (sequential initialization of the buffer).
[[nodiscard]] inline bool counts_as_insertion_pattern(
    const Pattern& p, runtime::DsKind kind) noexcept {
    if (is_insert_pattern(p.kind)) return true;
    if (kind != runtime::DsKind::Array) return false;
    if (p.kind == PatternKind::WriteForward && p.start_pos == 0) return true;
    if (p.kind == PatternKind::WriteBackward &&
        p.end_pos == 0)  // descending streak that reaches the front
        return true;
    return false;
}

/// All evidence the use-case rules consume for one instance.
struct InstanceStats {
    runtime::InstanceInfo info;

    std::size_t total = 0;  ///< Total events on the instance.
    std::array<std::size_t, kAccessTypeCount> counts{};
    std::size_t thread_count = 0;
    std::uint64_t duration_ns = 0;  ///< First event to last event.
    std::size_t max_size = 0;

    /// Per-kind completed pattern counts (indexed by PatternKind).
    std::array<std::size_t, kPatternKindCount> pattern_counts{};

    // --- Long-Insert / Sort-After-Insert evidence ----------------------
    std::size_t long_insert_events = 0;  ///< Events in qualifying phases.
    std::uint64_t long_insert_ns = 0;    ///< Wall-clock in those phases.
    bool has_longest_insert = false;
    std::uint32_t longest_insert_length = 0;
    bool longest_insert_front = false;  ///< Longest phase is Insert-Front.
    bool sai_match = false;             ///< A Sort trails an insertion phase.
    std::uint32_t sai_phase_length = 0; ///< Length of the matched phase.

    // --- Implement-Queue / Insert-Delete-Front / Stack ------------------
    EndTraffic iq_traffic;    ///< Window = DetectorConfig::iq_end_window.
    EndTraffic edge_traffic;  ///< Window = 1 (exact ends).
    std::size_t resizes = 0;  ///< Array reallocations (OpKind::Resize).

    // --- Frequent-Search / Frequent-Long-Read ---------------------------
    std::size_t read_pattern_events = 0;  ///< Non-synthetic read patterns.
    std::size_t long_read_patterns = 0;   ///< Coverage >= flr_min_coverage.
    double weighted_reads = 0.0;  ///< ForAll weighted by elements read.
    double weighted_total = 0.0;

    // --- Write-Without-Read tail phase ----------------------------------
    AccessType tail_type = AccessType::Read;
    std::size_t tail_length = 0;
    std::uint32_t tail_last_size = 0;  ///< Size at the profile's last event.
};

/// Post-mortem producer: reduce a finalized profile + its patterns to the
/// aggregate form.  `patterns` must come from a PatternDetector with the
/// same configuration, run over the same profile.
[[nodiscard]] InstanceStats compute_instance_stats(
    const RuntimeProfile& profile, const std::vector<Pattern>& patterns,
    const DetectorConfig& config);

}  // namespace dsspy::core
