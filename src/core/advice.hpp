// Structured advice: the machine-consumable form of a verdict.
//
// The paper stops at textual recommendations (Table V); DSspy turns each
// verdict into a typed Advice value — an action enum, the quantified
// evidence that used to be flattened into the reason string, and a
// confidence — and renders the human-readable text *from* that structure
// on demand.  Consumers that want to act on a verdict (the adaptive
// container layer in src/adapt/, `dsspy advise --json`, external tools)
// read the structure; default reports render the exact same bytes the
// string-based pipeline produced.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "runtime/op.hpp"

namespace dsspy::core {

/// What a verdict tells the consumer to *do*.  One action per use case
/// (the mapping is a bijection, see `advice_action_for` in
/// use_cases.hpp), so the action doubles as a stable machine-readable
/// verdict code.
enum class AdviceAction : std::uint8_t {
    ParallelInsert,     ///< Long-Insert: parallelize the insert phase.
    ParallelContainer,  ///< Implement-Queue: use a parallel queue.
    ParallelPhases,     ///< Sort-After-Insert: parallelize both phases.
    BuildIndex,         ///< Frequent-Search: index or chunked search.
    ParallelForAll,     ///< Frequent-Long-Read: parallel search/traverse.
    UseDeque,           ///< Insert/Delete-Front: O(1)-front structure.
    UseStack,           ///< Stack-Implementation: common-end accesses.
    DropWrites,         ///< Write-Without-Read: trailing writes unread.
    Count,
};

inline constexpr std::size_t kAdviceActionCount =
    static_cast<std::size_t>(AdviceAction::Count);

/// Stable identifier used in JSON exports and docs.
[[nodiscard]] constexpr std::string_view advice_action_name(
    AdviceAction action) noexcept {
    switch (action) {
        case AdviceAction::ParallelInsert: return "ParallelInsert";
        case AdviceAction::ParallelContainer: return "ParallelContainer";
        case AdviceAction::ParallelPhases: return "ParallelPhases";
        case AdviceAction::BuildIndex: return "BuildIndex";
        case AdviceAction::ParallelForAll: return "ParallelForAll";
        case AdviceAction::UseDeque: return "UseDeque";
        case AdviceAction::UseStack: return "UseStack";
        case AdviceAction::DropWrites: return "DropWrites";
        case AdviceAction::Count: break;
    }
    return "?";
}

/// True for the actions derived from the five parallel-potential use
/// cases (paper Section III-B).
[[nodiscard]] constexpr bool advice_action_parallel(
    AdviceAction action) noexcept {
    switch (action) {
        case AdviceAction::ParallelInsert:
        case AdviceAction::ParallelContainer:
        case AdviceAction::ParallelPhases:
        case AdviceAction::BuildIndex:
        case AdviceAction::ParallelForAll:
            return true;
        default:
            return false;
    }
}

/// The measured numbers a rule fired on.  Field meaning depends on the
/// action (documented per action below); unused fields stay zero.
///
///   ParallelInsert    share=insert share, share_threshold=config
///                     threshold, phase_length=longest streak,
///                     at_front=streak grows from the front
///   ParallelContainer share=two-end share, ops=inserts at one end,
///                     aux_ops=reads/deletes at the other,
///                     at_front=inserts land at the front
///   ParallelPhases    share=insert share, phase_length=insertion phase
///                     preceding the Sort
///   BuildIndex        ops=search operations, ops_threshold=config
///                     threshold, share=read-pattern share
///   ParallelForAll    ops=long read patterns, share=read share,
///                     share_threshold=min per-pattern coverage
///   UseDeque          Array: ops=reallocations.  List: ops=front
///                     inserts, aux_ops=front deletes
///   UseStack          share=common-end share, at_front=the common end
///                     is the front
///   DropWrites        phase_length=trailing write events,
///                     share=fraction of the structure they cover
struct AdviceEvidence {
    double share = 0.0;            ///< Dominant measured ratio in [0, 1].
    double share_threshold = 0.0;  ///< Config threshold for `share`.
    std::size_t ops = 0;           ///< Primary operation count.
    std::size_t ops_threshold = 0; ///< Config threshold for `ops`.
    std::size_t aux_ops = 0;       ///< Secondary operation count.
    std::size_t phase_length = 0;  ///< Length of the qualifying phase.
    bool at_front = false;         ///< Front/back orientation of the rule.
    std::size_t thread_count = 1;  ///< Threads already touching this
                                   ///< instance during the profile.

    friend bool operator==(const AdviceEvidence&,
                           const AdviceEvidence&) = default;
};

/// One structured verdict: what to do, how sure, and why.
struct Advice {
    AdviceAction action = AdviceAction::ParallelInsert;
    /// How far the evidence clears the rule's thresholds, in (0, 1]:
    /// ~0.5 at the threshold, 1.0 at twice the threshold or beyond.
    double confidence = 0.5;
    AdviceEvidence evidence;

    friend bool operator==(const Advice&, const Advice&) = default;
};

/// The paper's recommended-action text for an action (Table V wording).
[[nodiscard]] std::string_view advice_action_text(
    AdviceAction action) noexcept;

/// Render the evidence sentence exactly as the string-based pipeline
/// wrote it.  `ds_kind` selects the Array/List wording for UseDeque.
[[nodiscard]] std::string render_advice_reason(const Advice& advice,
                                               runtime::DsKind ds_kind);

/// Render the recommendation text, including the multithread
/// synchronization note when the instance was already accessed by more
/// than one thread.
[[nodiscard]] std::string render_advice_recommendation(
    const Advice& advice);

}  // namespace dsspy::core
