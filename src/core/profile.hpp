// Runtime profile of one data-structure instance.
//
// "We use runtime profiles that contain all access events to a data
// structure instance from initialization to deallocation in chronological
// order" (Section II-B).  RuntimeProfile is a read-only view over the
// finalized ProfileStore events of one instance plus derived aggregates
// the use-case rules need: per-access-type counts, event shares, duration,
// maximum observed size.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "core/access_type.hpp"
#include "runtime/access_event.hpp"
#include "runtime/instance_registry.hpp"

namespace dsspy::core {

/// A maximal run of events with the same derived access type.
/// ("DSspy executes the phase detection on the access profiles".)
struct Phase {
    AccessType type = AccessType::Read;
    std::uint32_t first = 0;   ///< Index of the first event (into events()).
    std::uint32_t last = 0;    ///< Index of the last event (inclusive).
    [[nodiscard]] std::size_t length() const noexcept {
        return static_cast<std::size_t>(last) - first + 1;
    }
};

/// Aggregates precomputed by the columnar analysis path.  The kernel
/// scans over raw columns (DESIGN.md §11) produce exactly the numbers the
/// AoS constructor below would derive, so profiles built either way are
/// indistinguishable to the use-case rules.
struct ProfileAggregates {
    std::size_t total_events = 0;
    std::array<std::size_t, kAccessTypeCount> counts{};
    std::vector<Phase> phases;
    std::size_t max_size = 0;
    std::uint64_t duration_ns = 0;
    std::size_t thread_count = 0;
};

/// Read-only analysis view of one instance's event sequence.
class RuntimeProfile {
public:
    RuntimeProfile() = default;

    /// Build from the instance metadata and its finalized event span.
    RuntimeProfile(runtime::InstanceInfo info,
                   std::span<const runtime::AccessEvent> events);

    /// Build from kernel-computed aggregates; `events` may be empty when
    /// the caller analyzed raw columns without materializing AccessEvent
    /// rows (the zero-copy trace path).
    RuntimeProfile(runtime::InstanceInfo info,
                   std::span<const runtime::AccessEvent> events,
                   ProfileAggregates aggregates);

    [[nodiscard]] const runtime::InstanceInfo& info() const noexcept {
        return info_;
    }

    /// The instance's event rows.  Empty for profiles built from column
    /// aggregates without an AoS mirror — use total_events() for the real
    /// event count.
    [[nodiscard]] std::span<const runtime::AccessEvent> events()
        const noexcept {
        return events_;
    }

    [[nodiscard]] std::size_t total_events() const noexcept {
        return total_;
    }

    /// Number of events of the given derived access type.
    [[nodiscard]] std::size_t count(AccessType type) const noexcept {
        return counts_[static_cast<std::size_t>(type)];
    }

    /// Share of events of the given type; 0 when the profile is empty.
    [[nodiscard]] double share(AccessType type) const noexcept;

    /// Share of read-like events (Read + Search + Copy + ForAll).
    [[nodiscard]] double read_like_share() const noexcept;

    /// Maximum container size observed across all events.
    [[nodiscard]] std::size_t max_size() const noexcept { return max_size_; }

    /// Wall-clock span from first to last event, in nanoseconds.
    [[nodiscard]] std::uint64_t duration_ns() const noexcept {
        return duration_ns_;
    }

    /// Number of distinct threads that accessed the instance.
    [[nodiscard]] std::size_t thread_count() const noexcept {
        return thread_count_;
    }

    /// Maximal same-access-type phases, in chronological order.
    [[nodiscard]] const std::vector<Phase>& phases() const noexcept {
        return phases_;
    }

    /// Share of events that belong to phases of `type` with at least
    /// `min_phase_events` events.  This is the "insertion phases >30% of
    /// runtime" measure of the Long-Insert rule.
    [[nodiscard]] double phase_share(AccessType type,
                                     std::size_t min_phase_events = 0)
        const noexcept;

    /// True if any phase of `type` has at least `min_events` events.
    [[nodiscard]] bool has_long_phase(AccessType type,
                                      std::size_t min_events) const noexcept;

private:
    runtime::InstanceInfo info_;
    std::span<const runtime::AccessEvent> events_;
    std::size_t total_ = 0;
    std::array<std::size_t, kAccessTypeCount> counts_{};
    std::vector<Phase> phases_;
    std::size_t max_size_ = 0;
    std::uint64_t duration_ns_ = 0;
    std::size_t thread_count_ = 0;
};

}  // namespace dsspy::core
