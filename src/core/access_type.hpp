// Trivial and compound access types (Section IV of the paper).
//
// "We derive the trivial access types Read and Write and define the
// compound access types Insert, Search, Delete, Clear, Copy, Reverse,
// Sort and ForAll for each access event."
#pragma once

#include <cstdint>
#include <string_view>

#include "runtime/op.hpp"

namespace dsspy::core {

/// Derived access type of one event.
enum class AccessType : std::uint8_t {
    Read,     ///< Trivial positional read (indexer get).
    Write,    ///< Trivial positional write (indexer set).
    Insert,   ///< Element added (Add / InsertAt).
    Delete,   ///< Element removed (RemoveAt / Pop / Dequeue).
    Search,   ///< Lookup over the container (IndexOf / Contains / Find).
    Clear,    ///< All elements removed.
    Copy,     ///< Bulk copy out of / reallocation of the container.
    Reverse,  ///< In-place reversal.
    Sort,     ///< Full-container sort.
    ForAll,   ///< Whole-container traversal via the interface.
    Count,
};

inline constexpr std::size_t kAccessTypeCount =
    static_cast<std::size_t>(AccessType::Count);

/// Map a raw interface operation to its access type.
[[nodiscard]] constexpr AccessType derive_access_type(
    runtime::OpKind op) noexcept {
    using runtime::OpKind;
    switch (op) {
        case OpKind::Get: return AccessType::Read;
        case OpKind::Set: return AccessType::Write;
        case OpKind::Add: return AccessType::Insert;
        case OpKind::InsertAt: return AccessType::Insert;
        case OpKind::RemoveAt: return AccessType::Delete;
        case OpKind::Clear: return AccessType::Clear;
        case OpKind::IndexOf: return AccessType::Search;
        case OpKind::Sort: return AccessType::Sort;
        case OpKind::Reverse: return AccessType::Reverse;
        case OpKind::CopyTo: return AccessType::Copy;
        case OpKind::ForEach: return AccessType::ForAll;
        case OpKind::Resize: return AccessType::Copy;
        case OpKind::Count: break;
    }
    return AccessType::Read;
}

/// True if the access observes data without mutating it.
[[nodiscard]] constexpr bool is_read_like(AccessType type) noexcept {
    return type == AccessType::Read || type == AccessType::Search ||
           type == AccessType::Copy || type == AccessType::ForAll;
}

/// True if the access mutates the container.
[[nodiscard]] constexpr bool is_write_like(AccessType type) noexcept {
    return !is_read_like(type);
}

[[nodiscard]] constexpr std::string_view access_type_name(
    AccessType type) noexcept {
    switch (type) {
        case AccessType::Read: return "Read";
        case AccessType::Write: return "Write";
        case AccessType::Insert: return "Insert";
        case AccessType::Delete: return "Delete";
        case AccessType::Search: return "Search";
        case AccessType::Clear: return "Clear";
        case AccessType::Copy: return "Copy";
        case AccessType::Reverse: return "Reverse";
        case AccessType::Sort: return "Sort";
        case AccessType::ForAll: return "ForAll";
        case AccessType::Count: break;
    }
    return "?";
}

}  // namespace dsspy::core
