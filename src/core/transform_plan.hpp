// Transformation planning: structured, machine-actionable output.
//
// The paper closes with: "For now, each recommendation needs to be
// implemented manually; however automated transformation is possible if
// the recommended action is clearly specified [21]."  TransformPlan is
// that clear specification: every detected use case becomes a typed action
// bound to an instantiation site, with the concrete API of this library
// that implements it, ranked by expected impact (event volume weighted by
// detection confidence).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/dsspy.hpp"

namespace dsspy::core {

/// The typed actions an automated transformer would apply.
enum class TransformAction : std::uint8_t {
    ParallelizeInsert,    ///< LI  -> par::parallel_build / parallel_append
    UseParallelQueue,     ///< IQ  -> par::ConcurrentQueue
    ParallelSortAndFill,  ///< SAI -> par::parallel_sort + parallel_build
    ParallelizeSearch,    ///< FS  -> par::parallel_index_of / ParallelList
    ParallelizeReadLoop,  ///< FLR -> par::parallel_reduce / parallel_max_index
    UseDynamicStructure,  ///< IDF -> ds::List instead of resized arrays
    UseStackContainer,    ///< SI  -> ds::Stack
    DropDeadWrites,       ///< WWR -> delete the trailing write loop
    Count,
};

[[nodiscard]] std::string_view transform_action_name(
    TransformAction action) noexcept;

/// The concrete API in this library that implements the action.
[[nodiscard]] std::string_view transform_code_hint(
    TransformAction action) noexcept;

/// Map a use-case category to its transformation action.
[[nodiscard]] TransformAction action_for(UseCaseKind kind) noexcept;

/// One planned transformation step.
struct TransformStep {
    TransformAction action = TransformAction::ParallelizeInsert;
    UseCaseKind source = UseCaseKind::LongInsert;
    runtime::InstanceInfo instance;
    double confidence = 0.0;       ///< From the use case.
    std::size_t events = 0;        ///< Instance profile size.
    double impact = 0.0;           ///< events * confidence (ranking key).
    bool parallel = false;
    std::string code_hint;
};

/// A whole-program transformation plan, most impactful step first.
struct TransformPlan {
    std::vector<TransformStep> steps;

    [[nodiscard]] std::size_t parallel_steps() const noexcept {
        std::size_t n = 0;
        for (const TransformStep& s : steps)
            if (s.parallel) ++n;
        return n;
    }
};

/// Build a ranked plan from an analysis.
/// `parallel_only`: drop the sequential-optimization steps.
[[nodiscard]] TransformPlan plan_transformations(
    const AnalysisResult& result, bool parallel_only = false);

/// Human-readable rendering of the plan.
void print_transform_plan(std::ostream& os, const TransformPlan& plan);

}  // namespace dsspy::core
