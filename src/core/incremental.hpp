// The incremental streaming analyzer (DESIGN.md §8).
//
// Post-mortem DSspy materializes every access event, then runs pattern
// detection and use-case classification over the finalized store.  The
// IncrementalAnalyzer folds each event into O(1) per-instance state as it
// arrives — per-thread pattern runs (shared PatternMachine), end-traffic
// counters, read/write ratios, tail-phase and Sort-After-Insert
// bookkeeping — and classifies from those aggregates on demand.  Memory is
// bounded by the number of live instances (times recording threads), not
// by the event count.
//
// Equivalence: both pipelines reduce to the same InstanceStats and
// classify through the same UseCaseEngine::classify(const InstanceStats&),
// so verdicts, reasons, recommendations and confidences are bit-identical
// (tests/test_incremental.cpp holds this over every app and corpus
// workload).
//
// Contract: events must be folded in per-instance seq order (the order the
// finalized ProfileStore would present).  ProfilingSession's incremental
// sink, trace files written by write_trace, and per-instance replays all
// satisfy this.  Instance metadata should be declared before (or with) the
// instance's first event so Array-specific rules see the right kind.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <mutex>
#include <span>
#include <vector>

#include "core/detector_config.hpp"
#include "core/instance_stats.hpp"
#include "core/pattern_machine.hpp"
#include "core/use_cases.hpp"
#include "runtime/access_event.hpp"
#include "runtime/instance_registry.hpp"

namespace dsspy::runtime {
class ProfilingSession;
}  // namespace dsspy::runtime

namespace dsspy::core {

/// One instance in a streaming report: folded aggregates plus the use
/// cases classified from them.
struct StreamInstance {
    InstanceStats stats;
    std::vector<UseCase> use_cases;

    [[nodiscard]] bool flagged() const noexcept { return !use_cases.empty(); }

    [[nodiscard]] bool flagged_parallel() const noexcept {
        for (const UseCase& uc : use_cases)
            if (uc.parallel_potential()) return true;
        return false;
    }

    /// Completed patterns on the instance (sum over pattern kinds); equals
    /// the post-mortem pattern count for the same events.
    [[nodiscard]] std::size_t total_patterns() const noexcept {
        std::size_t n = 0;
        for (const std::size_t c : stats.pattern_counts) n += c;
        return n;
    }
};

/// Streaming counterpart of AnalysisResult: same aggregate accessors,
/// produced from folded state instead of a materialized event store.
class StreamReport {
public:
    [[nodiscard]] const std::vector<StreamInstance>& instances()
        const noexcept {
        return instances_;
    }

    /// All use cases across all instances, in instance order.
    [[nodiscard]] std::vector<UseCase> all_use_cases() const;

    /// Count of use cases per kind (indexed by UseCaseKind).
    [[nodiscard]] std::array<std::size_t, kUseCaseKindCount>
    use_case_counts() const;

    /// Number of registered list/array instances (Table IV denominator).
    [[nodiscard]] std::size_t list_array_instances() const noexcept {
        return list_array_instances_;
    }

    /// All registered instances regardless of kind.
    [[nodiscard]] std::size_t total_instances() const noexcept {
        return total_instances_;
    }

    /// List/array instances flagged with at least one parallel use case.
    [[nodiscard]] std::size_t flagged_instances() const noexcept;

    /// 1 - flagged/total over list+array instances; 0 with no instances.
    [[nodiscard]] double search_space_reduction() const noexcept;

    /// Total number of folded access events (including instances that are
    /// not in the registered list).
    [[nodiscard]] std::size_t total_events() const noexcept {
        return total_events_;
    }

private:
    friend class IncrementalAnalyzer;
    std::vector<StreamInstance> instances_;
    std::size_t list_array_instances_ = 0;
    std::size_t total_instances_ = 0;
    std::size_t total_events_ = 0;
};

/// Folds a per-instance seq-ordered event stream into bounded state and
/// classifies it on demand.  Thread-safe: fold/declare/snapshot may be
/// called concurrently (a mutex serializes them), so a collector thread
/// can fold while another thread takes live snapshots.
class IncrementalAnalyzer {
public:
    explicit IncrementalAnalyzer(DetectorConfig config = {})
        : config_(config), engine_(config) {}

    /// Register instance metadata (kind drives the Array-specific rules).
    /// Idempotent; later declarations update the stored metadata.
    void declare_instance(const runtime::InstanceInfo& info);

    /// Fold one event (must be the next event of its instance).
    void fold(const runtime::AccessEvent& ev);

    /// Fold a batch under one lock acquisition.  Events of different
    /// instances may interleave; each instance's sub-sequence must be in
    /// its seq order.
    void fold(std::span<const runtime::AccessEvent> events);

    /// Events folded so far.
    [[nodiscard]] std::uint64_t events_folded() const;

    /// Classify the state seen so far without disturbing it: open pattern
    /// runs are flushed virtually (on a copy), exactly as if the stream
    /// ended here.  `instances` is the registered-instance list (e.g.
    /// session.registry().snapshot() or a trace's instance table); kinds
    /// recorded at declare/fold time are used for rule selection.
    [[nodiscard]] StreamReport snapshot(
        const std::vector<runtime::InstanceInfo>& instances) const;

    /// Terminal classification: flushes open runs in place and reports.
    /// Further folding after finish() is not supported.
    [[nodiscard]] StreamReport finish(
        const std::vector<runtime::InstanceInfo>& instances);

    [[nodiscard]] const DetectorConfig& config() const noexcept {
        return config_;
    }

private:
    /// Closed insertion pattern still inside the Sort-After-Insert gap
    /// window (candidate for a future Sort).
    struct SaiCandidate {
        std::uint32_t first = 0;
        std::uint32_t last = 0;
        std::uint32_t length = 0;
    };

    /// Everything folded for one instance.  All containers are bounded by
    /// the number of recording threads and the SAI gap window — never by
    /// the event count.
    struct State {
        bool declared = false;
        runtime::DsKind kind = runtime::DsKind::List;
        std::uint32_t next_index = 0;  ///< Per-instance event index.

        std::array<std::size_t, kAccessTypeCount> counts{};
        std::uint64_t first_ns = 0;
        std::uint64_t last_ns = 0;
        std::size_t max_size = 0;
        std::vector<runtime::ThreadId> threads;

        AccessType tail_type = AccessType::Read;
        std::size_t tail_length = 0;
        std::uint32_t tail_last_size = 0;

        double weighted_reads = 0.0;
        double weighted_total = 0.0;
        std::size_t resizes = 0;
        EndTraffic iq_traffic;
        EndTraffic edge_traffic;

        detail::PatternMachine machine{3};

        std::array<std::size_t, kPatternKindCount> pattern_counts{};
        std::size_t long_insert_events = 0;
        std::uint64_t long_insert_ns = 0;
        bool has_longest_insert = false;
        std::uint32_t longest_insert_length = 0;
        std::uint32_t longest_insert_first = 0;
        bool longest_insert_front = false;
        std::size_t read_pattern_events = 0;
        std::size_t long_read_patterns = 0;

        // Sort-After-Insert bookkeeping (see incremental.cpp for the
        // equivalence argument).
        std::deque<SaiCandidate> sai_closed;
        std::vector<std::uint32_t> sai_pending;
        bool sai_match = false;
        std::uint32_t sai_sort = 0;
        std::uint32_t sai_first = 0;
        std::uint32_t sai_length = 0;
    };

    State& state_for(runtime::InstanceId id);
    void fold_locked(const runtime::AccessEvent& ev);
    void absorb_pattern(State& st, const Pattern& p, std::uint64_t first_ns,
                        std::uint64_t last_ns) const;
    void on_sort(State& st, std::uint32_t index);
    static void merge_sai(State& st, std::uint32_t sort_index,
                          std::uint32_t first, std::uint32_t length);
    [[nodiscard]] StreamReport report_from(
        std::vector<State> states,
        const std::vector<runtime::InstanceInfo>& instances) const;
    [[nodiscard]] static InstanceStats to_stats(
        const State& st, const runtime::InstanceInfo& info);

    DetectorConfig config_;
    UseCaseEngine engine_;
    mutable std::mutex mutex_;
    std::vector<State> states_;  ///< Indexed by InstanceId.
    std::uint64_t events_folded_ = 0;
};

/// Wire an analyzer into a session: instance registrations flow to
/// declare_instance() and ordered event batches to fold().  Instances
/// already registered are declared immediately.  Call before the session
/// records its first event; the analyzer must outlive the session's
/// stop().  Typically paired with AnalysisMode::Incremental so the session
/// retains no events.
void attach_incremental(runtime::ProfilingSession& session,
                        IncrementalAnalyzer& analyzer);

}  // namespace dsspy::core
