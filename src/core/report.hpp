// Textual use-case reports in the format of the paper's Table V.
#pragma once

#include <ostream>
#include <string>

#include "core/dsspy.hpp"

namespace dsspy::core {

/// Render all use cases of an analysis in Table V format:
///
///   Use Case 1
///   Class:          GPdotNet.Engine.CHPopulation
///   Method:         FitnessProportionateSelection
///   Position:       68
///   Data structure: Array<System.Double>
///   Use Case:       Frequent-Long-Read
///   Reason:         ...
///   Recommendation: ...
void print_use_case_report(std::ostream& os, const AnalysisResult& result,
                           bool parallel_only = false);

/// One-line summary per instance: events, patterns, use-case codes.
void print_instance_summary(std::ostream& os, const AnalysisResult& result);

/// StreamReport overloads: byte-identical output to the post-mortem
/// printers on equivalent analyses (the differential tests hold them to
/// that).
void print_use_case_report(std::ostream& os, const StreamReport& report,
                           bool parallel_only = false);
void print_instance_summary(std::ostream& os, const StreamReport& report);

/// Compact single-use-case block (used by the report and the examples).
[[nodiscard]] std::string format_use_case(const UseCase& use_case,
                                          std::size_t ordinal);

}  // namespace dsspy::core
