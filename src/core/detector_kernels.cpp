#include "core/detector_kernels.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>

#if defined(__x86_64__) && !defined(DSSPY_DISABLE_SIMD)
#define DSSPY_X86_SIMD 1
#include <immintrin.h>
#endif

namespace dsspy::core::kernels {

namespace {

// ---------------------------------------------------------------- dispatch

SimdLevel cpu_best_level() noexcept {
#if DSSPY_X86_SIMD
    if (__builtin_cpu_supports("avx2")) return SimdLevel::Avx2;
    if (__builtin_cpu_supports("sse4.2")) return SimdLevel::Sse42;
#endif
    return SimdLevel::Scalar;
}

SimdLevel detected_level() noexcept {
    static const SimdLevel level = [] {
        const char* force = std::getenv("DSSPY_FORCE_SCALAR");
        if (force != nullptr && force[0] == '1') return SimdLevel::Scalar;
        return cpu_best_level();
    }();
    return level;
}

// -1 = no override; otherwise a SimdLevel, clamped to the CPU's best.
std::atomic<int> g_forced_level{-1};

/// Derived-type lookup table: the 12 OpKinds (plus 4 padding slots) folded
/// to AccessType codes, mirroring derive_access_type exactly.
constexpr std::array<std::uint8_t, 16> kOpToType = [] {
    std::array<std::uint8_t, 16> table{};
    for (std::size_t op = 0; op < 16; ++op)
        table[op] = static_cast<std::uint8_t>(
            op < runtime::kOpKindCount
                ? derive_access_type(static_cast<runtime::OpKind>(op))
                : AccessType::Read);
    return table;
}();

constexpr std::uint8_t kTypeRead =
    static_cast<std::uint8_t>(AccessType::Read);
constexpr std::uint8_t kTypeWrite =
    static_cast<std::uint8_t>(AccessType::Write);
constexpr std::uint8_t kTypeInsert =
    static_cast<std::uint8_t>(AccessType::Insert);
constexpr std::uint8_t kTypeDelete =
    static_cast<std::uint8_t>(AccessType::Delete);
constexpr std::uint8_t kTypeSearch =
    static_cast<std::uint8_t>(AccessType::Search);
constexpr std::uint8_t kTypeCopy =
    static_cast<std::uint8_t>(AccessType::Copy);
constexpr std::uint8_t kTypeForAll =
    static_cast<std::uint8_t>(AccessType::ForAll);

// ----------------------------------------------------------- scalar cores

void derive_types_scalar(const std::uint8_t* ops, std::size_t n,
                         std::uint8_t* types) {
    for (std::size_t i = 0; i < n; ++i) types[i] = kOpToType[ops[i] & 0x0F];
}

void type_histogram_scalar(const std::uint8_t* types, std::size_t n,
                           std::array<std::size_t, kAccessTypeCount>& counts) {
    for (std::size_t i = 0; i < n; ++i) ++counts[types[i]];
}

std::uint32_t max_size_scalar(const std::uint32_t* sizes, std::size_t n) {
    std::uint32_t best = 0;
    for (std::size_t i = 0; i < n; ++i) best = std::max(best, sizes[i]);
    return best;
}

std::size_t count_op_scalar(const std::uint8_t* ops, std::size_t n,
                            std::uint8_t op) {
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) count += ops[i] == op ? 1 : 0;
    return count;
}

void end_traffic_scalar(const std::uint8_t* types,
                        const std::int64_t* positions,
                        const std::uint32_t* sizes, std::size_t n,
                        std::size_t iq_window, EndTraffic& iq,
                        EndTraffic& edge) {
    for (std::size_t i = 0; i < n; ++i) {
        const auto type = static_cast<AccessType>(types[i]);
        accumulate_end_traffic(iq, type, positions[i], sizes[i], iq_window);
        accumulate_end_traffic(edge, type, positions[i], sizes[i], 1);
    }
}

void end_traffic_span_scalar(std::uint8_t type,
                             const std::int64_t* positions,
                             const std::uint32_t* sizes, std::size_t n,
                             std::size_t iq_window, EndTraffic& iq,
                             EndTraffic& edge) {
    const auto ty = static_cast<AccessType>(type);
    for (std::size_t i = 0; i < n; ++i) {
        accumulate_end_traffic(iq, ty, positions[i], sizes[i], iq_window);
        accumulate_end_traffic(edge, ty, positions[i], sizes[i], 1);
    }
}

WeightedReads weighted_reads_scalar(const std::uint8_t* types,
                                    const std::uint32_t* sizes,
                                    std::size_t n) {
    WeightedReads acc;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t t = types[i];
        const std::uint64_t weight =
            (t == kTypeForAll && sizes[i] > 0) ? sizes[i] : 1;
        acc.total += weight;
        const bool read_like = t == kTypeRead || t == kTypeSearch ||
                               t == kTypeCopy || t == kTypeForAll;
        acc.reads += read_like ? weight : 0;
    }
    return acc;
}

/// Leading rows equal to `value`.
std::size_t value_streak_scalar(const std::uint8_t* data, std::size_t n,
                                std::uint8_t value) {
    std::size_t i = 0;
    while (i < n && data[i] == value) ++i;
    return i;
}

std::size_t monotone_streak_scalar(const std::uint8_t* types,
                                   const std::int64_t* positions,
                                   const std::uint16_t* threads,
                                   std::size_t n, std::uint8_t type,
                                   std::uint16_t tid, std::int64_t prev_pos,
                                   std::int64_t dir) {
    std::size_t i = 0;
    std::int64_t expect = prev_pos + dir;
    while (i < n && expect >= 0 && types[i] == type && threads[i] == tid &&
           positions[i] == expect) {
        ++i;
        expect += dir;
    }
    return i;
}

std::size_t end_anchor_streak_scalar(const std::uint8_t* types,
                                     const std::int64_t* positions,
                                     const std::uint32_t* sizes,
                                     const std::uint16_t* threads,
                                     std::size_t n, std::uint8_t type,
                                     std::uint16_t tid, EndAnchor anchor) {
    std::size_t i = 0;
    switch (anchor) {
        case EndAnchor::InsertBack:
            while (i < n && types[i] == type && threads[i] == tid &&
                   positions[i] ==
                       static_cast<std::int64_t>(sizes[i]) - 1)
                ++i;
            break;
        case EndAnchor::DeleteBack:
            while (i < n && types[i] == type && threads[i] == tid &&
                   positions[i] == static_cast<std::int64_t>(sizes[i]))
                ++i;
            break;
        case EndAnchor::Front:
            while (i < n && types[i] == type && threads[i] == tid &&
                   positions[i] == 0)
                ++i;
            break;
    }
    return i;
}

/// Derived category None: neither opens nor extends a run.
bool is_flushable_row(std::uint8_t type, std::int64_t position) noexcept {
    if (type >= kTypeSearch && type < kTypeForAll) return true;
    return (type == kTypeRead || type == kTypeWrite) && position < 0;
}

std::size_t flushable_streak_scalar(const std::uint8_t* types,
                                    const std::int64_t* positions,
                                    const std::uint16_t* threads,
                                    std::size_t n, std::uint16_t tid) {
    std::size_t i = 0;
    while (i < n && threads[i] == tid &&
           is_flushable_row(types[i], positions[i]))
        ++i;
    return i;
}

// ------------------------------------------------------------ SSE4.2 path
//
// SSE covers the byte-wide scans (type derivation, histograms, counts,
// equality streaks) where 16-lane compares already pay off; the 64-bit
// predicate folds stay on the scalar core at this tier.

#if DSSPY_X86_SIMD

__attribute__((target("sse4.2"))) void derive_types_sse42(
    const std::uint8_t* ops, std::size_t n, std::uint8_t* types) {
    const __m128i table = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(kOpToType.data()));
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(ops + i));
        _mm_storeu_si128(reinterpret_cast<__m128i*>(types + i),
                         _mm_shuffle_epi8(table, v));
    }
    derive_types_scalar(ops + i, n - i, types + i);
}

__attribute__((target("sse4.2"))) void type_histogram_sse42(
    const std::uint8_t* types, std::size_t n,
    std::array<std::size_t, kAccessTypeCount>& counts) {
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(types + i));
        for (std::size_t t = 0; t < kAccessTypeCount; ++t) {
            const __m128i eq = _mm_cmpeq_epi8(
                v, _mm_set1_epi8(static_cast<char>(t)));
            counts[t] += static_cast<std::size_t>(
                __builtin_popcount(_mm_movemask_epi8(eq)));
        }
    }
    type_histogram_scalar(types + i, n - i, counts);
}

__attribute__((target("sse4.2"))) std::size_t count_op_sse42(
    const std::uint8_t* ops, std::size_t n, std::uint8_t op) {
    std::size_t count = 0;
    const __m128i needle = _mm_set1_epi8(static_cast<char>(op));
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(ops + i));
        count += static_cast<std::size_t>(
            __builtin_popcount(_mm_movemask_epi8(_mm_cmpeq_epi8(v, needle))));
    }
    return count + count_op_scalar(ops + i, n - i, op);
}

__attribute__((target("sse4.2"))) std::uint32_t max_size_sse42(
    const std::uint32_t* sizes, std::size_t n) {
    __m128i best = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(sizes + i));
        best = _mm_max_epu32(best, v);
    }
    alignas(16) std::uint32_t lanes[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), best);
    std::uint32_t out = std::max(std::max(lanes[0], lanes[1]),
                                 std::max(lanes[2], lanes[3]));
    return std::max(out, max_size_scalar(sizes + i, n - i));
}

__attribute__((target("sse4.2"))) std::size_t value_streak_sse42(
    const std::uint8_t* data, std::size_t n, std::uint8_t value) {
    const __m128i needle = _mm_set1_epi8(static_cast<char>(value));
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i v =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
        const int mask = _mm_movemask_epi8(_mm_cmpeq_epi8(v, needle));
        if (mask != 0xFFFF)
            return i + static_cast<std::size_t>(
                           __builtin_ctz(~static_cast<unsigned>(mask)));
    }
    return i + value_streak_scalar(data + i, n - i, value);
}

// -------------------------------------------------------------- AVX2 path

__attribute__((target("avx2"))) void derive_types_avx2(
    const std::uint8_t* ops, std::size_t n, std::uint8_t* types) {
    const __m256i table = _mm256_broadcastsi128_si256(_mm_loadu_si128(
        reinterpret_cast<const __m128i*>(kOpToType.data())));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ops + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(types + i),
                            _mm256_shuffle_epi8(table, v));
    }
    derive_types_scalar(ops + i, n - i, types + i);
}

__attribute__((target("avx2"))) void type_histogram_avx2(
    const std::uint8_t* types, std::size_t n,
    std::array<std::size_t, kAccessTypeCount>& counts) {
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(types + i));
        for (std::size_t t = 0; t < kAccessTypeCount; ++t) {
            const __m256i eq = _mm256_cmpeq_epi8(
                v, _mm256_set1_epi8(static_cast<char>(t)));
            counts[t] += static_cast<std::size_t>(__builtin_popcount(
                static_cast<unsigned>(_mm256_movemask_epi8(eq))));
        }
    }
    type_histogram_scalar(types + i, n - i, counts);
}

__attribute__((target("avx2"))) std::size_t count_op_avx2(
    const std::uint8_t* ops, std::size_t n, std::uint8_t op) {
    std::size_t count = 0;
    const __m256i needle = _mm256_set1_epi8(static_cast<char>(op));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ops + i));
        count += static_cast<std::size_t>(
            __builtin_popcount(static_cast<unsigned>(
                _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle)))));
    }
    return count + count_op_scalar(ops + i, n - i, op);
}

__attribute__((target("avx2"))) std::uint32_t max_size_avx2(
    const std::uint32_t* sizes, std::size_t n) {
    __m256i best = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sizes + i));
        best = _mm256_max_epu32(best, v);
    }
    alignas(32) std::uint32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), best);
    std::uint32_t out = 0;
    for (const std::uint32_t lane : lanes) out = std::max(out, lane);
    return std::max(out, max_size_scalar(sizes + i, n - i));
}

__attribute__((target("avx2"))) std::size_t value_streak_avx2(
    const std::uint8_t* data, std::size_t n, std::uint8_t value) {
    const __m256i needle = _mm256_set1_epi8(static_cast<char>(value));
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i v =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
        const auto mask = static_cast<unsigned>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, needle)));
        if (mask != 0xFFFFFFFFu)
            return i + static_cast<std::size_t>(__builtin_ctz(~mask));
    }
    return i + value_streak_scalar(data + i, n - i, value);
}

/// Horizontal sum of a 4x64 accumulator.
__attribute__((target("avx2"))) std::uint64_t hsum_epi64(__m256i v) {
    alignas(32) std::uint64_t lanes[4];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
    return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

/// Load 4 consecutive u8 values widened to 64-bit lanes.
__attribute__((target("avx2"))) __m256i load4_u8_epi64(
    const std::uint8_t* p) {
    std::uint32_t packed;
    std::memcpy(&packed, p, sizeof(packed));
    return _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(packed)));
}

/// Load 4 consecutive u32 values widened to 64-bit lanes.
__attribute__((target("avx2"))) __m256i load4_u32_epi64(
    const std::uint32_t* p) {
    return _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

__attribute__((target("avx2"))) void end_traffic_avx2(
    const std::uint8_t* types, const std::int64_t* positions,
    const std::uint32_t* sizes, std::size_t n, std::size_t iq_window,
    EndTraffic& iq, EndTraffic& edge) {
    const __m256i zero = _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i insert_t = _mm256_set1_epi64x(kTypeInsert);
    const __m256i delete_t = _mm256_set1_epi64x(kTypeDelete);
    const __m256i read_t = _mm256_set1_epi64x(kTypeRead);
    const __m256i write_t = _mm256_set1_epi64x(kTypeWrite);
    const __m256i wv[2] = {
        _mm256_set1_epi64x(static_cast<long long>(iq_window)), one};
    // Six mask-subtract accumulators per window: every matched lane holds
    // -1, so subtracting the mask adds exactly one per match.
    __m256i acc[2][6] = {};
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i pos = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(positions + i));
        const __m256i sz = load4_u32_epi64(sizes + i);
        const __m256i ty = load4_u8_epi64(types + i);
        // position >= 0  <=>  !(0 > position)
        const __m256i valid = _mm256_andnot_si256(
            _mm256_cmpgt_epi64(zero, pos), _mm256_set1_epi64x(-1));
        const __m256i is_ins =
            _mm256_and_si256(_mm256_cmpeq_epi64(ty, insert_t), valid);
        const __m256i is_del =
            _mm256_and_si256(_mm256_cmpeq_epi64(ty, delete_t), valid);
        const __m256i is_rw = _mm256_and_si256(
            _mm256_or_si256(_mm256_cmpeq_epi64(ty, read_t),
                            _mm256_cmpeq_epi64(ty, write_t)),
            valid);
        for (int win = 0; win < 2; ++win) {
            const __m256i sz_minus_w = _mm256_sub_epi64(sz, wv[win]);
            // pos >= sz - w  <=>  pos > sz - w - 1
            const __m256i back_rw = _mm256_cmpgt_epi64(
                pos, _mm256_sub_epi64(sz_minus_w, one));
            // pos >= sz - w + 1  <=>  pos > sz - w
            const __m256i back_del = _mm256_cmpgt_epi64(pos, sz_minus_w);
            // pos < w
            const __m256i below_w = _mm256_cmpgt_epi64(wv[win], pos);
            const __m256i ins_back = _mm256_and_si256(is_ins, back_rw);
            const __m256i ins_front = _mm256_and_si256(
                is_ins, _mm256_andnot_si256(back_rw, below_w));
            const __m256i del_back = _mm256_and_si256(is_del, back_del);
            const __m256i del_front = _mm256_and_si256(
                is_del, _mm256_andnot_si256(back_del, below_w));
            const __m256i rw_back = _mm256_and_si256(is_rw, back_rw);
            const __m256i rw_front = _mm256_and_si256(
                is_rw, _mm256_andnot_si256(back_rw, below_w));
            acc[win][0] = _mm256_sub_epi64(acc[win][0], ins_front);
            acc[win][1] = _mm256_sub_epi64(acc[win][1], ins_back);
            acc[win][2] = _mm256_sub_epi64(acc[win][2], del_front);
            acc[win][3] = _mm256_sub_epi64(acc[win][3], del_back);
            acc[win][4] = _mm256_sub_epi64(acc[win][4], rw_front);
            acc[win][5] = _mm256_sub_epi64(acc[win][5], rw_back);
        }
    }
    EndTraffic* outs[2] = {&iq, &edge};
    for (int win = 0; win < 2; ++win) {
        outs[win]->front_insert += hsum_epi64(acc[win][0]);
        outs[win]->back_insert += hsum_epi64(acc[win][1]);
        outs[win]->front_delete += hsum_epi64(acc[win][2]);
        outs[win]->back_delete += hsum_epi64(acc[win][3]);
        outs[win]->front_read += hsum_epi64(acc[win][4]);
        outs[win]->back_read += hsum_epi64(acc[win][5]);
    }
    end_traffic_scalar(types + i, positions + i, sizes + i, n - i, iq_window,
                       iq, edge);
}

/// Which of the three end-traffic accumulator pairs a constant-type span
/// feeds; hoisting this to a template parameter removes the per-row type
/// compares that dominate the general kernel.
enum class SpanClass { Insert, Delete, ReadWrite };

template <SpanClass kClass>
__attribute__((target("avx2"))) void end_traffic_span_avx2(
    const std::int64_t* positions, const std::uint32_t* sizes, std::size_t n,
    std::size_t iq_window, EndTraffic& iq, EndTraffic& edge) {
    const __m256i zero = _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i wv[2] = {
        _mm256_set1_epi64x(static_cast<long long>(iq_window)), one};
    __m256i front_acc[2] = {};
    __m256i back_acc[2] = {};
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i pos = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(positions + i));
        const __m256i sz = load4_u32_epi64(sizes + i);
        // position >= 0  <=>  !(0 > position)
        const __m256i valid = _mm256_andnot_si256(
            _mm256_cmpgt_epi64(zero, pos), _mm256_set1_epi64x(-1));
        for (int win = 0; win < 2; ++win) {
            const __m256i sz_minus_w = _mm256_sub_epi64(sz, wv[win]);
            // Insert/ReadWrite back: pos >= sz - w; Delete back:
            // pos >= sz - w + 1 (size recorded after the removal).
            const __m256i back =
                kClass == SpanClass::Delete
                    ? _mm256_cmpgt_epi64(pos, sz_minus_w)
                    : _mm256_cmpgt_epi64(pos,
                                         _mm256_sub_epi64(sz_minus_w, one));
            // front: !back && pos < w
            const __m256i front = _mm256_andnot_si256(
                back, _mm256_cmpgt_epi64(wv[win], pos));
            back_acc[win] = _mm256_sub_epi64(back_acc[win],
                                             _mm256_and_si256(valid, back));
            front_acc[win] = _mm256_sub_epi64(
                front_acc[win], _mm256_and_si256(valid, front));
        }
    }
    EndTraffic* outs[2] = {&iq, &edge};
    for (int win = 0; win < 2; ++win) {
        const std::uint64_t front = hsum_epi64(front_acc[win]);
        const std::uint64_t back = hsum_epi64(back_acc[win]);
        switch (kClass) {
            case SpanClass::Insert:
                outs[win]->front_insert += front;
                outs[win]->back_insert += back;
                break;
            case SpanClass::Delete:
                outs[win]->front_delete += front;
                outs[win]->back_delete += back;
                break;
            case SpanClass::ReadWrite:
                outs[win]->front_read += front;
                outs[win]->back_read += back;
                break;
        }
    }
    const std::uint8_t type = kClass == SpanClass::Insert   ? kTypeInsert
                              : kClass == SpanClass::Delete ? kTypeDelete
                                                            : kTypeRead;
    end_traffic_span_scalar(type, positions + i, sizes + i, n - i, iq_window,
                            iq, edge);
}

__attribute__((target("avx2"))) WeightedReads weighted_reads_avx2(
    const std::uint8_t* types, const std::uint32_t* sizes, std::size_t n) {
    const __m256i zero = _mm256_setzero_si256();
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i forall_t = _mm256_set1_epi64x(kTypeForAll);
    const __m256i read_t = _mm256_set1_epi64x(kTypeRead);
    const __m256i search_t = _mm256_set1_epi64x(kTypeSearch);
    const __m256i copy_t = _mm256_set1_epi64x(kTypeCopy);
    __m256i total_acc = zero;
    __m256i reads_acc = zero;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i ty = load4_u8_epi64(types + i);
        const __m256i sz = load4_u32_epi64(sizes + i);
        const __m256i is_forall = _mm256_cmpeq_epi64(ty, forall_t);
        const __m256i sized = _mm256_cmpgt_epi64(sz, zero);
        const __m256i weighted = _mm256_and_si256(is_forall, sized);
        const __m256i weight = _mm256_blendv_epi8(one, sz, weighted);
        const __m256i read_like = _mm256_or_si256(
            _mm256_or_si256(_mm256_cmpeq_epi64(ty, read_t),
                            _mm256_cmpeq_epi64(ty, search_t)),
            _mm256_or_si256(_mm256_cmpeq_epi64(ty, copy_t), is_forall));
        total_acc = _mm256_add_epi64(total_acc, weight);
        reads_acc = _mm256_add_epi64(reads_acc,
                                     _mm256_and_si256(weight, read_like));
    }
    WeightedReads acc;
    acc.total = hsum_epi64(total_acc);
    acc.reads = hsum_epi64(reads_acc);
    const WeightedReads tail = weighted_reads_scalar(types + i, sizes + i,
                                                     n - i);
    acc.total += tail.total;
    acc.reads += tail.reads;
    return acc;
}

/// Mask of the leading lanes (of 4) satisfying `mask`; returns the streak
/// length within this block via the movemask bit pattern.
__attribute__((target("avx2"))) std::size_t leading_lanes(__m256i mask) {
    const auto bits = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(mask)));
    if (bits == 0xFu) return 4;
    return static_cast<std::size_t>(__builtin_ctz(~bits));
}

__attribute__((target("avx2"))) __m256i load4_u16_epi64(
    const std::uint16_t* p) {
    std::uint64_t packed;
    std::memcpy(&packed, p, sizeof(packed));
    return _mm256_cvtepu16_epi64(
        _mm_cvtsi64_si128(static_cast<long long>(packed)));
}

__attribute__((target("avx2"))) std::size_t monotone_streak_avx2(
    const std::uint8_t* types, const std::int64_t* positions,
    const std::uint16_t* threads, std::size_t n, std::uint8_t type,
    std::uint16_t tid, std::int64_t prev_pos, std::int64_t dir) {
    // Expected positions advance 4*dir per block; stop early on the
    // descending side before the chain would cross zero.
    std::size_t limit = n;
    if (dir < 0)
        limit = std::min<std::size_t>(
            n, prev_pos >= 0 ? static_cast<std::size_t>(prev_pos) : 0);
    const __m256i type_v = _mm256_set1_epi64x(type);
    const __m256i tid_v = _mm256_set1_epi64x(tid);
    __m256i expect = _mm256_set_epi64x(prev_pos + 4 * dir, prev_pos + 3 * dir,
                                       prev_pos + 2 * dir, prev_pos + dir);
    const __m256i step = _mm256_set1_epi64x(4 * dir);
    std::size_t i = 0;
    for (; i + 4 <= limit; i += 4) {
        const __m256i pos = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(positions + i));
        const __m256i ty = load4_u8_epi64(types + i);
        const __m256i th = load4_u16_epi64(threads + i);
        const __m256i ok = _mm256_and_si256(
            _mm256_cmpeq_epi64(pos, expect),
            _mm256_and_si256(_mm256_cmpeq_epi64(ty, type_v),
                             _mm256_cmpeq_epi64(th, tid_v)));
        const std::size_t lanes = leading_lanes(ok);
        if (lanes < 4) return i + lanes;
        expect = _mm256_add_epi64(expect, step);
    }
    return i + monotone_streak_scalar(types + i, positions + i, threads + i,
                                      n - i, type, tid,
                                      prev_pos + static_cast<std::int64_t>(i) * dir,
                                      dir);
}

__attribute__((target("avx2"))) std::size_t end_anchor_streak_avx2(
    const std::uint8_t* types, const std::int64_t* positions,
    const std::uint32_t* sizes, const std::uint16_t* threads, std::size_t n,
    std::uint8_t type, std::uint16_t tid, EndAnchor anchor) {
    const __m256i type_v = _mm256_set1_epi64x(type);
    const __m256i tid_v = _mm256_set1_epi64x(tid);
    const __m256i one = _mm256_set1_epi64x(1);
    const __m256i zero = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i pos = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(positions + i));
        const __m256i ty = load4_u8_epi64(types + i);
        const __m256i th = load4_u16_epi64(threads + i);
        __m256i anchor_ok;
        switch (anchor) {
            case EndAnchor::InsertBack:
                anchor_ok = _mm256_cmpeq_epi64(
                    pos, _mm256_sub_epi64(load4_u32_epi64(sizes + i), one));
                break;
            case EndAnchor::DeleteBack:
                anchor_ok =
                    _mm256_cmpeq_epi64(pos, load4_u32_epi64(sizes + i));
                break;
            case EndAnchor::Front:
            default:
                anchor_ok = _mm256_cmpeq_epi64(pos, zero);
                break;
        }
        const __m256i ok = _mm256_and_si256(
            anchor_ok, _mm256_and_si256(_mm256_cmpeq_epi64(ty, type_v),
                                        _mm256_cmpeq_epi64(th, tid_v)));
        const std::size_t lanes = leading_lanes(ok);
        if (lanes < 4) return i + lanes;
    }
    return i + end_anchor_streak_scalar(types + i, positions + i, sizes + i,
                                        threads + i, n - i, type, tid,
                                        anchor);
}

__attribute__((target("avx2"))) std::size_t flushable_streak_avx2(
    const std::uint8_t* types, const std::int64_t* positions,
    const std::uint16_t* threads, std::size_t n, std::uint16_t tid) {
    const __m256i tid_v = _mm256_set1_epi64x(tid);
    const __m256i zero = _mm256_setzero_si256();
    const __m256i search_minus1 = _mm256_set1_epi64x(kTypeSearch - 1);
    const __m256i forall_t = _mm256_set1_epi64x(kTypeForAll);
    const __m256i write_plus1 = _mm256_set1_epi64x(kTypeWrite + 1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i pos = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(positions + i));
        const __m256i ty = load4_u8_epi64(types + i);
        const __m256i th = load4_u16_epi64(threads + i);
        // Search <= type < ForAll (Search/Clear/Copy/Reverse/Sort)...
        const __m256i whole = _mm256_and_si256(
            _mm256_cmpgt_epi64(ty, search_minus1),
            _mm256_cmpgt_epi64(forall_t, ty));
        // ...or a positionless Read/Write (type <= Write and pos < 0).
        const __m256i neg_rw = _mm256_and_si256(
            _mm256_cmpgt_epi64(write_plus1, ty),
            _mm256_cmpgt_epi64(zero, pos));
        const __m256i ok = _mm256_and_si256(
            _mm256_or_si256(whole, neg_rw), _mm256_cmpeq_epi64(th, tid_v));
        const std::size_t lanes = leading_lanes(ok);
        if (lanes < 4) return i + lanes;
    }
    return i + flushable_streak_scalar(types + i, positions + i, threads + i,
                                       n - i, tid);
}

#endif  // DSSPY_X86_SIMD

std::size_t value_streak(const std::uint8_t* data, std::size_t n,
                         std::uint8_t value) {
#if DSSPY_X86_SIMD
    switch (active_simd_level()) {
        case SimdLevel::Avx2: return value_streak_avx2(data, n, value);
        case SimdLevel::Sse42: return value_streak_sse42(data, n, value);
        case SimdLevel::Scalar: break;
    }
#endif
    return value_streak_scalar(data, n, value);
}

}  // namespace

// -------------------------------------------------------------- public API

std::string_view simd_level_name(SimdLevel level) noexcept {
    switch (level) {
        case SimdLevel::Scalar: return "scalar";
        case SimdLevel::Sse42: return "sse4.2";
        case SimdLevel::Avx2: return "avx2";
    }
    return "?";
}

SimdLevel active_simd_level() noexcept {
    const int forced = g_forced_level.load(std::memory_order_relaxed);
    if (forced >= 0)
        return std::min(static_cast<SimdLevel>(forced), cpu_best_level());
    return detected_level();
}

void force_simd_level(SimdLevel level) noexcept {
    g_forced_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void reset_forced_simd_level() noexcept {
    g_forced_level.store(-1, std::memory_order_relaxed);
}

void derive_types(const std::uint8_t* ops, std::size_t n,
                  std::uint8_t* types) {
#if DSSPY_X86_SIMD
    switch (active_simd_level()) {
        case SimdLevel::Avx2: derive_types_avx2(ops, n, types); return;
        case SimdLevel::Sse42: derive_types_sse42(ops, n, types); return;
        case SimdLevel::Scalar: break;
    }
#endif
    derive_types_scalar(ops, n, types);
}

void type_histogram(const std::uint8_t* types, std::size_t n,
                    std::array<std::size_t, kAccessTypeCount>& counts) {
#if DSSPY_X86_SIMD
    switch (active_simd_level()) {
        case SimdLevel::Avx2: type_histogram_avx2(types, n, counts); return;
        case SimdLevel::Sse42: type_histogram_sse42(types, n, counts); return;
        case SimdLevel::Scalar: break;
    }
#endif
    type_histogram_scalar(types, n, counts);
}

std::uint32_t max_size_u32(const std::uint32_t* sizes, std::size_t n) {
#if DSSPY_X86_SIMD
    switch (active_simd_level()) {
        case SimdLevel::Avx2: return max_size_avx2(sizes, n);
        case SimdLevel::Sse42: return max_size_sse42(sizes, n);
        case SimdLevel::Scalar: break;
    }
#endif
    return max_size_scalar(sizes, n);
}

std::size_t distinct_threads(const std::uint16_t* threads, std::size_t n) {
    if (n == 0) return 0;
    // All-equal fast path: single-threaded instances dominate real
    // captures, and the blockwise xor-fold autovectorizes to wide
    // compares — no per-row bitmap work for the common case.
    {
        const std::uint16_t first = threads[0];
        std::size_t i = 1;
        bool uniform = true;
        for (; i + 32 <= n; i += 32) {
            std::uint16_t acc = 0;
            for (std::size_t k = 0; k < 32; ++k)
                acc = static_cast<std::uint16_t>(acc | (threads[i + k] ^
                                                        first));
            if (acc != 0) {
                uniform = false;
                break;
            }
        }
        if (uniform) {
            while (i < n && threads[i] == first) ++i;
            if (i == n) return 1;
        }
    }
    // Small profiles: insertion scan over the handful of ids seen, exactly
    // like the AoS profile constructor.  Large profiles: one bit per
    // possible ThreadId (8 KiB) beats the quadratic scan.
    if (n < 1024) {
        std::vector<std::uint16_t> seen;
        for (std::size_t i = 0; i < n; ++i) {
            if (std::find(seen.begin(), seen.end(), threads[i]) ==
                seen.end())
                seen.push_back(threads[i]);
        }
        return seen.size();
    }
    std::vector<std::uint64_t> bitmap(65536 / 64, 0);
    for (std::size_t i = 0; i < n; ++i)
        bitmap[threads[i] >> 6] |= std::uint64_t{1} << (threads[i] & 63);
    std::size_t count = 0;
    for (const std::uint64_t word : bitmap)
        count += static_cast<std::size_t>(__builtin_popcountll(word));
    return count;
}

std::size_t count_op(const std::uint8_t* ops, std::size_t n,
                     runtime::OpKind op) {
    const auto needle = static_cast<std::uint8_t>(op);
#if DSSPY_X86_SIMD
    switch (active_simd_level()) {
        case SimdLevel::Avx2: return count_op_avx2(ops, n, needle);
        case SimdLevel::Sse42: return count_op_sse42(ops, n, needle);
        case SimdLevel::Scalar: break;
    }
#endif
    return count_op_scalar(ops, n, needle);
}

void end_traffic(const std::uint8_t* types, const std::int64_t* positions,
                 const std::uint32_t* sizes, std::size_t n,
                 std::size_t iq_window, EndTraffic& iq, EndTraffic& edge) {
#if DSSPY_X86_SIMD
    if (active_simd_level() == SimdLevel::Avx2 &&
        iq_window <= static_cast<std::size_t>(
                         std::numeric_limits<std::int64_t>::max())) {
        end_traffic_avx2(types, positions, sizes, n, iq_window, iq, edge);
        return;
    }
#endif
    end_traffic_scalar(types, positions, sizes, n, iq_window, iq, edge);
}

void end_traffic_span(std::uint8_t type, const std::int64_t* positions,
                      const std::uint32_t* sizes, std::size_t n,
                      std::size_t iq_window, EndTraffic& iq,
                      EndTraffic& edge) {
#if DSSPY_X86_SIMD
    if (active_simd_level() == SimdLevel::Avx2 &&
        iq_window <= static_cast<std::size_t>(
                         std::numeric_limits<std::int64_t>::max())) {
        if (type == kTypeInsert) {
            end_traffic_span_avx2<SpanClass::Insert>(positions, sizes, n,
                                                     iq_window, iq, edge);
            return;
        }
        if (type == kTypeDelete) {
            end_traffic_span_avx2<SpanClass::Delete>(positions, sizes, n,
                                                     iq_window, iq, edge);
            return;
        }
        if (type == kTypeRead || type == kTypeWrite) {
            end_traffic_span_avx2<SpanClass::ReadWrite>(positions, sizes, n,
                                                        iq_window, iq, edge);
            return;
        }
    }
#endif
    end_traffic_span_scalar(type, positions, sizes, n, iq_window, iq, edge);
}

WeightedReads weighted_reads(const std::uint8_t* types,
                             const std::uint32_t* sizes, std::size_t n) {
#if DSSPY_X86_SIMD
    if (active_simd_level() == SimdLevel::Avx2)
        return weighted_reads_avx2(types, sizes, n);
#endif
    return weighted_reads_scalar(types, sizes, n);
}

std::vector<Phase> phases_from_types(const std::uint8_t* types,
                                     std::size_t n) {
    std::vector<Phase> phases;
    if (n == 0) return phases;
    std::size_t i = 0;
    while (i < n) {
        // Singleton phases (next row already differs) skip the streak
        // kernel: its dispatch/setup would dominate on type-alternating
        // streams and the answer is known to be 1.
        const std::size_t len =
            (i + 1 == n || types[i + 1] != types[i])
                ? 1
                : value_streak(types + i, n - i, types[i]);
        phases.push_back(Phase{static_cast<AccessType>(types[i]),
                               static_cast<std::uint32_t>(i),
                               static_cast<std::uint32_t>(i + len - 1)});
        i += len;
    }
    return phases;
}

void collect_type_indices(const std::uint8_t* types, std::size_t n,
                          std::uint8_t type, std::vector<std::uint32_t>& out) {
    // memchr is already a vectorized byte scan on every libc we build
    // against; type codes are bytes, so it is the whole kernel.
    const std::uint8_t* base = types;
    std::size_t remaining = n;
    while (remaining > 0) {
        const void* hit = std::memchr(base, type, remaining);
        if (hit == nullptr) break;
        const auto* found = static_cast<const std::uint8_t*>(hit);
        out.push_back(static_cast<std::uint32_t>(found - types));
        remaining -= static_cast<std::size_t>(found - base) + 1;
        base = found + 1;
    }
}

std::size_t monotone_streak(const std::uint8_t* types,
                            const std::int64_t* positions,
                            const std::uint16_t* threads, std::size_t n,
                            std::uint8_t type, std::uint16_t tid,
                            std::int64_t prev_pos, std::int64_t dir) {
#if DSSPY_X86_SIMD
    if (active_simd_level() == SimdLevel::Avx2)
        return monotone_streak_avx2(types, positions, threads, n, type, tid,
                                    prev_pos, dir);
#endif
    return monotone_streak_scalar(types, positions, threads, n, type, tid,
                                  prev_pos, dir);
}

std::size_t end_anchor_streak(const std::uint8_t* types,
                              const std::int64_t* positions,
                              const std::uint32_t* sizes,
                              const std::uint16_t* threads, std::size_t n,
                              std::uint8_t type, std::uint16_t tid,
                              EndAnchor anchor) {
#if DSSPY_X86_SIMD
    if (active_simd_level() == SimdLevel::Avx2)
        return end_anchor_streak_avx2(types, positions, sizes, threads, n,
                                      type, tid, anchor);
#endif
    return end_anchor_streak_scalar(types, positions, sizes, threads, n,
                                    type, tid, anchor);
}

std::size_t flushable_streak(const std::uint8_t* types,
                             const std::int64_t* positions,
                             const std::uint16_t* threads, std::size_t n,
                             std::uint16_t tid) {
#if DSSPY_X86_SIMD
    if (active_simd_level() == SimdLevel::Avx2)
        return flushable_streak_avx2(types, positions, threads, n, tid);
#endif
    return flushable_streak_scalar(types, positions, threads, n, tid);
}

}  // namespace dsspy::core::kernels
