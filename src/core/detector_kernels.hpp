// Vectorized detector kernels over event columns (DESIGN.md §11).
//
// Every kernel is a flat scan over raw column data from a
// runtime::ColumnStore: access-type histograms, position-regularity
// streaks, end-traffic window counts, weighted read totals.  Each has a
// branch-light scalar core (the reference semantics, shared with the AoS
// path via the helpers in instance_stats.hpp) and optional SSE4.2/AVX2
// paths selected by runtime dispatch — the scalar fallback is mandatory
// and always compiled, so every kernel returns the same bits at every
// dispatch level.  All counters are integers; the only floating-point
// outputs (weighted read shares) are computed from exact integer sums, so
// SIMD lane order cannot perturb verdicts.
//
// Dispatch policy: AVX2 > SSE4.2 > scalar, decided once per process from
// CPUID, demoted by the DSSPY_FORCE_SCALAR=1 environment variable (or at
// build time with -DDSSPY_DISABLE_SIMD=ON), and pinned per-test with
// force_simd_level().
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/access_type.hpp"
#include "core/instance_stats.hpp"
#include "core/profile.hpp"
#include "runtime/op.hpp"

namespace dsspy::core::kernels {

/// Instruction-set tier a kernel call may use.
enum class SimdLevel : std::uint8_t { Scalar = 0, Sse42 = 1, Avx2 = 2 };

[[nodiscard]] std::string_view simd_level_name(SimdLevel level) noexcept;

/// The tier dispatch resolved to: the best level the CPU supports, demoted
/// to Scalar when DSSPY_FORCE_SCALAR=1 is set or the build disabled SIMD.
[[nodiscard]] SimdLevel active_simd_level() noexcept;

/// Test hook: pin dispatch to `level` (clamped to what the CPU supports).
void force_simd_level(SimdLevel level) noexcept;

/// Test hook: return to environment/CPUID-based dispatch.
void reset_forced_simd_level() noexcept;

// ---- whole-column folds -------------------------------------------------
// All kernels read exactly `n` rows starting at the given pointers.

/// Map raw op kinds to derived access types (derive_access_type as a
/// 16-entry table lookup; AVX2/SSE use pshufb).  `ops` values must be
/// valid OpKinds (< kOpKindCount), which decode and capture guarantee.
void derive_types(const std::uint8_t* ops, std::size_t n,
                  std::uint8_t* types);

/// Histogram of derived access-type codes.
void type_histogram(const std::uint8_t* types, std::size_t n,
                    std::array<std::size_t, kAccessTypeCount>& counts);

/// Maximum of the size column; 0 when n == 0.
[[nodiscard]] std::uint32_t max_size_u32(const std::uint32_t* sizes,
                                         std::size_t n);

/// Number of distinct thread ids among `n` rows.
[[nodiscard]] std::size_t distinct_threads(const std::uint16_t* threads,
                                           std::size_t n);

/// Number of rows whose raw op equals `op`.
[[nodiscard]] std::size_t count_op(const std::uint8_t* ops, std::size_t n,
                                   runtime::OpKind op);

/// Fold all rows into both end-traffic accumulators in one pass:
/// `iq` with window `iq_window`, `edge` with window 1.  Bit-identical to
/// calling accumulate_end_traffic per event.
void end_traffic(const std::uint8_t* types, const std::int64_t* positions,
                 const std::uint32_t* sizes, std::size_t n,
                 std::size_t iq_window, EndTraffic& iq, EndTraffic& edge);

/// end_traffic over a constant-type span: all `n` rows share derived type
/// `type`, so the per-row type test is hoisted out of the loop and only the
/// two counters that type can touch are accumulated.  Types other than
/// Insert/Delete/Read/Write contribute nothing (callers iterating phases
/// can skip those spans outright).  Bit-identical to end_traffic over a
/// column filled with `type`.
void end_traffic_span(std::uint8_t type, const std::int64_t* positions,
                      const std::uint32_t* sizes, std::size_t n,
                      std::size_t iq_window, EndTraffic& iq,
                      EndTraffic& edge);

/// Exact integer form of the weighted read share: ForAll events weigh
/// their size (when > 0), everything else weighs 1.
struct WeightedReads {
    std::uint64_t reads = 0;
    std::uint64_t total = 0;
};
[[nodiscard]] WeightedReads weighted_reads(const std::uint8_t* types,
                                           const std::uint32_t* sizes,
                                           std::size_t n);

/// Maximal same-type phases over the type column — the same boundaries
/// RuntimeProfile derives from the AoS event span.
[[nodiscard]] std::vector<Phase> phases_from_types(const std::uint8_t* types,
                                                   std::size_t n);

/// Row offsets (relative to `types`) whose derived type equals `type`,
/// appended to `out` in ascending order.
void collect_type_indices(const std::uint8_t* types, std::size_t n,
                          std::uint8_t type, std::vector<std::uint32_t>& out);

// ---- streak scans (pattern-detector fast path) --------------------------
// Each returns how many leading rows of the n-row window satisfy the
// predicate; the pattern machine applies the whole streak as one bulk run
// extension (pattern_machine.hpp).

/// Rows continuing a monotone read/write run: types[i] == type,
/// threads[i] == tid, and positions stepping by `dir` (+1/-1) from
/// `prev_pos`.  The scan stops before the expected position would go
/// negative (a negative read/write position ends a run).
[[nodiscard]] std::size_t monotone_streak(const std::uint8_t* types,
                                          const std::int64_t* positions,
                                          const std::uint16_t* threads,
                                          std::size_t n, std::uint8_t type,
                                          std::uint16_t tid,
                                          std::int64_t prev_pos,
                                          std::int64_t dir);

/// Position anchor of an absorbing insert/delete run state.
enum class EndAnchor : std::uint8_t {
    InsertBack,  ///< position == size - 1 (size recorded after the insert)
    DeleteBack,  ///< position == size (size recorded after the removal)
    Front,       ///< position == 0
};

/// Rows continuing an end-anchored insert/delete run: types[i] == type,
/// threads[i] == tid, and the anchor predicate holds.
[[nodiscard]] std::size_t end_anchor_streak(const std::uint8_t* types,
                                            const std::int64_t* positions,
                                            const std::uint32_t* sizes,
                                            const std::uint16_t* threads,
                                            std::size_t n, std::uint8_t type,
                                            std::uint16_t tid,
                                            EndAnchor anchor);

/// Rows on thread `tid` that can neither open nor extend a run (derived
/// category None: Search/Clear/Copy/Reverse/Sort, or Read/Write with a
/// negative position).  When the thread's run is already closed these rows
/// are no-ops and the detector skips the whole streak.
[[nodiscard]] std::size_t flushable_streak(const std::uint8_t* types,
                                           const std::int64_t* positions,
                                           const std::uint16_t* threads,
                                           std::size_t n, std::uint16_t tid);

}  // namespace dsspy::core::kernels
