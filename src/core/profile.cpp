#include "core/profile.hpp"

#include <algorithm>

namespace dsspy::core {

RuntimeProfile::RuntimeProfile(runtime::InstanceInfo info,
                               std::span<const runtime::AccessEvent> events)
    : info_(std::move(info)), events_(events), total_(events.size()) {
    if (events_.empty()) return;

    std::vector<runtime::ThreadId> threads;
    AccessType current_type = derive_access_type(events_.front().op);
    std::uint32_t phase_start = 0;

    for (std::uint32_t i = 0; i < events_.size(); ++i) {
        const runtime::AccessEvent& ev = events_[i];
        const AccessType type = derive_access_type(ev.op);
        ++counts_[static_cast<std::size_t>(type)];
        max_size_ = std::max(max_size_, static_cast<std::size_t>(ev.size));
        if (std::find(threads.begin(), threads.end(), ev.thread) ==
            threads.end())
            threads.push_back(ev.thread);

        if (type != current_type) {
            phases_.push_back(Phase{current_type, phase_start, i - 1});
            current_type = type;
            phase_start = i;
        }
    }
    phases_.push_back(
        Phase{current_type, phase_start,
              static_cast<std::uint32_t>(events_.size()) - 1});

    duration_ns_ = events_.back().time_ns - events_.front().time_ns;
    thread_count_ = threads.size();
}

RuntimeProfile::RuntimeProfile(runtime::InstanceInfo info,
                               std::span<const runtime::AccessEvent> events,
                               ProfileAggregates aggregates)
    : info_(std::move(info)),
      events_(events),
      total_(aggregates.total_events),
      counts_(aggregates.counts),
      phases_(std::move(aggregates.phases)),
      max_size_(aggregates.max_size),
      duration_ns_(aggregates.duration_ns),
      thread_count_(aggregates.thread_count) {}

double RuntimeProfile::share(AccessType type) const noexcept {
    if (total_ == 0) return 0.0;
    return static_cast<double>(count(type)) / static_cast<double>(total_);
}

double RuntimeProfile::read_like_share() const noexcept {
    if (total_ == 0) return 0.0;
    std::size_t reads = 0;
    for (std::size_t t = 0; t < kAccessTypeCount; ++t) {
        if (is_read_like(static_cast<AccessType>(t))) reads += counts_[t];
    }
    return static_cast<double>(reads) / static_cast<double>(total_);
}

double RuntimeProfile::phase_share(AccessType type,
                                   std::size_t min_phase_events)
    const noexcept {
    if (total_ == 0) return 0.0;
    std::size_t in_phase = 0;
    for (const Phase& phase : phases_) {
        if (phase.type == type && phase.length() >= min_phase_events)
            in_phase += phase.length();
    }
    return static_cast<double>(in_phase) / static_cast<double>(total_);
}

bool RuntimeProfile::has_long_phase(AccessType type,
                                    std::size_t min_events) const noexcept {
    for (const Phase& phase : phases_) {
        if (phase.type == type && phase.length() >= min_events) return true;
    }
    return false;
}

}  // namespace dsspy::core
