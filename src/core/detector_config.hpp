// Threshold configuration for pattern and use-case detection.
//
// Defaults are the values Section III of the paper reports after tuning on
// the 23-program benchmark.  Every bench binary uses the defaults; tests
// exercise non-default configurations as well.
#pragma once

#include <cstddef>
#include <cstdint>

namespace dsspy::core {

/// How "share of runtime" quantities are measured.
///
/// The paper phrases the Long-Insert threshold as ">30% of runtime".  The
/// default measures shares in access events (deterministic and robust for
/// uniform per-event cost); `Time` measures them in wall-clock nanoseconds
/// between the phase's first and last event — closer to the paper's
/// wording when per-event costs differ wildly.
enum class ShareBasis : std::uint8_t { Events, Time };

/// All tunables of the DSspy analysis.
struct DetectorConfig {
    /// Basis for the "share of runtime" thresholds (LI / SAI).
    ShareBasis share_basis = ShareBasis::Events;

    // --- pattern detection -------------------------------------------------

    /// Minimum number of adjacent accesses before a run counts as a
    /// pattern ("Read adjacent elements" needs at least a short streak to
    /// be a regularity rather than noise).
    std::size_t min_pattern_events = 3;

    // --- Long-Insert ----------------------------------------------------------
    /// "...applies to runtime profiles which contain frequent insertion
    /// phases (>30% of runtime)."  Runtime share is measured as the share
    /// of access events belonging to insertion phases.
    double li_min_insert_share = 0.30;
    /// "An insertion phase is classified as long, if it consists of at
    /// least 100 consecutive access events."
    std::size_t li_min_phase_events = 100;

    // --- Implement-Queue ---------------------------------------------------
    /// "...a high amount of read and write accesses (>60% in sum) affect
    /// two different ends of the data structure."
    double iq_min_two_end_share = 0.60;
    /// Minimum total accesses before the rule applies ("a high amount"):
    /// a handful of events on a tiny list is not queue usage.
    std::size_t iq_min_events = 50;
    /// Events within this many slots of position 0 / the last index count
    /// as touching the front / back end.
    std::size_t iq_end_window = 1;
    /// Each end must carry at least this share of the two-end traffic, so
    /// that one hot end alone does not mimic a queue.
    double iq_min_per_end_share = 0.10;

    // --- Sort-After-Insert ------------------------------------------------------
    /// The insertion phase preceding the sort must satisfy the Long-Insert
    /// thresholds (>30% of runtime, >100 consecutive events).
    double sai_min_insert_share = 0.30;
    std::size_t sai_min_phase_events = 100;
    /// The Sort must follow the insertion phase within this many events.
    std::size_t sai_max_gap_events = 8;

    // --- Frequent-Search ----------------------------------------------------
    /// "(>1000 search operations)."
    std::size_t fs_min_search_ops = 1000;
    /// "...at least 2% of all access events are Read-Forward or
    /// Read-Backward patterns."
    double fs_min_read_pattern_share = 0.02;

    // --- Frequent-Long-Read ---------------------------------------------------
    /// ">10 sequential read patterns occur repeatedly."
    std::size_t flr_min_read_patterns = 10;
    /// "50% of all access types have to be Read or Search."
    double flr_min_read_share = 0.50;
    /// "...each pattern has to read at least 50% of the data structure."
    double flr_min_coverage = 0.50;

    // --- Insert/Delete-Front (sequential) ------------------------------------
    /// Number of array reallocations (Resize) before the copy overhead is
    /// flagged.
    std::size_t idf_min_resizes = 10;
    /// Lists with this many front inserts AND front deletes (each) are
    /// flagged for O(n) shifting as well.
    std::size_t idf_min_front_ops = 50;

    // --- Stack-Implementation (sequential) -----------------------------------
    /// Minimum insert+delete traffic before the common-end test applies.
    std::size_t si_min_ops = 20;
    /// Share of insert/delete events that must hit the common end.
    double si_min_common_end_share = 0.95;

    // --- Write-Without-Read (sequential) --------------------------------------
    /// The trailing write phase must have at least this many events...
    std::size_t wwr_min_events = 10;
    /// ...and cover at least this share of the structure.
    double wwr_min_coverage = 0.50;
};

}  // namespace dsspy::core
