#include "core/config_parse.hpp"

#include <charconv>
#include <cstdio>

namespace dsspy::core {

namespace {

bool parse_size(std::string_view text, std::size_t& out) {
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc{} && ptr == text.data() + text.size();
}

bool parse_double(std::string_view text, double& out) {
    const auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), out);
    return ec == std::errc{} && ptr == text.data() + text.size();
}

/// Visit every (name, member) pair of DetectorConfig with `fn(name, ref)`.
template <typename Fn>
void visit_fields(DetectorConfig& config, Fn fn) {
    fn("min_pattern_events", config.min_pattern_events);
    fn("li_min_insert_share", config.li_min_insert_share);
    fn("li_min_phase_events", config.li_min_phase_events);
    fn("iq_min_two_end_share", config.iq_min_two_end_share);
    fn("iq_min_events", config.iq_min_events);
    fn("iq_end_window", config.iq_end_window);
    fn("iq_min_per_end_share", config.iq_min_per_end_share);
    fn("sai_min_insert_share", config.sai_min_insert_share);
    fn("sai_min_phase_events", config.sai_min_phase_events);
    fn("sai_max_gap_events", config.sai_max_gap_events);
    fn("fs_min_search_ops", config.fs_min_search_ops);
    fn("fs_min_read_pattern_share", config.fs_min_read_pattern_share);
    fn("flr_min_read_patterns", config.flr_min_read_patterns);
    fn("flr_min_read_share", config.flr_min_read_share);
    fn("flr_min_coverage", config.flr_min_coverage);
    fn("idf_min_resizes", config.idf_min_resizes);
    fn("idf_min_front_ops", config.idf_min_front_ops);
    fn("si_min_ops", config.si_min_ops);
    fn("si_min_common_end_share", config.si_min_common_end_share);
    fn("wwr_min_events", config.wwr_min_events);
    fn("wwr_min_coverage", config.wwr_min_coverage);
}

}  // namespace

bool apply_config_override(DetectorConfig& config, std::string_view entry) {
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) return false;
    const std::string_view key = entry.substr(0, eq);
    const std::string_view value = entry.substr(eq + 1);

    if (key == "share_basis") {
        if (value == "events") {
            config.share_basis = ShareBasis::Events;
            return true;
        }
        if (value == "time") {
            config.share_basis = ShareBasis::Time;
            return true;
        }
        return false;
    }

    bool applied = false;
    visit_fields(config, [&](std::string_view name, auto& field) {
        if (name != key || applied) return;
        using Field = std::remove_reference_t<decltype(field)>;
        if constexpr (std::is_same_v<Field, std::size_t>) {
            std::size_t parsed{};
            if (parse_size(value, parsed)) {
                field = parsed;
                applied = true;
            }
        } else {
            double parsed{};
            if (parse_double(value, parsed)) {
                field = parsed;
                applied = true;
            }
        }
    });
    return applied;
}

std::vector<std::string> apply_config_overrides(
    DetectorConfig& config, const std::vector<std::string>& entries) {
    std::vector<std::string> rejected;
    for (const std::string& entry : entries) {
        if (!apply_config_override(config, entry)) rejected.push_back(entry);
    }
    return rejected;
}

std::vector<std::string> config_to_strings(const DetectorConfig& config) {
    std::vector<std::string> out;
    out.push_back(std::string("share_basis=") +
                  (config.share_basis == ShareBasis::Time ? "time"
                                                          : "events"));
    // visit_fields needs a mutable reference; copy and visit the copy.
    DetectorConfig copy = config;
    visit_fields(copy, [&out](std::string_view name, auto& field) {
        using Field = std::remove_reference_t<decltype(field)>;
        if constexpr (std::is_same_v<Field, std::size_t>) {
            out.push_back(std::string(name) + "=" + std::to_string(field));
        } else {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.4f",
                          static_cast<double>(field));
            out.push_back(std::string(name) + "=" + buf);
        }
    });
    return out;
}

}  // namespace dsspy::core
