// Streaming form of the eight-pattern detector (Section III-A).
//
// The per-thread run state machine lives here so that the post-mortem
// PatternDetector and the incremental analyzer (DESIGN.md §8) share one
// implementation: both fold events through PatternMachine::step and receive
// completed patterns through a sink callback.  Whatever the detector would
// have emitted over the full profile, the machine emits piecewise — the
// incremental path is equivalent by construction, not by reimplementation.
//
// Indices passed to step() are per-instance event indices (the position the
// event would have in the finalized RuntimeProfile), so emitted Pattern
// first/last fields are identical to the post-mortem detector's.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/access_type.hpp"
#include "core/patterns.hpp"
#include "runtime/access_event.hpp"

namespace dsspy::core::detail {

/// Run category the state machine tracks per thread.
enum class RunCat : std::uint8_t { None, Read, Write, Insert, Delete };

[[nodiscard]] constexpr RunCat category_of(AccessType type,
                                           std::int64_t position) noexcept {
    if (position < 0 &&
        (type == AccessType::Read || type == AccessType::Write))
        return RunCat::None;  // positionless reads/writes cannot form runs
    switch (type) {
        case AccessType::Read: return RunCat::Read;
        case AccessType::Write: return RunCat::Write;
        case AccessType::Insert: return RunCat::Insert;
        case AccessType::Delete: return RunCat::Delete;
        default: return RunCat::None;
    }
}

/// Insert lands at the front?  Positions follow the proxy conventions:
/// size is recorded *after* the insert, position is the landing index.
[[nodiscard]] constexpr bool insert_at_front(std::int64_t pos,
                                             std::uint32_t /*size*/) noexcept {
    return pos == 0;
}
[[nodiscard]] constexpr bool insert_at_back(std::int64_t pos,
                                            std::uint32_t size) noexcept {
    return pos == static_cast<std::int64_t>(size) - 1;
}
/// Delete from the front/back?  Size is recorded *after* the removal, so a
/// back-removal has position == size.
[[nodiscard]] constexpr bool delete_at_front(std::int64_t pos,
                                             std::uint32_t /*size*/) noexcept {
    return pos == 0;
}
[[nodiscard]] constexpr bool delete_at_back(std::int64_t pos,
                                            std::uint32_t size) noexcept {
    return pos == static_cast<std::int64_t>(size);
}

/// Per-thread open run.  first/last are per-instance event indices;
/// first_ns/last_ns mirror them in wall-clock time (the incremental
/// analyzer needs run durations without keeping the events around).
struct PatternRun {
    RunCat cat = RunCat::None;
    std::uint32_t first = 0;
    std::uint32_t last = 0;
    std::uint32_t length = 0;
    std::int64_t start_pos = 0;
    std::int64_t last_pos = 0;
    std::uint32_t last_size = 0;
    int direction = 0;           // 0 until the second event fixes it
    bool all_front = true;       // insert/delete: every access at the front
    bool all_back = true;        // insert/delete: every access at the back
    runtime::ThreadId thread = 0;
    std::uint64_t first_ns = 0;
    std::uint64_t last_ns = 0;
};

/// The per-thread run state machine.  Sink is invoked as
/// `sink(const Pattern&, uint64_t first_ns, uint64_t last_ns)` for every
/// completed pattern (including synthetic ForAll reads, whose two
/// timestamps coincide).
class PatternMachine {
public:
    explicit PatternMachine(std::size_t min_pattern_events) noexcept
        : min_events_(min_pattern_events) {}

    /// Freeze `run` into the pattern it would emit if flushed now.
    /// Returns false when the run is below the length threshold or a
    /// mixed-end insert/delete run that never becomes a pattern.
    [[nodiscard]] bool materialize(const PatternRun& run,
                                   Pattern& out) const noexcept {
        if (run.cat == RunCat::None || run.length < min_events_) return false;
        out.first = run.first;
        out.last = run.last;
        out.length = run.length;
        out.start_pos = run.start_pos;
        out.end_pos = run.last_pos;
        out.thread = run.thread;
        out.synthetic = false;
        const double denom =
            run.last_size > 0 ? static_cast<double>(run.last_size) : 1.0;
        out.coverage = std::min(1.0, static_cast<double>(run.length) / denom);
        switch (run.cat) {
            case RunCat::Read:
                out.kind = run.direction >= 0 ? PatternKind::ReadForward
                                              : PatternKind::ReadBackward;
                return true;
            case RunCat::Write:
                out.kind = run.direction >= 0 ? PatternKind::WriteForward
                                              : PatternKind::WriteBackward;
                return true;
            case RunCat::Insert:
                // Prefer Back when both hold (size stayed at 1).
                if (run.all_back) out.kind = PatternKind::InsertBack;
                else if (run.all_front) out.kind = PatternKind::InsertFront;
                else return false;
                return true;
            case RunCat::Delete:
                if (run.all_back) out.kind = PatternKind::DeleteBack;
                else if (run.all_front) out.kind = PatternKind::DeleteFront;
                else return false;
                return true;
            case RunCat::None: break;
        }
        return false;
    }

    /// Fold one event.  `index` is the per-instance event index.
    template <class Sink>
    void step(std::uint32_t index, const runtime::AccessEvent& ev,
              Sink&& sink) {
        step(index, ev, derive_access_type(ev.op), sink);
    }

    /// Same fold with the access type already derived (the columnar
    /// detector computes the whole type column up front).
    template <class Sink>
    void step(std::uint32_t index, const runtime::AccessEvent& ev,
              AccessType type, Sink&& sink) {
        PatternRun& run = state_for(ev.thread);

        // ForAll: a whole-container traversal is a full sequential read.
        if (type == AccessType::ForAll) {
            flush(run, sink);
            if (ev.size > 0) {
                Pattern p;
                p.kind = PatternKind::ReadForward;
                p.first = p.last = index;
                p.length = ev.size;
                p.start_pos = 0;
                p.end_pos = static_cast<std::int64_t>(ev.size) - 1;
                p.coverage = 1.0;
                p.thread = ev.thread;
                p.synthetic = true;
                sink(p, ev.time_ns, ev.time_ns);
            }
            return;
        }

        const RunCat cat = category_of(type, ev.position);
        if (cat == RunCat::None) {
            flush(run, sink);
            return;
        }

        if (run.cat != cat) {
            flush(run, sink);
            start_run(run, cat, index, ev);
            return;
        }

        bool extends = false;
        switch (cat) {
            case RunCat::Read:
            case RunCat::Write: {
                const std::int64_t step = ev.position - run.last_pos;
                if (run.direction == 0) {
                    extends = (step == 1 || step == -1);
                    if (extends) run.direction = static_cast<int>(step);
                } else {
                    extends = (step == run.direction);
                }
                break;
            }
            case RunCat::Insert: {
                const bool front = run.all_front &&
                                   insert_at_front(ev.position, ev.size);
                const bool back =
                    run.all_back && insert_at_back(ev.position, ev.size);
                extends = front || back;
                if (extends) {
                    run.all_front = front;
                    run.all_back = back;
                }
                break;
            }
            case RunCat::Delete: {
                const bool front = run.all_front &&
                                   delete_at_front(ev.position, ev.size);
                const bool back =
                    run.all_back && delete_at_back(ev.position, ev.size);
                extends = front || back;
                if (extends) {
                    run.all_front = front;
                    run.all_back = back;
                }
                break;
            }
            case RunCat::None: break;
        }

        if (extends) {
            run.last = index;
            ++run.length;
            run.last_pos = ev.position;
            run.last_size = ev.size;
            run.last_ns = ev.time_ns;
        } else {
            flush(run, sink);
            start_run(run, cat, index, ev);
        }
    }

    /// Flush every open run (end of the event stream).
    template <class Sink>
    void finish(Sink&& sink) {
        for (PatternRun& run : per_thread_) flush(run, sink);
    }

    /// Visit every open (non-None) run; the incremental analyzer peeks at
    /// these for Sort-After-Insert bookkeeping and for snapshots.
    template <class Fn>
    void visit_open_runs(Fn&& fn) const {
        for (const PatternRun& run : per_thread_)
            if (run.cat != RunCat::None) fn(run);
    }

    /// Open run of one thread (cat == None when the run is closed).  The
    /// columnar detector inspects this to decide whether a vectorized
    /// streak scan (detector_kernels.hpp) can extend the run in bulk.
    [[nodiscard]] const PatternRun& peek_run(runtime::ThreadId tid) {
        return state_for(tid);
    }

    /// Apply a bulk extension of `count` events to `tid`'s open run, as if
    /// step() had accepted each one: the run state only depends on the
    /// final row of an accepted streak, so the fast path hands the machine
    /// the streak's tail directly.  The caller guarantees every skipped
    /// row would have extended the run (monotone position chain for
    /// read/write, preserved all_front/all_back anchor for insert/delete).
    void extend_run(runtime::ThreadId tid, std::uint32_t last_index,
                    std::int64_t last_pos, std::uint32_t last_size,
                    std::uint64_t last_ns, std::uint32_t count) {
        PatternRun& run = state_for(tid);
        run.last = last_index;
        run.length += count;
        if (run.direction == 0 && count > 0 &&
            (run.cat == RunCat::Read || run.cat == RunCat::Write))
            run.direction = last_pos >= run.last_pos ? 1 : -1;
        run.last_pos = last_pos;
        run.last_size = last_size;
        run.last_ns = last_ns;
    }

private:
    PatternRun& state_for(runtime::ThreadId tid) {
        if (tid >= per_thread_.size()) per_thread_.resize(tid + 1);
        per_thread_[tid].thread = tid;
        return per_thread_[tid];
    }

    static void start_run(PatternRun& run, RunCat cat, std::uint32_t index,
                          const runtime::AccessEvent& ev) noexcept {
        run.cat = cat;
        run.first = run.last = index;
        run.length = 1;
        run.start_pos = run.last_pos = ev.position;
        run.last_size = ev.size;
        run.direction = 0;
        run.all_front = true;
        run.all_back = true;
        run.first_ns = run.last_ns = ev.time_ns;
        if (cat == RunCat::Insert) {
            run.all_front = insert_at_front(ev.position, ev.size);
            run.all_back = insert_at_back(ev.position, ev.size);
        } else if (cat == RunCat::Delete) {
            run.all_front = delete_at_front(ev.position, ev.size);
            run.all_back = delete_at_back(ev.position, ev.size);
        }
    }

    template <class Sink>
    void flush(PatternRun& run, Sink&& sink) {
        Pattern p;
        if (materialize(run, p)) sink(p, run.first_ns, run.last_ns);
        run = PatternRun{.thread = run.thread};
    }

    std::size_t min_events_;
    std::vector<PatternRun> per_thread_;
};

}  // namespace dsspy::core::detail
