#include "core/incremental.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/session.hpp"

// Sort-After-Insert, streamed
// ---------------------------
// Post-mortem SAI picks the earliest Sort event that trails a qualifying
// insertion pattern (length >= sai_min_phase_events, pattern.last < sort,
// gap <= sai_max_gap_events); among that Sort's matches it reports the
// pattern with the smallest first index.  That selection is the
// lexicographic minimum over all (sort_index, pattern_first) match pairs.
//
// The stream discovers every such pair without keeping the events:
//   * patterns flushed before a Sort sit in `sai_closed`, pruned once they
//     fall out of the gap window (a per-thread run sequence has strictly
//     increasing last-indices, so the deque holds at most threads x gap
//     candidates);
//   * a run still open when the Sort arrives has its last-index frozen at
//     a value < sort (an extension would push it past the Sort and void
//     the match), so the Sort is parked in `sai_pending` and re-checked
//     whenever a pattern completes.
// Each discovered pair goes through merge_sai, which keeps the running
// lexicographic minimum — equal to the post-mortem selection.

namespace dsspy::core {

namespace {

/// Self-telemetry ids for the streaming engine (lazy-registered; call
/// sites guard on obs::enabled()).
struct IncrementalMetricIds {
    obs::MetricId events_folded;
    obs::MetricId fold_batch;  ///< Histogram of fold(span) batch sizes.
};

const IncrementalMetricIds& incremental_metrics() {
    static const IncrementalMetricIds ids = [] {
        auto& reg = obs::MetricsRegistry::global();
        return IncrementalMetricIds{
            reg.counter("incremental.events_folded"),
            reg.histogram("incremental.fold_batch_events"),
        };
    }();
    return ids;
}

}  // namespace

std::vector<UseCase> StreamReport::all_use_cases() const {
    std::vector<UseCase> out;
    for (const StreamInstance& si : instances_)
        out.insert(out.end(), si.use_cases.begin(), si.use_cases.end());
    return out;
}

std::array<std::size_t, kUseCaseKindCount> StreamReport::use_case_counts()
    const {
    std::array<std::size_t, kUseCaseKindCount> counts{};
    for (const StreamInstance& si : instances_)
        for (const UseCase& uc : si.use_cases)
            ++counts[static_cast<std::size_t>(uc.kind)];
    return counts;
}

std::size_t StreamReport::flagged_instances() const noexcept {
    std::size_t flagged = 0;
    for (const StreamInstance& si : instances_) {
        const runtime::DsKind kind = si.stats.info.kind;
        const bool counted = kind == runtime::DsKind::List ||
                             kind == runtime::DsKind::Array;
        if (counted && si.flagged_parallel()) ++flagged;
    }
    return flagged;
}

double StreamReport::search_space_reduction() const noexcept {
    if (list_array_instances_ == 0) return 0.0;
    return 1.0 - static_cast<double>(flagged_instances()) /
                     static_cast<double>(list_array_instances_);
}

IncrementalAnalyzer::State& IncrementalAnalyzer::state_for(
    runtime::InstanceId id) {
    if (id >= states_.size()) {
        states_.reserve(id + 1);
        while (states_.size() <= id) {
            states_.emplace_back();
            states_.back().machine =
                detail::PatternMachine(config_.min_pattern_events);
        }
    }
    return states_[id];
}

void IncrementalAnalyzer::declare_instance(
    const runtime::InstanceInfo& info) {
    const std::lock_guard<std::mutex> lock(mutex_);
    State& st = state_for(info.id);
    st.declared = true;
    st.kind = info.kind;
}

void IncrementalAnalyzer::fold(const runtime::AccessEvent& ev) {
    if (obs::enabled())
        obs::MetricsRegistry::global().add(
            incremental_metrics().events_folded);
    const std::lock_guard<std::mutex> lock(mutex_);
    fold_locked(ev);
}

void IncrementalAnalyzer::fold(
    std::span<const runtime::AccessEvent> events) {
    if (obs::enabled() && !events.empty()) {
        auto& reg = obs::MetricsRegistry::global();
        const IncrementalMetricIds& m = incremental_metrics();
        reg.add(m.events_folded, events.size());
        reg.observe(m.fold_batch, events.size());
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    for (const runtime::AccessEvent& ev : events) fold_locked(ev);
}

std::uint64_t IncrementalAnalyzer::events_folded() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_folded_;
}

void IncrementalAnalyzer::fold_locked(const runtime::AccessEvent& ev) {
    ++events_folded_;
    State& st = state_for(ev.instance);
    const std::uint32_t index = st.next_index++;
    const AccessType type = derive_access_type(ev.op);

    ++st.counts[static_cast<std::size_t>(type)];
    st.max_size = std::max(st.max_size, static_cast<std::size_t>(ev.size));
    if (std::find(st.threads.begin(), st.threads.end(), ev.thread) ==
        st.threads.end())
        st.threads.push_back(ev.thread);
    if (index == 0) st.first_ns = ev.time_ns;
    st.last_ns = ev.time_ns;

    // Tail phase: a phase is a maximal run of one derived access type over
    // the instance's whole (cross-thread) event sequence.
    if (index == 0 || type != st.tail_type) {
        st.tail_type = type;
        st.tail_length = 1;
    } else {
        ++st.tail_length;
    }
    st.tail_last_size = ev.size;

    const double weight = type == AccessType::ForAll && ev.size > 0
                              ? static_cast<double>(ev.size)
                              : 1.0;
    st.weighted_total += weight;
    if (is_read_like(type)) st.weighted_reads += weight;
    if (ev.op == runtime::OpKind::Resize) ++st.resizes;
    accumulate_end_traffic(st.iq_traffic, ev, config_.iq_end_window);
    accumulate_end_traffic(st.edge_traffic, ev, 1);

    // Expire closed SAI candidates that left the gap window.  Per-thread
    // last-indices grow monotonically across flushes, so once the front
    // survives, everything that could expire behind it already has.
    while (!st.sai_closed.empty() &&
           st.sai_closed.front().last + config_.sai_max_gap_events < index)
        st.sai_closed.pop_front();

    st.machine.step(index, ev,
                    [this, &st](const Pattern& p, std::uint64_t first_ns,
                                std::uint64_t last_ns) {
                        absorb_pattern(st, p, first_ns, last_ns);
                    });

    if (type == AccessType::Sort) on_sort(st, index);
}

void IncrementalAnalyzer::absorb_pattern(State& st, const Pattern& p,
                                         std::uint64_t first_ns,
                                         std::uint64_t last_ns) const {
    ++st.pattern_counts[static_cast<std::size_t>(p.kind)];
    if (is_read_pattern(p.kind)) {
        if (!p.synthetic) st.read_pattern_events += p.length;
        if (p.coverage >= config_.flr_min_coverage) ++st.long_read_patterns;
    }
    if (!counts_as_insertion_pattern(p, st.kind)) return;
    if (p.length >= config_.li_min_phase_events) {
        st.long_insert_events += p.length;
        if (!p.synthetic) st.long_insert_ns += last_ns - first_ns;
        // Longest qualifying phase, earliest-first tie-break — the same
        // winner the post-mortem first-ordered scan picks.
        if (!st.has_longest_insert ||
            p.length > st.longest_insert_length ||
            (p.length == st.longest_insert_length &&
             p.first < st.longest_insert_first)) {
            st.has_longest_insert = true;
            st.longest_insert_length = p.length;
            st.longest_insert_first = p.first;
            st.longest_insert_front = p.kind == PatternKind::InsertFront;
        }
    }
    if (p.length >= config_.sai_min_phase_events) {
        for (const std::uint32_t sort_index : st.sai_pending) {
            if (p.last < sort_index &&
                sort_index - p.last <= config_.sai_max_gap_events)
                merge_sai(st, sort_index, p.first, p.length);
        }
        st.sai_closed.push_back({p.first, p.last, p.length});
    }
}

void IncrementalAnalyzer::on_sort(State& st, std::uint32_t index) {
    const std::size_t gap = config_.sai_max_gap_events;
    // A strictly earlier matched Sort can never be beaten; later Sorts
    // need no bookkeeping at all.
    if (!(st.sai_match && st.sai_sort < index)) {
        for (const SaiCandidate& c : st.sai_closed) {
            if (c.last < index && index - c.last <= gap)
                merge_sai(st, index, c.first, c.length);
        }
        // A run still open now may flush later with its current (frozen)
        // extent and match this Sort — park it for the flush-time check.
        bool possible = false;
        st.machine.visit_open_runs([&](const detail::PatternRun& run) {
            if (run.last < index && index - run.last <= gap)
                possible = true;
        });
        if (possible) st.sai_pending.push_back(index);
    }
    // Sweep parked Sorts that can no longer be matched or improved upon,
    // keeping the pending list bounded by threads x gap window.
    std::erase_if(st.sai_pending, [&](std::uint32_t sort_index) {
        if (st.sai_match && st.sai_sort < sort_index) return true;
        bool live = false;
        st.machine.visit_open_runs([&](const detail::PatternRun& run) {
            if (run.last < sort_index && sort_index - run.last <= gap)
                live = true;
        });
        return !live;
    });
}

void IncrementalAnalyzer::merge_sai(State& st, std::uint32_t sort_index,
                                    std::uint32_t first,
                                    std::uint32_t length) {
    if (!st.sai_match || sort_index < st.sai_sort ||
        (sort_index == st.sai_sort && first < st.sai_first)) {
        st.sai_match = true;
        st.sai_sort = sort_index;
        st.sai_first = first;
        st.sai_length = length;
    }
}

InstanceStats IncrementalAnalyzer::to_stats(
    const State& st, const runtime::InstanceInfo& info) {
    InstanceStats s;
    s.info = info;
    s.total = st.next_index;
    s.counts = st.counts;
    s.thread_count = st.threads.size();
    s.duration_ns = st.next_index > 0 ? st.last_ns - st.first_ns : 0;
    s.max_size = st.max_size;
    s.pattern_counts = st.pattern_counts;
    s.long_insert_events = st.long_insert_events;
    s.long_insert_ns = st.long_insert_ns;
    s.has_longest_insert = st.has_longest_insert;
    s.longest_insert_length = st.longest_insert_length;
    s.longest_insert_front = st.longest_insert_front;
    s.sai_match = st.sai_match;
    s.sai_phase_length = st.sai_length;
    s.iq_traffic = st.iq_traffic;
    s.edge_traffic = st.edge_traffic;
    s.resizes = st.resizes;
    s.read_pattern_events = st.read_pattern_events;
    s.long_read_patterns = st.long_read_patterns;
    s.weighted_reads = st.weighted_reads;
    s.weighted_total = st.weighted_total;
    s.tail_type = st.tail_type;
    s.tail_length = st.tail_length;
    s.tail_last_size = st.tail_last_size;
    return s;
}

StreamReport IncrementalAnalyzer::report_from(
    std::vector<State> states,
    const std::vector<runtime::InstanceInfo>& instances) const {
    // Flush open runs as if the stream ended here; the pending-Sort checks
    // inside absorb_pattern still apply (a Sort near the stream's end may
    // be matched by a final flush).
    for (State& st : states) {
        st.machine.finish([this, &st](const Pattern& p,
                                      std::uint64_t first_ns,
                                      std::uint64_t last_ns) {
            absorb_pattern(st, p, first_ns, last_ns);
        });
    }

    StreamReport report;
    report.total_instances_ = instances.size();
    for (const State& st : states)
        report.total_events_ += st.next_index;
    report.instances_.reserve(instances.size());
    static const State kEmptyState;
    for (const runtime::InstanceInfo& info : instances) {
        if (info.kind == runtime::DsKind::List ||
            info.kind == runtime::DsKind::Array)
            ++report.list_array_instances_;
        const State& st =
            info.id < states.size() ? states[info.id] : kEmptyState;
        StreamInstance si;
        si.stats = to_stats(st, info);
        si.use_cases = engine_.classify(si.stats);
        report.instances_.push_back(std::move(si));
    }
    return report;
}

StreamReport IncrementalAnalyzer::snapshot(
    const std::vector<runtime::InstanceInfo>& instances) const {
    DSSPY_TRACE_SPAN("incremental.snapshot");
    std::vector<State> copy;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        copy = states_;
    }
    return report_from(std::move(copy), instances);
}

StreamReport IncrementalAnalyzer::finish(
    const std::vector<runtime::InstanceInfo>& instances) {
    DSSPY_TRACE_SPAN("incremental.finish");
    const std::lock_guard<std::mutex> lock(mutex_);
    return report_from(std::move(states_), instances);
}

void attach_incremental(runtime::ProfilingSession& session,
                        IncrementalAnalyzer& analyzer) {
    for (const runtime::InstanceInfo& info : session.registry().snapshot())
        analyzer.declare_instance(info);
    session.set_instance_sink([&analyzer](const runtime::InstanceInfo& info) {
        analyzer.declare_instance(info);
    });
    session.set_event_sink(
        [&analyzer](std::span<const runtime::AccessEvent> events) {
            analyzer.fold(events);
        });
}

}  // namespace dsspy::core
