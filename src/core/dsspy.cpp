#include "core/dsspy.hpp"

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "parallel/parallel_for.hpp"
#include "support/stopwatch.hpp"

namespace dsspy::core {

std::vector<UseCase> AnalysisResult::all_use_cases() const {
    std::vector<UseCase> out;
    for (const InstanceAnalysis& ia : instances_)
        out.insert(out.end(), ia.use_cases.begin(), ia.use_cases.end());
    return out;
}

std::array<std::size_t, kUseCaseKindCount> AnalysisResult::use_case_counts()
    const {
    std::array<std::size_t, kUseCaseKindCount> counts{};
    for (const InstanceAnalysis& ia : instances_)
        for (const UseCase& uc : ia.use_cases)
            ++counts[static_cast<std::size_t>(uc.kind)];
    return counts;
}

std::size_t AnalysisResult::flagged_instances() const noexcept {
    std::size_t flagged = 0;
    for (const InstanceAnalysis& ia : instances_) {
        const runtime::DsKind kind = ia.profile.info().kind;
        const bool counted = kind == runtime::DsKind::List ||
                             kind == runtime::DsKind::Array;
        if (counted && ia.flagged_parallel()) ++flagged;
    }
    return flagged;
}

double AnalysisResult::search_space_reduction() const noexcept {
    if (list_array_instances_ == 0) return 0.0;
    return 1.0 - static_cast<double>(flagged_instances()) /
                     static_cast<double>(list_array_instances_);
}

AnalysisResult Dsspy::analyze(const runtime::ProfilingSession& session,
                              par::ThreadPool* pool) const {
    return analyze(session.registry().snapshot(), session.store(), pool);
}

AnalysisResult Dsspy::analyze(
    const std::vector<runtime::InstanceInfo>& instances,
    const runtime::ProfileStore& store, par::ThreadPool* pool) const {
    DSSPY_SPAN("analyze.total");
    AnalysisResult result;
    result.total_instances_ = instances.size();
    result.total_events_ = store.total_events();

    for (const runtime::InstanceInfo& info : instances) {
        if (info.kind == runtime::DsKind::List ||
            info.kind == runtime::DsKind::Array)
            ++result.list_array_instances_;
    }

    // Each instance is independent (stateless detector/engine, read-only
    // store) and writes only its pre-sized slot, so the parallel loop is
    // deterministic: same instances, same order, same bits.
    result.instances_.resize(instances.size());
    // Per-instance latency histogram, registered once (call sites guard on
    // obs::enabled(); threads observe into their own shards, so the
    // parallel loop stays contention-free).
    static const obs::MetricId instance_ns_metric =
        obs::MetricsRegistry::global().histogram("analyze.instance_ns");
    auto analyze_range = [&](std::size_t lo, std::size_t hi) {
        const bool telemetry = obs::enabled();
        for (std::size_t i = lo; i < hi; ++i) {
            const std::uint64_t begin_ns =
                telemetry ? support::now_ns() : 0;
            const runtime::InstanceInfo& info = instances[i];
            InstanceAnalysis& ia = result.instances_[i];
            ia.profile = RuntimeProfile(info, store.events(info.id));
            ia.patterns = detector_.detect(ia.profile);
            ia.use_cases = engine_.classify(ia.profile, ia.patterns);
            if (telemetry)
                obs::MetricsRegistry::global().observe(
                    instance_ns_metric, support::now_ns() - begin_ns);
        }
    };
    if (pool != nullptr && instances.size() > 1) {
        par::parallel_for_chunks(*pool, 0, instances.size(), analyze_range);
    } else {
        analyze_range(0, instances.size());
    }
    return result;
}

}  // namespace dsspy::core
