#include "core/dsspy.hpp"

namespace dsspy::core {

std::vector<UseCase> AnalysisResult::all_use_cases() const {
    std::vector<UseCase> out;
    for (const InstanceAnalysis& ia : instances_)
        out.insert(out.end(), ia.use_cases.begin(), ia.use_cases.end());
    return out;
}

std::array<std::size_t, kUseCaseKindCount> AnalysisResult::use_case_counts()
    const {
    std::array<std::size_t, kUseCaseKindCount> counts{};
    for (const InstanceAnalysis& ia : instances_)
        for (const UseCase& uc : ia.use_cases)
            ++counts[static_cast<std::size_t>(uc.kind)];
    return counts;
}

std::size_t AnalysisResult::flagged_instances() const noexcept {
    std::size_t flagged = 0;
    for (const InstanceAnalysis& ia : instances_) {
        const runtime::DsKind kind = ia.profile.info().kind;
        const bool counted = kind == runtime::DsKind::List ||
                             kind == runtime::DsKind::Array;
        if (counted && ia.flagged_parallel()) ++flagged;
    }
    return flagged;
}

double AnalysisResult::search_space_reduction() const noexcept {
    if (list_array_instances_ == 0) return 0.0;
    return 1.0 - static_cast<double>(flagged_instances()) /
                     static_cast<double>(list_array_instances_);
}

AnalysisResult Dsspy::analyze(
    const runtime::ProfilingSession& session) const {
    return analyze(session.registry().snapshot(), session.store());
}

AnalysisResult Dsspy::analyze(
    const std::vector<runtime::InstanceInfo>& instances,
    const runtime::ProfileStore& store) const {
    AnalysisResult result;
    result.total_instances_ = instances.size();
    result.total_events_ = store.total_events();

    for (const runtime::InstanceInfo& info : instances) {
        if (info.kind == runtime::DsKind::List ||
            info.kind == runtime::DsKind::Array)
            ++result.list_array_instances_;

        InstanceAnalysis ia;
        ia.profile = RuntimeProfile(info, store.events(info.id));
        ia.patterns = detector_.detect(ia.profile);
        ia.use_cases = engine_.classify(ia.profile, ia.patterns);
        result.instances_.push_back(std::move(ia));
    }
    return result;
}

}  // namespace dsspy::core
