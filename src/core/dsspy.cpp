#include "core/dsspy.hpp"

#include <algorithm>
#include <utility>

#include "core/column_analysis.hpp"
#include "core/detector_kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "support/stopwatch.hpp"

namespace dsspy::core {

std::vector<UseCase> AnalysisResult::all_use_cases() const {
    std::vector<UseCase> out;
    for (const InstanceAnalysis& ia : instances_)
        out.insert(out.end(), ia.use_cases.begin(), ia.use_cases.end());
    return out;
}

std::array<std::size_t, kUseCaseKindCount> AnalysisResult::use_case_counts()
    const {
    std::array<std::size_t, kUseCaseKindCount> counts{};
    for (const InstanceAnalysis& ia : instances_)
        for (const UseCase& uc : ia.use_cases)
            ++counts[static_cast<std::size_t>(uc.kind)];
    return counts;
}

std::size_t AnalysisResult::flagged_instances() const noexcept {
    std::size_t flagged = 0;
    for (const InstanceAnalysis& ia : instances_) {
        const runtime::DsKind kind = ia.profile.info().kind;
        const bool counted = kind == runtime::DsKind::List ||
                             kind == runtime::DsKind::Array;
        if (counted && ia.flagged_parallel()) ++flagged;
    }
    return flagged;
}

double AnalysisResult::search_space_reduction() const noexcept {
    if (list_array_instances_ == 0) return 0.0;
    return 1.0 - static_cast<double>(flagged_instances()) /
                     static_cast<double>(list_array_instances_);
}

AnalysisResult Dsspy::analyze(const runtime::ProfilingSession& session,
                              par::ThreadPool* pool) const {
    return analyze(session.registry().snapshot(), session.store(), pool);
}

AnalysisResult Dsspy::analyze(
    const std::vector<runtime::InstanceInfo>& instances,
    const runtime::ProfileStore& store, par::ThreadPool* pool) const {
    return analyze_columns_impl(instances, store.columns(pool), &store, pool,
                                store.total_events());
}

AnalysisResult Dsspy::analyze(
    const std::vector<runtime::InstanceInfo>& instances,
    const runtime::ColumnStore& columns, par::ThreadPool* pool) const {
    return analyze_columns_impl(instances, columns, nullptr, pool,
                                columns.total_events());
}

AnalysisResult Dsspy::analyze_columns_impl(
    const std::vector<runtime::InstanceInfo>& instances,
    const runtime::ColumnStore& columns,
    const runtime::ProfileStore* aos_store, par::ThreadPool* pool,
    std::size_t total_events) const {
    DSSPY_TRACE_SPAN("analyze.total");
    AnalysisResult result;
    result.total_instances_ = instances.size();
    result.total_events_ = total_events;

    for (const runtime::InstanceInfo& info : instances) {
        if (info.kind == runtime::DsKind::List ||
            info.kind == runtime::DsKind::Array)
            ++result.list_array_instances_;
    }

    // Derived access types for the whole store, computed once and shared
    // read-only by every shard (one pshufb pass instead of a per-event
    // switch in every kernel downstream).
    std::vector<std::uint8_t> types(columns.total_events());
    kernels::derive_types(columns.op(), columns.total_events(), types.data());

    // Each instance is independent (stateless detector/engine, read-only
    // store) and writes only its pre-sized slot, so the parallel loop is
    // deterministic: same instances, same order, same bits.
    result.instances_.resize(instances.size());
    // Per-instance latency histogram, registered once (call sites guard on
    // obs::enabled(); threads observe into their own shards, so the
    // parallel loop stays contention-free).
    static const obs::MetricId instance_ns_metric =
        obs::MetricsRegistry::global().histogram("analyze.instance_ns");
    auto analyze_range = [&](std::size_t lo, std::size_t hi) {
        const bool telemetry = obs::enabled();
        for (std::size_t i = lo; i < hi; ++i) {
            const std::uint64_t begin_ns =
                telemetry ? support::now_ns() : 0;
            const runtime::InstanceInfo& info = instances[i];
            InstanceAnalysis& ia = result.instances_[i];
            const ColumnSlice slice =
                make_slice(columns, columns.range(info.id), types.data());
            ProfileAggregates agg = aggregates_from_columns(slice);
            ia.patterns = detect_patterns_columns(slice, config_);
            const InstanceStats stats = instance_stats_from_columns(
                info, slice, agg, ia.patterns, config_);
            const std::span<const runtime::AccessEvent> events =
                aos_store != nullptr
                    ? aos_store->events(info.id)
                    : std::span<const runtime::AccessEvent>{};
            ia.profile = RuntimeProfile(info, events, std::move(agg));
            ia.use_cases = engine_.classify(stats);
            if (telemetry)
                obs::MetricsRegistry::global().observe(
                    instance_ns_metric, support::now_ns() - begin_ns);
        }
    };
    if (pool != nullptr && instances.size() > 1) {
        // Shard by event count, not instance count: per-instance analysis
        // cost is proportional to the instance's rows, and real profiles
        // are skewed (a handful of hot containers own most events).
        // Contiguous instance blocks with roughly equal event totals keep
        // every worker busy; block boundaries come from the prefix event
        // counts, so the partition is deterministic.
        const std::size_t count = instances.size();
        std::vector<std::size_t> prefix(count + 1, 0);
        for (std::size_t i = 0; i < count; ++i)
            prefix[i + 1] = prefix[i] + columns.range(instances[i].id).size();
        const std::size_t shard_target = std::min<std::size_t>(
            count, static_cast<std::size_t>(pool->thread_count()) * 4);
        std::vector<std::size_t> bounds;
        bounds.reserve(shard_target + 1);
        bounds.push_back(0);
        for (std::size_t s = 1; s < shard_target; ++s) {
            const std::size_t goal = prefix[count] / shard_target * s;
            const auto it =
                std::upper_bound(prefix.begin(), prefix.end(), goal);
            const auto idx = static_cast<std::size_t>(
                std::distance(prefix.begin(), it)) - 1;
            bounds.push_back(std::clamp(idx, bounds.back(), count));
        }
        bounds.push_back(count);
        // Shard spans parent under analyze.total explicitly: pool threads
        // have no TLS context of their own.
        const obs::TraceContext analyze_ctx = obs::current_trace_context();
        par::parallel_for_chunks(
            *pool, 0, bounds.size() - 1,
            [&](std::size_t lo, std::size_t hi) {
                DSSPY_TRACE_SPAN_UNDER("analyze.shard", analyze_ctx);
                for (std::size_t s = lo; s < hi; ++s)
                    analyze_range(bounds[s], bounds[s + 1]);
            });
    } else {
        analyze_range(0, instances.size());
    }
    return result;
}

AnalysisResult Dsspy::analyze_reference(
    const std::vector<runtime::InstanceInfo>& instances,
    const runtime::ProfileStore& store, par::ThreadPool* pool) const {
    DSSPY_TRACE_SPAN("analyze.total");
    AnalysisResult result;
    result.total_instances_ = instances.size();
    result.total_events_ = store.total_events();

    for (const runtime::InstanceInfo& info : instances) {
        if (info.kind == runtime::DsKind::List ||
            info.kind == runtime::DsKind::Array)
            ++result.list_array_instances_;
    }

    result.instances_.resize(instances.size());
    static const obs::MetricId instance_ns_metric =
        obs::MetricsRegistry::global().histogram("analyze.instance_ns");
    auto analyze_range = [&](std::size_t lo, std::size_t hi) {
        const bool telemetry = obs::enabled();
        for (std::size_t i = lo; i < hi; ++i) {
            const std::uint64_t begin_ns =
                telemetry ? support::now_ns() : 0;
            const runtime::InstanceInfo& info = instances[i];
            InstanceAnalysis& ia = result.instances_[i];
            ia.profile = RuntimeProfile(info, store.events(info.id));
            ia.patterns = detector_.detect(ia.profile);
            ia.use_cases = engine_.classify(ia.profile, ia.patterns);
            if (telemetry)
                obs::MetricsRegistry::global().observe(
                    instance_ns_metric, support::now_ns() - begin_ns);
        }
    };
    if (pool != nullptr && instances.size() > 1) {
        const obs::TraceContext analyze_ctx = obs::current_trace_context();
        par::parallel_for_chunks(
            *pool, 0, instances.size(),
            [&](std::size_t lo, std::size_t hi) {
                DSSPY_TRACE_SPAN_UNDER("analyze.shard", analyze_ctx);
                analyze_range(lo, hi);
            });
    } else {
        analyze_range(0, instances.size());
    }
    return result;
}

}  // namespace dsspy::core
