// Machine-readable exports of an analysis result.
//
// DSspy "presents the access profiles, the use cases and the recommended
// actions to the engineer"; besides the human-readable report (report.hpp)
// and the charts (viz/), these exporters emit CSV for spreadsheets and a
// JSON document for downstream tooling (IDE integrations, dashboards).
#pragma once

#include <iosfwd>

#include "core/dsspy.hpp"

namespace dsspy::core {

/// One CSV row per detected use case:
/// class,method,position,type,kind,code,parallel,action,confidence,reason,
/// recommendation
void write_use_cases_csv(std::ostream& os, const AnalysisResult& result);

/// One CSV row per instance with profile aggregates:
/// id,class,method,position,kind,type,events,reads,writes,inserts,deletes,
/// searches,patterns,threads,max_size,flagged_parallel
void write_instances_csv(std::ostream& os, const AnalysisResult& result);

/// StreamReport overloads: same columns, same rows as the post-mortem
/// exporters on equivalent analyses.
void write_use_cases_csv(std::ostream& os, const StreamReport& report);
void write_instances_csv(std::ostream& os, const StreamReport& report);

/// One CSV row per detected pattern:
/// instance_id,kind,first,last,length,start_pos,end_pos,coverage,thread,
/// synthetic
void write_patterns_csv(std::ostream& os, const AnalysisResult& result);

/// Whole analysis as a single JSON document (instances with nested
/// patterns and use cases, plus the search-space summary).  Each use-case
/// object carries a nested `advice` object with the structured verdict.
void write_analysis_json(std::ostream& os, const AnalysisResult& result);

/// Advice-only JSON document (`dsspy advise --json`): one entry per
/// verdict with the structured action, confidence and evidence — the
/// machine-consumable form of the report, without profiles or patterns.
void write_advice_json(std::ostream& os, const AnalysisResult& result);
void write_advice_json(std::ostream& os, const StreamReport& report);

}  // namespace dsspy::core
