// DSspy facade: profile -> patterns -> use cases -> recommendations.
//
// "DSspy uses static and dynamic analyses to collect the runtime profiles,
// to find recurring access patterns and use cases, and to deduce
// recommended actions" (Section IV, Figure 4).  `Dsspy::analyze` runs the
// post-mortem half of that pipeline over a stopped ProfilingSession.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/detector_config.hpp"
#include "core/incremental.hpp"
#include "core/patterns.hpp"
#include "core/profile.hpp"
#include "core/use_cases.hpp"
#include "runtime/column_store.hpp"
#include "runtime/session.hpp"

namespace dsspy::par {
class ThreadPool;
}

namespace dsspy::core {

/// Per-instance analysis output: the profile view, its patterns, and the
/// use cases found on it.
struct InstanceAnalysis {
    RuntimeProfile profile;
    std::vector<Pattern> patterns;
    std::vector<UseCase> use_cases;

    [[nodiscard]] bool flagged() const noexcept { return !use_cases.empty(); }

    [[nodiscard]] bool flagged_parallel() const noexcept {
        for (const UseCase& uc : use_cases)
            if (uc.parallel_potential()) return true;
        return false;
    }
};

/// Whole-session analysis result.
///
/// Lifetime: holds spans into the session's ProfileStore — the session must
/// outlive the result.
class AnalysisResult {
public:
    [[nodiscard]] const std::vector<InstanceAnalysis>& instances()
        const noexcept {
        return instances_;
    }

    /// All use cases across all instances, in instance order.
    [[nodiscard]] std::vector<UseCase> all_use_cases() const;

    /// Count of use cases per kind (indexed by UseCaseKind).
    [[nodiscard]] std::array<std::size_t, kUseCaseKindCount>
    use_case_counts() const;

    /// Number of registered list/array instances — the search-space
    /// denominator used in Table IV ("we manually counted the number of
    /// instantiations of both data structures").
    [[nodiscard]] std::size_t list_array_instances() const noexcept {
        return list_array_instances_;
    }

    /// All registered instances regardless of kind.
    [[nodiscard]] std::size_t total_instances() const noexcept {
        return total_instances_;
    }

    /// List/array instances flagged with at least one parallel use case.
    [[nodiscard]] std::size_t flagged_instances() const noexcept;

    /// 1 - flagged/total over list+array instances (Table IV's
    /// "Search Space Reduction"); 0 when there are no instances.
    [[nodiscard]] double search_space_reduction() const noexcept;

    /// Total number of recorded access events.
    [[nodiscard]] std::size_t total_events() const noexcept {
        return total_events_;
    }

private:
    friend class Dsspy;
    std::vector<InstanceAnalysis> instances_;
    std::size_t list_array_instances_ = 0;
    std::size_t total_instances_ = 0;
    std::size_t total_events_ = 0;
};

/// The analyzer.  Stateless apart from its configuration; reusable.
class Dsspy {
public:
    explicit Dsspy(DetectorConfig config = {})
        : config_(config), detector_(config), engine_(config) {}

    /// Analyze a stopped session: build a profile per instance, detect
    /// patterns, classify use cases.  With a pool, instances are analyzed
    /// in parallel; the result is bit-identical to the sequential run (the
    /// detector and engine are stateless and each instance writes its own
    /// pre-allocated slot).
    [[nodiscard]] AnalysisResult analyze(
        const runtime::ProfilingSession& session,
        par::ThreadPool* pool = nullptr) const;

    /// Analyze explicit instance metadata + a finalized store (e.g. a
    /// trace deserialized with runtime::read_trace).  The store must
    /// outlive the result.  Runs over the store's columnar view with the
    /// vectorized kernels (DESIGN.md §11); the profiles keep their AoS
    /// event spans so reports and the HTML export still see events().
    [[nodiscard]] AnalysisResult analyze(
        const std::vector<runtime::InstanceInfo>& instances,
        const runtime::ProfileStore& store,
        par::ThreadPool* pool = nullptr) const;

    /// Analyze a bare columnar store (the zero-copy DST1 path,
    /// runtime::read_trace_columns): identical verdicts without any AoS
    /// events behind them — profiles have empty events() spans.  The
    /// store must outlive the result.
    [[nodiscard]] AnalysisResult analyze(
        const std::vector<runtime::InstanceInfo>& instances,
        const runtime::ColumnStore& columns,
        par::ThreadPool* pool = nullptr) const;

    /// The pre-columnar AoS implementation, kept as the differential
    /// reference: per-event RuntimeProfile construction, per-step pattern
    /// machine, instance-count work partitioning.  The differential suite
    /// and the benchmark baseline compare analyze() against this.
    [[nodiscard]] AnalysisResult analyze_reference(
        const std::vector<runtime::InstanceInfo>& instances,
        const runtime::ProfileStore& store,
        par::ThreadPool* pool = nullptr) const;

    /// Live snapshot of an incremental analyzer attached to a running
    /// session (attach_incremental): classifies everything folded so far
    /// against the session's current registry, without stopping the
    /// session or disturbing the analyzer's state.
    [[nodiscard]] static StreamReport snapshot(
        const IncrementalAnalyzer& analyzer,
        const runtime::ProfilingSession& session) {
        return analyzer.snapshot(session.registry().snapshot());
    }

    /// Terminal incremental report for a stopped session.
    [[nodiscard]] static StreamReport finish(
        IncrementalAnalyzer& analyzer,
        const runtime::ProfilingSession& session) {
        return analyzer.finish(session.registry().snapshot());
    }

    [[nodiscard]] const DetectorConfig& config() const noexcept {
        return config_;
    }

private:
    [[nodiscard]] AnalysisResult analyze_columns_impl(
        const std::vector<runtime::InstanceInfo>& instances,
        const runtime::ColumnStore& columns,
        const runtime::ProfileStore* aos_store, par::ThreadPool* pool,
        std::size_t total_events) const;

    DetectorConfig config_;
    PatternDetector detector_;
    UseCaseEngine engine_;
};

}  // namespace dsspy::core
