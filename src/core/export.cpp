#include "core/export.hpp"

#include <cstdio>
#include <ostream>
#include <string>

namespace dsspy::core {

namespace {

std::string csv_escape(const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"') out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

std::string json_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size() + 8);
    for (char ch : text) {
        switch (ch) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(ch) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x",
                                  static_cast<unsigned>(ch));
                    out += buf;
                } else {
                    out += ch;
                }
        }
    }
    return out;
}

std::string fmt_double(double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6f", value);
    return buf;
}

/// The structured verdict as a compact JSON object.  Shared by the full
/// analysis document and the advice-only export so the two never drift.
void write_advice_object(std::ostream& os, const Advice& advice) {
    const AdviceEvidence& e = advice.evidence;
    os << "{\"action\": \"" << advice_action_name(advice.action)
       << "\", \"confidence\": " << fmt_double(advice.confidence)
       << ", \"evidence\": {\"share\": " << fmt_double(e.share)
       << ", \"share_threshold\": " << fmt_double(e.share_threshold)
       << ", \"ops\": " << e.ops
       << ", \"ops_threshold\": " << e.ops_threshold
       << ", \"aux_ops\": " << e.aux_ops
       << ", \"phase_length\": " << e.phase_length
       << ", \"at_front\": " << (e.at_front ? "true" : "false")
       << ", \"thread_count\": " << e.thread_count << "}}";
}

/// One verdict entry of the advice-only document.
void write_advice_entry(std::ostream& os, const UseCase& uc) {
    os << "    {\n";
    os << "      \"class\": \""
       << json_escape(uc.instance.location.class_name) << "\",\n";
    os << "      \"method\": \"" << json_escape(uc.instance.location.method)
       << "\",\n";
    os << "      \"position\": " << uc.instance.location.position << ",\n";
    os << "      \"type\": \"" << json_escape(uc.instance.type_name)
       << "\",\n";
    os << "      \"use_case\": \"" << use_case_name(uc.kind) << "\",\n";
    os << "      \"code\": \"" << use_case_code(uc.kind) << "\",\n";
    os << "      \"parallel\": "
       << (uc.parallel_potential() ? "true" : "false") << ",\n";
    os << "      \"advice\": ";
    write_advice_object(os, uc.advice);
    os << ",\n";
    os << "      \"reason\": \"" << json_escape(uc.reason()) << "\",\n";
    os << "      \"recommendation\": \"" << json_escape(uc.recommendation())
       << "\"\n    }";
}

}  // namespace

void write_use_cases_csv(std::ostream& os, const AnalysisResult& result) {
    os << "class,method,position,type,use_case,code,parallel,action,"
          "confidence,reason,recommendation\n";
    for (const InstanceAnalysis& ia : result.instances()) {
        for (const UseCase& uc : ia.use_cases) {
            os << csv_escape(uc.instance.location.class_name) << ','
               << csv_escape(uc.instance.location.method) << ','
               << uc.instance.location.position << ','
               << csv_escape(uc.instance.type_name) << ','
               << use_case_name(uc.kind) << ',' << use_case_code(uc.kind)
               << ',' << (uc.parallel_potential() ? 1 : 0) << ','
               << advice_action_name(uc.advice.action) << ','
               << fmt_double(uc.confidence()) << ','
               << csv_escape(uc.reason()) << ','
               << csv_escape(uc.recommendation()) << '\n';
        }
    }
}

void write_instances_csv(std::ostream& os, const AnalysisResult& result) {
    os << "id,class,method,position,kind,type,events,reads,writes,inserts,"
          "deletes,searches,patterns,threads,max_size,flagged_parallel\n";
    for (const InstanceAnalysis& ia : result.instances()) {
        const RuntimeProfile& p = ia.profile;
        const runtime::InstanceInfo& info = p.info();
        os << info.id << ',' << csv_escape(info.location.class_name) << ','
           << csv_escape(info.location.method) << ','
           << info.location.position << ','
           << runtime::ds_kind_name(info.kind) << ','
           << csv_escape(info.type_name) << ',' << p.total_events() << ','
           << p.count(AccessType::Read) << ',' << p.count(AccessType::Write)
           << ',' << p.count(AccessType::Insert) << ','
           << p.count(AccessType::Delete) << ','
           << p.count(AccessType::Search) << ',' << ia.patterns.size()
           << ',' << p.thread_count() << ',' << p.max_size() << ','
           << (ia.flagged_parallel() ? 1 : 0) << '\n';
    }
}

void write_use_cases_csv(std::ostream& os, const StreamReport& report) {
    os << "class,method,position,type,use_case,code,parallel,action,"
          "confidence,reason,recommendation\n";
    for (const StreamInstance& si : report.instances()) {
        for (const UseCase& uc : si.use_cases) {
            os << csv_escape(uc.instance.location.class_name) << ','
               << csv_escape(uc.instance.location.method) << ','
               << uc.instance.location.position << ','
               << csv_escape(uc.instance.type_name) << ','
               << use_case_name(uc.kind) << ',' << use_case_code(uc.kind)
               << ',' << (uc.parallel_potential() ? 1 : 0) << ','
               << advice_action_name(uc.advice.action) << ','
               << fmt_double(uc.confidence()) << ','
               << csv_escape(uc.reason()) << ','
               << csv_escape(uc.recommendation()) << '\n';
        }
    }
}

void write_instances_csv(std::ostream& os, const StreamReport& report) {
    os << "id,class,method,position,kind,type,events,reads,writes,inserts,"
          "deletes,searches,patterns,threads,max_size,flagged_parallel\n";
    for (const StreamInstance& si : report.instances()) {
        const InstanceStats& s = si.stats;
        const runtime::InstanceInfo& info = s.info;
        os << info.id << ',' << csv_escape(info.location.class_name) << ','
           << csv_escape(info.location.method) << ','
           << info.location.position << ','
           << runtime::ds_kind_name(info.kind) << ','
           << csv_escape(info.type_name) << ',' << s.total << ','
           << s.counts[static_cast<std::size_t>(AccessType::Read)] << ','
           << s.counts[static_cast<std::size_t>(AccessType::Write)] << ','
           << s.counts[static_cast<std::size_t>(AccessType::Insert)] << ','
           << s.counts[static_cast<std::size_t>(AccessType::Delete)] << ','
           << s.counts[static_cast<std::size_t>(AccessType::Search)] << ','
           << si.total_patterns() << ',' << s.thread_count << ','
           << s.max_size << ',' << (si.flagged_parallel() ? 1 : 0) << '\n';
    }
}

void write_patterns_csv(std::ostream& os, const AnalysisResult& result) {
    os << "instance_id,kind,first,last,length,start_pos,end_pos,coverage,"
          "thread,synthetic\n";
    for (const InstanceAnalysis& ia : result.instances()) {
        for (const Pattern& p : ia.patterns) {
            os << ia.profile.info().id << ',' << pattern_name(p.kind) << ','
               << p.first << ',' << p.last << ',' << p.length << ','
               << p.start_pos << ',' << p.end_pos << ','
               << fmt_double(p.coverage) << ',' << p.thread << ','
               << (p.synthetic ? 1 : 0) << '\n';
        }
    }
}

void write_analysis_json(std::ostream& os, const AnalysisResult& result) {
    os << "{\n";
    os << "  \"total_instances\": " << result.total_instances() << ",\n";
    os << "  \"list_array_instances\": " << result.list_array_instances()
       << ",\n";
    os << "  \"flagged_instances\": " << result.flagged_instances() << ",\n";
    os << "  \"search_space_reduction\": "
       << fmt_double(result.search_space_reduction()) << ",\n";
    os << "  \"total_events\": " << result.total_events() << ",\n";
    os << "  \"instances\": [\n";
    bool first_instance = true;
    for (const InstanceAnalysis& ia : result.instances()) {
        if (!first_instance) os << ",\n";
        first_instance = false;
        const RuntimeProfile& p = ia.profile;
        const runtime::InstanceInfo& info = p.info();
        os << "    {\n";
        os << "      \"id\": " << info.id << ",\n";
        os << "      \"kind\": \"" << runtime::ds_kind_name(info.kind)
           << "\",\n";
        os << "      \"type\": \"" << json_escape(info.type_name) << "\",\n";
        os << "      \"class\": \""
           << json_escape(info.location.class_name) << "\",\n";
        os << "      \"method\": \"" << json_escape(info.location.method)
           << "\",\n";
        os << "      \"position\": " << info.location.position << ",\n";
        os << "      \"events\": " << p.total_events() << ",\n";
        os << "      \"threads\": " << p.thread_count() << ",\n";
        os << "      \"max_size\": " << p.max_size() << ",\n";
        os << "      \"patterns\": [";
        bool first_pattern = true;
        for (const Pattern& pat : ia.patterns) {
            if (!first_pattern) os << ", ";
            first_pattern = false;
            os << "{\"kind\": \"" << pattern_name(pat.kind)
               << "\", \"length\": " << pat.length << ", \"coverage\": "
               << fmt_double(pat.coverage) << ", \"thread\": "
               << pat.thread << ", \"synthetic\": "
               << (pat.synthetic ? "true" : "false") << "}";
        }
        os << "],\n";
        os << "      \"use_cases\": [";
        bool first_uc = true;
        for (const UseCase& uc : ia.use_cases) {
            if (!first_uc) os << ", ";
            first_uc = false;
            os << "{\"kind\": \"" << use_case_name(uc.kind)
               << "\", \"code\": \"" << use_case_code(uc.kind)
               << "\", \"parallel\": "
               << (uc.parallel_potential() ? "true" : "false")
               << ", \"advice\": ";
            write_advice_object(os, uc.advice);
            os << ", \"reason\": \"" << json_escape(uc.reason())
               << "\", \"recommendation\": \""
               << json_escape(uc.recommendation()) << "\"}";
        }
        os << "]\n    }";
    }
    os << "\n  ]\n}\n";
}

namespace {

/// Shared frame of the advice-only document: summary counts plus one
/// entry per verdict, ranked by report order.
template <typename Result>
void write_advice_document(std::ostream& os, const Result& result) {
    os << "{\n";
    os << "  \"advice_version\": 1,\n";
    os << "  \"total_instances\": " << result.total_instances() << ",\n";
    os << "  \"flagged_instances\": " << result.flagged_instances() << ",\n";
    os << "  \"search_space_reduction\": "
       << fmt_double(result.search_space_reduction()) << ",\n";
    os << "  \"verdicts\": [\n";
    bool first = true;
    for (const auto& entry : result.instances()) {
        for (const UseCase& uc : entry.use_cases) {
            if (!first) os << ",\n";
            first = false;
            write_advice_entry(os, uc);
        }
    }
    os << "\n  ]\n}\n";
}

}  // namespace

void write_advice_json(std::ostream& os, const AnalysisResult& result) {
    write_advice_document(os, result);
}

void write_advice_json(std::ostream& os, const StreamReport& report) {
    write_advice_document(os, report);
}

}  // namespace dsspy::core
