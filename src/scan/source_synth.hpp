// Synthetic C# source generator for the empirical-study corpus.
//
// The paper scans 37 real open-source C# programs; those sources are not
// redistributable here, so we synthesize C#-like sources that carry the
// *published statistics* (per-kind instance counts, arrays, LOC, list
// member density) and run the same regex scanner over them.  The round
// trip generator -> scanner -> counts reproduces the Section II
// methodology and is property-tested for exactness.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "runtime/op.hpp"
#include "scan/static_scanner.hpp"
#include "support/rng.hpp"

namespace dsspy::scan {

/// Target statistics for one synthetic program.
struct ProgramSpec {
    std::string name;
    std::string domain;
    std::size_t loc = 0;  ///< Target non-empty lines of code.
    std::array<std::size_t, runtime::kDsKindCount> instances{};  ///< Dynamic DS news.
    std::size_t arrays = 0;  ///< `new T[...]` creations.
    /// Fraction of classes that declare a List member (paper: ~1/3).
    double list_member_class_share = 1.0 / 3.0;
    std::uint64_t seed = 1;
};

/// Generate a program whose scan statistics match `spec` exactly
/// (instances, arrays) and approximately (LOC, member density).
[[nodiscard]] SourceProgram synthesize_program(const ProgramSpec& spec);

}  // namespace dsspy::scan
