#include "scan/source_synth.hpp"

#include <algorithm>
#include <vector>

namespace dsspy::scan {

namespace {

using runtime::DsKind;

std::string_view cs_type_name(DsKind kind) {
    return runtime::ds_kind_name(kind);  // CTS names match our enum names
}

std::string_view element_type(support::Rng& rng) {
    static constexpr std::string_view kTypes[] = {
        "int", "double", "string", "long", "float", "bool", "object",
        "DateTime", "Guid",
    };
    return kTypes[rng.next_below(std::size(kTypes))];
}

std::string instantiation_line(DsKind kind, std::size_t index,
                               support::Rng& rng) {
    std::string line = "            var ds";
    line += std::to_string(index);
    line += " = new ";
    line += cs_type_name(kind);
    switch (kind) {
        case DsKind::Dictionary:
        case DsKind::SortedList:
        case DsKind::SortedDictionary:
            line += "<";
            line += element_type(rng);
            line += ", ";
            line += element_type(rng);
            line += ">";
            break;
        case DsKind::Hashtable:
        case DsKind::ArrayList:
            break;  // non-generic in the CTS
        default:
            line += "<";
            line += element_type(rng);
            line += ">";
            break;
    }
    line += "();";
    return line;
}

std::string array_line(std::size_t index, support::Rng& rng) {
    std::string line = "            var arr";
    line += std::to_string(index);
    line += " = new ";
    line += element_type(rng);
    line += "[";
    line += std::to_string(8 + rng.next_below(1024));
    line += "];";
    return line;
}

const char* filler_line(support::Rng& rng) {
    static constexpr const char* kFiller[] = {
        "            total += Compute(i, j);",
        "            if (value > threshold) { Flush(); }",
        "            // process the next work item",
        "            result = Transform(result, factor);",
        "            Log.Write(state);",
        "            index = (index + step) % window;",
        "            bufferidx++;",
        "            checksum ^= value;",
    };
    return kFiller[rng.next_below(std::size(kFiller))];
}

}  // namespace

SourceProgram synthesize_program(const ProgramSpec& spec) {
    support::Rng rng(spec.seed);
    SourceProgram program;
    program.name = spec.name;
    program.domain = spec.domain;

    // Build the flat list of "payload" statements first, then distribute
    // them over classes/methods with filler to hit the LOC target.
    std::vector<std::string> payload;
    std::size_t ds_index = 0;
    for (std::size_t k = 0; k < runtime::kDsKindCount; ++k) {
        for (std::size_t i = 0; i < spec.instances[k]; ++i)
            payload.push_back(instantiation_line(static_cast<DsKind>(k),
                                                 ds_index++, rng));
    }
    for (std::size_t i = 0; i < spec.arrays; ++i)
        payload.push_back(array_line(i, rng));

    // Deterministic shuffle so kinds are interleaved like real code.
    for (std::size_t i = payload.size(); i > 1; --i)
        std::swap(payload[i - 1], payload[rng.next_below(i)]);

    // Structural overhead per class ~ 8 lines, per method ~ 4 lines.
    const std::size_t target_loc = std::max<std::size_t>(
        spec.loc, payload.size() + 16);
    const std::size_t num_classes =
        std::max<std::size_t>(1, target_loc / 120);
    const std::size_t classes_with_member = static_cast<std::size_t>(
        static_cast<double>(num_classes) * spec.list_member_class_share);

    std::size_t payload_cursor = 0;
    std::size_t emitted_loc = 0;
    const std::size_t files =
        std::max<std::size_t>(1, num_classes / 4);

    for (std::size_t f = 0; f < files; ++f) {
        SourceFile file;
        file.name = spec.name + "/Module" + std::to_string(f) + ".cs";
        std::string& src = file.content;
        src += "using System;\n";
        src += "using System.Collections.Generic;\n\n";
        src += "namespace " + spec.name + ".Gen {\n";
        emitted_loc += 4;

        const std::size_t class_lo = f * num_classes / files;
        const std::size_t class_hi = (f + 1) * num_classes / files;
        const std::size_t class_target = target_loc / num_classes;
        for (std::size_t c = class_lo; c < class_hi; ++c) {
            std::size_t class_lines = 0;
            src += "    public class Worker" + std::to_string(c) + " {\n";
            ++class_lines;
            if (c < classes_with_member) {
                src += "        private List<int> items;\n";
                ++class_lines;
            }
            src += "        public void Run(int threshold) {\n";
            src += "            int total = 0;\n";
            class_lines += 2;

            // Payload share of this class.
            const std::size_t payload_share =
                (c + 1) * payload.size() / num_classes -
                c * payload.size() / num_classes;
            for (std::size_t p = 0; p < payload_share; ++p) {
                src += payload[payload_cursor++];
                src += '\n';
                ++class_lines;
            }

            // Filler to approach the per-class LOC target.
            while (class_lines + 2 < class_target) {
                src += filler_line(rng);
                src += '\n';
                ++class_lines;
            }

            src += "        }\n    }\n";
            class_lines += 2;
            emitted_loc += class_lines;
        }
        src += "}\n";
        ++emitted_loc;
        program.files.push_back(std::move(file));
    }

    // Any payload not yet distributed (rounding) goes into the last file.
    if (payload_cursor < payload.size()) {
        std::string& src = program.files.back().content;
        src += "namespace " + spec.name + ".Tail {\n";
        src += "    public class Tail {\n        public void Run() {\n";
        while (payload_cursor < payload.size()) {
            src += payload[payload_cursor++];
            src += '\n';
        }
        src += "        }\n    }\n}\n";
    }

    // Top up LOC with filler in a trailing utility class if we fell short.
    if (emitted_loc + 8 < spec.loc) {
        std::string& src = program.files.back().content;
        src += "namespace " + spec.name + ".Fill {\n";
        src += "    public class Filler {\n        public void Run() {\n";
        for (std::size_t i = emitted_loc + 8; i < spec.loc; ++i) {
            src += filler_line(rng);
            src += '\n';
        }
        src += "        }\n    }\n}\n";
    }

    return program;
}

}  // namespace dsspy::scan
