// Regex-based static analysis of C#-like sources (Section II-A).
//
// "We used regular expressions to gather the number of data structure
// instances, their locations, and their types from the Common Type System."
// The scanner counts instantiations of every dynamic CTS data structure,
// array creations, and list-typed member declarations ("every third class
// contained at least one list instance as member").
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/op.hpp"

namespace dsspy::scan {

/// One source file of a (synthetic or real) C# program.
struct SourceFile {
    std::string name;
    std::string content;
};

/// A program to scan: a named set of source files.
struct SourceProgram {
    std::string name;
    std::string domain;
    std::vector<SourceFile> files;
};

/// One instantiation found by the scanner.
struct ScanHit {
    runtime::DsKind kind = runtime::DsKind::List;
    std::string type_args;   ///< e.g. "Int32" or "String, Int32".
    std::string file;
    std::uint32_t line = 0;
};

/// Aggregated scan result for one program.
struct ScanResult {
    std::string program;
    std::vector<ScanHit> hits;                      ///< Dynamic DS news.
    std::array<std::size_t, runtime::kDsKindCount> by_kind{};
    std::size_t dynamic_total = 0;   ///< All dynamic DS instantiations.
    std::size_t arrays = 0;          ///< `new T[...]` creations.
    std::size_t list_member_decls = 0;  ///< List<>-typed field declarations.
    std::size_t classes = 0;         ///< Class declarations seen.
    std::size_t classes_with_list_member = 0;
    std::size_t loc = 0;             ///< Non-empty source lines.
};

/// The scanner.  Stateless; reusable across programs.
class StaticScanner {
public:
    /// Scan a single file's source text into `result`.
    void scan_file(const SourceFile& file, ScanResult& result) const;

    /// Scan all files of a program.
    [[nodiscard]] ScanResult scan_program(const SourceProgram& program) const;
};

/// Sum of `results[i].by_kind` across programs, per data-structure kind.
[[nodiscard]] std::array<std::size_t, runtime::kDsKindCount>
total_by_kind(const std::vector<ScanResult>& results);

}  // namespace dsspy::scan
