#include "scan/static_scanner.hpp"

#include <regex>

#include "support/strings.hpp"

namespace dsspy::scan {

namespace {

using runtime::DsKind;

/// Map a CTS type name matched by the regex to its DsKind.
DsKind kind_from_name(std::string_view name) {
    if (name == "List") return DsKind::List;
    if (name == "Dictionary") return DsKind::Dictionary;
    if (name == "Stack") return DsKind::Stack;
    if (name == "Queue") return DsKind::Queue;
    if (name == "LinkedList") return DsKind::LinkedList;
    if (name == "SortedList") return DsKind::SortedList;
    if (name == "HashSet") return DsKind::HashSet;
    if (name == "SortedSet") return DsKind::SortedSet;
    if (name == "SortedDictionary") return DsKind::SortedDictionary;
    if (name == "Hashtable") return DsKind::Hashtable;
    return DsKind::List;
}

const std::regex& new_dynamic_re() {
    // new List<int>(... / new Dictionary<string, int>(...
    static const std::regex re(
        R"(new\s+(List|Dictionary|Stack|Queue|LinkedList|SortedList|HashSet|SortedSet|SortedDictionary|Hashtable)\s*<([^<>]*(?:<[^<>]*>)?[^<>]*)>\s*\()");
    return re;
}

const std::regex& new_nongeneric_re() {
    // ArrayList and Hashtable are non-generic in the CTS.
    static const std::regex re(R"(new\s+(ArrayList|Hashtable)\s*\()");
    return re;
}

const std::regex& new_array_re() {
    // new double[256], new int[n], new Foo.Bar[x,y]
    static const std::regex re(R"(new\s+[A-Za-z_][A-Za-z0-9_.]*\s*\[)");
    return re;
}

const std::regex& class_decl_re() {
    static const std::regex re(
        R"((?:public|private|internal|protected|static|sealed|abstract|partial|\s)*class\s+[A-Za-z_][A-Za-z0-9_]*)");
    return re;
}

const std::regex& list_member_re() {
    // List<T>-typed field declaration: "private List<int> items;"
    static const std::regex re(
        R"((?:public|private|protected|internal|readonly|static|\s)+List\s*<[^<>]*(?:<[^<>]*>)?[^<>]*>\s+[A-Za-z_][A-Za-z0-9_]*\s*[;=])");
    return re;
}

}  // namespace

void StaticScanner::scan_file(const SourceFile& file,
                              ScanResult& result) const {
    const std::vector<std::string> lines =
        support::split(file.content, '\n');

    bool file_has_class = false;
    bool current_class_has_list_member = false;

    std::uint32_t line_no = 0;
    for (const std::string& line : lines) {
        ++line_no;
        if (!support::trim(line).empty()) ++result.loc;

        // Class declarations: finish the previous class's member tally.
        if (std::regex_search(line, class_decl_re())) {
            if (file_has_class && current_class_has_list_member)
                ++result.classes_with_list_member;
            ++result.classes;
            file_has_class = true;
            current_class_has_list_member = false;
        }

        // Dynamic data-structure instantiations.
        auto begin = std::sregex_iterator(line.begin(), line.end(),
                                          new_dynamic_re());
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            ScanHit hit;
            hit.kind = kind_from_name((*it)[1].str());
            hit.type_args = (*it)[2].str();
            hit.file = file.name;
            hit.line = line_no;
            ++result.by_kind[static_cast<std::size_t>(hit.kind)];
            ++result.dynamic_total;
            result.hits.push_back(std::move(hit));
        }

        // Non-generic ArrayList / Hashtable.
        auto ng_begin = std::sregex_iterator(line.begin(), line.end(),
                                             new_nongeneric_re());
        for (auto it = ng_begin; it != std::sregex_iterator(); ++it) {
            ScanHit hit;
            hit.kind = (*it)[1].str() == "ArrayList" ? DsKind::ArrayList
                                                     : DsKind::Hashtable;
            hit.file = file.name;
            hit.line = line_no;
            ++result.by_kind[static_cast<std::size_t>(hit.kind)];
            ++result.dynamic_total;
            result.hits.push_back(std::move(hit));
        }

        // Arrays.
        auto arr_begin = std::sregex_iterator(line.begin(), line.end(),
                                              new_array_re());
        result.arrays += static_cast<std::size_t>(
            std::distance(arr_begin, std::sregex_iterator()));

        // List-typed member declarations.
        if (std::regex_search(line, list_member_re())) {
            ++result.list_member_decls;
            current_class_has_list_member = true;
        }
    }
    if (file_has_class && current_class_has_list_member)
        ++result.classes_with_list_member;
}

ScanResult StaticScanner::scan_program(const SourceProgram& program) const {
    ScanResult result;
    result.program = program.name;
    for (const SourceFile& file : program.files) scan_file(file, result);
    return result;
}

std::array<std::size_t, runtime::kDsKindCount> total_by_kind(
    const std::vector<ScanResult>& results) {
    std::array<std::size_t, runtime::kDsKindCount> totals{};
    for (const ScanResult& r : results) {
        for (std::size_t k = 0; k < runtime::kDsKindCount; ++k)
            totals[k] += r.by_kind[k];
    }
    return totals;
}

}  // namespace dsspy::scan
