#include "corpus/program_model.hpp"

#include <algorithm>
#include <cassert>

namespace dsspy::corpus {

namespace {

using runtime::DsKind;

constexpr std::size_t kKinds = runtime::kDsKindCount;

/// Raw program entry before derived fields are filled in.
struct RawProgram {
    const char* name;
    Domain domain;
    std::size_t instances;  // Figure 1 sigma value (0 = not in Figure 1)
    std::size_t loc;        // 0 = unknown, apportioned from domain totals
    bool in_figure1;
};

// The 37 programs of Figure 1.  Sigma values are the published per-program
// instance counts; per-domain sums reproduce Table I exactly:
//   Srch 11, Opt 16, Comp 2, Vis 57, Parser 51, Img lib 60, Game 315,
//   Simulation 150, Graph lib 184, Office 396, DS lib 718  (total 1,960).
// LOC values come from Table II / Table IV where published; the rest are
// apportioned from the domain LOC totals of Table I.
constexpr RawProgram kFigure1Programs[] = {
    // Compression (2 instances, 4,342 LOC)
    {"7zip", Domain::Compression, 2, 4342, true},
    // DS lib (718 instances, 529,164 LOC)
    {"dsa", Domain::DsLib, 10, 4099, true},
    {"compgeo", Domain::DsLib, 13, 0, true},
    {"orazio1", Domain::DsLib, 32, 0, true},
    {"dotspatial", Domain::DsLib, 663, 0, true},
    // Search (11 instances, 1,046 LOC)
    {"Contentfinder", Domain::Search, 11, 1046, true},
    // Optimization (16 instances, 2,048 LOC)
    {"sharpener", Domain::Optimization, 16, 2048, true},
    // Game (315 instances, 45,512 LOC)
    {"rrrsroguelike", Domain::Game, 5, 659, true},
    {"ittycoon.net", Domain::Game, 27, 0, true},
    {"theAirline", Domain::Game, 130, 0, true},
    {"ManicDigger2011", Domain::Game, 153, 24970, true},
    // Graph lib (184 instances, 69,472 LOC)
    {"zedgraph", Domain::GraphLib, 2, 0, true},
    {"TreeLayoutHelper", Domain::GraphLib, 22, 4673, true},
    {"graphsharp", Domain::GraphLib, 160, 0, true},
    // Image lib (60 instances, 41,456 LOC)
    {"cognitionmaster", Domain::ImageLib, 60, 41456, true},
    // Office (396 instances, 151,220 LOC)
    {"ProcessHacker", Domain::Office, 4, 0, true},
    {"BeHappy", Domain::Office, 7, 0, true},
    {"TerraBIB", Domain::Office, 13, 10309, true},
    {"metaclip", Domain::Office, 14, 0, true},
    {"clipper", Domain::Office, 20, 3270, true},
    {"waveletstudio", Domain::Office, 28, 0, true},
    {"netinfotrace", Domain::Office, 30, 7311, true},
    {"dddpds (SmartCA)", Domain::Office, 34, 0, true},
    {"greatmaps", Domain::Office, 77, 0, true},
    {"OsmExplorer", Domain::Office, 169, 0, true},
    // Visualization (57 instances, 10,712 LOC)
    {"SequenceViz", Domain::Visualization, 57, 10712, true},
    // Parser (51 instances, 17,836 LOC)
    {"csparser", Domain::Parser, 51, 17836, true},
    // Simulation (150 instances, 63,548 LOC)
    {"starsystemsimulator", Domain::Simulation, 1, 0, true},
    {"Net_With_UI", Domain::Simulation, 1, 1034, true},
    {"twodsphsim", Domain::Simulation, 8, 0, true},
    {"Arcanum", Domain::Simulation, 2, 0, true},
    {"rushHour", Domain::Simulation, 8, 0, true},
    {"fire", Domain::Simulation, 8, 2137, true},
    {"borys-MeshRouting", Domain::Simulation, 19, 6429, true},
    {"evo", Domain::Simulation, 31, 0, true},
    {"dotqcf", Domain::Simulation, 35, 27170, true},
    {"gpdotnet", Domain::Simulation, 37, 7000, true},
};

// Programs that appear in Table II or Table III but not in Figure 1.
constexpr RawProgram kExtraPrograms[] = {
    {"astrogrep", Domain::Computation, 14, 846, false},
    {"MidiSheetMusic", Domain::Office, 40, 4792, false},
    {"QIT", Domain::Computation, 24, 9200, false},
    {"netlinwhetcpu", Domain::Computation, 7, 400, false},
    {"Mandelbrot", Domain::Computation, 7, 150, false},
    {"quickgraph", Domain::GraphLib, 35, 14500, false},
    {"DambachMulti", Domain::Simulation, 9, 2600, false},
    {"LinearAlgebra", Domain::Computation, 12, 5200, false},
    {"MathNetIridium", Domain::Computation, 28, 22000, false},
    {"DesktopSuche", Domain::Search, 8, 3100, false},
    {"FIPL", Domain::ImageLib, 9, 4400, false},
    {"FreeFlowSPH", Domain::Simulation, 11, 5800, false},
    {"networkminer", Domain::Office, 18, 12400, false},
    {"WordWheelSolver", Domain::Computation, 5, 110, false},
    {"wordSorter", Domain::Computation, 4, 320, false},
    {"Algorithmia", Domain::DsLib, 16, 2800, false},
};

// Table I per-domain LOC totals (used to apportion unknown program LOC).
constexpr std::size_t domain_loc_total(Domain d) {
    switch (d) {
        case Domain::Search: return 1046;
        case Domain::Optimization: return 2048;
        case Domain::Compression: return 4342;
        case Domain::Visualization: return 10712;
        case Domain::Parser: return 17836;
        case Domain::ImageLib: return 41456;
        case Domain::Game: return 45512;
        case Domain::Simulation: return 63548;
        case Domain::GraphLib: return 69472;
        case Domain::Office: return 151220;
        case Domain::DsLib: return 529164;
        default: return 0;
    }
}

// Figure 1 global per-type series: List 1275, Dictionary 324,
// ArrayList 192, Stack 49, Queue 41; "Rest" (79) resolved from the <2%
// percentages: HashSet 38 (1.94%), SortedList 20 (1.02%), SortedSet 10
// (0.51%), SortedDictionary 8 (0.41%), LinkedList 3 (0.15%), Hashtable 0.
std::array<std::size_t, kKinds> figure1_series() {
    std::array<std::size_t, kKinds> t{};
    t[static_cast<std::size_t>(DsKind::List)] = 1275;
    t[static_cast<std::size_t>(DsKind::Dictionary)] = 324;
    t[static_cast<std::size_t>(DsKind::ArrayList)] = 192;
    t[static_cast<std::size_t>(DsKind::Stack)] = 49;
    t[static_cast<std::size_t>(DsKind::Queue)] = 41;
    t[static_cast<std::size_t>(DsKind::HashSet)] = 38;
    t[static_cast<std::size_t>(DsKind::SortedList)] = 20;
    t[static_cast<std::size_t>(DsKind::SortedSet)] = 10;
    t[static_cast<std::size_t>(DsKind::SortedDictionary)] = 8;
    t[static_cast<std::size_t>(DsKind::LinkedList)] = 3;
    t[static_cast<std::size_t>(DsKind::Hashtable)] = 0;
    return t;
}

/// Apportion `total` across weights so that the result sums exactly to
/// `total` (cumulative-floor / Hamilton method — deterministic).
std::vector<std::size_t> apportion(std::size_t total,
                                   const std::vector<std::size_t>& weights) {
    std::vector<std::size_t> out(weights.size(), 0);
    std::size_t weight_sum = 0;
    for (std::size_t w : weights) weight_sum += w;
    if (weight_sum == 0) return out;
    std::size_t cum_weight = 0;
    std::size_t cum_alloc = 0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        cum_weight += weights[i];
        const std::size_t target = total * cum_weight / weight_sum;
        out[i] = target - cum_alloc;
        cum_alloc = target;
    }
    return out;
}

std::vector<ProgramModel> build_all_programs() {
    std::vector<ProgramModel> programs;

    for (const RawProgram& raw : kFigure1Programs) {
        ProgramModel m;
        m.name = raw.name;
        m.domain = raw.domain;
        m.total_instances = raw.instances;
        m.loc = raw.loc;
        programs.push_back(std::move(m));
    }

    // Apportion unknown LOC within each Figure 1 domain so per-domain sums
    // match Table I exactly.
    for (std::size_t d = 0; d < static_cast<std::size_t>(Domain::Count);
         ++d) {
        const Domain domain = static_cast<Domain>(d);
        const std::size_t total = domain_loc_total(domain);
        if (total == 0) continue;
        std::size_t known = 0;
        std::vector<std::size_t> unknown_idx;
        std::vector<std::size_t> unknown_weights;
        for (std::size_t i = 0; i < programs.size(); ++i) {
            if (programs[i].domain != domain) continue;
            if (programs[i].loc > 0) {
                known += programs[i].loc;
            } else {
                unknown_idx.push_back(i);
                unknown_weights.push_back(
                    std::max<std::size_t>(1, programs[i].total_instances));
            }
        }
        if (unknown_idx.empty()) continue;
        const std::size_t remaining = total > known ? total - known : 0;
        const std::vector<std::size_t> shares =
            apportion(remaining, unknown_weights);
        for (std::size_t j = 0; j < unknown_idx.size(); ++j)
            programs[unknown_idx[j]].loc = shares[j];
    }

    // Apportion the global per-type series across the 37 programs so the
    // per-type totals match Figure 1 exactly; List takes each program's
    // residual (it is the dominant type everywhere, as the paper found).
    const auto series = figure1_series();
    std::vector<std::size_t> weights;
    weights.reserve(programs.size());
    for (const ProgramModel& m : programs)
        weights.push_back(m.total_instances);

    std::vector<std::size_t> assigned(programs.size(), 0);
    for (std::size_t k = 0; k < kKinds; ++k) {
        if (k == static_cast<std::size_t>(DsKind::List) ||
            k == static_cast<std::size_t>(DsKind::Array))
            continue;
        const std::vector<std::size_t> shares = apportion(series[k], weights);
        for (std::size_t i = 0; i < programs.size(); ++i) {
            // Never assign more non-list instances than the program has.
            const std::size_t capped = std::min(
                shares[i], programs[i].total_instances - assigned[i]);
            programs[i].instances[k] = capped;
            assigned[i] += capped;
        }
    }
    for (std::size_t i = 0; i < programs.size(); ++i) {
        programs[i].instances[static_cast<std::size_t>(DsKind::List)] =
            programs[i].total_instances - assigned[i];
    }

    // Apportion the 785 study arrays by instance count.
    const std::vector<std::size_t> array_shares =
        apportion(kStudyArrayTotal, weights);
    for (std::size_t i = 0; i < programs.size(); ++i)
        programs[i].arrays = array_shares[i];

    // Extra (non-Figure 1) programs: type split defaults to mostly lists.
    for (const RawProgram& raw : kExtraPrograms) {
        ProgramModel m;
        m.name = raw.name;
        m.domain = raw.domain;
        m.total_instances = raw.instances;
        m.loc = raw.loc;
        const std::size_t lists = raw.instances - raw.instances / 4;
        m.instances[static_cast<std::size_t>(DsKind::List)] = lists;
        m.instances[static_cast<std::size_t>(DsKind::Dictionary)] =
            raw.instances - lists;
        m.arrays = std::max<std::size_t>(1, raw.instances / 3);
        programs.push_back(std::move(m));
    }

    auto find = [&programs](std::string_view name) -> ProgramModel& {
        for (ProgramModel& m : programs)
            if (m.name == name) return m;
        assert(false && "unknown program name");
        return programs.front();
    };

    // ---- Table II: 15 programs, 81 regularities, 41 parallel use cases.
    struct T2 {
        const char* name;
        std::size_t regularities;
        std::size_t parallel;
    };
    constexpr T2 kTable2[] = {
        {"TerraBIB", 1, 0},      {"rrrsroguelike", 1, 1},
        {"fire", 1, 2},          {"dotqcf", 2, 0},
        {"Contentfinder", 2, 2}, {"astrogrep", 2, 3},
        {"borys-MeshRouting", 3, 3}, {"csparser", 5, 5},
        {"dsa", 5, 0},           {"TreeLayoutHelper", 6, 0},
        {"ManicDigger2011", 6, 6}, {"clipper", 9, 5},
        {"Net_With_UI", 11, 2},  {"netinfotrace", 13, 5},
        {"MidiSheetMusic", 14, 7},
    };
    for (const T2& row : kTable2) {
        ProgramModel& m = find(row.name);
        m.in_study15 = true;
        m.recurring_regularities = row.regularities;
        m.parallel_use_cases = row.parallel;
    }

    // ---- Table III: evaluation programs, use cases by category.
    // Column totals: LI 49, IQ 3, SAI 1, FS 3, FLR 10 (66 in total).
    // Per-row category assignment reconstructed to be consistent with the
    // published row totals and column totals (see DESIGN.md).
    struct T3 {
        const char* name;
        std::size_t li, iq, sai, fs, flr;
    };
    constexpr T3 kTable3[] = {
        {"QIT", 6, 1, 0, 0, 1},
        {"ManicDigger2011", 6, 0, 0, 0, 0},
        {"csparser", 5, 0, 0, 0, 0},
        {"clipper", 4, 1, 0, 0, 0},
        {"gpdotnet", 2, 0, 0, 0, 3},
        {"netlinwhetcpu", 4, 0, 0, 0, 1},
        {"Mandelbrot", 3, 0, 0, 0, 0},
        {"quickgraph", 2, 0, 0, 0, 1},
        {"astrogrep", 2, 0, 0, 1, 0},
        {"borys-MeshRouting", 2, 0, 0, 0, 1},
        {"Contentfinder", 1, 0, 0, 1, 0},
        {"DambachMulti", 2, 0, 0, 0, 0},
        {"LinearAlgebra", 1, 0, 0, 0, 1},
        {"MathNetIridium", 1, 0, 0, 0, 1},
        {"Net_With_UI", 1, 1, 0, 0, 0},
        {"fire", 2, 0, 0, 0, 0},
        {"DesktopSuche", 0, 0, 0, 1, 0},
        {"FIPL", 1, 0, 0, 0, 0},
        {"FreeFlowSPH", 1, 0, 0, 0, 0},
        {"networkminer", 1, 0, 0, 0, 0},
        {"rrrsroguelike", 1, 0, 0, 0, 0},
        {"WordWheelSolver", 1, 0, 0, 0, 0},
        {"wordSorter", 0, 0, 1, 0, 0},
        {"Algorithmia", 0, 0, 0, 0, 1},
    };
    for (const T3& row : kTable3) {
        ProgramModel& m = find(row.name);
        m.in_eval23 = true;
        m.eval_use_cases[static_cast<std::size_t>(EvalUseCase::LI)] = row.li;
        m.eval_use_cases[static_cast<std::size_t>(EvalUseCase::IQ)] = row.iq;
        m.eval_use_cases[static_cast<std::size_t>(EvalUseCase::SAI)] =
            row.sai;
        m.eval_use_cases[static_cast<std::size_t>(EvalUseCase::FS)] = row.fs;
        m.eval_use_cases[static_cast<std::size_t>(EvalUseCase::FLR)] =
            row.flr;
    }

    return programs;
}

}  // namespace

std::string_view domain_name(Domain domain) noexcept {
    switch (domain) {
        case Domain::Search: return "File and text search";
        case Domain::Optimization: return "Source code optimization";
        case Domain::Compression: return "Compression";
        case Domain::Visualization: return "Program visualization";
        case Domain::Parser: return "Parser";
        case Domain::ImageLib: return "Image algorithm library";
        case Domain::Game: return "Game";
        case Domain::Simulation: return "Simulation";
        case Domain::GraphLib: return "Graph algorithms library";
        case Domain::Office: return "Office software";
        case Domain::DsLib: return "Data structures & algorithms library";
        case Domain::Computation: return "Computation";
        case Domain::Count: break;
    }
    return "?";
}

std::string_view domain_short_name(Domain domain) noexcept {
    switch (domain) {
        case Domain::Search: return "Srch";
        case Domain::Optimization: return "Opt";
        case Domain::Compression: return "Comp";
        case Domain::Visualization: return "Vis";
        case Domain::Parser: return "Parser";
        case Domain::ImageLib: return "Img lib";
        case Domain::Game: return "Game";
        case Domain::Simulation: return "Simulation";
        case Domain::GraphLib: return "Graph lib";
        case Domain::Office: return "Office";
        case Domain::DsLib: return "DS lib";
        case Domain::Computation: return "Computation";
        case Domain::Count: break;
    }
    return "?";
}

const std::vector<ProgramModel>& all_programs() {
    static const std::vector<ProgramModel> programs = build_all_programs();
    return programs;
}

std::vector<const ProgramModel*> figure1_programs() {
    std::vector<const ProgramModel*> out;
    const std::vector<ProgramModel>& all = all_programs();
    for (std::size_t i = 0; i < std::size(kFigure1Programs); ++i)
        out.push_back(&all[i]);
    return out;
}

std::vector<const ProgramModel*> study15_programs() {
    std::vector<const ProgramModel*> out;
    for (const ProgramModel& m : all_programs())
        if (m.in_study15) out.push_back(&m);
    return out;
}

std::vector<const ProgramModel*> eval_programs() {
    std::vector<const ProgramModel*> out;
    for (const ProgramModel& m : all_programs())
        if (m.in_eval23) out.push_back(&m);
    return out;
}

const std::array<std::size_t, runtime::kDsKindCount>&
figure1_type_totals() {
    static const auto totals = figure1_series();
    return totals;
}

std::vector<DomainRow> table1_rows() {
    // Paper order: ascending LOC.
    constexpr Domain kOrder[] = {
        Domain::Search,       Domain::Optimization, Domain::Compression,
        Domain::Visualization, Domain::Parser,      Domain::ImageLib,
        Domain::Game,         Domain::Simulation,   Domain::GraphLib,
        Domain::Office,       Domain::DsLib,
    };
    std::vector<DomainRow> rows;
    for (Domain d : kOrder) {
        DomainRow row;
        row.domain = d;
        for (const ProgramModel* m : figure1_programs()) {
            if (m->domain != d) continue;
            ++row.programs;
            row.instances += m->total_instances;
            row.loc += m->loc;
        }
        rows.push_back(row);
    }
    return rows;
}

}  // namespace dsspy::corpus
