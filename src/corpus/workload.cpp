#include "corpus/workload.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>

#include "ds/ds.hpp"

namespace dsspy::corpus {

namespace {

using runtime::ProfilingSession;
using support::Rng;
using support::SourceLoc;

/// Scattered reads whose positions never step by +-1, so they can never
/// extend into a Read-Forward/Backward pattern (stride-7 jumps).
template <typename ListT>
void jump_reads(const ListT& list, std::size_t count) {
    const std::size_t n = list.count();
    if (n < 10) return;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < count; ++i) {
        (void)list.get(pos);
        pos = (pos + 7) % n;
    }
}

}  // namespace

void drive_long_insert(ProfilingSession* session, SourceLoc loc, Rng& rng) {
    ds::ProfiledList<std::int64_t> list(session, std::move(loc));
    // Three long insertion rounds (>=100 consecutive events each),
    // separated by scattered reads and a clear — the profile of Figure 3.
    for (int round = 0; round < 3; ++round) {
        const std::size_t n = 360 + rng.next_below(80);
        for (std::size_t i = 0; i < n; ++i)
            list.add(static_cast<std::int64_t>(rng.next_below(100000)));
        jump_reads(list, 18);
        list.clear();
    }
}

void drive_long_insert_array(ProfilingSession* session, SourceLoc loc,
                             Rng& rng) {
    const std::size_t n = 500 + rng.next_below(100);
    ds::ProfiledArray<double> array(session, std::move(loc), n);
    // Sequential initialization loop: Write-Forward from the front — the
    // array equivalent of a long insertion (e.g. Mandelbrot's image).
    for (std::size_t i = 0; i < n; ++i)
        array.set(i, rng.next_double());
    // A few scattered validation reads.
    std::size_t pos = 0;
    for (int i = 0; i < 12; ++i) {
        (void)array.get(pos);
        pos = (pos + 7) % n;
    }
}

void drive_implement_queue(ProfilingSession* session, SourceLoc loc,
                           Rng& rng) {
    ds::ProfiledList<std::int64_t> list(session, std::move(loc));
    // Producer/consumer on a list: enqueue via add (back), consume via
    // get(0) + remove_at(0) (front).  Interleaved so insertion runs stay
    // far below the Long-Insert threshold.
    for (std::size_t i = 0; i < 5; ++i)
        list.add(static_cast<std::int64_t>(i));
    for (std::size_t i = 0; i < 150; ++i) {
        list.add(static_cast<std::int64_t>(rng.next_below(1000)));
        (void)list.get(0);
        list.remove_at(0);
    }
    while (list.count() > 0) {
        (void)list.get(0);
        list.remove_at(0);
    }
}

void drive_sort_after_insert(ProfilingSession* session, SourceLoc loc,
                             Rng& rng) {
    ds::ProfiledList<std::int64_t> list(session, std::move(loc));
    const std::size_t n = 380 + rng.next_below(60);
    for (std::size_t i = 0; i < n; ++i)
        list.add(static_cast<std::int64_t>(rng.next_below(1000000)));
    list.sort();
    jump_reads(list, 20);
}

void drive_frequent_search(ProfilingSession* session, SourceLoc loc,
                           Rng& rng) {
    ds::ProfiledList<std::int64_t> list(session, std::move(loc), 64);
    for (std::size_t i = 0; i < 64; ++i)
        list.add(static_cast<std::int64_t>(i * 3));
    // >1000 explicit search operations with occasional sequential sweeps
    // (the read-forward evidence the rule requires).
    for (std::size_t i = 0; i < 1100; ++i) {
        (void)list.index_of(static_cast<std::int64_t>(
            3 * static_cast<std::int64_t>(rng.next_below(64))));
        if (i % 280 == 0) {
            for (std::size_t j = 0; j < list.count(); ++j)
                (void)list.get(j);
        }
    }
}

void drive_frequent_long_read(ProfilingSession* session, SourceLoc loc,
                              Rng& rng) {
    ds::ProfiledList<std::int64_t> list(session, std::move(loc), 120);
    for (std::size_t i = 0; i < 120; ++i)
        list.add(static_cast<std::int64_t>(rng.next_below(5000)));
    // 12 full sequential sweeps: a search disguised as a read loop (the
    // priority-queue-on-a-list case the paper describes for Algorithmia).
    for (int sweep = 0; sweep < 12; ++sweep) {
        std::int64_t best = list.get(0);
        for (std::size_t j = 1; j < list.count(); ++j)
            best = std::max(best, list.get(j));
        (void)best;
    }
}

void drive_li_flr_combo(ProfilingSession* session, SourceLoc loc,
                        Rng& rng) {
    ds::ProfiledList<std::int64_t> list(session, std::move(loc));
    // Generation loop: rebuild with a long insertion phase, then two full
    // evaluation sweeps — Long-Insert and Frequent-Long-Read on the same
    // instance (Table V use cases two and three).
    for (int gen = 0; gen < 12; ++gen) {
        const std::size_t n = 140 + rng.next_below(20);
        for (std::size_t i = 0; i < n; ++i)
            list.add(static_cast<std::int64_t>(rng.next_below(10000)));
        for (int sweep = 0; sweep < 2; ++sweep) {
            std::int64_t acc = 0;
            for (std::size_t i = 0; i < list.count(); ++i)
                acc += list.get(i);
            (void)acc;
        }
        list.clear();
    }
}

void drive_stack_impl(ProfilingSession* session, SourceLoc loc, Rng& rng) {
    ds::ProfiledList<std::int64_t> list(session, std::move(loc));
    // Push/pop always at the back; interleaved so no single insertion run
    // reaches the Long-Insert threshold.
    for (std::size_t i = 0; i < 60; ++i) {
        const std::size_t pushes = 2 + rng.next_below(3);
        for (std::size_t p = 0; p < pushes; ++p)
            list.add(static_cast<std::int64_t>(rng.next_below(1000)));
        if (list.count() > 1) {
            (void)list.get(list.count() - 1);  // peek
            list.remove_at(list.count() - 1);  // pop
        }
    }
    while (list.count() > 0) list.remove_at(list.count() - 1);
}

void drive_write_without_read(ProfilingSession* session, SourceLoc loc,
                              Rng& rng) {
    ds::ProfiledList<std::int64_t> list(session, std::move(loc));
    for (std::size_t i = 0; i < 50; ++i)
        list.add(static_cast<std::int64_t>(rng.next_below(1000)));
    jump_reads(list, 25);
    // Life-cycle cleanup: overwrite most entries, results never read again.
    for (std::size_t i = 0; i < 30; ++i) list.set(i, 0);
}

void drive_regularity_only(ProfilingSession* session, SourceLoc loc,
                           Rng& rng) {
    ds::ProfiledList<std::int64_t> list(session, std::move(loc));
    // A clear recurring pattern (short insert-back run + one forward read
    // streak) that stays below every use-case threshold.
    for (std::size_t i = 0; i < 40; ++i)
        list.add(static_cast<std::int64_t>(rng.next_below(1000)));
    for (std::size_t i = 0; i < 20; ++i) (void)list.get(i);
    jump_reads(list, 10);
}

void drive_noise_list(ProfilingSession* session, SourceLoc loc, Rng& rng) {
    ds::ProfiledList<std::int64_t> list(session, std::move(loc));
    // Mid-structure inserts never form front/back runs; stride-7 reads
    // never form directional runs: no pattern at all.
    for (std::size_t i = 0; i < 15; ++i)
        list.insert(list.count() / 2,
                    static_cast<std::int64_t>(rng.next_below(1000)));
    jump_reads(list, 12);
}

void drive_noise_dictionary(ProfilingSession* session, SourceLoc loc,
                            Rng& rng) {
    ds::ProfiledDictionary<std::int64_t, std::int64_t> dict(session,
                                                            std::move(loc));
    for (std::size_t i = 0; i < 20; ++i)
        dict.set(static_cast<std::int64_t>(rng.next_below(100)),
                 static_cast<std::int64_t>(i));
    std::int64_t out = 0;
    for (std::size_t i = 0; i < 15; ++i)
        (void)dict.try_get(static_cast<std::int64_t>(rng.next_below(100)),
                           out);
}

std::size_t noise_instances_for(const ProgramModel& program) {
    const std::size_t target = program.total_instances / 4;
    return std::clamp<std::size_t>(target, 3, 25);
}

namespace {

SourceLoc make_loc(const ProgramModel& program, const char* method,
                   std::uint32_t position) {
    return SourceLoc{program.name + ".Workload", method, position};
}

using Driver = void (*)(ProfilingSession*, SourceLoc, Rng&);

void run_noise(const ProgramModel& program, ProfilingSession* session,
               Rng& rng, std::uint32_t& position) {
    const std::size_t noise = noise_instances_for(program);
    for (std::size_t i = 0; i < noise; ++i) {
        if (i % 3 == 2) {
            drive_noise_dictionary(session,
                                   make_loc(program, "Noise", ++position),
                                   rng);
        } else {
            drive_noise_list(session, make_loc(program, "Noise", ++position),
                             rng);
        }
    }
}

}  // namespace

void run_study15_workload(const ProgramModel& program,
                          ProfilingSession* session, std::uint64_t seed) {
    Rng rng(seed ^ std::hash<std::string>{}(program.name));
    std::uint32_t position = 0;

    // A regularity instance can carry one or two parallel use cases (the
    // Table V population list has both LI and FLR).  When a program
    // reports more parallel use cases than regularities, combo instances
    // make up the difference.
    const std::size_t regularities = program.recurring_regularities;
    const std::size_t parallel = program.parallel_use_cases;
    const std::size_t combos =
        parallel > regularities ? parallel - regularities : 0;
    const std::size_t singles = parallel - 2 * combos;

    for (std::size_t i = 0; i < combos; ++i)
        drive_li_flr_combo(session, make_loc(program, "Parallel", ++position),
                           rng);

    static constexpr Driver kParallel[] = {
        drive_long_insert, drive_frequent_long_read, drive_implement_queue,
        drive_frequent_search, drive_sort_after_insert,
    };
    for (std::size_t i = 0; i < singles; ++i) {
        kParallel[i % std::size(kParallel)](
            session, make_loc(program, "Parallel", ++position), rng);
    }

    // Remaining regularities carry recurring patterns but no parallel use
    // case (sequential use cases or below-threshold patterns).
    static constexpr Driver kSequential[] = {
        drive_regularity_only, drive_stack_impl, drive_write_without_read,
    };
    const std::size_t parallel_instances = combos + singles;
    const std::size_t rest = regularities > parallel_instances
                                 ? regularities - parallel_instances
                                 : 0;
    for (std::size_t i = 0; i < rest; ++i) {
        kSequential[i % std::size(kSequential)](
            session, make_loc(program, "Sequential", ++position), rng);
    }

    run_noise(program, session, rng, position);
}

void run_eval_workload(const ProgramModel& program,
                       ProfilingSession* session, std::uint64_t seed) {
    Rng rng(seed ^ std::hash<std::string>{}(program.name));
    std::uint32_t position = 0;

    const auto count_of = [&program](EvalUseCase uc) {
        return program.eval_use_cases[static_cast<std::size_t>(uc)];
    };

    // Long-Insert alternates between list and array instances (the paper
    // reports LI on both, e.g. Mandelbrot's image array).
    for (std::size_t i = 0; i < count_of(EvalUseCase::LI); ++i) {
        if (i % 2 == 1) {
            drive_long_insert_array(
                session, make_loc(program, "LongInsert", ++position), rng);
        } else {
            drive_long_insert(session,
                              make_loc(program, "LongInsert", ++position),
                              rng);
        }
    }
    for (std::size_t i = 0; i < count_of(EvalUseCase::IQ); ++i)
        drive_implement_queue(
            session, make_loc(program, "ImplementQueue", ++position), rng);
    for (std::size_t i = 0; i < count_of(EvalUseCase::SAI); ++i)
        drive_sort_after_insert(
            session, make_loc(program, "SortAfterInsert", ++position), rng);
    for (std::size_t i = 0; i < count_of(EvalUseCase::FS); ++i)
        drive_frequent_search(
            session, make_loc(program, "FrequentSearch", ++position), rng);
    for (std::size_t i = 0; i < count_of(EvalUseCase::FLR); ++i)
        drive_frequent_long_read(
            session, make_loc(program, "FrequentLongRead", ++position), rng);

    run_noise(program, session, rng, position);
}

}  // namespace dsspy::corpus
