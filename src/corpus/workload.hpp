// Workload drivers: replay the access behaviour of the study programs.
//
// The paper's Tables II and III are produced by running the benchmark
// programs under DSspy and counting recurring regularities / use cases.
// The original C# programs are not available here, so each ProgramModel is
// replayed by a composition of drivers, one per documented behaviour:
//
//   drive_long_insert         -> exactly one Long-Insert use case
//   drive_long_insert_array   -> Long-Insert on a fixed-size array
//   drive_implement_queue     -> exactly one Implement-Queue use case
//   drive_sort_after_insert   -> exactly one Sort-After-Insert use case
//   drive_frequent_search     -> exactly one Frequent-Search use case
//   drive_frequent_long_read  -> exactly one Frequent-Long-Read use case
//   drive_stack_impl          -> Stack-Implementation (sequential)
//   drive_write_without_read  -> Write-Without-Read (sequential)
//   drive_regularity_only     -> recurring pattern, no use case
//   drive_noise_list          -> no pattern at all (search-space filler)
//   drive_noise_dictionary    -> positionless instance (filler)
//
// Each driver is deterministic given its Rng and is unit-tested to produce
// exactly its advertised classification under the default DetectorConfig.
#pragma once

#include <cstdint>

#include "corpus/program_model.hpp"
#include "runtime/session.hpp"
#include "support/rng.hpp"
#include "support/source_location.hpp"

namespace dsspy::corpus {

// --- individual drivers (exposed for tests) ------------------------------

void drive_long_insert(runtime::ProfilingSession* session,
                       support::SourceLoc loc, support::Rng& rng);
void drive_long_insert_array(runtime::ProfilingSession* session,
                             support::SourceLoc loc, support::Rng& rng);
void drive_implement_queue(runtime::ProfilingSession* session,
                           support::SourceLoc loc, support::Rng& rng);
void drive_sort_after_insert(runtime::ProfilingSession* session,
                             support::SourceLoc loc, support::Rng& rng);
void drive_frequent_search(runtime::ProfilingSession* session,
                           support::SourceLoc loc, support::Rng& rng);
void drive_frequent_long_read(runtime::ProfilingSession* session,
                              support::SourceLoc loc, support::Rng& rng);
/// One instance carrying TWO parallel use cases (Long-Insert and
/// Frequent-Long-Read) — the GPdotNET-population shape; used when a
/// Table II program reports more parallel use cases than regularities.
void drive_li_flr_combo(runtime::ProfilingSession* session,
                        support::SourceLoc loc, support::Rng& rng);
void drive_stack_impl(runtime::ProfilingSession* session,
                      support::SourceLoc loc, support::Rng& rng);
void drive_write_without_read(runtime::ProfilingSession* session,
                              support::SourceLoc loc, support::Rng& rng);
void drive_regularity_only(runtime::ProfilingSession* session,
                           support::SourceLoc loc, support::Rng& rng);
void drive_noise_list(runtime::ProfilingSession* session,
                      support::SourceLoc loc, support::Rng& rng);
void drive_noise_dictionary(runtime::ProfilingSession* session,
                            support::SourceLoc loc, support::Rng& rng);

// --- program-level plans ----------------------------------------------------

/// Replay a Table II program: `recurring_regularities` instances with
/// recurring patterns, of which `parallel_use_cases` carry a parallel use
/// case, plus pattern-free noise instances.
void run_study15_workload(const ProgramModel& program,
                          runtime::ProfilingSession* session,
                          std::uint64_t seed = 0);

/// Replay a Table III program: the exact per-category use-case counts of
/// the model, plus noise instances for the search-space denominator.
void run_eval_workload(const ProgramModel& program,
                       runtime::ProfilingSession* session,
                       std::uint64_t seed = 0);

/// Number of noise (pattern-free) instances the plans add for `program`.
[[nodiscard]] std::size_t noise_instances_for(const ProgramModel& program);

}  // namespace dsspy::corpus
