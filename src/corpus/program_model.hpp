// Models of the paper's benchmark programs (Tables I-III, Figure 1).
//
// The 37 open-source C# programs of the empirical study are not
// redistributable; what the paper publishes about them is:
//   * Table I   — per-domain instance counts and LOC.
//   * Figure 1  — per-program total dynamic-instance counts (the sigma
//                 values on the x-axis) and the global per-type series
//                 (List 1275, Dictionary 324, ArrayList 192, Stack 49,
//                 Queue 41, Rest 79).
//   * Table II  — 15-program subset: recurring regularities and parallel
//                 use cases per program.
//   * Table III — 23-program evaluation: use-case counts per category.
// These models encode exactly those published numbers; the workload
// drivers (workload.hpp) replay matching access behaviour so DSspy's
// dynamic pipeline regenerates the tables.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/op.hpp"

namespace dsspy::corpus {

/// Application domains of Table I.
enum class Domain : std::uint8_t {
    Search,          ///< File and text search (Srch)
    Optimization,    ///< Source code optimization (Opt)
    Compression,     ///< Compression (Comp)
    Visualization,   ///< Program visualization (Vis)
    Parser,
    ImageLib,        ///< Image algorithm library (Img lib)
    Game,
    Simulation,
    GraphLib,        ///< Graph algorithms library (Graph lib)
    Office,          ///< Office software
    DsLib,           ///< Data structures & algorithms library (DS lib)
    Computation,     ///< Used by Table II for astrogrep
    Count,
};

[[nodiscard]] std::string_view domain_name(Domain domain) noexcept;
[[nodiscard]] std::string_view domain_short_name(Domain domain) noexcept;

/// Parallel use-case categories in Table III column order.
enum class EvalUseCase : std::uint8_t { LI, IQ, SAI, FS, FLR, Count };

/// One benchmark program of the study.
struct ProgramModel {
    std::string name;
    Domain domain = Domain::DsLib;
    std::size_t loc = 0;                ///< Lines of code.
    std::size_t total_instances = 0;    ///< Figure 1 sigma value.
    /// Per-kind dynamic instance counts (sums to total_instances); derived
    /// deterministically from the global Figure 1 series by apportionment.
    std::array<std::size_t, runtime::kDsKindCount> instances{};
    std::size_t arrays = 0;             ///< Share of the study's 785 arrays.

    // Table II (only meaningful when in_study15).
    bool in_study15 = false;
    std::size_t recurring_regularities = 0;
    std::size_t parallel_use_cases = 0;

    // Table III (only meaningful when in_eval23).
    bool in_eval23 = false;
    std::array<std::size_t, static_cast<std::size_t>(EvalUseCase::Count)>
        eval_use_cases{};

    [[nodiscard]] std::size_t eval_use_case_total() const noexcept {
        std::size_t sum = 0;
        for (std::size_t c : eval_use_cases) sum += c;
        return sum;
    }
};

/// All programs of the study (the 37 of Figure 1 plus the Table II/III
/// programs that are not among the 37, e.g. astrogrep, MidiSheetMusic).
[[nodiscard]] const std::vector<ProgramModel>& all_programs();

/// The 37 programs of Table I / Figure 1.
[[nodiscard]] std::vector<const ProgramModel*> figure1_programs();

/// The 15-program subset of Table II.
[[nodiscard]] std::vector<const ProgramModel*> study15_programs();

/// The evaluation programs of Table III (24 rows, 66 use cases).
[[nodiscard]] std::vector<const ProgramModel*> eval_programs();

/// Global Figure 1 per-type series totals (List=1275, Dictionary=324, ...).
[[nodiscard]] const std::array<std::size_t, runtime::kDsKindCount>&
figure1_type_totals();

/// Total arrays found in the study (785).
inline constexpr std::size_t kStudyArrayTotal = 785;

/// One row of Table I (per-domain aggregate).
struct DomainRow {
    Domain domain = Domain::Search;
    std::size_t programs = 0;
    std::size_t instances = 0;
    std::size_t loc = 0;
};

/// Table I rows (ascending by LOC, as printed in the paper), aggregated
/// from the Figure 1 program models.
[[nodiscard]] std::vector<DomainRow> table1_rows();

}  // namespace dsspy::corpus
