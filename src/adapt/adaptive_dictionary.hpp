// AdaptiveDictionary<K, V> — a dictionary that acts on its own verdicts.
//
// ProfiledDictionary records every operation as whole-container (hash
// access has no linear position), which means the positional detectors —
// Frequent-Search, Frequent-Long-Read — can never fire for it.  The
// adaptive dictionary therefore profiles its *dense entry view*: entries
// live in an insertion-ordered dense vector (the hash table maps key ->
// dense index), and every operation is folded as a List-kind event at the
// entry's dense position, exactly as a ds::ProfiledList over the same
// access sequence would record it.  The verdicts then drive the backing:
//
//   Frequent-Search on values (find_key scans) -> Indexed
//       a value -> key reverse index makes find_key O(1); the paper's
//       "data structure that is optimized for searches".
//   Frequent-Long-Read / ForAll traversals      -> Parallel
//       for_each fans out over parallel::ThreadPool chunks of the dense
//       entry vector.
//
// Strategies with no dictionary-side remedy (DequeBacked — front traffic
// does not exist in a hash map) behave exactly like Sequential; the
// controller may still *select* them, the migration is just a no-op.
//
// Threading matches AdaptiveList: std::shared_mutex, reads shared,
// mutations and strategy migrations exclusive, the interval-crossing
// operation upgrades itself to the write lock at a safe point, and seq
// issue + analyzer fold share one serialization point so concurrent
// shared-lock readers cannot violate the analyzer's per-instance
// seq-order contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "adapt/adaptive_list.hpp"
#include "adapt/controller.hpp"
#include "core/incremental.hpp"
#include "ds/dictionary.hpp"
#include "ds/type_names.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "parallel/parallel_for.hpp"
#include "runtime/access_event.hpp"

namespace dsspy::adapt {

/// Self-adapting Dictionary<K, V>.  See the file comment for how its
/// dense entry view is profiled and which strategies it can run.
template <typename K, typename V, typename Hash = std::hash<K>>
class AdaptiveDictionary {
public:
    explicit AdaptiveDictionary(AdaptConfig config = {},
                                support::SourceLoc location =
                                    {"AdaptiveDictionary", "self", 0})
        : config_(config),
          analyzer_(config.detector),
          controller_(config.controller) {
        info_.id = 0;
        // List kind on purpose: the dense entry view is a linear
        // sequence, and only List/Array instances reach the positional
        // detectors (see file comment).
        info_.kind = runtime::DsKind::List;
        info_.type_name =
            ds::container_type_name2<K, V>("AdaptiveDictionary");
        info_.location = std::move(location);
        analyzer_.declare_instance(info_);
    }

    AdaptiveDictionary(const AdaptiveDictionary&) = delete;
    AdaptiveDictionary& operator=(const AdaptiveDictionary&) = delete;

    [[nodiscard]] std::size_t count() const {
        std::shared_lock lock(mutex_);
        return entries_.size();
    }
    [[nodiscard]] bool empty() const { return count() == 0; }

    /// Insert or overwrite (indexer set).  An overwrite is a Set at the
    /// entry's dense position; a fresh key is an Add at the landing index.
    void set(K key, V value) {
        std::unique_lock lock(mutex_);
        std::size_t idx = 0;
        if (pos_.try_get(key, idx)) {
            fold(runtime::OpKind::Set, static_cast<std::int64_t>(idx),
                 entries_.size());
            if (reverse_ && !(entries_[idx].second == value)) {
                const V old = std::move(entries_[idx].second);
                entries_[idx].second = std::move(value);
                reverse_remove_occurrence(old, entries_[idx].first);
                reverse_add(entries_[idx].second, entries_[idx].first, idx);
            } else {
                entries_[idx].second = std::move(value);
            }
        } else {
            const std::size_t landing = entries_.size();
            entries_.emplace_back(key, std::move(value));
            pos_.set(std::move(key), landing);
            fold(runtime::OpKind::Add, static_cast<std::int64_t>(landing),
                 entries_.size());
            // The landing entry is the newest: an existing canonical key
            // for this value stays canonical (first-key-wins).
            if (reverse_)
                reverse_add(entries_.back().second, entries_.back().first,
                            landing);
        }
        maybe_reclassify(lock);
    }

    /// Indexer get; by value — a reference could dangle across a
    /// concurrent migration.  Throws std::out_of_range if missing.
    [[nodiscard]] V get(const K& key) const {
        const bool reclassify = crosses_interval();
        if (reclassify) {
            std::unique_lock lock(mutex_);
            V out = get_locked(key);
            do_reclassify();
            return out;
        }
        std::shared_lock lock(mutex_);
        return get_locked(key);
    }

    /// TryGetValue: writes to `out` and returns true if present.
    bool try_get(const K& key, V& out) const {
        const bool reclassify = crosses_interval();
        if (reclassify) {
            std::unique_lock lock(mutex_);
            const bool hit = try_get_locked(key, out);
            do_reclassify();
            return hit;
        }
        std::shared_lock lock(mutex_);
        return try_get_locked(key, out);
    }

    [[nodiscard]] bool contains_key(const K& key) const {
        V ignored;
        return try_get(key, ignored);
    }

    /// Value search: the first key whose value equals `value` (insertion
    /// order).  Linear over the dense entries — unless the Indexed
    /// strategy holds the value -> key reverse index.  Recorded as
    /// IndexOf at the hit position, the Frequent-Search signal.
    [[nodiscard]] std::optional<K> find_key(const V& value) const {
        const bool reclassify = crosses_interval();
        if (reclassify) {
            std::unique_lock lock(mutex_);
            std::optional<K> hit = find_key_locked(value);
            do_reclassify();
            return hit;
        }
        std::shared_lock lock(mutex_);
        return find_key_locked(value);
    }

    /// Remove `key`; true if it was present.  A hit is recorded as
    /// RemoveAt at the entry's dense position (order-preserving erase,
    /// like List); a miss is a failed whole-container key lookup — the
    /// try_get miss convention — never a synthetic front delete.
    bool remove(const K& key) {
        std::unique_lock lock(mutex_);
        std::size_t idx = 0;
        const bool present = pos_.try_get(key, idx);
        if (present) {
            const V old = std::move(entries_[idx].second);
            entries_.erase(entries_.begin() +
                           static_cast<std::ptrdiff_t>(idx));
            pos_.remove(key);
            // Entries after the erased one shifted down by one.
            for (std::size_t i = idx; i < entries_.size(); ++i)
                pos_.set(entries_[i].first, i);
            if (reverse_) reverse_remove_occurrence(old, key);
            fold(runtime::OpKind::RemoveAt, static_cast<std::int64_t>(idx),
                 entries_.size());
        } else {
            fold(runtime::OpKind::Get, runtime::kWholeContainer,
                 entries_.size());
        }
        maybe_reclassify(lock);
        return present;
    }

    void clear() {
        std::unique_lock lock(mutex_);
        entries_.clear();
        pos_.clear();
        if (reverse_) reverse_->clear();
        fold(runtime::OpKind::Clear, runtime::kWholeContainer, 0);
        maybe_reclassify(lock);
    }

    /// Traverse entries in insertion order; recorded as one ForEach.
    /// Under the Parallel strategy `fn` runs on pool workers over
    /// disjoint chunks (unordered across chunks) — it must be
    /// thread-safe then.
    template <typename Fn>
    void for_each(Fn fn) const {
        const bool reclassify = crosses_interval();
        if (reclassify) {
            std::unique_lock lock(mutex_);
            fold(runtime::OpKind::ForEach, runtime::kWholeContainer,
                 entries_.size());
            traverse(fn);
            do_reclassify();
            return;
        }
        std::shared_lock lock(mutex_);
        fold(runtime::OpKind::ForEach, runtime::kWholeContainer,
             entries_.size());
        traverse(fn);
    }

    // --- adaptation introspection -----------------------------------------

    [[nodiscard]] Strategy strategy() const {
        std::shared_lock lock(mutex_);
        return controller_.current();
    }

    [[nodiscard]] std::size_t switch_count() const {
        std::shared_lock lock(mutex_);
        return controller_.switch_count();
    }

    [[nodiscard]] std::size_t suppressed_count() const {
        std::shared_lock lock(mutex_);
        return controller_.suppressed_count();
    }

    [[nodiscard]] std::vector<core::UseCase> verdicts() const {
        std::shared_lock lock(mutex_);
        return current_verdicts();
    }

    [[nodiscard]] std::uint64_t events_folded() const {
        return analyzer_.events_folded();
    }

private:
    [[nodiscard]] V get_locked(const K& key) const {
        std::size_t idx = 0;
        if (!pos_.try_get(key, idx)) {
            fold(runtime::OpKind::Get, runtime::kWholeContainer,
                 entries_.size());
            throw std::out_of_range("AdaptiveDictionary::get: missing key");
        }
        fold(runtime::OpKind::Get, static_cast<std::int64_t>(idx),
             entries_.size());
        return entries_[idx].second;
    }

    bool try_get_locked(const K& key, V& out) const {
        std::size_t idx = 0;
        if (!pos_.try_get(key, idx)) {
            fold(runtime::OpKind::Get, runtime::kWholeContainer,
                 entries_.size());
            return false;
        }
        fold(runtime::OpKind::Get, static_cast<std::int64_t>(idx),
             entries_.size());
        out = entries_[idx].second;
        return true;
    }

    [[nodiscard]] std::optional<K> find_key_locked(const V& value) const {
        if (reverse_) {
            const auto it = reverse_->find(value);
            if (it != reverse_->end()) {
                std::size_t idx = 0;
                pos_.try_get(it->second.first_key, idx);
                fold(runtime::OpKind::IndexOf,
                     static_cast<std::int64_t>(idx), entries_.size());
                return it->second.first_key;
            }
            fold(runtime::OpKind::IndexOf, runtime::kWholeContainer,
                 entries_.size());
            return std::nullopt;
        }
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            if (entries_[i].second == value) {
                fold(runtime::OpKind::IndexOf,
                     static_cast<std::int64_t>(i), entries_.size());
                return entries_[i].first;
            }
        }
        fold(runtime::OpKind::IndexOf, runtime::kWholeContainer,
             entries_.size());
        return std::nullopt;
    }

    template <typename Fn>
    void traverse(Fn& fn) const {
        if (controller_.current() == Strategy::Parallel &&
            entries_.size() >= 2048) {
            par::parallel_for_chunks(
                0, entries_.size(),
                [this, &fn](std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i)
                        fn(entries_[i].first, entries_[i].second);
                });
            return;
        }
        for (const auto& [key, value] : entries_) fn(key, value);
    }

    /// Seq issue and fold share one lock: the analyzer requires
    /// per-instance seq order, and two shared-lock readers must not
    /// reorder between taking a seq and folding it.
    void fold(runtime::OpKind op, std::int64_t position,
              std::size_t size) const {
        runtime::AccessEvent ev;
        ev.position = position;
        ev.instance = info_.id;
        ev.size = static_cast<std::uint32_t>(size);
        ev.op = op;
        ev.thread = detail::thread_slot();
        const std::lock_guard<std::mutex> guard(fold_mutex_);
        ev.seq = seq_++;
        ev.time_ns = ev.seq;
        analyzer_.fold(ev);
    }

    [[nodiscard]] bool crosses_interval() const {
        const std::uint64_t n =
            ops_.fetch_add(1, std::memory_order_relaxed) + 1;
        return config_.reclassify_interval != 0 &&
               n % config_.reclassify_interval == 0;
    }

    void maybe_reclassify(std::unique_lock<std::shared_mutex>&) const {
        if (crosses_interval()) do_reclassify();
    }

    [[nodiscard]] std::vector<core::UseCase> current_verdicts() const {
        core::StreamReport report = analyzer_.snapshot({info_});
        for (const core::StreamInstance& si : report.instances())
            if (si.stats.info.id == info_.id) return si.use_cases;
        return {};
    }

    void do_reclassify() const {
        const std::vector<core::UseCase> verdicts = current_verdicts();
        std::vector<AdviceSignal> signals;
        signals.reserve(verdicts.size());
        for (const core::UseCase& uc : verdicts)
            signals.push_back({uc.advice.action, uc.confidence()});
        const std::uint64_t now = ops_.load(std::memory_order_relaxed);
        const std::size_t delta =
            static_cast<std::size_t>(now - last_observed_ops_);
        last_observed_ops_ = now;
        const Strategy before = controller_.current();
        const std::size_t suppressed_before = controller_.suppressed_count();
        const Strategy after = controller_.observe(
            signals.data(), signals.size(), entries_.size(), delta);
        if (obs::enabled()) {
            const auto& m = detail::AdaptMetrics::get();
            obs::MetricsRegistry::global().add(m.reclassifications);
            const std::size_t newly_suppressed =
                controller_.suppressed_count() - suppressed_before;
            if (newly_suppressed > 0)
                obs::MetricsRegistry::global().add(m.suppressed,
                                                   newly_suppressed);
        }
        if (after != before) migrate(before, after);
    }

    void migrate(Strategy from, Strategy to) const {
        DSSPY_SPAN("adapt.switch");
        if (obs::enabled())
            obs::MetricsRegistry::global().add(
                detail::AdaptMetrics::get().switches);
        if (from == Strategy::Indexed && to != Strategy::Indexed)
            reverse_.reset();
        if (to == Strategy::Indexed) {
            reverse_.emplace();
            rebuild_reverse();
        }
        // Parallel and DequeBacked need no representation change here:
        // Parallel only alters the traversal path, and DequeBacked has no
        // dictionary-side remedy (behaves like Sequential).
    }

    /// One more entry (`key` at dense index `idx`) now holds `value`.
    /// O(1): first-key-wins resolved by comparing dense positions.
    void reverse_add(const V& value, const K& key, std::size_t idx) const {
        auto [it, fresh] = reverse_->try_emplace(value, RevEntry{key, 0});
        ++it->second.count;
        if (!fresh) {
            std::size_t canonical = 0;
            pos_.try_get(it->second.first_key, canonical);
            // Dense order is insertion order (order-preserving erase), so
            // the smaller index is the earlier-inserted key.
            if (idx < canonical) it->second.first_key = key;
        }
    }

    /// The entry under `key` no longer holds `value` (overwrite or
    /// removal; entries_ already reflects the change).  O(1) unless the
    /// canonical key of a duplicated value is hit, which re-derives
    /// first-key-wins by a targeted scan.
    void reverse_remove_occurrence(const V& value, const K& key) const {
        const auto it = reverse_->find(value);
        if (it == reverse_->end()) return;
        if (it->second.count <= 1) {
            reverse_->erase(it);
            return;
        }
        --it->second.count;
        if (it->second.first_key == key) {
            for (const auto& [other_key, other_value] : entries_) {
                if (other_value == value) {
                    it->second.first_key = other_key;
                    break;
                }
            }
        }
    }

    /// Full rebuild of the value -> (first key, count) reverse index —
    /// only when entering the Indexed strategy; point mutations maintain
    /// it incrementally.  First-key-wins: insertion-order iteration with
    /// try_emplace keeps the earliest key.
    void rebuild_reverse() const {
        reverse_->clear();
        for (const auto& [key, value] : entries_) {
            auto [it, fresh] = reverse_->try_emplace(value, RevEntry{key, 0});
            ++it->second.count;
        }
    }

    /// Reverse-index bookkeeping: the earliest-inserted key holding the
    /// value plus its occurrence count, so point mutations update in O(1)
    /// and only losing the canonical key of a duplicate needs a rescan.
    struct RevEntry {
        K first_key;
        std::size_t count = 0;
    };

    AdaptConfig config_;
    runtime::InstanceInfo info_;

    mutable std::shared_mutex mutex_;
    /// Insertion-ordered dense entry view — the profiled linear sequence.
    mutable std::vector<std::pair<K, V>> entries_;
    /// Key -> dense index (the primary hash lookup).
    mutable ds::Dictionary<K, std::size_t, Hash> pos_;
    /// Value -> (first key, count) (Indexed strategy only).
    mutable std::optional<std::unordered_map<V, RevEntry>> reverse_;

    mutable core::IncrementalAnalyzer analyzer_;
    mutable HysteresisController controller_;
    mutable std::mutex fold_mutex_;
    mutable std::uint64_t seq_ = 0;
    mutable std::atomic<std::uint64_t> ops_{0};
    mutable std::uint64_t last_observed_ops_ = 0;
};

}  // namespace dsspy::adapt
