// Damped hysteresis controller for the adaptive container layer.
//
// An adaptive container periodically reclassifies its own access stream
// (via an embedded IncrementalAnalyzer) and asks this controller which
// backing strategy to run.  Raw verdicts flap: a Frequent-Search verdict
// appears the moment the search threshold is crossed, disappears when an
// insert burst dilutes the ratios, and reappears two phases later.
// Acting on every verdict would thrash — each strategy switch costs a
// full O(n) migration of the backing store.  The controller damps this
// three ways:
//
//   * EWMA         — per-action confidence is exponentially smoothed, so
//                    one outlier reclassification cannot flip the choice.
//   * Dual bands   — a strategy is adopted when its score crosses the
//                    enter threshold but only abandoned when it falls
//                    below the (lower) exit threshold.
//   * Switch cost  — a switch is allowed only after min_dwell_ops
//                    operations since the last one AND after enough
//                    operations to amortize the O(n) migration
//                    (switch_cost_factor × container size).
//
// The controller is strategy-vocabulary only: it never touches elements.
// Containers own the migration; the controller owns the decision and the
// thrash accounting (BENCH_closed_loop.json pins the switch counts).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "core/advice.hpp"

namespace dsspy::adapt {

/// Backing strategies an adaptive container can run.
enum class Strategy : std::uint8_t {
    Sequential,   ///< Plain contiguous backing, linear algorithms.
    Indexed,      ///< Contiguous backing plus a value -> index dictionary
                  ///< (the paper's Frequent-Search remedy).
    Parallel,     ///< Contiguous backing; whole-container reads fan out
                  ///< over parallel::ThreadPool (Frequent-Long-Read /
                  ///< Long-Insert remedy).
    DequeBacked,  ///< Double-ended backing: O(1) front traffic
                  ///< (Implement-Queue / Insert-Delete-Front remedy).
    Count,
};

inline constexpr std::size_t kStrategyCount =
    static_cast<std::size_t>(Strategy::Count);

[[nodiscard]] constexpr std::string_view strategy_name(
    Strategy s) noexcept {
    switch (s) {
        case Strategy::Sequential: return "Sequential";
        case Strategy::Indexed: return "Indexed";
        case Strategy::Parallel: return "Parallel";
        case Strategy::DequeBacked: return "DequeBacked";
        case Strategy::Count: break;
    }
    return "?";
}

/// Which strategy executes an advice action inside a container.  Actions
/// that advise a source-level change with no container-side remedy
/// (UseStack, DropWrites) map to Sequential.
[[nodiscard]] constexpr Strategy strategy_for(
    core::AdviceAction action) noexcept {
    switch (action) {
        case core::AdviceAction::BuildIndex: return Strategy::Indexed;
        case core::AdviceAction::ParallelInsert:
        case core::AdviceAction::ParallelPhases:
        case core::AdviceAction::ParallelForAll:
            return Strategy::Parallel;
        case core::AdviceAction::ParallelContainer:
        case core::AdviceAction::UseDeque:
            return Strategy::DequeBacked;
        default:
            return Strategy::Sequential;
    }
}

/// Damping knobs; defaults hold the ISSUE's phase-change bound (≤ 3
/// switches on an insert→search→insert→search workload).
struct ControllerConfig {
    /// EWMA smoothing factor in (0, 1]: the weight of the newest
    /// reclassification (1.0 = no smoothing).
    double ewma_alpha = 0.4;
    /// Smoothed score a challenger strategy must reach to be adopted.
    double enter_threshold = 0.5;
    /// Smoothed score the incumbent must drop below to be abandoned
    /// (lower than enter_threshold: the hysteresis band).
    double exit_threshold = 0.25;
    /// Operations that must pass after a switch before the next one.
    std::size_t min_dwell_ops = 256;
    /// Each completed switch multiplies the required dwell by this
    /// factor: a container that keeps changing its mind meets escalating
    /// resistance, so an alternating-phase workload converges to a
    /// bounded switch count instead of chasing every phase.
    double dwell_backoff = 2.0;
    /// Additionally require ops-since-switch >= factor × container size,
    /// so the O(n) migration is amortized before it can recur.
    double switch_cost_factor = 0.5;
};

/// One advice observation: the winning action of a reclassification.
struct AdviceSignal {
    core::AdviceAction action = core::AdviceAction::Count;  ///< Count = none.
    double confidence = 0.0;
};

/// The damped decision state for one container instance.  Not
/// thread-safe: containers call it under their write lock.
class HysteresisController {
public:
    explicit HysteresisController(ControllerConfig config = {});

    /// Fold one reclassification outcome (the verdict signals of this
    /// instance) and return the strategy to run from now on.  `size` is
    /// the current element count; `ops_delta` the operations executed
    /// since the previous observe() call.
    Strategy observe(const AdviceSignal* signals, std::size_t signal_count,
                     std::size_t size, std::size_t ops_delta);

    [[nodiscard]] Strategy current() const noexcept { return current_; }

    /// Completed strategy migrations (the thrash counter).
    [[nodiscard]] std::size_t switch_count() const noexcept {
        return switches_;
    }

    /// Switches that the damping suppressed (would have fired on raw
    /// verdicts); the closed-loop bench reports this next to the thrash
    /// counter.
    [[nodiscard]] std::size_t suppressed_count() const noexcept {
        return suppressed_;
    }

    /// Smoothed per-action score (EWMA of reclassification confidence).
    /// AdviceAction::Count (the "no action" sentinel) scores 0.
    [[nodiscard]] double score(core::AdviceAction action) const noexcept {
        const auto index = static_cast<std::size_t>(action);
        return index < scores_.size() ? scores_[index] : 0.0;
    }

    [[nodiscard]] const ControllerConfig& config() const noexcept {
        return config_;
    }

private:
    ControllerConfig config_;
    std::array<double, core::kAdviceActionCount> scores_{};
    Strategy current_ = Strategy::Sequential;
    /// The action that justified the current (non-Sequential) strategy.
    core::AdviceAction incumbent_ = core::AdviceAction::Count;
    std::size_t ops_since_switch_ = 0;
    bool ever_switched_ = false;
    std::size_t switches_ = 0;
    std::size_t suppressed_ = 0;
};

}  // namespace dsspy::adapt
