#include "adapt/controller.hpp"

#include <cstddef>

namespace dsspy::adapt {

HysteresisController::HysteresisController(ControllerConfig config)
    : config_(config) {}

Strategy HysteresisController::observe(const AdviceSignal* signals,
                                       std::size_t signal_count,
                                       std::size_t size,
                                       std::size_t ops_delta) {
    ops_since_switch_ += ops_delta;

    // Decay every score, then reinforce the actions this
    // reclassification reported.  An action that stops being reported
    // fades toward zero instead of vanishing instantly.
    const double keep = 1.0 - config_.ewma_alpha;
    for (double& s : scores_) s *= keep;
    for (std::size_t i = 0; i < signal_count; ++i) {
        const AdviceSignal& sig = signals[i];
        if (sig.action == core::AdviceAction::Count) continue;
        scores_[static_cast<std::size_t>(sig.action)] +=
            config_.ewma_alpha * sig.confidence;
    }

    // The challenger: the best-scored action with a container-side
    // remedy.  Ties keep the first (enum order) — deterministic.
    core::AdviceAction best = core::AdviceAction::Count;
    double best_score = 0.0;
    for (std::size_t i = 0; i < core::kAdviceActionCount; ++i) {
        const auto action = static_cast<core::AdviceAction>(i);
        if (strategy_for(action) == Strategy::Sequential) continue;
        if (scores_[i] > best_score) {
            best = action;
            best_score = scores_[i];
        }
    }

    // Desired next state, before damping.
    Strategy desired = current_;
    core::AdviceAction desired_action = incumbent_;
    if (current_ == Strategy::Sequential) {
        if (best != core::AdviceAction::Count &&
            best_score >= config_.enter_threshold) {
            desired = strategy_for(best);
            desired_action = best;
        }
    } else {
        const double incumbent_score =
            incumbent_ == core::AdviceAction::Count
                ? 0.0
                : scores_[static_cast<std::size_t>(incumbent_)];
        if (best != core::AdviceAction::Count &&
            strategy_for(best) != current_ &&
            best_score >= config_.enter_threshold &&
            incumbent_score < config_.exit_threshold) {
            // A different remedy clearly dominates and the incumbent
            // justification has decayed away: move sideways.
            desired = strategy_for(best);
            desired_action = best;
        } else if (incumbent_score < config_.exit_threshold &&
                   (best == core::AdviceAction::Count ||
                    best_score < config_.enter_threshold)) {
            // Nothing justifies a special backing any more.
            desired = Strategy::Sequential;
            desired_action = core::AdviceAction::Count;
        }
    }

    if (desired == current_) return current_;

    // Damping gates: dwell first (never before the very first switch —
    // a cold container should adopt its verdict as soon as it fires),
    // then switch-cost amortization.
    if (ever_switched_) {
        // Escalating dwell: after k completed switches the next one
        // requires min_dwell_ops × backoff^k operations since the last.
        double dwell = static_cast<double>(config_.min_dwell_ops);
        const double backoff = config_.dwell_backoff > 1.0
                                   ? config_.dwell_backoff
                                   : 1.0;
        for (std::size_t k = 0; k < switches_ && k < 32; ++k)
            dwell *= backoff;
        if (static_cast<double>(ops_since_switch_) < dwell) {
            ++suppressed_;
            return current_;
        }
        const double cost_gate =
            config_.switch_cost_factor * static_cast<double>(size);
        if (static_cast<double>(ops_since_switch_) < cost_gate) {
            ++suppressed_;
            return current_;
        }
    }

    current_ = desired;
    incumbent_ = desired_action;
    ops_since_switch_ = 0;
    ever_switched_ = true;
    ++switches_;
    return current_;
}

}  // namespace dsspy::adapt
