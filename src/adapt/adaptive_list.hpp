// AdaptiveList<T> — a list that acts on its own DSspy verdicts.
//
// The profiler's output used to be prose for an engineer; the Advice
// refactor made it a typed value, and this container is the consumer that
// closes the loop.  Every operation is folded into an embedded
// core::IncrementalAnalyzer using the exact recording conventions of
// ds::ProfiledList (same op kinds, positions, sizes), so the verdicts the
// container sees are bit-identical to what offline analysis of the same
// access stream would produce.  Every `reclassify_interval` operations
// the container snapshots its analyzer, feeds the verdict signals to the
// damped adapt::HysteresisController, and — at that safe point, under the
// write lock — migrates its backing strategy:
//
//   Frequent-Search      -> Indexed     (value -> index dictionary; the
//                                        paper's "data structure that is
//                                        optimized for searches")
//   Long-Insert / SAI /
//   Frequent-Long-Read   -> Parallel    (whole-container reads fan out
//                                        over parallel::ThreadPool)
//   Implement-Queue /
//   Insert-Delete-Front  -> DequeBacked (O(1) front inserts/deletes)
//
// Threading: a std::shared_mutex.  Reads take the shared lock; mutations
// and strategy migrations take the exclusive lock.  Whether an operation
// is the one that crosses the reclassification interval is decided by an
// atomic counter *before* locking, so a read-only phase still
// reclassifies (that op upgrades itself to the exclusive lock) and a
// migration can never run under a shared lock.  Event folding has its own
// serialization point (fold_mutex_) because IncrementalAnalyzer requires
// per-instance seq order: two readers under the shared lock must not be
// able to fold out of the order their seqs were issued in, so seq
// assignment and the fold happen under one lock.  Read methods are const
// but may adapt the internal representation — mutable members, the
// self-organizing-container idiom.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <utility>

#include "adapt/controller.hpp"
#include "core/incremental.hpp"
#include "ds/list.hpp"
#include "ds/type_names.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "parallel/parallel_for.hpp"
#include "runtime/access_event.hpp"

namespace dsspy::adapt {

namespace detail {

/// Process-wide compact thread slot for synthesized events (the adaptive
/// containers have no ProfilingSession to assign dense ids).
inline runtime::ThreadId thread_slot() noexcept {
    static std::atomic<std::uint16_t> next{0};
    thread_local const std::uint16_t slot =
        next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

/// Self-telemetry for the adaptive layer (registered once, shared by all
/// instances; no-ops while obs is disabled).
struct AdaptMetrics {
    obs::MetricId switches;
    obs::MetricId reclassifications;
    obs::MetricId suppressed;

    static const AdaptMetrics& get() {
        static const AdaptMetrics m{
            obs::MetricsRegistry::global().counter("adapt.switches"),
            obs::MetricsRegistry::global().counter(
                "adapt.reclassifications"),
            obs::MetricsRegistry::global().counter(
                "adapt.suppressed_switches"),
        };
        return m;
    }
};

}  // namespace detail

/// Tuning for an adaptive container.
struct AdaptConfig {
    /// Operations between reclassifications (the analyzer fold runs every
    /// operation; only the classify + controller step is periodic).
    std::size_t reclassify_interval = 256;
    ControllerConfig controller{};
    core::DetectorConfig detector{};
};

/// Self-adapting List<T>.  API and recorded-event semantics mirror
/// ds::ProfiledList; see the file comment for the strategy loop.
template <typename T>
class AdaptiveList {
public:
    explicit AdaptiveList(AdaptConfig config = {},
                          support::SourceLoc location = {"AdaptiveList",
                                                         "self", 0})
        : config_(config),
          analyzer_(config.detector),
          controller_(config.controller) {
        info_.id = 0;
        info_.kind = runtime::DsKind::List;
        info_.type_name = ds::container_type_name<T>("AdaptiveList");
        info_.location = std::move(location);
        analyzer_.declare_instance(info_);
    }

    AdaptiveList(const AdaptiveList&) = delete;
    AdaptiveList& operator=(const AdaptiveList&) = delete;

    // --- element access ---------------------------------------------------

    /// Indexer read; by value — a reference could dangle across a
    /// concurrent backing migration.
    [[nodiscard]] T get(std::size_t index) const {
        return read_op(runtime::OpKind::Get,
                       static_cast<std::int64_t>(index),
                       [index](const AdaptiveList& self) {
                           return self.backing_get(index);
                       });
    }

    void set(std::size_t index, T value) {
        std::unique_lock lock(mutex_);
        fold(runtime::OpKind::Set, static_cast<std::int64_t>(index),
             backing_count());
        std::optional<T> old;
        if (index_) old = backing_get(index);
        if (deque_) {
            (*deque_)[index] = std::move(value);
        } else {
            list_.set(index, std::move(value));
        }
        if (index_ && !(*old == backing_get(index))) {
            index_remove_occurrence(*old, index);
            index_add(backing_get(index), index);
        }
        maybe_reclassify(lock);
    }

    // --- size -------------------------------------------------------------

    [[nodiscard]] std::size_t count() const {
        std::shared_lock lock(mutex_);
        return backing_count();
    }
    [[nodiscard]] bool empty() const { return count() == 0; }

    // --- mutation ---------------------------------------------------------

    /// Append; recorded as Add at the landing index.
    void add(T value) {
        std::unique_lock lock(mutex_);
        const std::size_t landing = backing_count();
        if (deque_) {
            deque_->push_back(value);
        } else {
            list_.add(value);
        }
        fold(runtime::OpKind::Add, static_cast<std::int64_t>(landing),
             backing_count());
        // Appends shift nothing: a single occurrence bump keeps the index
        // exact.
        if (index_) index_add(value, landing);
        maybe_reclassify(lock);
    }

    /// Positional insert; recorded as InsertAt.
    void insert(std::size_t index, T value) {
        std::unique_lock lock(mutex_);
        if (index_) {
            index_shift_up(index);
            index_add(value, index);
        }
        if (deque_) {
            deque_->insert(deque_->begin() +
                               static_cast<std::ptrdiff_t>(index),
                           std::move(value));
        } else {
            list_.insert(index, std::move(value));
        }
        fold(runtime::OpKind::InsertAt, static_cast<std::int64_t>(index),
             backing_count());
        maybe_reclassify(lock);
    }

    /// Positional removal; recorded as RemoveAt.
    void remove_at(std::size_t index) {
        std::unique_lock lock(mutex_);
        erase_at(index);
        fold(runtime::OpKind::RemoveAt, static_cast<std::int64_t>(index),
             backing_count());
        maybe_reclassify(lock);
    }

    /// Remove first equal element; search + removal both recorded (the
    /// ProfiledList convention), both inside one exclusive critical
    /// section — the found index must not go stale under a concurrent
    /// mutation between the search and the erase.
    bool remove(const T& value) {
        std::unique_lock lock(mutex_);
        const std::ptrdiff_t idx = backing_index_of(value);
        fold(runtime::OpKind::IndexOf,
             idx >= 0 ? idx : runtime::kWholeContainer, backing_count());
        // The search counts as one operation; a reclassification here may
        // migrate the backing, which preserves element order, so idx
        // stays valid.
        maybe_reclassify(lock);
        if (idx < 0) return false;
        erase_at(static_cast<std::size_t>(idx));
        fold(runtime::OpKind::RemoveAt, idx, backing_count());
        maybe_reclassify(lock);
        return true;
    }

    void clear() {
        std::unique_lock lock(mutex_);
        if (deque_) {
            deque_->clear();
        } else {
            list_.clear();
        }
        if (index_) index_->clear();
        fold(runtime::OpKind::Clear, runtime::kWholeContainer, 0);
        maybe_reclassify(lock);
    }

    // --- whole-container operations ---------------------------------------

    /// Linear search — unless the Indexed strategy holds a value -> index
    /// dictionary (O(1)) or the Parallel strategy fans the scan out in
    /// chunks.  Recorded as IndexOf with the hit position.
    [[nodiscard]] std::ptrdiff_t index_of(const T& value) const {
        return read_op_with_position(
            [&value](const AdaptiveList& self) {
                return self.backing_index_of(value);
            });
    }

    [[nodiscard]] bool contains(const T& value) const {
        return index_of(value) >= 0;
    }

    void sort() {
        std::unique_lock lock(mutex_);
        if (deque_) {
            std::sort(deque_->begin(), deque_->end());
        } else {
            list_.sort();
        }
        fold(runtime::OpKind::Sort, runtime::kWholeContainer,
             backing_count());
        if (index_) rebuild_index();
        maybe_reclassify(lock);
    }

    void reverse() {
        std::unique_lock lock(mutex_);
        if (deque_) {
            std::reverse(deque_->begin(), deque_->end());
        } else {
            list_.reverse();
        }
        fold(runtime::OpKind::Reverse, runtime::kWholeContainer,
             backing_count());
        if (index_) rebuild_index();
        maybe_reclassify(lock);
    }

    /// Whole-container traversal; recorded as a single ForEach event.
    /// Under the Parallel strategy `fn` runs on pool workers over
    /// disjoint chunks — it must be thread-safe then (it is called
    /// sequentially, in order, under every other strategy).
    template <typename Fn>
    void for_each(Fn fn) const {
        const bool reclassify = crosses_interval();
        if (reclassify) {
            std::unique_lock lock(mutex_);
            fold(runtime::OpKind::ForEach, runtime::kWholeContainer,
                 backing_count());
            backing_for_each(fn);
            do_reclassify();
            return;
        }
        std::shared_lock lock(mutex_);
        fold(runtime::OpKind::ForEach, runtime::kWholeContainer,
             backing_count());
        backing_for_each(fn);
    }

    // --- adaptation introspection -----------------------------------------

    [[nodiscard]] Strategy strategy() const {
        std::shared_lock lock(mutex_);
        return controller_.current();
    }

    /// Completed backing migrations (the thrash counter).
    [[nodiscard]] std::size_t switch_count() const {
        std::shared_lock lock(mutex_);
        return controller_.switch_count();
    }

    /// Switches the hysteresis suppressed.
    [[nodiscard]] std::size_t suppressed_count() const {
        std::shared_lock lock(mutex_);
        return controller_.suppressed_count();
    }

    /// Current verdicts of the embedded analyzer — what offline analysis
    /// of the same access stream would report right now.
    [[nodiscard]] std::vector<core::UseCase> verdicts() const {
        std::shared_lock lock(mutex_);
        return current_verdicts();
    }

    [[nodiscard]] std::uint64_t events_folded() const {
        return analyzer_.events_folded();
    }

private:
    // --- backing dispatch (callers hold a lock) ---------------------------

    [[nodiscard]] std::size_t backing_count() const {
        return deque_ ? deque_->size() : list_.count();
    }

    [[nodiscard]] T backing_get(std::size_t index) const {
        return deque_ ? (*deque_)[index] : list_.get(index);
    }

    [[nodiscard]] std::ptrdiff_t backing_index_of(const T& value) const {
        if (index_) {
            const auto it = index_->find(value);
            return it != index_->end()
                       ? static_cast<std::ptrdiff_t>(it->second.first)
                       : -1;
        }
        if (deque_) {
            for (std::size_t i = 0; i < deque_->size(); ++i)
                if ((*deque_)[i] == value)
                    return static_cast<std::ptrdiff_t>(i);
            return -1;
        }
        if (controller_.current() == Strategy::Parallel &&
            list_.count() >= 2048) {
            // Chunked parallel scan; the atomic min keeps the
            // first-occurrence answer deterministic.
            std::atomic<std::size_t> first{list_.count()};
            par::parallel_for_chunks(
                0, list_.count(),
                [this, &value, &first](std::size_t lo, std::size_t hi) {
                    if (lo >= first.load(std::memory_order_relaxed)) return;
                    for (std::size_t i = lo; i < hi; ++i) {
                        if (list_.get(i) == value) {
                            std::size_t cur =
                                first.load(std::memory_order_relaxed);
                            while (i < cur &&
                                   !first.compare_exchange_weak(cur, i)) {
                            }
                            return;
                        }
                    }
                });
            const std::size_t hit = first.load(std::memory_order_relaxed);
            return hit < list_.count()
                       ? static_cast<std::ptrdiff_t>(hit)
                       : -1;
        }
        return list_.index_of(value);
    }

    template <typename Fn>
    void backing_for_each(Fn& fn) const {
        if (deque_) {
            for (const T& v : *deque_) fn(v);
            return;
        }
        if (controller_.current() == Strategy::Parallel &&
            list_.count() >= 2048) {
            par::parallel_for_chunks(
                0, list_.count(),
                [this, &fn](std::size_t lo, std::size_t hi) {
                    for (std::size_t i = lo; i < hi; ++i) fn(list_.get(i));
                });
            return;
        }
        list_.for_each([&fn](const T& v) { fn(v); });
    }

    // --- erase + index maintenance (callers hold the exclusive lock) ------

    /// Erase the element at `index`, keeping the search index (when the
    /// Indexed strategy holds one) exact.
    void erase_at(std::size_t index) {
        std::optional<T> old;
        if (index_) old = backing_get(index);
        if (deque_) {
            deque_->erase(deque_->begin() +
                          static_cast<std::ptrdiff_t>(index));
        } else {
            list_.remove_at(index);
        }
        if (index_) index_erase_at(*old, index);
    }

    /// One more occurrence of `value` now lives at `index` (no positions
    /// shifted).  O(1).
    void index_add(const T& value, std::size_t index) const {
        auto [it, fresh] = index_->try_emplace(value, IndexEntry{index, 0});
        ++it->second.count;
        if (index < it->second.first) it->second.first = index;
    }

    /// The occurrence of `value` at `index` was overwritten in place (no
    /// positions shifted).  O(1) unless the canonical occurrence of a
    /// duplicated value was hit, which re-derives by a targeted scan.
    void index_remove_occurrence(const T& value, std::size_t index) const {
        const auto it = index_->find(value);
        if (it == index_->end()) return;
        if (it->second.count <= 1) {
            index_->erase(it);
            return;
        }
        --it->second.count;
        if (it->second.first == index)
            it->second.first = scan_first(value, index);
    }

    /// All occurrences at positions >= `index` are about to shift up by
    /// one (positional insert).  O(distinct values), no element rescan.
    void index_shift_up(std::size_t index) const {
        for (auto& [value, entry] : *index_)
            if (entry.first >= index) ++entry.first;
    }

    /// The element at `index` (holding `value`) was erased and everything
    /// behind it shifted down by one.  Called after the backing erase.
    void index_erase_at(const T& value, std::size_t index) const {
        const auto it = index_->find(value);
        for (auto& [v, entry] : *index_)
            if (entry.first > index) --entry.first;
        if (it == index_->end()) return;
        if (it->second.count <= 1) {
            index_->erase(it);
            return;
        }
        --it->second.count;
        // The erased occurrence was the canonical one: re-derive from the
        // already-shifted backing.
        if (it->second.first == index)
            it->second.first = scan_first(value, backing_count());
    }

    /// First occurrence of `value` in the backing, ignoring `skip`.
    /// Only reached when duplicates guarantee a hit.
    [[nodiscard]] std::size_t scan_first(const T& value,
                                         std::size_t skip) const {
        const std::size_t n = backing_count();
        for (std::size_t i = 0; i < n; ++i)
            if (i != skip && backing_get(i) == value) return i;
        return n;  // Unreachable while counts are consistent.
    }

    // --- event synthesis ---------------------------------------------------

    /// Fold one synthesized event, mirroring ds::ProfiledList's recording
    /// conventions (op, position, size-at-access).  Seq issue and fold
    /// happen under one lock: IncrementalAnalyzer requires per-instance
    /// seq order, and two shared-lock readers must not reorder between
    /// taking a seq and folding it.
    void fold(runtime::OpKind op, std::int64_t position,
              std::size_t size) const {
        runtime::AccessEvent ev;
        ev.position = position;
        ev.instance = info_.id;
        ev.size = static_cast<std::uint32_t>(size);
        ev.op = op;
        ev.thread = detail::thread_slot();
        const std::lock_guard<std::mutex> guard(fold_mutex_);
        ev.seq = seq_++;
        ev.time_ns = ev.seq;  // Logical clock: classification under the
                              // default config is event-based.
        analyzer_.fold(ev);
    }

    // --- reclassification & migration -------------------------------------

    /// Pre-lock decision: is this the operation that crosses the
    /// reclassification interval?
    [[nodiscard]] bool crosses_interval() const {
        const std::uint64_t n =
            ops_.fetch_add(1, std::memory_order_relaxed) + 1;
        return config_.reclassify_interval != 0 &&
               n % config_.reclassify_interval == 0;
    }

    void maybe_reclassify(std::unique_lock<std::shared_mutex>&) const {
        if (crosses_interval()) do_reclassify();
    }

    [[nodiscard]] std::vector<core::UseCase> current_verdicts() const {
        core::StreamReport report = analyzer_.snapshot({info_});
        for (const core::StreamInstance& si : report.instances())
            if (si.stats.info.id == info_.id) return si.use_cases;
        return {};
    }

    /// Runs under the exclusive lock: classify, consult the controller,
    /// migrate the backing if the strategy changed.
    void do_reclassify() const {
        const std::vector<core::UseCase> verdicts = current_verdicts();
        std::vector<AdviceSignal> signals;
        signals.reserve(verdicts.size());
        for (const core::UseCase& uc : verdicts)
            signals.push_back({uc.advice.action, uc.confidence()});
        const std::uint64_t now = ops_.load(std::memory_order_relaxed);
        const std::size_t delta =
            static_cast<std::size_t>(now - last_observed_ops_);
        last_observed_ops_ = now;
        const Strategy before = controller_.current();
        const std::size_t suppressed_before = controller_.suppressed_count();
        const Strategy after = controller_.observe(
            signals.data(), signals.size(), backing_count(), delta);
        if (obs::enabled()) {
            const auto& m = detail::AdaptMetrics::get();
            obs::MetricsRegistry::global().add(m.reclassifications);
            const std::size_t newly_suppressed =
                controller_.suppressed_count() - suppressed_before;
            if (newly_suppressed > 0)
                obs::MetricsRegistry::global().add(m.suppressed,
                                                   newly_suppressed);
        }
        if (after != before) migrate(before, after);
    }

    void migrate(Strategy from, Strategy to) const {
        DSSPY_SPAN("adapt.switch");
        if (obs::enabled())
            obs::MetricsRegistry::global().add(
                detail::AdaptMetrics::get().switches);
        // Leave the old backing.
        if (from == Strategy::DequeBacked && to != Strategy::DequeBacked) {
            list_.clear();
            list_.reserve(deque_->size());
            for (T& v : *deque_) list_.add(std::move(v));
            deque_.reset();
        }
        if (from == Strategy::Indexed && to != Strategy::Indexed)
            index_.reset();
        // Enter the new one.
        switch (to) {
            case Strategy::Indexed:
                index_.emplace();
                rebuild_index();
                break;
            case Strategy::DequeBacked: {
                deque_.emplace();
                for (std::size_t i = 0; i < list_.count(); ++i)
                    deque_->push_back(std::move(list_[i]));
                list_.clear();
                break;
            }
            default:
                break;
        }
    }

    /// Full rebuild of the value -> (first index, count) map — only for
    /// wholesale reorderings (sort/reverse, entering Indexed); point
    /// mutations maintain the map incrementally.
    void rebuild_index() const {
        index_->clear();
        for (std::size_t i = 0; i < list_.count(); ++i) {
            auto [it, fresh] =
                index_->try_emplace(list_.get(i), IndexEntry{i, 0});
            ++it->second.count;
        }
    }

    // --- read-path helpers --------------------------------------------------

    /// A read operation: shared lock normally; the interval-crossing op
    /// takes the exclusive lock so it can reclassify (and migrate) at a
    /// safe point.
    template <typename Body>
    [[nodiscard]] auto read_op(runtime::OpKind op, std::int64_t position,
                               Body body) const {
        const bool reclassify = crosses_interval();
        if (reclassify) {
            std::unique_lock lock(mutex_);
            fold(op, position, backing_count());
            auto result = body(*this);
            do_reclassify();
            return result;
        }
        std::shared_lock lock(mutex_);
        fold(op, position, backing_count());
        return body(*this);
    }

    /// index_of variant: the recorded position is the hit index (or
    /// kWholeContainer on miss), known only after the search.
    template <typename Body>
    [[nodiscard]] std::ptrdiff_t read_op_with_position(Body body) const {
        const bool reclassify = crosses_interval();
        if (reclassify) {
            std::unique_lock lock(mutex_);
            const std::ptrdiff_t idx = body(*this);
            fold(runtime::OpKind::IndexOf,
                 idx >= 0 ? idx : runtime::kWholeContainer,
                 backing_count());
            do_reclassify();
            return idx;
        }
        std::shared_lock lock(mutex_);
        const std::ptrdiff_t idx = body(*this);
        fold(runtime::OpKind::IndexOf,
             idx >= 0 ? idx : runtime::kWholeContainer, backing_count());
        return idx;
    }

    /// Search-index bookkeeping: smallest index holding the value plus
    /// its occurrence count, so point mutations update in O(1) and only
    /// erasing the canonical occurrence of a duplicate needs a rescan.
    struct IndexEntry {
        std::size_t first = 0;
        std::size_t count = 0;
    };

    AdaptConfig config_;
    runtime::InstanceInfo info_;

    mutable std::shared_mutex mutex_;
    mutable ds::List<T> list_;
    mutable std::optional<std::deque<T>> deque_;
    mutable std::optional<std::unordered_map<T, IndexEntry>> index_;

    mutable core::IncrementalAnalyzer analyzer_;
    mutable HysteresisController controller_;
    mutable std::mutex fold_mutex_;
    mutable std::uint64_t seq_ = 0;
    mutable std::atomic<std::uint64_t> ops_{0};
    mutable std::uint64_t last_observed_ops_ = 0;
};

}  // namespace dsspy::adapt
