// Mandelbrot — fractal renderer (the paper's Solver app: 150 LOC, 7 data
// structures, 4 flagged, speedup 3.00).
//
// Renders the set into a flat image array written row by row (Long-Insert
// on the image — the paper's use case four), precomputes an x-coordinate
// array that every row re-reads (Frequent-Long-Read), initializes a color
// palette (Long-Insert), and keeps a per-row offset list (Long-Insert —
// the paper's use cases two and three are the float-array initializations
// that had been parallelized "by the use of a compiler switch").  The
// recommended action parallelizes the per-row pixel computation.
#pragma once

#include "apps/app_registry.hpp"

namespace dsspy::apps {

RunResult run_mandelbrot(runtime::ProfilingSession* session);
RunResult run_mandelbrot_parallel(par::ThreadPool& pool);
RunResult run_mandelbrot_simulated(unsigned workers);

}  // namespace dsspy::apps
