#include "apps/cpubench.hpp"

#include <cmath>
#include <cstdint>

#include "ds/ds.hpp"
#include "parallel/parallel_for.hpp"
#include "support/rng.hpp"
#include "parallel/simulation.hpp"
#include "support/stopwatch.hpp"

namespace dsspy::apps {

namespace {

using support::SourceLoc;
using support::Stopwatch;

constexpr std::size_t kN = 100;          // Linpack matrix order
constexpr int kWhetstoneCycles = 140;    // Whetstone outer iterations

SourceLoc loc(const char* method, std::uint32_t position) {
    return SourceLoc{"CpuBenchmarks.Suite", method, position};
}

double matgen_value(std::size_t i, std::size_t j) {
    // Deterministic well-conditioned matrix (diagonally dominant).
    const double base =
        std::sin(static_cast<double>(i * kN + j) * 0.37) * 0.5;
    return i == j ? base + static_cast<double>(kN) : base;
}

// --- Whetstone: scalar-dominated synthetic computation -------------------
// Modules follow the classic benchmark's structure: the heavy trigonometric
// and arithmetic modules work on scalars (no data-structure traffic at
// all), module 2 works on the famous 4-element array.

double whetstone_scalars(int cycles) {
    double x1 = 1.0;
    double x2 = -1.0;
    double x3 = -1.0;
    double x4 = -1.0;
    constexpr double t = 0.499975;
    double out = 0.0;
    for (int c = 0; c < cycles; ++c) {
        // Module 1: simple identities.
        for (int i = 0; i < 1200; ++i) {
            x1 = (x1 + x2 + x3 - x4) * t;
            x2 = (x1 + x2 - x3 + x4) * t;
            x3 = (x1 - x2 + x3 + x4) * t;
            x4 = (-x1 + x2 + x3 + x4) * t;
        }
        // Module 7: trigonometric functions.
        double x = 0.5;
        double y = 0.5;
        for (int i = 0; i < 140; ++i) {
            x = t * std::atan(2.2 * std::sin(x) * std::cos(x) /
                              (std::cos(x + y) + std::cos(x - y) - 1.0));
            y = t * std::atan(2.2 * std::sin(y) * std::cos(y) /
                              (std::cos(x + y) + std::cos(x - y) - 1.0));
        }
        // Module 11: standard functions.
        double z = 0.75;
        for (int i = 0; i < 140; ++i)
            z = std::sqrt(std::exp(std::log(z) / 0.99));
        out += x1 + x2 + x3 + x4 + x + y + z;
    }
    return out;
}

template <typename ArrayT>
double whetstone_array_module(ArrayT& e1, int cycles) {
    constexpr double t = 0.499975;
    double out = 0.0;
    for (int c = 0; c < cycles; ++c) {
        e1.set(0, 1.0);
        e1.set(1, -1.0);
        e1.set(2, -1.0);
        e1.set(3, -1.0);
        for (int i = 0; i < 24; ++i) {
            e1.set(0, (e1.get(0) + e1.get(1) + e1.get(2) - e1.get(3)) * t);
            e1.set(1, (e1.get(0) + e1.get(1) - e1.get(2) + e1.get(3)) * t);
            e1.set(2, (e1.get(0) - e1.get(1) + e1.get(2) + e1.get(3)) * t);
            e1.set(3, (-e1.get(0) + e1.get(1) + e1.get(2) + e1.get(3)) * t);
        }
        out += e1.get(3);
    }
    return out;
}

}  // namespace

RunResult run_cpubench(runtime::ProfilingSession* session) {
    RunResult result;
    Stopwatch total;
    std::uint64_t parallelizable = 0;

    // ---- Linpack ---------------------------------------------------------
    ds::ProfiledArray<double> matrix(session, loc("Matgen", 1), kN * kN);
    ds::ProfiledArray<double> rhs(session, loc("Matgen", 2), kN);
    ds::ProfiledArray<std::int64_t> pivots(session, loc("Factor", 3), kN);
    ds::ProfiledArray<double> solution(session, loc("Solve", 4), kN);
    ds::ProfiledArray<double> workspace(session, loc("Prepare", 5), kN * 4);

    // Matrix / rhs / workspace generation (parallelizable inits).
    {
        Stopwatch region;
        for (std::size_t i = 0; i < kN; ++i)
            for (std::size_t j = 0; j < kN; ++j)
                matrix.set(i * kN + j, matgen_value(i, j));
        for (std::size_t i = 0; i < kN; ++i)
            rhs.set(i, std::cos(static_cast<double>(i)) * 2.0);
        for (std::size_t i = 0; i < workspace.length(); ++i)
            workspace.set(i, std::sqrt(static_cast<double>(i) + 1.0));
        parallelizable += region.elapsed_ns();
    }

    // LU factorization with partial pivoting (data-dependent, sequential
    // pivot chain; the row updates are the only parallelizable part).
    for (std::size_t k = 0; k < kN; ++k) {
        std::size_t p = k;
        double maxval = std::abs(matrix.get(k * kN + k));
        for (std::size_t i = k + 1; i < kN; ++i) {
            const double v = std::abs(matrix.get(i * kN + k));
            if (v > maxval) {
                maxval = v;
                p = i;
            }
        }
        pivots.set(k, static_cast<std::int64_t>(p));
        if (p != k) {
            for (std::size_t j = 0; j < kN; ++j) {
                const double tmp = matrix.get(k * kN + j);
                matrix.set(k * kN + j, matrix.get(p * kN + j));
                matrix.set(p * kN + j, tmp);
            }
            const double tmp = rhs.get(k);
            rhs.set(k, rhs.get(p));
            rhs.set(p, tmp);
        }
        Stopwatch region;
        for (std::size_t i = k + 1; i < kN; ++i) {
            const double factor = matrix.get(i * kN + k) / matrix.get(k * kN + k);
            matrix.set(i * kN + k, factor);
            for (std::size_t j = k + 1; j < kN; ++j)
                matrix.set(i * kN + j, matrix.get(i * kN + j) -
                                           factor * matrix.get(k * kN + j));
            rhs.set(i, rhs.get(i) - factor * rhs.get(k));
        }
        parallelizable += region.elapsed_ns();
    }

    // Back substitution (sequential dependency chain).
    for (std::size_t k = kN; k-- > 0;) {
        double sum = rhs.get(k);
        for (std::size_t j = k + 1; j < kN; ++j)
            sum -= matrix.get(k * kN + j) * solution.get(j);
        solution.set(k, sum / matrix.get(k * kN + k));
    }
    // Read pivots once (validation sweep).
    std::int64_t pivot_check = 0;
    for (std::size_t k = 0; k < kN; ++k) pivot_check += pivots.get(k);

    double residual = 0.0;
    for (std::size_t i = 0; i < kN; ++i) residual += solution.get(i);

    // ---- Whetstone -------------------------------------------------------
    const double scalar_part = whetstone_scalars(kWhetstoneCycles);
    ds::ProfiledArray<double> e1(session, loc("WhetstoneModule2", 6), 4);
    const double array_part = whetstone_array_module(e1, kWhetstoneCycles);

    // ---- Timing-sample history (the suite records per-run samples). ----
    ds::ProfiledList<double> samples(session, loc("RecordSamples", 7));
    for (int i = 0; i < 150; ++i)
        samples.add(residual * 1e-6 + static_cast<double>(i));
    double sample_sum = 0.0;
    std::size_t pos = 0;
    for (int i = 0; i < 30; ++i) {
        sample_sum += samples.get(pos);
        pos = (pos + 7) % samples.count();
    }

    result.checksum = residual + scalar_part + array_part + sample_sum +
                      static_cast<double>(pivot_check) +
                      workspace.get(workspace.length() - 1);
    result.total_ns = total.elapsed_ns();
    result.parallelizable_ns = parallelizable;
    return result;
}

RunResult run_cpubench_parallel(par::ThreadPool& pool) {
    RunResult result;
    Stopwatch total;

    ds::Array<double> matrix(kN * kN);
    ds::Array<double> rhs(kN);
    ds::Array<std::int64_t> pivots(kN);
    ds::Array<double> solution(kN);
    ds::Array<double> workspace(kN * 4);

    // Recommended action: parallelize the initializations.
    par::parallel_for(pool, 0, kN, [&matrix](std::size_t i) {
        for (std::size_t j = 0; j < kN; ++j)
            matrix.set(i * kN + j, matgen_value(i, j));
    });
    par::parallel_for(pool, 0, kN, [&rhs](std::size_t i) {
        rhs.set(i, std::cos(static_cast<double>(i)) * 2.0);
    });
    par::parallel_for(pool, 0, workspace.length(), [&workspace](std::size_t i) {
        workspace.set(i, std::sqrt(static_cast<double>(i) + 1.0));
    });

    // Pivot search and swap remain sequential; row updates run in parallel.
    for (std::size_t k = 0; k < kN; ++k) {
        std::size_t p = k;
        double maxval = std::abs(matrix.get(k * kN + k));
        for (std::size_t i = k + 1; i < kN; ++i) {
            const double v = std::abs(matrix.get(i * kN + k));
            if (v > maxval) {
                maxval = v;
                p = i;
            }
        }
        pivots.set(k, static_cast<std::int64_t>(p));
        if (p != k) {
            for (std::size_t j = 0; j < kN; ++j) {
                const double tmp = matrix.get(k * kN + j);
                matrix.set(k * kN + j, matrix.get(p * kN + j));
                matrix.set(p * kN + j, tmp);
            }
            const double tmp = rhs.get(k);
            rhs.set(k, rhs.get(p));
            rhs.set(p, tmp);
        }
        par::parallel_for(pool, k + 1, kN, [&, k](std::size_t i) {
            const double factor =
                matrix.get(i * kN + k) / matrix.get(k * kN + k);
            matrix.set(i * kN + k, factor);
            for (std::size_t j = k + 1; j < kN; ++j)
                matrix.set(i * kN + j, matrix.get(i * kN + j) -
                                           factor * matrix.get(k * kN + j));
            rhs.set(i, rhs.get(i) - factor * rhs.get(k));
        });
    }

    for (std::size_t k = kN; k-- > 0;) {
        double sum = rhs.get(k);
        for (std::size_t j = k + 1; j < kN; ++j)
            sum -= matrix.get(k * kN + j) * solution.get(j);
        solution.set(k, sum / matrix.get(k * kN + k));
    }
    std::int64_t pivot_check = 0;
    for (std::size_t k = 0; k < kN; ++k) pivot_check += pivots.get(k);

    double residual = 0.0;
    for (std::size_t i = 0; i < kN; ++i) residual += solution.get(i);

    // Whetstone is inherently sequential — unchanged.
    const double scalar_part = whetstone_scalars(kWhetstoneCycles);
    ds::Array<double> e1(4);
    const double array_part = whetstone_array_module(e1, kWhetstoneCycles);

    ds::List<double> samples;
    for (int i = 0; i < 150; ++i)
        samples.add(residual * 1e-6 + static_cast<double>(i));
    double sample_sum = 0.0;
    std::size_t pos = 0;
    for (int i = 0; i < 30; ++i) {
        sample_sum += samples[pos];
        pos = (pos + 7) % samples.count();
    }

    result.checksum = residual + scalar_part + array_part + sample_sum +
                      static_cast<double>(pivot_check) +
                      workspace.get(workspace.length() - 1);
    result.total_ns = total.elapsed_ns();
    return result;
}

RunResult run_cpubench_simulated(unsigned workers) {
    RunResult result;
    Stopwatch total;
    std::uint64_t region_work = 0;
    std::uint64_t region_span = 0;
    auto sim = [&](std::size_t begin, std::size_t end, auto body) {
        const par::SimulatedSchedule schedule =
            par::simulate_chunks(begin, end, workers * 4, body);
        region_work += schedule.total_work_ns();
        region_span += schedule.makespan_ns(workers);
    };

    ds::Array<double> matrix(kN * kN);
    ds::Array<double> rhs(kN);
    ds::Array<std::int64_t> pivots(kN);
    ds::Array<double> solution(kN);
    ds::Array<double> workspace(kN * 4);

    sim(0, kN, [&matrix](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            for (std::size_t j = 0; j < kN; ++j)
                matrix.set(i * kN + j, matgen_value(i, j));
    });
    sim(0, kN, [&rhs](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            rhs.set(i, std::cos(static_cast<double>(i)) * 2.0);
    });
    sim(0, workspace.length(), [&workspace](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            workspace.set(i, std::sqrt(static_cast<double>(i) + 1.0));
    });

    for (std::size_t k = 0; k < kN; ++k) {
        std::size_t p = k;
        double maxval = std::abs(matrix.get(k * kN + k));
        for (std::size_t i = k + 1; i < kN; ++i) {
            const double v = std::abs(matrix.get(i * kN + k));
            if (v > maxval) {
                maxval = v;
                p = i;
            }
        }
        pivots.set(k, static_cast<std::int64_t>(p));
        if (p != k) {
            for (std::size_t j = 0; j < kN; ++j) {
                const double tmp = matrix.get(k * kN + j);
                matrix.set(k * kN + j, matrix.get(p * kN + j));
                matrix.set(p * kN + j, tmp);
            }
            const double tmp = rhs.get(k);
            rhs.set(k, rhs.get(p));
            rhs.set(p, tmp);
        }
        // Row updates: the per-k parallel region.
        sim(k + 1, kN, [&, k](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) {
                const double factor =
                    matrix.get(i * kN + k) / matrix.get(k * kN + k);
                matrix.set(i * kN + k, factor);
                for (std::size_t j = k + 1; j < kN; ++j)
                    matrix.set(i * kN + j,
                               matrix.get(i * kN + j) -
                                   factor * matrix.get(k * kN + j));
                rhs.set(i, rhs.get(i) - factor * rhs.get(k));
            }
        });
    }

    for (std::size_t k = kN; k-- > 0;) {
        double sum = rhs.get(k);
        for (std::size_t j = k + 1; j < kN; ++j)
            sum -= matrix.get(k * kN + j) * solution.get(j);
        solution.set(k, sum / matrix.get(k * kN + k));
    }
    std::int64_t pivot_check = 0;
    for (std::size_t k = 0; k < kN; ++k) pivot_check += pivots.get(k);

    double residual = 0.0;
    for (std::size_t i = 0; i < kN; ++i) residual += solution.get(i);

    const double scalar_part = whetstone_scalars(kWhetstoneCycles);
    ds::Array<double> e1(4);
    const double array_part = whetstone_array_module(e1, kWhetstoneCycles);

    ds::List<double> samples;
    for (int i = 0; i < 150; ++i)
        samples.add(residual * 1e-6 + static_cast<double>(i));
    double sample_sum = 0.0;
    std::size_t pos = 0;
    for (int i = 0; i < 30; ++i) {
        sample_sum += samples[pos];
        pos = (pos + 7) % samples.count();
    }

    result.checksum = residual + scalar_part + array_part + sample_sum +
                      static_cast<double>(pivot_check) +
                      workspace.get(workspace.length() - 1);
    const std::uint64_t wall = total.elapsed_ns();
    result.total_ns = wall - region_work + region_span;
    result.parallelizable_ns = region_span;
    return result;
}

}  // namespace dsspy::apps
