#include "apps/text_corpus.hpp"

#include "support/rng.hpp"

namespace dsspy::apps {

namespace {

const std::vector<std::string>& vocabulary() {
    static const std::vector<std::string> words = {
        // High-frequency filler.
        "the", "of", "and", "to", "in", "that", "is", "was", "for", "with",
        "as", "on", "by", "at", "from", "this", "which", "not", "are", "be",
        // Mid-frequency domain words.
        "system", "data", "structure", "list", "array", "access", "pattern",
        "thread", "parallel", "profile", "runtime", "engine", "search",
        "insert", "delete", "index", "queue", "stack", "buffer", "record",
        "kernel", "module", "memory", "cache", "vector", "matrix", "signal",
        "galaxy", "nebula", "stellar", "photon", "orbit", "comet", "quasar",
        // Low-frequency markers (good guaranteed-hit terms).
        "andromeda", "zenith", "parallax", "spectrograph", "heliosphere",
    };
    return words;
}

}  // namespace

const std::vector<std::string>& corpus_vocabulary() { return vocabulary(); }

std::vector<Document> make_documents(std::size_t count,
                                     std::size_t lines_per_doc,
                                     std::uint64_t seed,
                                     std::size_t words_per_line) {
    support::Rng rng(seed);
    const std::vector<std::string>& vocab = vocabulary();
    std::vector<Document> docs;
    docs.reserve(count);
    for (std::size_t d = 0; d < count; ++d) {
        Document doc;
        doc.name = "doc" + std::to_string(d) + ".txt";
        const std::size_t lines =
            lines_per_doc / 2 + rng.next_below(lines_per_doc);
        doc.lines.reserve(lines);
        for (std::size_t l = 0; l < lines; ++l) {
            std::string line;
            const std::size_t words =
                words_per_line / 2 + 1 + rng.next_below(words_per_line);
            for (std::size_t w = 0; w < words; ++w) {
                if (w != 0) line += ' ';
                // Zipf-ish: square the uniform draw to favour the head of
                // the vocabulary (the filler words).
                const double u = rng.next_double();
                const auto idx = static_cast<std::size_t>(
                    u * u * static_cast<double>(vocab.size()));
                line += vocab[idx < vocab.size() ? idx : vocab.size() - 1];
            }
            doc.lines.push_back(std::move(line));
        }
        docs.push_back(std::move(doc));
    }
    return docs;
}

std::vector<std::string> make_word_list(std::size_t count,
                                        std::uint64_t seed) {
    support::Rng rng(seed);
    // Letter pool weighted toward common English letters so that a random
    // 9-letter wheel yields a realistic number of solutions.
    static constexpr char kLetters[] = "eeeeaaaiioonnrrttlsssudgcmhpbyfvkw";
    std::vector<std::string> words;
    words.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        const std::size_t len = 3 + rng.next_below(7);  // 3..9 letters
        std::string word;
        word.reserve(len);
        for (std::size_t c = 0; c < len; ++c)
            word += kLetters[rng.next_below(sizeof(kLetters) - 1)];
        words.push_back(std::move(word));
    }
    return words;
}

}  // namespace dsspy::apps
