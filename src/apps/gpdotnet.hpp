// GPdotNET — genetic-programming engine for discrete time-series analysis
// (the paper's Simulation app: 7,000 LOC, 37 data structures, 5 flagged,
// speedup 2.93; Table V shows its DSspy report).
//
// The engine evolves a population of fixed-length arithmetic chromosomes
// against a target series.  The DSspy-flagged locations mirror Table V:
//   * GenerateTerminalSet — the input-series array is fully re-read by
//     every chromosome evaluation (Frequent-Long-Read);
//   * CHPopulation ctor / NewGeneration — the population list is rebuilt
//     with long insertion phases every generation (Long-Insert) and fully
//     swept by fitness evaluation (Frequent-Long-Read);
//   * FitnessProportionateSelection — the fitness array is rewritten per
//     generation (Long-Insert) and swept to build the selection
//     distribution (Frequent-Long-Read).
// The recommended action parallelizes fitness evaluation — the dominant
// cost — which is exactly what the hand-parallelized GPdotNET version did.
#pragma once

#include "apps/app_registry.hpp"

namespace dsspy::apps {

RunResult run_gpdotnet(runtime::ProfilingSession* session);
RunResult run_gpdotnet_parallel(par::ThreadPool& pool);
RunResult run_gpdotnet_simulated(unsigned workers);

}  // namespace dsspy::apps
