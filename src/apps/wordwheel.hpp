// WordWheelSolver — 9-letter word-wheel puzzle solver (the paper's Solver
// app: 110 LOC, 5 data structures, 2 flagged, speedup 1.50).
//
// For each puzzle wheel the solver scans the whole word list checking
// whether the word can be built from the wheel's letters and must contain
// the mandatory center letter — a textbook Frequent-Long-Read on the word
// list — and appends solutions to a result list (Long-Insert).  The
// recommended action splits the word list into chunks searched in
// parallel.
#pragma once

#include "apps/app_registry.hpp"

namespace dsspy::apps {

RunResult run_wordwheel(runtime::ProfilingSession* session);
RunResult run_wordwheel_parallel(par::ThreadPool& pool);
RunResult run_wordwheel_simulated(unsigned workers);

}  // namespace dsspy::apps
