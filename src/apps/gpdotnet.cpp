#include "apps/gpdotnet.hpp"

#include <array>
#include <cmath>
#include <cstdint>
#include <string>

#include "ds/ds.hpp"
#include "parallel/parallel_for.hpp"
#include "support/rng.hpp"
#include "parallel/simulation.hpp"
#include "support/stopwatch.hpp"

namespace dsspy::apps {

namespace {

using support::Rng;
using support::SourceLoc;
using support::Stopwatch;

constexpr std::size_t kPopulation = 200;
constexpr std::size_t kGenerations = 12;
constexpr std::size_t kSeriesPoints = 200;
constexpr std::size_t kGenes = 16;

SourceLoc loc(const char* cls, const char* method, std::uint32_t position) {
    return SourceLoc{std::string("GPdotNET.Engine.") + cls, method, position};
}

}  // namespace

/// Fixed-length arithmetic chromosome: each gene is an opcode applied to a
/// running accumulator and the current series value.  Defined at namespace
/// scope so the TypeName trait below can name it.
struct Chromosome {
    std::array<std::uint8_t, kGenes> genes{};
};

}  // namespace dsspy::apps

// Report chromosomes under the interface name the paper prints in Table V.
template <>
struct dsspy::ds::TypeName<dsspy::apps::Chromosome> {
    static constexpr std::string_view value = "GPdotNET.Core.IChromosome";
};

namespace dsspy::apps {
namespace {

Chromosome random_chromosome(Rng& rng) {
    Chromosome c;
    for (auto& g : c.genes) g = static_cast<std::uint8_t>(rng.next_below(6));
    return c;
}

/// Evaluate one chromosome against the target series; lower error is
/// better, fitness = 1/(1+error).  `series` exposes get(i)/length().
template <typename SeriesT>
double evaluate(const Chromosome& c, const SeriesT& series) {
    double error = 0.0;
    const std::size_t n = series.length();
    // Single forward sweep over the series: each point is read exactly
    // once (the Read-Forward profile of GenerateTerminalSet in Table V).
    double x = series.get(0);
    for (std::size_t i = 1; i < n; ++i) {
        double acc = x;
        for (std::uint8_t g : c.genes) {
            switch (g) {
                case 0: acc += x * 0.5; break;
                case 1: acc -= x * 0.25; break;
                case 2: acc *= 1.01; break;
                case 3: acc = acc * 0.5 + x * 0.5; break;
                case 4: acc += 0.1; break;
                default: acc = std::abs(acc) * 0.999; break;
            }
        }
        const double actual = series.get(i);
        error += (acc - actual) * (acc - actual);
        x = actual;
    }
    return 1.0 / (1.0 + error / static_cast<double>(n));
}

Chromosome crossover(const Chromosome& a, const Chromosome& b, Rng& rng) {
    Chromosome child;
    const std::size_t cut = 1 + rng.next_below(kGenes - 1);
    for (std::size_t i = 0; i < kGenes; ++i)
        child.genes[i] = i < cut ? a.genes[i] : b.genes[i];
    if (rng.next_bool(0.2))
        child.genes[rng.next_below(kGenes)] =
            static_cast<std::uint8_t>(rng.next_below(6));
    return child;
}

/// ~30 small model-global containers GPdotNET keeps around (function sets,
/// GUI state, run statistics...).  None of them develops parallel
/// potential; they fill the search-space denominator like in the paper.
double make_model_globals(
    runtime::ProfilingSession* session,
    std::vector<ds::ProfiledList<std::int64_t>>& keep_alive) {
    Rng rng(77);
    double checksum = 0.0;
    keep_alive.reserve(32);
    for (std::uint32_t g = 0; g < 32; ++g) {
        keep_alive.emplace_back(session,
                                loc("GPModelGlobals", "InitState", 200 + g));
        ds::ProfiledList<std::int64_t>& list = keep_alive.back();
        const std::size_t n = 10 + rng.next_below(30);
        for (std::size_t i = 0; i < n; ++i)
            list.insert(list.count() / 2,
                        static_cast<std::int64_t>(rng.next_below(100)));
        std::size_t pos = 0;
        for (int r = 0; r < 8 && list.count() >= 10; ++r) {
            checksum += static_cast<double>(list.get(pos)) * 1e-3;
            pos = (pos + 7) % list.count();
        }
    }
    return checksum;
}

}  // namespace

RunResult run_gpdotnet(runtime::ProfilingSession* session) {
    RunResult result;
    Stopwatch total;
    Rng rng(20140101);

    // GenerateTerminalSet: the input time series.
    ds::ProfiledArray<double> series(
        session, loc("GPModelGlobals", "GenerateTerminalSet", 120),
        kSeriesPoints);
    for (std::size_t i = 0; i < kSeriesPoints; ++i)
        series.set(i, std::sin(static_cast<double>(i) * 0.12) * 3.0 +
                          static_cast<double>(i) * 0.01);

    std::vector<ds::ProfiledList<std::int64_t>> globals;
    result.checksum += make_model_globals(session, globals);

    // CHPopulation ctor: initial population (Long-Insert).
    ds::ProfiledList<Chromosome> population(
        session, loc("CHPopulation", ".ctor", 14), kPopulation);
    for (std::size_t i = 0; i < kPopulation; ++i)
        population.add(random_chromosome(rng));

    // Fitness array (FitnessProportionateSelection).
    ds::ProfiledArray<double> fitness(
        session, loc("CHPopulation", "FitnessProportionateSelection", 68),
        kPopulation);
    // Cumulative distribution for roulette selection.
    ds::ProfiledArray<double> cumulative(
        session, loc("CHPopulation", "BuildDistribution", 92), kPopulation);
    // Parent snapshot used while breeding the next generation.
    ds::ProfiledList<Chromosome> parents(
        session, loc("CHPopulation", "NewGeneration", 131), kPopulation);

    double best_overall = 0.0;
    std::uint64_t parallelizable = 0;

    for (std::size_t gen = 0; gen < kGenerations; ++gen) {
        // Fitness evaluation: full population sweep — the dominant cost
        // and the location the recommendation parallelizes.
        Stopwatch region;
        for (std::size_t i = 0; i < kPopulation; ++i)
            fitness.set(i, evaluate(population.get(i), series));
        parallelizable += region.elapsed_ns();

        // Selection distribution (sequential scan of the fitness array).
        double sum = 0.0;
        for (std::size_t i = 0; i < kPopulation; ++i) {
            sum += fitness.get(i);
            cumulative.set(i, sum);
        }
        double best = 0.0;
        for (std::size_t i = 0; i < kPopulation; ++i)
            best = std::max(best, fitness.get(i));
        best_overall = std::max(best_overall, best);

        // Breed the next generation.
        parents.clear();
        for (std::size_t i = 0; i < kPopulation; ++i)
            parents.add(population.get(i));
        population.clear();
        for (std::size_t i = 0; i < kPopulation; ++i) {
            auto pick = [&]() -> const Chromosome& {
                const double target = rng.next_double() * sum;
                std::size_t lo = 0;
                std::size_t hi = kPopulation - 1;
                while (lo < hi) {
                    const std::size_t mid = lo + (hi - lo) / 2;
                    if (cumulative.get(mid) < target) {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                return parents.get(lo);
            };
            population.add(crossover(pick(), pick(), rng));
        }
    }

    result.checksum += best_overall * 1000.0;
    result.total_ns = total.elapsed_ns();
    result.parallelizable_ns = parallelizable;
    return result;
}

RunResult run_gpdotnet_parallel(par::ThreadPool& pool) {
    RunResult result;
    Stopwatch total;
    Rng rng(20140101);

    ds::Array<double> series(kSeriesPoints);
    for (std::size_t i = 0; i < kSeriesPoints; ++i)
        series.set(i, std::sin(static_cast<double>(i) * 0.12) * 3.0 +
                          static_cast<double>(i) * 0.01);

    std::vector<ds::ProfiledList<std::int64_t>> globals;
    result.checksum += make_model_globals(nullptr, globals);

    ds::List<Chromosome> population(kPopulation);
    for (std::size_t i = 0; i < kPopulation; ++i)
        population.add(random_chromosome(rng));

    ds::Array<double> fitness(kPopulation);
    ds::Array<double> cumulative(kPopulation);
    ds::List<Chromosome> parents(kPopulation);

    double best_overall = 0.0;

    for (std::size_t gen = 0; gen < kGenerations; ++gen) {
        // Recommended action applied: parallel fitness evaluation.
        par::parallel_for(pool, 0, kPopulation, [&](std::size_t i) {
            fitness.set(i, evaluate(population[i], series));
        });

        double sum = 0.0;
        for (std::size_t i = 0; i < kPopulation; ++i) {
            sum += fitness.get(i);
            cumulative.set(i, sum);
        }
        double best = 0.0;
        for (std::size_t i = 0; i < kPopulation; ++i)
            best = std::max(best, fitness.get(i));
        best_overall = std::max(best_overall, best);

        parents.clear();
        for (std::size_t i = 0; i < kPopulation; ++i)
            parents.add(population[i]);
        population.clear();
        for (std::size_t i = 0; i < kPopulation; ++i) {
            auto pick = [&]() -> const Chromosome& {
                const double target = rng.next_double() * sum;
                std::size_t lo = 0;
                std::size_t hi = kPopulation - 1;
                while (lo < hi) {
                    const std::size_t mid = lo + (hi - lo) / 2;
                    if (cumulative.get(mid) < target) {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                return parents[lo];
            };
            population.add(crossover(pick(), pick(), rng));
        }
    }

    result.checksum += best_overall * 1000.0;
    result.total_ns = total.elapsed_ns();
    return result;
}

RunResult run_gpdotnet_simulated(unsigned workers) {
    RunResult result;
    Stopwatch total;
    Rng rng(20140101);
    std::uint64_t region_work = 0;
    std::uint64_t region_span = 0;

    ds::Array<double> series(kSeriesPoints);
    for (std::size_t i = 0; i < kSeriesPoints; ++i)
        series.set(i, std::sin(static_cast<double>(i) * 0.12) * 3.0 +
                          static_cast<double>(i) * 0.01);

    std::vector<ds::ProfiledList<std::int64_t>> globals;
    result.checksum += make_model_globals(nullptr, globals);

    ds::List<Chromosome> population(kPopulation);
    for (std::size_t i = 0; i < kPopulation; ++i)
        population.add(random_chromosome(rng));

    ds::Array<double> fitness(kPopulation);
    ds::Array<double> cumulative(kPopulation);
    ds::List<Chromosome> parents(kPopulation);

    double best_overall = 0.0;

    for (std::size_t gen = 0; gen < kGenerations; ++gen) {
        // The recommendation target, executed through the virtual-time
        // scheduler: chunked fitness evaluation.
        const par::SimulatedSchedule schedule = par::simulate_chunks(
            0, kPopulation, workers * 4,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i)
                    fitness.set(i, evaluate(population[i], series));
            });
        region_work += schedule.total_work_ns();
        region_span += schedule.makespan_ns(workers);

        double sum = 0.0;
        for (std::size_t i = 0; i < kPopulation; ++i) {
            sum += fitness.get(i);
            cumulative.set(i, sum);
        }
        double best = 0.0;
        for (std::size_t i = 0; i < kPopulation; ++i)
            best = std::max(best, fitness.get(i));
        best_overall = std::max(best_overall, best);

        parents.clear();
        for (std::size_t i = 0; i < kPopulation; ++i)
            parents.add(population[i]);
        population.clear();
        for (std::size_t i = 0; i < kPopulation; ++i) {
            auto pick = [&]() -> const Chromosome& {
                const double target = rng.next_double() * sum;
                std::size_t lo = 0;
                std::size_t hi = kPopulation - 1;
                while (lo < hi) {
                    const std::size_t mid = lo + (hi - lo) / 2;
                    if (cumulative.get(mid) < target) {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                return parents[lo];
            };
            population.add(crossover(pick(), pick(), rng));
        }
    }

    result.checksum += best_overall * 1000.0;
    const std::uint64_t wall = total.elapsed_ns();
    result.total_ns = wall - region_work + region_span;
    result.parallelizable_ns = region_span;
    return result;
}

}  // namespace dsspy::apps
