// CPU Benchmarks — Linpack + Whetstone behind one driver (the paper's
// benchmark-suite app: 400 LOC, 7 data structures, 5 flagged, speedup
// only 1.20).
//
// This is the evaluation's Amdahl cautionary tale: the suite's runtime is
// dominated by inherently sequential scalar computation (Whetstone modules
// and the data-dependent LU pivoting chain), so following the DSspy
// recommendations parallelizes only the small array-initialization and
// row-update fractions — Table VI measures a 94.29 % sequential fraction
// and the total speedup stays near 1.2x.
#pragma once

#include "apps/app_registry.hpp"

namespace dsspy::apps {

RunResult run_cpubench(runtime::ProfilingSession* session);
RunResult run_cpubench_parallel(par::ThreadPool& pool);
RunResult run_cpubench_simulated(unsigned workers);

}  // namespace dsspy::apps
