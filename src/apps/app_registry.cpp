#include "apps/app_registry.hpp"

#include "apps/algorithmia.hpp"
#include "apps/astrogrep.hpp"
#include "apps/contentfinder.hpp"
#include "apps/cpubench.hpp"
#include "apps/gpdotnet.hpp"
#include "apps/mandelbrot.hpp"
#include "apps/wordwheel.hpp"

namespace dsspy::apps {

const std::vector<AppInfo>& evaluation_apps() {
    static const std::vector<AppInfo> apps = [] {
        std::vector<AppInfo> v;
        // Table IV rows: name, domain, LOC, runtime, DS instances, flagged,
        // detected use cases, true positives, reduction, speedup.
        v.push_back(AppInfo{"Algorithmia", "Library", 2800, 0.50, 16, 4, 4,
                            2, 0.7500, 1.83, run_algorithmia,
                            run_algorithmia_parallel, run_algorithmia_simulated});
        v.push_back(AppInfo{"Astrogrep", "File Search", 4800, 4.80, 21, 2, 2,
                            1, 0.9048, 2.90, run_astrogrep,
                            run_astrogrep_parallel, run_astrogrep_simulated});
        v.push_back(AppInfo{"Contentfinder", "File Search", 290, 1.80, 11, 2,
                            2, 2, 0.8182, 1.56, run_contentfinder,
                            run_contentfinder_parallel, run_contentfinder_simulated});
        v.push_back(AppInfo{"CPU Benchmarks", "Benchmark", 400, 0.01, 7, 5,
                            5, 4, 0.2857, 1.20, run_cpubench,
                            run_cpubench_parallel, run_cpubench_simulated});
        v.push_back(AppInfo{"Gpdotnet", "Simulation", 7000, 0.36, 37, 5, 5,
                            2, 0.8649, 2.93, run_gpdotnet,
                            run_gpdotnet_parallel, run_gpdotnet_simulated});
        v.push_back(AppInfo{"Mandelbrot", "Solver", 150, 0.11, 7, 4, 4, 4,
                            0.4286, 3.00, run_mandelbrot,
                            run_mandelbrot_parallel, run_mandelbrot_simulated});
        v.push_back(AppInfo{"WordWheelSolver", "Solver", 110, 0.04, 5, 2, 2,
                            1, 0.6000, 1.50, run_wordwheel,
                            run_wordwheel_parallel, run_wordwheel_simulated});
        return v;
    }();
    return apps;
}

const AppInfo* find_app(std::string_view name) {
    for (const AppInfo& app : evaluation_apps())
        if (app.name == name) return &app;
    return nullptr;
}

}  // namespace dsspy::apps
