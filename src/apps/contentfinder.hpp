// Contentfinder — keyword search in files (the paper's second File Search
// app: 290 LOC, 11 data structures, 2 flagged, speedup 1.56).
//
// Loads files into per-file token lists, searches a keyword set over all
// tokens and collects hits; a hit-offset array is initialized sequentially
// afterwards.  Tokenization and result ranking stay sequential, which caps
// the achievable speedup well below the core count (the paper measured
// 1.56x).
#pragma once

#include "apps/app_registry.hpp"

namespace dsspy::apps {

RunResult run_contentfinder(runtime::ProfilingSession* session);
RunResult run_contentfinder_parallel(par::ThreadPool& pool);
RunResult run_contentfinder_simulated(unsigned workers);

}  // namespace dsspy::apps
