// Deterministic synthetic text corpus shared by the search-style apps.
//
// AstroGrep and Contentfinder search real directories of text files and
// WordWheelSolver needs an English word list; none of those inputs ship
// with this repository, so this module synthesizes deterministic
// equivalents: pseudo-natural documents (Zipf-ish word frequencies, fixed
// seed) and a word list with controlled letter distributions.  The
// substitution preserves what the profiler sees: the apps' data-structure
// access behaviour, which depends only on match densities and file sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dsspy::apps {

/// One synthetic "file".
struct Document {
    std::string name;
    std::vector<std::string> lines;
};

/// Generate `count` documents of roughly `lines_per_doc` lines each, with
/// `words_per_line` +- 50% words per line.  Deterministic for a given seed.
[[nodiscard]] std::vector<Document> make_documents(
    std::size_t count, std::size_t lines_per_doc, std::uint64_t seed = 42,
    std::size_t words_per_line = 10);

/// Vocabulary used by the generator (useful to pick guaranteed-hit and
/// guaranteed-miss search terms).
[[nodiscard]] const std::vector<std::string>& corpus_vocabulary();

/// Deterministic word list for the word-wheel solver (lower-case words of
/// 3..9 letters).
[[nodiscard]] std::vector<std::string> make_word_list(std::size_t count,
                                                      std::uint64_t seed = 7);

}  // namespace dsspy::apps
