#include "apps/astrogrep.hpp"

#include <atomic>
#include <string>

#include "apps/text_corpus.hpp"
#include "ds/ds.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/simulation.hpp"
#include "support/stopwatch.hpp"

namespace dsspy::apps {

namespace {

using support::SourceLoc;
using support::Stopwatch;

constexpr std::size_t kVolumes = 16;
constexpr std::size_t kDocsPerVolume = 14;
constexpr std::size_t kLinesPerDoc = 50;

/// Search terms: mix of frequent and rare corpus words.
const std::vector<std::string>& search_terms() {
    static const std::vector<std::string> terms = {
        "galaxy", "nebula", "stellar", "photon",
        "andromeda", "parallax", "orbit", "quasar",
    };
    return terms;
}

SourceLoc loc(const char* method, std::uint32_t position) {
    return SourceLoc{"AstroGrep.Core", method, position};
}

/// Order-independent hit checksum so sequential and parallel runs agree.
double hit_checksum(std::size_t volume, std::size_t line_index,
                    std::size_t term_index) {
    return static_cast<double>((volume + 1) * 131 + line_index * 7 +
                               term_index * 1009);
}

}  // namespace

RunResult run_astrogrep(runtime::ProfilingSession* session) {
    RunResult result;
    // The document corpus stands in for the files on disk — generating it
    // is environment setup, not application runtime.
    const std::vector<Document> docs = make_documents(
        kVolumes * kDocsPerVolume, kLinesPerDoc, 42, /*words_per_line=*/28);
    Stopwatch total;

    // Load the corpus into per-volume line lists.
    std::vector<ds::ProfiledList<std::string>> volumes;
    volumes.reserve(kVolumes);
    for (std::size_t v = 0; v < kVolumes; ++v) {
        volumes.emplace_back(session,
                             loc("LoadVolume", static_cast<std::uint32_t>(v)));
        for (std::size_t d = 0; d < kDocsPerVolume; ++d) {
            const Document& doc = docs[v * kDocsPerVolume + d];
            for (const std::string& line : doc.lines)
                volumes[v].add(line);
        }
    }

    // The query list and per-volume match counters.
    ds::ProfiledList<std::string> terms(session, loc("BuildQuery", 100));
    for (const std::string& term : search_terms()) terms.add(term);

    ds::ProfiledArray<std::int64_t> match_counts(
        session, loc("ResetCounters", 110), kVolumes);

    // Recently-opened files (small UI list).
    ds::ProfiledList<std::string> recent(session, loc("TrackRecent", 120));
    for (int i = 0; i < 12; ++i)
        recent.add("doc" + std::to_string(i * 17) + ".txt");

    // --- The search: the region the DSspy recommendation targets. -------
    ds::ProfiledList<double> results(session, loc("CollectHits", 200));
    Stopwatch region;
    for (std::size_t t = 0; t < terms.count(); ++t) {
        const std::string& term = terms.get(t);
        for (std::size_t v = 0; v < kVolumes; ++v) {
            std::int64_t volume_hits = 0;
            for (std::size_t l = 0; l < volumes[v].count(); ++l) {
                if (volumes[v].get(l).find(term) != std::string::npos) {
                    results.add(hit_checksum(v, l, t));
                    ++volume_hits;
                }
            }
            match_counts.set(v, match_counts.get(v) + volume_hits);
        }
    }

    // Relevance scores for every hit (sequential array initialization —
    // the second flagged location).
    ds::ProfiledArray<double> scores(session, loc("ScoreHits", 210),
                                     results.count());
    for (std::size_t i = 0; i < results.count(); ++i)
        scores.set(i, results.get(i) * 0.5);
    result.parallelizable_ns = region.elapsed_ns();
    for (std::size_t i = 0; i < scores.length(); ++i)
        result.checksum += scores.get(i) * 1e-3;

    for (std::size_t i = 0; i < results.count(); ++i)
        result.checksum += results.get(i);
    for (std::size_t v = 0; v < kVolumes; ++v)
        result.checksum += static_cast<double>(match_counts.get(v));
    result.checksum += static_cast<double>(recent.count());

    result.total_ns = total.elapsed_ns();
    return result;
}

RunResult run_astrogrep_parallel(par::ThreadPool& pool) {
    RunResult result;
    const std::vector<Document> docs = make_documents(
        kVolumes * kDocsPerVolume, kLinesPerDoc, 42, /*words_per_line=*/28);
    Stopwatch total;

    std::vector<ds::List<std::string>> volumes(kVolumes);
    for (std::size_t v = 0; v < kVolumes; ++v) {
        for (std::size_t d = 0; d < kDocsPerVolume; ++d) {
            const Document& doc = docs[v * kDocsPerVolume + d];
            for (const std::string& line : doc.lines)
                volumes[v].add(line);
        }
    }

    ds::List<std::string> terms;
    for (const std::string& term : search_terms()) terms.add(term);

    std::vector<std::int64_t> match_counts(kVolumes, 0);
    std::vector<ds::List<double>> per_volume_hits(kVolumes);

    // Recommended action: search the volumes in parallel.
    for (std::size_t t = 0; t < terms.count(); ++t) {
        const std::string& term = terms[t];
        par::parallel_for(pool, 0, kVolumes, [&, t](std::size_t v) {
            std::int64_t volume_hits = 0;
            for (std::size_t l = 0; l < volumes[v].count(); ++l) {
                if (volumes[v][l].find(term) != std::string::npos) {
                    per_volume_hits[v].add(hit_checksum(v, l, t));
                    ++volume_hits;
                }
            }
            match_counts[v] += volume_hits;
        });
    }

    ds::List<double> results;
    for (std::size_t v = 0; v < kVolumes; ++v)
        for (std::size_t i = 0; i < per_volume_hits[v].count(); ++i)
            results.add(per_volume_hits[v][i]);

    // Parallel score initialization (second recommendation).
    ds::List<double> scores = par::parallel_build<double>(
        pool, results.count(),
        [&results](std::size_t i) { return results[i] * 0.5; });
    for (std::size_t i = 0; i < scores.count(); ++i)
        result.checksum += scores[i] * 1e-3;

    for (std::size_t i = 0; i < results.count(); ++i)
        result.checksum += results[i];
    for (std::size_t v = 0; v < kVolumes; ++v)
        result.checksum += static_cast<double>(match_counts[v]);
    result.checksum += 12.0;  // recent-files list size (unchanged logic)

    result.total_ns = total.elapsed_ns();
    return result;
}

RunResult run_astrogrep_simulated(unsigned workers) {
    RunResult result;
    const std::vector<Document> docs = make_documents(
        kVolumes * kDocsPerVolume, kLinesPerDoc, 42, /*words_per_line=*/28);
    Stopwatch total;
    std::uint64_t region_work = 0;
    std::uint64_t region_span = 0;

    std::vector<ds::List<std::string>> volumes(kVolumes);
    for (std::size_t v = 0; v < kVolumes; ++v) {
        for (std::size_t d = 0; d < kDocsPerVolume; ++d) {
            const Document& doc = docs[v * kDocsPerVolume + d];
            for (const std::string& line : doc.lines)
                volumes[v].add(line);
        }
    }

    ds::List<std::string> terms;
    for (const std::string& term : search_terms()) terms.add(term);

    std::vector<std::int64_t> match_counts(kVolumes, 0);
    std::vector<ds::List<double>> per_volume_hits(kVolumes);

    // Recommendation target: per-term search over the volumes, chunked by
    // volume (what the parallel variant hands to the pool).
    for (std::size_t t = 0; t < terms.count(); ++t) {
        const std::string& term = terms[t];
        const par::SimulatedSchedule schedule = par::simulate_chunks(
            0, kVolumes, kVolumes, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t v = lo; v < hi; ++v) {
                    std::int64_t volume_hits = 0;
                    for (std::size_t l = 0; l < volumes[v].count(); ++l) {
                        if (volumes[v][l].find(term) != std::string::npos) {
                            per_volume_hits[v].add(hit_checksum(v, l, t));
                            ++volume_hits;
                        }
                    }
                    match_counts[v] += volume_hits;
                }
            });
        region_work += schedule.total_work_ns();
        region_span += schedule.makespan_ns(workers);
    }

    ds::List<double> results;
    for (std::size_t v = 0; v < kVolumes; ++v)
        for (std::size_t i = 0; i < per_volume_hits[v].count(); ++i)
            results.add(per_volume_hits[v][i]);

    std::vector<double> scores(results.count());
    {
        const par::SimulatedSchedule schedule = par::simulate_chunks(
            0, results.count(), workers * 4,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i)
                    scores[i] = results[i] * 0.5;
            });
        region_work += schedule.total_work_ns();
        region_span += schedule.makespan_ns(workers);
    }

    for (std::size_t i = 0; i < results.count(); ++i)
        result.checksum += results[i];
    for (std::size_t v = 0; v < kVolumes; ++v)
        result.checksum += static_cast<double>(match_counts[v]);
    result.checksum += 12.0;
    for (std::size_t i = 0; i < scores.size(); ++i)
        result.checksum += scores[i] * 1e-3;

    const std::uint64_t wall = total.elapsed_ns();
    result.total_ns = wall - region_work + region_span;
    result.parallelizable_ns = region_span;
    return result;
}

}  // namespace dsspy::apps
