#include "apps/wordwheel.hpp"

#include <array>
#include <string>

#include "apps/text_corpus.hpp"
#include "ds/ds.hpp"
#include "parallel/parallel_for.hpp"
#include "support/rng.hpp"
#include "parallel/simulation.hpp"
#include "support/stopwatch.hpp"

namespace dsspy::apps {

namespace {

using support::Rng;
using support::SourceLoc;
using support::Stopwatch;

constexpr std::size_t kWords = 9000;
constexpr std::size_t kWheels = 25;
constexpr std::size_t kWheelLetters = 9;

SourceLoc loc(const char* method, std::uint32_t position) {
    return SourceLoc{"WordWheel.Solver", method, position};
}

std::array<int, 26> letter_counts(const std::string& s) {
    std::array<int, 26> counts{};
    for (char ch : s) {
        if (ch >= 'a' && ch <= 'z') ++counts[static_cast<std::size_t>(ch - 'a')];
    }
    return counts;
}

/// Can `word` be built from the wheel letters, using the center letter?
bool solves(const std::array<int, 26>& wheel, char center,
            const std::string& word) {
    if (word.size() < 3 || word.find(center) == std::string::npos)
        return false;
    std::array<int, 26> need = letter_counts(word);
    for (std::size_t i = 0; i < 26; ++i)
        if (need[i] > wheel[i]) return false;
    return true;
}

std::string make_wheel(Rng& rng) {
    static constexpr char kLetters[] = "eeeaaiionnrrttlssudgcmhpby";
    std::string wheel;
    for (std::size_t i = 0; i < kWheelLetters; ++i)
        wheel += kLetters[rng.next_below(sizeof(kLetters) - 1)];
    return wheel;
}

}  // namespace

RunResult run_wordwheel(runtime::ProfilingSession* session) {
    RunResult result;
    Stopwatch total;
    Rng rng(4242);

    // The word list (scanned in full for every wheel).
    ds::ProfiledList<std::string> words(session, loc("LoadWordList", 10),
                                        kWords);
    for (std::string& w : make_word_list(kWords)) words.add(std::move(w));

    // The wheel letter buffer, the solved-wheel log, the length histogram.
    ds::ProfiledArray<char> wheel_letters(session, loc("SetWheel", 20),
                                          kWheelLetters);
    ds::ProfiledList<std::string> solved(session, loc("LogWheel", 30));
    ds::ProfiledArray<std::int64_t> length_histogram(
        session, loc("TallyLengths", 40), 10);

    // Solutions across all wheels (Long-Insert).
    ds::ProfiledList<double> solutions(session, loc("CollectSolutions", 50));

    std::uint64_t parallelizable = 0;
    for (std::size_t round = 0; round < kWheels; ++round) {
        const std::string wheel = make_wheel(rng);
        for (std::size_t i = 0; i < kWheelLetters; ++i)
            wheel_letters.set(i, wheel[i]);
        const std::array<int, 26> counts = letter_counts(wheel);
        const char center = wheel[0];

        Stopwatch region;
        for (std::size_t w = 0; w < words.count(); ++w) {
            const std::string& word = words.get(w);
            if (solves(counts, center, word)) {
                solutions.add(static_cast<double>(w));
                length_histogram.set(
                    word.size() % 10,
                    length_histogram.get(word.size() % 10) + 1);
            }
        }
        parallelizable += region.elapsed_ns();
        solved.add(wheel);
    }

    for (std::size_t i = 0; i < 10; ++i)
        result.checksum +=
            static_cast<double>(length_histogram.get((i * 7) % 10));
    result.checksum += static_cast<double>(solutions.count()) +
                       static_cast<double>(solved.count());
    result.total_ns = total.elapsed_ns();
    result.parallelizable_ns = parallelizable;
    return result;
}

RunResult run_wordwheel_parallel(par::ThreadPool& pool) {
    RunResult result;
    Stopwatch total;
    Rng rng(4242);

    ds::List<std::string> words(kWords);
    for (std::string& w : make_word_list(kWords)) words.add(std::move(w));

    ds::Array<char> wheel_letters(kWheelLetters);
    ds::List<std::string> solved;
    std::array<std::int64_t, 10> length_histogram{};

    std::size_t total_solutions = 0;
    for (std::size_t round = 0; round < kWheels; ++round) {
        const std::string wheel = make_wheel(rng);
        for (std::size_t i = 0; i < kWheelLetters; ++i)
            wheel_letters.set(i, wheel[i]);
        const std::array<int, 26> counts = letter_counts(wheel);
        const char center = wheel[0];

        // Recommended action: split the list into chunks searched in
        // parallel; merge per-chunk tallies afterwards.
        std::mutex merge_mutex;
        par::parallel_for_chunks(pool, 0, words.count(),
                                 [&](std::size_t lo, std::size_t hi) {
            std::size_t local_solutions = 0;
            std::array<std::int64_t, 10> local_hist{};
            for (std::size_t w = lo; w < hi; ++w) {
                const std::string& word = words[w];
                if (solves(counts, center, word)) {
                    ++local_solutions;
                    ++local_hist[word.size() % 10];
                }
            }
            std::scoped_lock lock(merge_mutex);
            total_solutions += local_solutions;
            for (std::size_t i = 0; i < 10; ++i)
                length_histogram[i] += local_hist[i];
        });
        solved.add(wheel);
    }

    for (std::size_t i = 0; i < 10; ++i)
        result.checksum += static_cast<double>(length_histogram[(i * 7) % 10]);
    result.checksum += static_cast<double>(total_solutions) +
                       static_cast<double>(solved.count());
    result.total_ns = total.elapsed_ns();
    return result;
}

RunResult run_wordwheel_simulated(unsigned workers) {
    RunResult result;
    Stopwatch total;
    Rng rng(4242);
    std::uint64_t region_work = 0;
    std::uint64_t region_span = 0;

    ds::List<std::string> words(kWords);
    for (std::string& w : make_word_list(kWords)) words.add(std::move(w));

    ds::Array<char> wheel_letters(kWheelLetters);
    ds::List<std::string> solved;
    std::array<std::int64_t, 10> length_histogram{};

    std::size_t total_solutions = 0;
    for (std::size_t round = 0; round < kWheels; ++round) {
        const std::string wheel = make_wheel(rng);
        for (std::size_t i = 0; i < kWheelLetters; ++i)
            wheel_letters.set(i, wheel[i]);
        const std::array<int, 26> counts = letter_counts(wheel);
        const char center = wheel[0];

        // Recommendation target: chunked scan of the word list.
        const par::SimulatedSchedule schedule = par::simulate_chunks(
            0, words.count(), workers * 4,
            [&](std::size_t lo, std::size_t hi) {
                std::size_t local_solutions = 0;
                std::array<std::int64_t, 10> local_hist{};
                for (std::size_t w = lo; w < hi; ++w) {
                    const std::string& word = words[w];
                    if (solves(counts, center, word)) {
                        ++local_solutions;
                        ++local_hist[word.size() % 10];
                    }
                }
                total_solutions += local_solutions;
                for (std::size_t i = 0; i < 10; ++i)
                    length_histogram[i] += local_hist[i];
            });
        region_work += schedule.total_work_ns();
        region_span += schedule.makespan_ns(workers);
        solved.add(wheel);
    }

    for (std::size_t i = 0; i < 10; ++i)
        result.checksum += static_cast<double>(length_histogram[(i * 7) % 10]);
    result.checksum += static_cast<double>(total_solutions) +
                       static_cast<double>(solved.count());
    const std::uint64_t wall = total.elapsed_ns();
    result.total_ns = wall - region_work + region_span;
    result.parallelizable_ns = region_span;
    return result;
}

}  // namespace dsspy::apps
