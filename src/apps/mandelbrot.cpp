#include "apps/mandelbrot.hpp"

#include <cstdint>
#include <string>

#include "ds/ds.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/simulation.hpp"
#include "support/stopwatch.hpp"

namespace dsspy::apps {

namespace {

using support::SourceLoc;
using support::Stopwatch;

constexpr std::size_t kWidth = 500;
constexpr std::size_t kHeight = 350;
constexpr int kMaxIterations = 96;
constexpr double kXMin = -2.2;
constexpr double kXMax = 1.0;
constexpr double kYMin = -1.2;
constexpr double kYMax = 1.2;

SourceLoc loc(const char* method, std::uint32_t position) {
    return SourceLoc{"Mandelbrot.Renderer", method, position};
}

int iterate(double cx, double cy) {
    double zx = 0.0;
    double zy = 0.0;
    int iter = 0;
    while (zx * zx + zy * zy < 4.0 && iter < kMaxIterations) {
        const double tmp = zx * zx - zy * zy + cx;
        zy = 2.0 * zx * zy + cy;
        zx = tmp;
        ++iter;
    }
    return iter;
}

int colorize(int iterations) {
    return iterations >= kMaxIterations ? 0 : 32 + (iterations * 7) % 224;
}

}  // namespace

RunResult run_mandelbrot(runtime::ProfilingSession* session) {
    RunResult result;
    Stopwatch total;

    // Palette (float-array initialization — recommendation: parallel init).
    ds::ProfiledArray<std::int64_t> palette(session, loc("BuildPalette", 10),
                                            256);
    for (std::size_t i = 0; i < palette.length(); ++i)
        palette.set(i, static_cast<std::int64_t>((i * 5) % 256));

    // Precomputed x coordinates, re-read by every row.
    ds::ProfiledArray<double> xs(session, loc("PrecomputeX", 20), kWidth);
    for (std::size_t x = 0; x < kWidth; ++x)
        xs.set(x, kXMin + (kXMax - kXMin) * static_cast<double>(x) /
                              static_cast<double>(kWidth - 1));

    // Per-row byte offsets of the output image.
    ds::ProfiledList<std::int64_t> row_offsets(session,
                                               loc("ComputeOffsets", 30));
    for (std::size_t y = 0; y < kHeight; ++y)
        row_offsets.add(static_cast<std::int64_t>(y * kWidth));

    // Small auxiliary containers.
    ds::ProfiledArray<double> bounds(session, loc("SetViewport", 40), 4);
    bounds.set(0, kXMin);
    bounds.set(1, kXMax);
    bounds.set(2, kYMin);
    bounds.set(3, kYMax);
    ds::ProfiledList<std::string> config(session, loc("LoadConfig", 50));
    config.add("resolution=500x350");
    config.add("palette=smooth");
    ds::ProfiledArray<std::int64_t> histogram(session,
                                              loc("InitHistogram", 60), 64);

    // The image, written pixel by pixel, row-major (Long-Insert).
    ds::ProfiledArray<std::int64_t> image(session, loc("RenderImage", 70),
                                          kWidth * kHeight);

    Stopwatch region;
    for (std::size_t y = 0; y < kHeight; ++y) {
        const double cy = kYMin + (kYMax - kYMin) * static_cast<double>(y) /
                                      static_cast<double>(kHeight - 1);
        const auto row_base =
            static_cast<std::size_t>(row_offsets.get(y));
        for (std::size_t x = 0; x < kWidth; ++x) {
            const int iterations = iterate(xs.get(x), cy);
            image.set(row_base + x,
                      static_cast<std::int64_t>(colorize(iterations)));
        }
    }
    result.parallelizable_ns = region.elapsed_ns();

    // Brightness histogram over a sample of pixels (data-dependent
    // positions, no pattern).
    std::size_t pos = 0;
    for (int s = 0; s < 500; ++s) {
        const auto bucket =
            static_cast<std::size_t>(image.get(pos) / 4) % 64;
        histogram.set(bucket, histogram.get(bucket) + 1);
        pos = (pos + 7919) % image.length();
    }

    double sum = 0.0;
    for (int s = 0; s < 64; ++s)
        sum += static_cast<double>(histogram.get(static_cast<std::size_t>(
            (s * 7) % 64)));
    result.checksum = sum + static_cast<double>(palette.get(255)) +
                      bounds.get(3) + static_cast<double>(config.count());
    result.total_ns = total.elapsed_ns();
    return result;
}

RunResult run_mandelbrot_parallel(par::ThreadPool& pool) {
    RunResult result;
    Stopwatch total;

    ds::Array<std::int64_t> palette(256);
    par::parallel_for(pool, 0, palette.length(), [&palette](std::size_t i) {
        palette.set(i, static_cast<std::int64_t>((i * 5) % 256));
    });

    ds::Array<double> xs(kWidth);
    par::parallel_for(pool, 0, kWidth, [&xs](std::size_t x) {
        xs.set(x, kXMin + (kXMax - kXMin) * static_cast<double>(x) /
                              static_cast<double>(kWidth - 1));
    });

    ds::List<std::int64_t> row_offsets;
    for (std::size_t y = 0; y < kHeight; ++y)
        row_offsets.add(static_cast<std::int64_t>(y * kWidth));

    ds::Array<double> bounds(4);
    bounds.set(0, kXMin);
    bounds.set(1, kXMax);
    bounds.set(2, kYMin);
    bounds.set(3, kYMax);
    ds::List<std::string> config;
    config.add("resolution=500x350");
    config.add("palette=smooth");
    ds::Array<std::int64_t> histogram(64);

    ds::Array<std::int64_t> image(kWidth * kHeight);

    // Recommended action: compute the rows in parallel.
    par::parallel_for(pool, 0, kHeight, [&](std::size_t y) {
        const double cy = kYMin + (kYMax - kYMin) * static_cast<double>(y) /
                                      static_cast<double>(kHeight - 1);
        const auto row_base = static_cast<std::size_t>(row_offsets[y]);
        for (std::size_t x = 0; x < kWidth; ++x) {
            const int iterations = iterate(xs.get(x), cy);
            image.set(row_base + x,
                      static_cast<std::int64_t>(colorize(iterations)));
        }
    });

    std::size_t pos = 0;
    for (int s = 0; s < 500; ++s) {
        const auto bucket =
            static_cast<std::size_t>(image.get(pos) / 4) % 64;
        histogram.set(bucket, histogram.get(bucket) + 1);
        pos = (pos + 7919) % image.length();
    }

    double sum = 0.0;
    for (int s = 0; s < 64; ++s)
        sum += static_cast<double>(histogram.get(static_cast<std::size_t>(
            (s * 7) % 64)));
    result.checksum = sum + static_cast<double>(palette.get(255)) +
                      bounds.get(3) + static_cast<double>(config.count());
    result.total_ns = total.elapsed_ns();
    return result;
}

RunResult run_mandelbrot_simulated(unsigned workers) {
    RunResult result;
    Stopwatch total;
    std::uint64_t region_work = 0;
    std::uint64_t region_span = 0;
    auto sim = [&](std::size_t begin, std::size_t end, auto body) {
        const par::SimulatedSchedule schedule =
            par::simulate_chunks(begin, end, workers * 4, body);
        region_work += schedule.total_work_ns();
        region_span += schedule.makespan_ns(workers);
    };

    ds::Array<std::int64_t> palette(256);
    sim(0, palette.length(), [&palette](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            palette.set(i, static_cast<std::int64_t>((i * 5) % 256));
    });

    ds::Array<double> xs(kWidth);
    sim(0, kWidth, [&xs](std::size_t lo, std::size_t hi) {
        for (std::size_t x = lo; x < hi; ++x)
            xs.set(x, kXMin + (kXMax - kXMin) * static_cast<double>(x) /
                              static_cast<double>(kWidth - 1));
    });

    ds::List<std::int64_t> row_offsets;
    for (std::size_t y = 0; y < kHeight; ++y)
        row_offsets.add(static_cast<std::int64_t>(y * kWidth));

    ds::Array<double> bounds(4);
    bounds.set(0, kXMin);
    bounds.set(1, kXMax);
    bounds.set(2, kYMin);
    bounds.set(3, kYMax);
    ds::List<std::string> config;
    config.add("resolution=500x350");
    config.add("palette=smooth");
    ds::Array<std::int64_t> histogram(64);
    ds::Array<std::int64_t> image(kWidth * kHeight);

    sim(0, kHeight, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t y = lo; y < hi; ++y) {
            const double cy = kYMin + (kYMax - kYMin) *
                                          static_cast<double>(y) /
                                          static_cast<double>(kHeight - 1);
            const auto row_base = static_cast<std::size_t>(row_offsets[y]);
            for (std::size_t x = 0; x < kWidth; ++x) {
                const int iterations = iterate(xs.get(x), cy);
                image.set(row_base + x,
                          static_cast<std::int64_t>(colorize(iterations)));
            }
        }
    });

    std::size_t pos = 0;
    for (int s = 0; s < 500; ++s) {
        const auto bucket =
            static_cast<std::size_t>(image.get(pos) / 4) % 64;
        histogram.set(bucket, histogram.get(bucket) + 1);
        pos = (pos + 7919) % image.length();
    }

    double sum = 0.0;
    for (int s = 0; s < 64; ++s)
        sum += static_cast<double>(histogram.get(static_cast<std::size_t>(
            (s * 7) % 64)));
    result.checksum = sum + static_cast<double>(palette.get(255)) +
                      bounds.get(3) + static_cast<double>(config.count());

    const std::uint64_t wall = total.elapsed_ns();
    result.total_ns = wall - region_work + region_span;
    result.parallelizable_ns = region_span;
    return result;
}

}  // namespace dsspy::apps

