// Algorithmia — a data-structures & algorithms library exercised by 16
// "unit tests" (the paper used 16 hand-written unit tests as DSspy input).
//
// The two parallel-potential locations the paper reports:
//   * a priority queue implemented on a list — every extract-max traverses
//     the whole list (Frequent-Long-Read; paper speedup 2.30 at 100k
//     elements), parallelized with a chunked parallel max-search;
//   * list initialization with random values (Long-Insert; paper speedup
//     1.35), parallelized with parallel_build.
// The other tests exercise sorting, searching, reversal, stacks, queues,
// and graph traversal without parallel potential.
#pragma once

#include "apps/app_registry.hpp"

namespace dsspy::apps {

RunResult run_algorithmia(runtime::ProfilingSession* session);
RunResult run_algorithmia_parallel(par::ThreadPool& pool);
RunResult run_algorithmia_simulated(unsigned workers);

}  // namespace dsspy::apps
