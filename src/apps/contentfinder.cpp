#include "apps/contentfinder.hpp"

#include <string>

#include "apps/text_corpus.hpp"
#include "ds/ds.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/simulation.hpp"
#include "support/stopwatch.hpp"
#include "support/strings.hpp"

namespace dsspy::apps {

namespace {

using support::SourceLoc;
using support::Stopwatch;

constexpr std::size_t kFiles = 6;
constexpr std::size_t kLinesPerFile = 160;

const std::vector<std::string>& keywords() {
    static const std::vector<std::string> kw = {"data", "parallel", "cache",
                                                "zenith"};
    return kw;
}

SourceLoc loc(const char* method, std::uint32_t position) {
    return SourceLoc{"Contentfinder.Search", method, position};
}

double hit_value(std::size_t file, std::size_t token_index,
                 std::size_t keyword) {
    return static_cast<double>(file * 10007 + token_index * 3 + keyword);
}

/// Tokenize documents into per-file token lists (sequential in both
/// variants; reading/tokenizing a file does not parallelize here).
template <typename TokenList>
std::size_t load_tokens(std::vector<TokenList>& files,
                        const std::vector<Document>& docs) {
    std::size_t total_tokens = 0;
    for (std::size_t f = 0; f < files.size(); ++f) {
        for (std::size_t d = f; d < docs.size(); d += files.size()) {
            for (const std::string& line : docs[d].lines) {
                for (std::string& token : support::tokenize(line)) {
                    files[f].add(std::move(token));
                    ++total_tokens;
                }
            }
        }
    }
    return total_tokens;
}

}  // namespace

RunResult run_contentfinder(runtime::ProfilingSession* session) {
    RunResult result;
    // Input files are environment, not runtime.
    const std::vector<Document> docs =
        make_documents(kFiles, kLinesPerFile, 99);
    Stopwatch total;

    // 6 per-file token lists.
    std::vector<ds::ProfiledList<std::string>> files;
    files.reserve(kFiles);
    for (std::size_t f = 0; f < kFiles; ++f)
        files.emplace_back(session,
                           loc("Tokenize", static_cast<std::uint32_t>(f)));
    load_tokens(files, docs);

    // Keyword list, stop-word list, configuration list.
    ds::ProfiledList<std::string> query(session, loc("ParseQuery", 20));
    for (const std::string& kw : keywords()) query.add(kw);
    ds::ProfiledList<std::string> stopwords(session, loc("LoadStopwords", 30));
    for (const char* w : {"the", "of", "and", "to", "in"}) stopwords.add(w);
    ds::ProfiledList<std::string> config(session, loc("LoadConfig", 40));
    config.add("case_sensitive=false");
    config.add("max_results=100000");

    // --- The keyword search (recommendation target). --------------------
    ds::ProfiledList<double> results(session, loc("FindMatches", 50));
    Stopwatch region;
    for (std::size_t k = 0; k < query.count(); ++k) {
        const std::string& keyword = query.get(k);
        for (std::size_t f = 0; f < kFiles; ++f) {
            for (std::size_t t = 0; t < files[f].count(); ++t) {
                if (files[f].get(t) == keyword)
                    results.add(hit_value(f, t, k));
            }
        }
    }
    result.parallelizable_ns = region.elapsed_ns();

    // Hit-offset array, initialized sequentially (second flagged location).
    ds::ProfiledArray<std::int64_t> offsets(session, loc("BuildOffsets", 60),
                                            results.count());
    for (std::size_t i = 0; i < offsets.length(); ++i)
        offsets.set(i, static_cast<std::int64_t>(results.get(i)) % 4096);

    // Sequential ranking pass.
    double rank = 0.0;
    for (std::size_t i = 0; i < offsets.length(); ++i)
        rank += static_cast<double>(offsets.get(i)) * 1e-4;

    result.checksum = rank + static_cast<double>(results.count()) +
                      static_cast<double>(stopwords.count() + config.count());
    result.total_ns = total.elapsed_ns();
    return result;
}

RunResult run_contentfinder_parallel(par::ThreadPool& pool) {
    RunResult result;
    const std::vector<Document> docs =
        make_documents(kFiles, kLinesPerFile, 99);
    Stopwatch total;

    std::vector<ds::List<std::string>> files(kFiles);
    load_tokens(files, docs);

    ds::List<std::string> query;
    for (const std::string& kw : keywords()) query.add(kw);

    // Recommended action: search the files in parallel per keyword.
    std::vector<ds::List<double>> per_file_hits(kFiles);
    for (std::size_t k = 0; k < query.count(); ++k) {
        const std::string& keyword = query[k];
        par::parallel_for(pool, 0, kFiles, [&, k](std::size_t f) {
            for (std::size_t t = 0; t < files[f].count(); ++t) {
                if (files[f][t] == keyword)
                    per_file_hits[f].add(hit_value(f, t, k));
            }
        });
    }

    ds::List<double> results;
    for (std::size_t f = 0; f < kFiles; ++f)
        for (std::size_t i = 0; i < per_file_hits[f].count(); ++i)
            results.add(per_file_hits[f][i]);

    std::vector<std::int64_t> offsets(results.count());
    par::parallel_for(pool, 0, results.count(), [&](std::size_t i) {
        offsets[i] = static_cast<std::int64_t>(results[i]) % 4096;
    });

    double rank = 0.0;
    for (std::size_t i = 0; i < offsets.size(); ++i)
        rank += static_cast<double>(offsets[i]) * 1e-4;

    result.checksum = rank + static_cast<double>(results.count()) + 7.0;
    result.total_ns = total.elapsed_ns();
    return result;
}

RunResult run_contentfinder_simulated(unsigned workers) {
    RunResult result;
    const std::vector<Document> docs =
        make_documents(kFiles, kLinesPerFile, 99);
    Stopwatch total;
    std::uint64_t region_work = 0;
    std::uint64_t region_span = 0;

    std::vector<ds::List<std::string>> files(kFiles);
    load_tokens(files, docs);

    ds::List<std::string> query;
    for (const std::string& kw : keywords()) query.add(kw);

    std::vector<ds::List<double>> per_file_hits(kFiles);
    for (std::size_t k = 0; k < query.count(); ++k) {
        const std::string& keyword = query[k];
        const par::SimulatedSchedule schedule = par::simulate_chunks(
            0, kFiles, kFiles, [&](std::size_t lo, std::size_t hi) {
                for (std::size_t f = lo; f < hi; ++f) {
                    for (std::size_t t = 0; t < files[f].count(); ++t) {
                        if (files[f][t] == keyword)
                            per_file_hits[f].add(hit_value(f, t, k));
                    }
                }
            });
        region_work += schedule.total_work_ns();
        region_span += schedule.makespan_ns(workers);
    }

    ds::List<double> results;
    for (std::size_t f = 0; f < kFiles; ++f)
        for (std::size_t i = 0; i < per_file_hits[f].count(); ++i)
            results.add(per_file_hits[f][i]);

    std::vector<std::int64_t> offsets(results.count());
    {
        const par::SimulatedSchedule schedule = par::simulate_chunks(
            0, results.count(), workers * 4,
            [&](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i)
                    offsets[i] = static_cast<std::int64_t>(results[i]) % 4096;
            });
        region_work += schedule.total_work_ns();
        region_span += schedule.makespan_ns(workers);
    }

    double rank = 0.0;
    for (std::size_t i = 0; i < offsets.size(); ++i)
        rank += static_cast<double>(offsets[i]) * 1e-4;

    result.checksum = rank + static_cast<double>(results.count()) + 7.0;
    const std::uint64_t wall = total.elapsed_ns();
    result.total_ns = wall - region_work + region_span;
    result.parallelizable_ns = region_span;
    return result;
}

}  // namespace dsspy::apps
