#include "apps/algorithmia.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "ds/ds.hpp"
#include "parallel/algorithms.hpp"
#include "support/rng.hpp"
#include "parallel/simulation.hpp"
#include "support/stopwatch.hpp"

namespace dsspy::apps {

namespace {

using support::Rng;
using support::SourceLoc;
using support::Stopwatch;

constexpr std::size_t kPriorityElements = 120'000;
constexpr std::size_t kPrioritySweeps = 30;
constexpr std::size_t kHeavyInitElements = 200'000;

/// CPU-heavy deterministic value (stands in for the random-value
/// construction of the paper's initialization test).
double heavy_value(std::uint64_t seed) {
    std::uint64_t x = seed * 0x9E3779B97F4A7C15ULL + 1;
    for (int round = 0; round < 24; ++round) {
        x ^= x >> 27;
        x *= 0x3C79AC492BA7B653ULL;
        x ^= x >> 33;
    }
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

SourceLoc loc(const char* method, std::uint32_t position) {
    return SourceLoc{"Algorithmia.Tests", method, position};
}

/// The 14 auxiliary unit tests shared verbatim by the sequential and the
/// parallel variant (the recommendations do not touch them).
double run_auxiliary_tests(runtime::ProfilingSession* session, Rng& rng) {
    double checksum = 0.0;

    // Test 3/4: two small list initializations.  These trip the
    // Long-Insert rule but are too cheap for parallelization to pay off —
    // the paper's two false positives ("initializations without speedup").
    for (int t = 0; t < 2; ++t) {
        ds::ProfiledList<std::int64_t> init_list(
            session, loc("SmallInitTest", 10 + static_cast<std::uint32_t>(t)));
        for (std::size_t i = 0; i < 3000; ++i)
            init_list.add(static_cast<std::int64_t>(rng.next_below(100000)));
        checksum += static_cast<double>(init_list.get(init_list.count() / 2));
    }

    // Test 5: sorting (insert phase kept below the Long-Insert threshold).
    {
        ds::ProfiledList<std::int64_t> sort_list(session, loc("SortTest", 20));
        for (std::size_t i = 0; i < 80; ++i)
            sort_list.add(static_cast<std::int64_t>(rng.next_below(10000)));
        sort_list.sort();
        checksum += static_cast<double>(sort_list.get(0)) +
                    static_cast<double>(sort_list.get(sort_list.count() - 1));
    }

    // Test 6: hand-rolled binary search on a sorted list.
    {
        ds::ProfiledList<std::int64_t> bs_list(session, loc("BinarySearchTest", 30));
        for (std::size_t i = 0; i < 90; ++i)
            bs_list.add(static_cast<std::int64_t>(i) * 7);
        for (int q = 0; q < 40; ++q) {
            const std::int64_t needle =
                static_cast<std::int64_t>(rng.next_below(90)) * 7;
            std::size_t lo = 0;
            std::size_t hi = bs_list.count();
            while (lo < hi) {
                const std::size_t mid = lo + (hi - lo) / 2;
                if (bs_list.get(mid) < needle) {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            checksum += static_cast<double>(lo);
        }
    }

    // Test 7: reversal.
    {
        ds::ProfiledList<std::int64_t> rev_list(session, loc("ReverseTest", 40));
        for (std::size_t i = 0; i < 60; ++i)
            rev_list.add(static_cast<std::int64_t>(i * i));
        rev_list.reverse();
        checksum += static_cast<double>(rev_list.get(0));
    }

    // Test 8: a list used as a stack (the Stack-Implementation use case).
    {
        ds::ProfiledList<std::int64_t> stack_list(session, loc("StackTest", 50));
        for (int round = 0; round < 30; ++round) {
            stack_list.add(static_cast<std::int64_t>(rng.next_below(100)));
            stack_list.add(static_cast<std::int64_t>(rng.next_below(100)));
            checksum += static_cast<double>(
                stack_list.get(stack_list.count() - 1));
            stack_list.remove_at(stack_list.count() - 1);
        }
        while (stack_list.count() > 0)
            stack_list.remove_at(stack_list.count() - 1);
    }

    // Tests 9/10: merge of two sorted lists (output kept short).
    {
        ds::ProfiledList<std::int64_t> left(session, loc("MergeTest", 60));
        ds::ProfiledList<std::int64_t> right(session, loc("MergeTest", 61));
        for (std::size_t i = 0; i < 45; ++i) {
            left.add(static_cast<std::int64_t>(i) * 2);
            right.add(static_cast<std::int64_t>(i) * 2 + 1);
        }
        std::size_t li = 0;
        std::size_t ri = 0;
        std::int64_t last = 0;
        while (li < left.count() && ri < right.count()) {
            if (left.get(li) <= right.get(ri)) {
                last = left.get(li++);
            } else {
                last = right.get(ri++);
            }
        }
        checksum += static_cast<double>(last);
    }

    // Test 11: Fibonacci memoization on a fixed-size array.
    {
        ds::ProfiledArray<std::int64_t> memo(session, loc("FibTest", 70), 40);
        memo.set(0, 0);
        memo.set(1, 1);
        for (std::size_t i = 2; i < 40; ++i)
            memo.set(i, memo.get(i - 1) + memo.get(i - 2));
        checksum += static_cast<double>(memo.get(39) % 1000003);
    }

    // Test 12: matrix row sums on a flattened array.
    {
        ds::ProfiledArray<double> row(session, loc("MatrixRowTest", 80), 64);
        for (std::size_t i = 0; i < 64; ++i)
            row.set(i, rng.next_double());
        double sum = 0.0;
        std::size_t pos = 0;
        for (int i = 0; i < 32; ++i) {
            sum += row.get(pos);
            pos = (pos + 7) % 64;
        }
        checksum += sum;
    }

    // Test 13: histogram with data-dependent write positions.
    {
        ds::ProfiledArray<std::int64_t> hist(session, loc("HistogramTest", 90), 32);
        for (int i = 0; i < 200; ++i) {
            const std::size_t bucket = rng.next_below(32);
            hist.set(bucket, hist.get(bucket) + 1);
        }
        checksum += static_cast<double>(hist.get(0) + hist.get(31));
    }

    // Test 14: string list with membership queries.
    {
        ds::ProfiledList<std::string> words(session, loc("StringTest", 100));
        for (int i = 0; i < 50; ++i)
            words.add("word" + std::to_string(rng.next_below(80)));
        int hits = 0;
        for (int i = 0; i < 20; ++i)
            if (words.contains("word" + std::to_string(i))) ++hits;
        checksum += hits;
    }

    // Test 15: repeated median removal.
    {
        ds::ProfiledList<std::int64_t> med(session, loc("MedianTest", 110));
        for (std::size_t i = 0; i < 70; ++i)
            med.add(static_cast<std::int64_t>(rng.next_below(1000)));
        for (int i = 0; i < 20; ++i) {
            checksum += static_cast<double>(med.get(med.count() / 2));
            med.remove_at(med.count() / 2);
        }
    }

    // Test 16: running sum over a short list.
    {
        ds::ProfiledList<std::int64_t> run(session, loc("RunningSumTest", 120));
        for (std::size_t i = 0; i < 60; ++i)
            run.add(static_cast<std::int64_t>(rng.next_below(500)));
        double sum = 0.0;
        for (std::size_t i = 0; i < run.count(); ++i)
            sum += static_cast<double>(run.get(i));
        checksum += sum;
    }

    // Extra non-list containers (outside the list/array search space).
    {
        ds::ProfiledQueue<std::int64_t> jobs(session, loc("QueueTest", 130));
        for (int i = 0; i < 40; ++i) jobs.enqueue(i);
        while (!jobs.empty()) checksum += 0.001 * static_cast<double>(jobs.dequeue());

        ds::ProfiledDictionary<std::int64_t, std::int64_t> cache(
            session, loc("DictionaryTest", 140));
        for (int i = 0; i < 30; ++i) cache.set(i, i * i);
        std::int64_t v = 0;
        if (cache.try_get(17, v)) checksum += static_cast<double>(v);
    }

    return checksum;
}

}  // namespace

RunResult run_algorithmia(runtime::ProfilingSession* session) {
    RunResult result;
    Stopwatch total;
    Rng rng(2014);
    std::uint64_t parallelizable = 0;

    // Test 1: priority queue on a list — every extract-max is a full
    // sequential scan (Frequent-Long-Read).
    {
        ds::ProfiledList<double> queue(session, loc("PriorityQueueTest", 1),
                                       kPriorityElements);
        for (std::size_t i = 0; i < kPriorityElements; ++i)
            queue.add(heavy_value(i));

        Stopwatch region;
        for (std::size_t sweep = 0; sweep < kPrioritySweeps; ++sweep) {
            std::size_t best = 0;
            double best_value = queue.get(0);
            for (std::size_t i = 1; i < queue.count(); ++i) {
                const double value = queue.get(i);
                if (best_value < value) {
                    best_value = value;
                    best = i;
                }
            }
            result.checksum += best_value;
            queue.set(best, -1.0);  // consume the highest-priority element
        }
        parallelizable += region.elapsed_ns();
    }

    // Test 2: list initialization with (expensive) random values — the
    // Long-Insert location the paper parallelized for a 1.35x speedup.
    {
        ds::ProfiledList<double> values(session, loc("RandomInitTest", 2),
                                        kHeavyInitElements);
        Stopwatch region;
        for (std::size_t i = 0; i < kHeavyInitElements; ++i)
            values.add(heavy_value(0xABCD0000 + i));
        parallelizable += region.elapsed_ns();
        result.checksum += values.get(0) + values.get(values.count() - 1);
    }

    result.checksum += run_auxiliary_tests(session, rng);
    result.total_ns = total.elapsed_ns();
    result.parallelizable_ns = parallelizable;
    return result;
}

RunResult run_algorithmia_parallel(par::ThreadPool& pool) {
    RunResult result;
    Stopwatch total;
    Rng rng(2014);

    // Test 1 with the recommendation applied: parallel max-search.
    {
        ds::List<double> queue(kPriorityElements);
        for (std::size_t i = 0; i < kPriorityElements; ++i)
            queue.add(heavy_value(i));
        for (std::size_t sweep = 0; sweep < kPrioritySweeps; ++sweep) {
            const std::ptrdiff_t best = par::parallel_max_index(
                pool, std::span<const double>(queue.data(), queue.count()));
            result.checksum += queue[static_cast<std::size_t>(best)];
            queue.set(static_cast<std::size_t>(best), -1.0);
        }
    }

    // Test 2 with the recommendation applied: parallel build.
    {
        ds::List<double> values = par::parallel_build<double>(
            pool, kHeavyInitElements,
            [](std::size_t i) { return heavy_value(0xABCD0000 + i); });
        result.checksum += values[0] + values[values.count() - 1];
    }

    result.checksum += run_auxiliary_tests(nullptr, rng);
    result.total_ns = total.elapsed_ns();
    return result;
}

RunResult run_algorithmia_simulated(unsigned workers) {
    RunResult result;
    Stopwatch total;
    Rng rng(2014);
    std::uint64_t region_work = 0;
    std::uint64_t region_span = 0;

    // Test 1: priority queue — simulated chunked max-search per sweep.
    {
        ds::List<double> queue(kPriorityElements);
        for (std::size_t i = 0; i < kPriorityElements; ++i)
            queue.add(heavy_value(i));
        for (std::size_t sweep = 0; sweep < kPrioritySweeps; ++sweep) {
            std::mutex merge_mutex;
            std::size_t best = 0;
            bool have_best = false;
            const par::SimulatedSchedule schedule = par::simulate_chunks(
                0, queue.count(), workers * 4,
                [&](std::size_t lo, std::size_t hi) {
                    std::size_t local = lo;
                    for (std::size_t i = lo + 1; i < hi; ++i)
                        if (queue[local] < queue[i]) local = i;
                    std::scoped_lock lock(merge_mutex);
                    if (!have_best || queue[best] < queue[local] ||
                        (!(queue[local] < queue[best]) && local < best)) {
                        best = local;
                        have_best = true;
                    }
                });
            region_work += schedule.total_work_ns();
            region_span += schedule.makespan_ns(workers);
            result.checksum += queue[best];
            queue.set(best, -1.0);
        }
    }

    // Test 2: heavy initialization — simulated chunked parallel build.
    {
        ds::List<double> values(kHeavyInitElements);
        double* dest = values.data();
        const par::SimulatedSchedule schedule = par::simulate_chunks(
            0, kHeavyInitElements, workers * 4,
            [dest](std::size_t lo, std::size_t hi) {
                for (std::size_t i = lo; i < hi; ++i)
                    std::construct_at(dest + i, heavy_value(0xABCD0000 + i));
            });
        values.set_count_after_parallel_build(kHeavyInitElements);
        region_work += schedule.total_work_ns();
        region_span += schedule.makespan_ns(workers);
        result.checksum += values[0] + values[values.count() - 1];
    }

    result.checksum += run_auxiliary_tests(nullptr, rng);
    const std::uint64_t wall = total.elapsed_ns();
    result.total_ns = wall - region_work + region_span;
    result.parallelizable_ns = region_span;
    return result;
}

}  // namespace dsspy::apps
