// Registry of the seven evaluation programs (Table IV).
//
// Each app is a faithful C++ mini-implementation of the corresponding
// program from the paper's evaluation benchmark, built on the profiled
// containers so DSspy can analyze it end to end:
//
//   Algorithmia      — data-structures & algorithms library (16 "unit tests")
//   AstroGrep        — file search over a text corpus
//   Contentfinder    — keyword search in files
//   CPU Benchmarks   — Linpack + Whetstone
//   GPdotNET         — genetic-programming engine for time series
//   Mandelbrot       — fractal renderer
//   WordWheelSolver  — 9-letter word-wheel puzzle solver
//
// Every app exposes two entry points:
//   * run_sequential(session) — the original sequential program; when
//     `session` is non-null every container is instrumented (that is how
//     Table IV's slowdown column is measured: same code, null vs live
//     session).  Returns a checksum plus the time spent in the regions the
//     DSspy recommendations target (for Table VI's runtime fractions).
//   * run_parallel(pool) — the program with the recommended actions
//     applied (parallel insert / parallel search / parallel queue ...).
//     Returns the same checksum so tests can verify semantic equivalence.
//   * run_simulated(workers) — the same decomposition executed through
//     the virtual-time scheduler (parallel/simulation.hpp): every chunk
//     of every recommendation region is measured sequentially and
//     replayed on `workers` virtual cores.  `total_ns` is the projected
//     wall-clock on that machine — how the paper's 8-core testbed is
//     simulated on smaller hosts, load imbalance included.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "runtime/session.hpp"

namespace dsspy::apps {

/// Outcome of one app run.
struct RunResult {
    double checksum = 0.0;          ///< Workload result (equality-checked).
    std::uint64_t total_ns = 0;     ///< Wall-clock of the whole run.
    std::uint64_t parallelizable_ns = 0;  ///< Time in recommendation targets.

    [[nodiscard]] double sequential_fraction() const noexcept {
        if (total_ns == 0) return 0.0;
        const std::uint64_t seq = total_ns - parallelizable_ns;
        return static_cast<double>(seq) / static_cast<double>(total_ns);
    }
};

/// Registry entry: metadata from Table IV plus the two run hooks.
struct AppInfo {
    std::string name;
    std::string domain;
    std::size_t paper_loc = 0;          ///< Table IV "Source Code LOC".
    double paper_runtime_s = 0.0;       ///< Table IV "Runtime".
    std::size_t paper_instances = 0;    ///< Table IV "Data Structures".
    std::size_t paper_flagged = 0;      ///< Instances in the result set.
    std::size_t paper_detected = 0;     ///< Detected use cases.
    std::size_t paper_true_positives = 0;  ///< Table IV "Use Cases" (x of y).
    double paper_reduction = 0.0;       ///< Table IV search-space reduction.
    double paper_speedup = 0.0;         ///< Table IV total speedup.

    RunResult (*run_sequential)(runtime::ProfilingSession*) = nullptr;
    RunResult (*run_parallel)(par::ThreadPool&) = nullptr;
    RunResult (*run_simulated)(unsigned workers) = nullptr;
};

/// All seven evaluation apps, in Table IV row order.
[[nodiscard]] const std::vector<AppInfo>& evaluation_apps();

/// Lookup by name; nullptr when unknown.
[[nodiscard]] const AppInfo* find_app(std::string_view name);

}  // namespace dsspy::apps
