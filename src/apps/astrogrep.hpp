// AstroGrep — file-and-text search (the paper's File Search app, 4,800
// LOC, 21 data structures, 2 flagged, speedup 2.90).
//
// The app loads a document corpus into per-volume line lists and runs a
// set of search terms over every line, appending hits to a result list
// (the Long-Insert location) and tallying per-volume match counts in an
// array.  The recommended action parallelizes the search across volumes.
#pragma once

#include "apps/app_registry.hpp"

namespace dsspy::apps {

RunResult run_astrogrep(runtime::ProfilingSession* session);
RunResult run_astrogrep_parallel(par::ThreadPool& pool);
RunResult run_astrogrep_simulated(unsigned workers);

}  // namespace dsspy::apps
