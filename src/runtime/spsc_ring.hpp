// Bounded lock-free single-producer/single-consumer ring buffer.
//
// The paper streams access events from the instrumented program to the
// analysis module via asynchronous intra-process communication so that the
// mutator only pays for an append (Section IV: "This design lets us bypass
// the typical disadvantages of file-based or in-memory log files").  Each
// recording thread owns one of these rings; the collector thread is the
// single consumer of all of them.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace dsspy::runtime {

/// Lock-free bounded SPSC queue.  `T` must be trivially copyable.
///
/// Capacity is rounded up to a power of two.  `try_push` fails when full
/// (the caller decides whether to spin or drop); `pop_into` drains in
/// batches to amortize the consumer's atomic traffic.
template <typename T>
class SpscRing {
    static_assert(std::is_trivially_copyable_v<T>);

public:
    explicit SpscRing(std::size_t min_capacity = 1024)
        : buffer_(std::bit_ceil(min_capacity < 2 ? 2 : min_capacity)),
          mask_(buffer_.size() - 1) {}

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    /// Producer side: enqueue one element; false if the ring is full.
    bool try_push(const T& value) noexcept {
        const std::size_t head = head_.load(std::memory_order_relaxed);
        const std::size_t tail = tail_cache_;
        if (head - tail >= buffer_.size()) {
            tail_cache_ = tail_.load(std::memory_order_acquire);
            if (head - tail_cache_ >= buffer_.size()) return false;
        }
        buffer_[head & mask_] = value;
        head_.store(head + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side: dequeue one element if available.
    std::optional<T> try_pop() noexcept {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        if (tail == head_cache_) {
            head_cache_ = head_.load(std::memory_order_acquire);
            if (tail == head_cache_) return std::nullopt;
        }
        T value = buffer_[tail & mask_];
        tail_.store(tail + 1, std::memory_order_release);
        return value;
    }

    /// Consumer side: drain up to `out.size()` elements; returns the count.
    std::size_t pop_into(std::span<T> out) noexcept {
        const std::size_t tail = tail_.load(std::memory_order_relaxed);
        std::size_t head = head_cache_;
        if (head == tail) {
            head = head_cache_ = head_.load(std::memory_order_acquire);
            if (head == tail) return 0;
        }
        const std::size_t available = head - tail;
        const std::size_t n = available < out.size() ? available : out.size();
        for (std::size_t i = 0; i < n; ++i)
            out[i] = buffer_[(tail + i) & mask_];
        tail_.store(tail + n, std::memory_order_release);
        return n;
    }

    /// Approximate number of queued elements (racy, for monitoring only).
    [[nodiscard]] std::size_t size_approx() const noexcept {
        return head_.load(std::memory_order_acquire) -
               tail_.load(std::memory_order_acquire);
    }

    [[nodiscard]] std::size_t capacity() const noexcept {
        return buffer_.size();
    }

    [[nodiscard]] bool empty_approx() const noexcept {
        return size_approx() == 0;
    }

private:
    std::vector<T> buffer_;
    std::size_t mask_;

    alignas(64) std::atomic<std::size_t> head_{0};  // written by producer
    alignas(64) std::size_t tail_cache_ = 0;        // producer-local
    alignas(64) std::atomic<std::size_t> tail_{0};  // written by consumer
    alignas(64) std::size_t head_cache_ = 0;        // consumer-local
};

}  // namespace dsspy::runtime
