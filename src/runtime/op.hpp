// Raw interface-operation vocabulary of the instrumented data structures.
//
// Object-oriented data structures canalize every interaction through a
// defined interface (Section II of the paper).  Each interface method of
// the containers in `src/ds/` maps to exactly one OpKind; the analysis in
// `src/core/` later folds these raw operations into the paper's trivial
// (Read, Write) and compound (Insert, Search, Delete, Clear, Copy, Reverse,
// Sort, ForAll) access types.
#pragma once

#include <cstdint>
#include <string_view>

namespace dsspy::runtime {

/// Raw operation performed through a container interface method.
enum class OpKind : std::uint8_t {
    Get,        ///< operator[] read / element lookup by position.
    Set,        ///< operator[] write / element replacement by position.
    Add,        ///< Append at the end (List.Add, Stack.Push, Queue.Enqueue).
    InsertAt,   ///< Positional insert (List.Insert(i, v)).
    RemoveAt,   ///< Positional removal (List.RemoveAt, Stack.Pop, Dequeue).
    Clear,      ///< Remove all elements.
    IndexOf,    ///< Search returning a position (IndexOf / Contains / Find).
    Sort,       ///< Full-container sort.
    Reverse,    ///< Full-container reversal.
    CopyTo,     ///< Bulk copy out of the container.
    ForEach,    ///< Whole-container traversal through the interface.
    Resize,     ///< Array re-allocation (fixed-size array growth/shrink).
    Count,      ///< OpKind arity marker; not a real operation.
};

/// Number of distinct raw operations.
inline constexpr std::size_t kOpKindCount =
    static_cast<std::size_t>(OpKind::Count);

/// Stable display name, e.g. for CSV dumps and debugging.
[[nodiscard]] constexpr std::string_view op_name(OpKind op) noexcept {
    switch (op) {
        case OpKind::Get: return "Get";
        case OpKind::Set: return "Set";
        case OpKind::Add: return "Add";
        case OpKind::InsertAt: return "InsertAt";
        case OpKind::RemoveAt: return "RemoveAt";
        case OpKind::Clear: return "Clear";
        case OpKind::IndexOf: return "IndexOf";
        case OpKind::Sort: return "Sort";
        case OpKind::Reverse: return "Reverse";
        case OpKind::CopyTo: return "CopyTo";
        case OpKind::ForEach: return "ForEach";
        case OpKind::Resize: return "Resize";
        case OpKind::Count: break;
    }
    return "?";
}

/// Kind of data structure an instance belongs to.  Mirrors the dynamic data
/// structures of the .NET CTS that the paper's empirical study counted,
/// plus fixed-size arrays.
enum class DsKind : std::uint8_t {
    List,
    Array,
    ArrayList,  ///< Non-generic CTS list (legacy), third most frequent.
    Dictionary,
    Stack,
    Queue,
    LinkedList,
    SortedList,
    HashSet,
    SortedSet,
    SortedDictionary,
    Hashtable,
    Count,
};

/// Number of distinct data-structure kinds.
inline constexpr std::size_t kDsKindCount =
    static_cast<std::size_t>(DsKind::Count);

/// Stable display name matching the paper's figures ("List", "Dictionary"…).
[[nodiscard]] constexpr std::string_view ds_kind_name(DsKind kind) noexcept {
    switch (kind) {
        case DsKind::List: return "List";
        case DsKind::Array: return "Array";
        case DsKind::ArrayList: return "ArrayList";
        case DsKind::Dictionary: return "Dictionary";
        case DsKind::Stack: return "Stack";
        case DsKind::Queue: return "Queue";
        case DsKind::LinkedList: return "LinkedList";
        case DsKind::SortedList: return "SortedList";
        case DsKind::HashSet: return "HashSet";
        case DsKind::SortedSet: return "SortedSet";
        case DsKind::SortedDictionary: return "SortedDictionary";
        case DsKind::Hashtable: return "Hashtable";
        case DsKind::Count: break;
    }
    return "?";
}

}  // namespace dsspy::runtime
