#include "runtime/trace_binary.hpp"

#include <algorithm>
#include <cstring>
#include <exception>
#include <istream>
#include <limits>
#include <mutex>
#include <ostream>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/trace_codec.hpp"

namespace dsspy::runtime {

namespace {

using codec::chunk_baseline;
using codec::checked_narrow;
using codec::Cursor;
using codec::fail;
using codec::kControlReserved;
using codec::kPosPlusOne;
using codec::kSameInstance;
using codec::kSameOp;
using codec::kSameThread;
using codec::kSeqPlusOne;
using codec::kSizeSame;
using codec::kTimeSame;

/// Self-telemetry: DST1 chunks decoded (lazy-registered; call sites guard
/// on obs::enabled()).
obs::MetricId chunks_decoded_metric() {
    static const obs::MetricId id =
        obs::MetricsRegistry::global().counter("trace.chunks_decoded");
    return id;
}

// ---------------------------------------------------------------- encoding

void put_u32(std::string& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

void put_u64(std::string& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out += static_cast<char>((v >> (8 * i)) & 0xFF);
}

/// LEB128: 7 value bits per byte, high bit = continuation.
void put_varint(std::string& out, std::uint64_t v) {
    while (v >= 0x80) {
        out += static_cast<char>((v & 0x7F) | 0x80);
        v >>= 7;
    }
    out += static_cast<char>(v);
}

/// Zigzag folds small negative deltas into small varints.
std::uint64_t zigzag(std::uint64_t delta) {
    const auto s = static_cast<std::int64_t>(delta);
    return (static_cast<std::uint64_t>(s) << 1) ^
           static_cast<std::uint64_t>(s >> 63);
}

void put_delta(std::string& out, std::uint64_t cur, std::uint64_t prev) {
    put_varint(out, zigzag(cur - prev));  // mod-2^64 delta: exact round trip
}

void put_string(std::string& out, const std::string& s) {
    put_varint(out, s.size());
    out += s;
}

void put_event(std::string& out, const AccessEvent& ev,
               const AccessEvent& prev) {
    const auto upos = static_cast<std::uint64_t>(ev.position);
    const auto uprev_pos = static_cast<std::uint64_t>(prev.position);
    std::uint8_t control = 0;
    if (ev.seq == prev.seq + 1) control |= kSeqPlusOne;
    if (ev.time_ns == prev.time_ns) control |= kTimeSame;
    if (ev.instance == prev.instance) control |= kSameInstance;
    if (ev.op == prev.op) control |= kSameOp;
    if (upos == uprev_pos + 1) control |= kPosPlusOne;
    if (ev.size == prev.size) control |= kSizeSame;
    if (ev.thread == prev.thread) control |= kSameThread;
    out += static_cast<char>(control);
    if (!(control & kSeqPlusOne)) put_delta(out, ev.seq, prev.seq);
    if (!(control & kTimeSame)) put_delta(out, ev.time_ns, prev.time_ns);
    if (!(control & kSameInstance))
        put_delta(out, ev.instance, prev.instance);
    if (!(control & kSameOp)) out += static_cast<char>(ev.op);
    if (!(control & kPosPlusOne)) put_delta(out, upos, uprev_pos);
    if (!(control & kSizeSame)) put_delta(out, ev.size, prev.size);
    if (!(control & kSameThread)) put_delta(out, ev.thread, prev.thread);
}

// ---------------------------------------------------------------- decoding
// The bounded cursor, control bits, and chunk validation are shared with
// the columnar mmap decoder — see trace_codec.hpp.

/// Decode exactly `count` events from one chunk payload into `out`.
void decode_chunk(Cursor cur, std::uint32_t count,
                  std::vector<AccessEvent>& out) {
    out.resize(count);
    AccessEvent prev = chunk_baseline();
    for (std::uint32_t i = 0; i < count; ++i) {
        AccessEvent& ev = out[i];
        const std::uint8_t control = cur.u8();
        if (control & kControlReserved) fail("bad event control byte");
        ev.seq = (control & kSeqPlusOne) ? prev.seq + 1 : cur.delta(prev.seq);
        ev.time_ns = (control & kTimeSame) ? prev.time_ns
                                           : cur.delta(prev.time_ns);
        ev.instance = (control & kSameInstance)
                          ? prev.instance
                          : checked_narrow<InstanceId>(
                                cur.delta(prev.instance), "instance");
        if (control & kSameOp) {
            ev.op = prev.op;
        } else {
            const std::uint8_t op = cur.u8();
            if (op >= kOpKindCount) fail("bad op value");
            ev.op = static_cast<OpKind>(op);
        }
        const auto uprev_pos = static_cast<std::uint64_t>(prev.position);
        ev.position = static_cast<std::int64_t>(
            (control & kPosPlusOne) ? uprev_pos + 1 : cur.delta(uprev_pos));
        ev.size = (control & kSizeSame)
                      ? prev.size
                      : checked_narrow<std::uint32_t>(cur.delta(prev.size),
                                                      "size");
        ev.thread = (control & kSameThread)
                        ? prev.thread
                        : checked_narrow<ThreadId>(cur.delta(prev.thread),
                                                   "thread");
        prev = ev;
    }
    if (cur.ptr != cur.end) fail("chunk payload longer than declared events");
}

/// Byte source for the streaming decoder: serves the sniffed prefix first,
/// then pulls from the stream.  Mirrors Cursor's primitives (and error
/// messages) but never needs the whole trace in memory.
struct StreamSource {
    std::istream& is;
    std::string_view carry;

    /// Read exactly `n` bytes; false only on a clean end of input.
    bool get(char* dst, std::size_t n) {
        const std::size_t from_carry = std::min(n, carry.size());
        std::memcpy(dst, carry.data(), from_carry);
        carry.remove_prefix(from_carry);
        if (from_carry == n) return true;
        is.read(dst + from_carry,
                static_cast<std::streamsize>(n - from_carry));
        if (is.bad()) fail("I/O error while reading trace");
        return static_cast<std::size_t>(is.gcount()) == n - from_carry;
    }

    std::uint8_t u8(const char* what) {
        char c;
        if (!get(&c, 1)) fail(what);
        return static_cast<std::uint8_t>(c);
    }

    std::uint32_t u32() {
        unsigned char b[4];
        if (!get(reinterpret_cast<char*>(b), 4))
            fail("truncated fixed-width field");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[i]} << (8 * i);
        return v;
    }

    std::uint64_t u64() {
        unsigned char b[8];
        if (!get(reinterpret_cast<char*>(b), 8))
            fail("truncated fixed-width field");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
        return v;
    }

    std::uint64_t varint() {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            const std::uint8_t byte = u8("unterminated varint");
            v |= std::uint64_t{byte & 0x7Fu} << shift;
            if ((byte & 0x80u) == 0) {
                if (shift == 63 && byte > 1) fail("varint overflows 64 bits");
                return v;
            }
        }
        fail("varint longer than 10 bytes");
    }

    std::string str() {
        const std::uint64_t len = varint();
        // No "remaining" to check against a stream; cap at a size no real
        // name field reaches so corrupt lengths fail before allocating.
        if (len > (1u << 30)) fail("truncated string field");
        std::string s(static_cast<std::size_t>(len), '\0');
        if (!get(s.data(), s.size())) fail("truncated string field");
        return s;
    }

    [[nodiscard]] bool at_end() {
        if (!carry.empty()) return false;
        return is.peek() == std::istream::traits_type::eof();
    }
};

}  // namespace

std::size_t read_trace_binary_stream(std::istream& is, std::string_view prefix,
                                     TraceSink& sink) {
    StreamSource src{is, prefix};
    char magic[sizeof(kTraceBinaryMagic)];
    if (!src.get(magic, sizeof(magic)) ||
        std::memcmp(magic, kTraceBinaryMagic, sizeof(magic)) != 0)
        fail("bad magic (not a DST1 trace)");
    const std::uint32_t version = src.u32();
    if (version != kTraceBinaryVersion)
        fail("unsupported DST1 version " + std::to_string(version));
    const std::uint64_t instance_count = src.u64();
    const std::uint64_t event_count = src.u64();

    for (std::uint64_t i = 0; i < instance_count; ++i) {
        InstanceInfo info;
        info.id = checked_narrow<InstanceId>(src.varint(), "id");
        const std::uint64_t kind = src.varint();
        if (kind >= kDsKindCount) fail("bad kind value");
        info.kind = static_cast<DsKind>(kind);
        info.location.position =
            checked_narrow<std::uint32_t>(src.varint(), "position");
        info.type_name = src.str();
        info.location.class_name = src.str();
        info.location.method = src.str();
        info.deallocated = src.u8("truncated byte field") != 0;
        sink.on_instance(info);
    }

    std::vector<char> payload;
    std::vector<AccessEvent> decoded;
    std::uint64_t declared = 0;
    std::size_t delivered = 0;
    while (declared < event_count) {
        unsigned char header[8];
        if (!src.get(reinterpret_cast<char*>(header), sizeof(header)))
            fail("truncated chunk header");
        std::uint32_t count = 0;
        std::uint32_t payload_bytes = 0;
        for (int i = 0; i < 4; ++i) {
            count |= std::uint32_t{header[i]} << (8 * i);
            payload_bytes |= std::uint32_t{header[4 + i]} << (8 * i);
        }
        codec::check_chunk_header(count, payload_bytes,
                                  std::numeric_limits<std::size_t>::max());
        payload.resize(payload_bytes);
        if (!src.get(payload.data(), payload.size()))
            fail("truncated event chunk");
        const auto* begin =
            reinterpret_cast<const unsigned char*>(payload.data());
        decode_chunk(Cursor{begin, begin + payload.size()}, count, decoded);
        if (obs::enabled())
            obs::MetricsRegistry::global().add(chunks_decoded_metric());
        sink.on_events(decoded);
        delivered += decoded.size();
        declared += count;
    }
    if (declared != event_count) fail("chunk event counts exceed header total");
    if (!src.at_end()) fail("trailing bytes after final chunk");
    return delivered;
}

bool is_binary_trace(std::string_view bytes) {
    return bytes.size() >= sizeof(kTraceBinaryMagic) &&
           std::memcmp(bytes.data(), kTraceBinaryMagic,
                       sizeof(kTraceBinaryMagic)) == 0;
}

std::size_t write_trace_binary(std::ostream& os,
                               const std::vector<InstanceInfo>& instances,
                               const ProfileStore& store) {
    const std::vector<InstanceId> order =
        detail::event_write_order(instances, store);
    std::uint64_t event_count = 0;
    for (const InstanceId id : order) event_count += store.events(id).size();

    std::string head;
    head.append(kTraceBinaryMagic, sizeof(kTraceBinaryMagic));
    put_u32(head, kTraceBinaryVersion);
    put_u64(head, instances.size());
    put_u64(head, event_count);
    for (const InstanceInfo& info : instances) {
        put_varint(head, info.id);
        put_varint(head, static_cast<std::uint64_t>(info.kind));
        put_varint(head, info.location.position);
        put_string(head, info.type_name);
        put_string(head, info.location.class_name);
        put_string(head, info.location.method);
        head += static_cast<char>(info.deallocated ? 1 : 0);
    }
    os.write(head.data(), static_cast<std::streamsize>(head.size()));

    // Stream events chunk by chunk across instance boundaries.
    std::string payload;
    payload.reserve(kTraceBinaryChunkEvents * 4);
    std::uint32_t in_chunk = 0;
    AccessEvent prev = chunk_baseline();
    const auto flush_chunk = [&] {
        if (in_chunk == 0) return;
        std::string header;
        put_u32(header, in_chunk);
        put_u32(header, static_cast<std::uint32_t>(payload.size()));
        os.write(header.data(), static_cast<std::streamsize>(header.size()));
        os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
        payload.clear();
        in_chunk = 0;
        prev = chunk_baseline();
    };
    std::size_t written = 0;
    for (const InstanceId id : order) {
        for (const AccessEvent& ev : store.events(id)) {
            put_event(payload, ev, prev);
            prev = ev;
            ++written;
            if (++in_chunk == kTraceBinaryChunkEvents) flush_chunk();
        }
    }
    flush_chunk();
    return written;
}

Trace read_trace_binary(std::string_view bytes, par::ThreadPool* pool) {
    Cursor cur{reinterpret_cast<const unsigned char*>(bytes.data()),
               reinterpret_cast<const unsigned char*>(bytes.data()) +
                   bytes.size()};
    if (!is_binary_trace(bytes)) fail("bad magic (not a DST1 trace)");
    cur.ptr += sizeof(kTraceBinaryMagic);
    const std::uint32_t version = cur.u32();
    if (version != kTraceBinaryVersion)
        fail("unsupported DST1 version " + std::to_string(version));
    const std::uint64_t instance_count = cur.u64();
    const std::uint64_t event_count = cur.u64();

    Trace trace;
    if (instance_count > cur.remaining())  // each record is >= 7 bytes
        fail("instance count exceeds input size");
    trace.instances.reserve(static_cast<std::size_t>(instance_count));
    for (std::uint64_t i = 0; i < instance_count; ++i) {
        InstanceInfo info;
        info.id = checked_narrow<InstanceId>(cur.varint(), "id");
        const std::uint64_t kind = cur.varint();
        if (kind >= kDsKindCount) fail("bad kind value");
        info.kind = static_cast<DsKind>(kind);
        info.location.position =
            checked_narrow<std::uint32_t>(cur.varint(), "position");
        info.type_name = cur.str();
        info.location.class_name = cur.str();
        info.location.method = cur.str();
        info.deallocated = cur.u8() != 0;
        trace.instances.push_back(std::move(info));
    }

    // Index the chunks first (headers carry the payload size, so this is a
    // cheap skip-scan), then decode them — concurrently with a pool.
    struct ChunkRef {
        Cursor payload;
        std::uint32_t count;
    };
    std::vector<ChunkRef> chunks;
    std::uint64_t declared = 0;
    while (declared < event_count) {
        if (cur.remaining() < 8) fail("truncated chunk header");
        const std::uint32_t count = cur.u32();
        const std::uint32_t payload_bytes = cur.u32();
        codec::check_chunk_header(count, payload_bytes, cur.remaining());
        chunks.push_back(ChunkRef{{cur.ptr, cur.ptr + payload_bytes}, count});
        cur.ptr += payload_bytes;
        declared += count;
    }
    if (declared != event_count) fail("chunk event counts exceed header total");
    if (cur.ptr != cur.end) fail("trailing bytes after final chunk");

    std::vector<std::vector<AccessEvent>> decoded(chunks.size());
    DSSPY_TRACE_SPAN("trace.chunk_decode");
    // Pool shards parent under the decode span explicitly — they run on
    // pool threads whose TLS context is empty.
    const obs::TraceContext decode_ctx = obs::current_trace_context();
    const auto decode_range = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            decode_chunk(chunks[i].payload, chunks[i].count, decoded[i]);
    };
    if (pool != nullptr && chunks.size() > 1) {
        // decode_chunk throws on corrupt chunks; capture the first error
        // and rethrow after the barrier (pool tasks must not leak
        // exceptions).
        std::mutex error_mutex;
        std::exception_ptr error;
        par::parallel_for_chunks(
            *pool, 0, chunks.size(), [&](std::size_t lo, std::size_t hi) {
                DSSPY_TRACE_SPAN_UNDER("trace.decode_shard", decode_ctx);
                try {
                    decode_range(lo, hi);
                } catch (...) {
                    const std::scoped_lock lock(error_mutex);
                    if (!error) error = std::current_exception();
                }
            });
        if (error) std::rethrow_exception(error);
    } else {
        decode_range(0, chunks.size());
    }
    if (obs::enabled())
        obs::MetricsRegistry::global().add(chunks_decoded_metric(),
                                           chunks.size());

    // Appending in file order keeps the store bit-identical to a
    // sequential decode regardless of how the decode itself was scheduled.
    for (const std::vector<AccessEvent>& batch : decoded)
        trace.store.append(batch);
    trace.store.finalize(pool);
    return trace;
}

}  // namespace dsspy::runtime
