// Shared DST1 decode primitives (format reference: trace_binary.hpp).
//
// Two readers consume DST1 payloads: the AoS decoder in trace_binary.cpp
// (events into a ProfileStore) and the zero-copy columnar decoder in
// trace_mmap.cpp (fields straight into ColumnStore rows).  Both must agree
// byte-for-byte on the wire protocol — control bits, varint/zigzag rules,
// bounds checks, error strings — so the primitives live here and the
// decoders share them instead of drifting apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "runtime/access_event.hpp"

namespace dsspy::runtime::codec {

[[noreturn]] inline void fail(const std::string& what) {
    throw std::runtime_error("trace_io: " + what);
}

/// Control-byte flags: each bit marks one field as "took its common delta"
/// (see trace_binary.hpp); clear bits have an explicit value following.
enum : std::uint8_t {
    kSeqPlusOne = 1u << 0,
    kTimeSame = 1u << 1,
    kSameInstance = 1u << 2,
    kSameOp = 1u << 3,
    kPosPlusOne = 1u << 4,
    kSizeSame = 1u << 5,
    kSameThread = 1u << 6,
    kControlReserved = 1u << 7,
};

/// Chunk-local delta baseline (all fields zero — AccessEvent's defaults
/// use sentinels, so build it explicitly).
inline AccessEvent chunk_baseline() {
    AccessEvent ev;
    ev.instance = 0;
    ev.op = OpKind::Get;
    return ev;
}

/// Bounded byte cursor; every read checks the remaining length.
struct Cursor {
    const unsigned char* ptr;
    const unsigned char* end;

    [[nodiscard]] std::size_t remaining() const {
        return static_cast<std::size_t>(end - ptr);
    }

    std::uint32_t u32() {
        if (remaining() < 4) fail("truncated fixed-width field");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= std::uint32_t{ptr[i]} << (8 * i);
        ptr += 4;
        return v;
    }

    std::uint64_t u64() {
        if (remaining() < 8) fail("truncated fixed-width field");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= std::uint64_t{ptr[i]} << (8 * i);
        ptr += 8;
        return v;
    }

    std::uint8_t u8() {
        if (remaining() < 1) fail("truncated byte field");
        return *ptr++;
    }

    std::uint64_t varint() {
        std::uint64_t v = 0;
        for (unsigned shift = 0; shift < 64; shift += 7) {
            if (ptr == end) fail("unterminated varint");
            const unsigned char byte = *ptr++;
            v |= std::uint64_t{byte & 0x7Fu} << shift;
            if ((byte & 0x80u) == 0) {
                // The 10th byte carries only bit 63: anything above is
                // an overlong/corrupt encoding.
                if (shift == 63 && byte > 1) fail("varint overflows 64 bits");
                return v;
            }
        }
        fail("varint longer than 10 bytes");
    }

    std::uint64_t delta(std::uint64_t prev) {
        const std::uint64_t z = varint();
        const std::uint64_t d = (z >> 1) ^ (~(z & 1) + 1);  // un-zigzag
        return prev + d;
    }

    std::string str() {
        const std::uint64_t len = varint();
        if (len > remaining()) fail("truncated string field");
        std::string s(reinterpret_cast<const char*>(ptr),
                      static_cast<std::size_t>(len));
        ptr += len;
        return s;
    }
};

template <typename T>
T checked_narrow(std::uint64_t v, const char* what) {
    if (v > static_cast<std::uint64_t>(std::numeric_limits<T>::max()))
        fail(std::string("field '") + what + "' out of range");
    return static_cast<T>(v);
}

/// Validate one chunk header (already read as `count`/`payload_bytes`
/// against a cursor positioned at the payload).  Both readers reject the
/// same corruptions with the same messages: zero-event chunks, payloads
/// that overrun the input, and declared event counts no payload that size
/// could hold (every event costs at least its control byte).
inline void check_chunk_header(std::uint32_t count,
                               std::uint32_t payload_bytes,
                               std::size_t remaining) {
    if (count == 0) fail("empty event chunk");
    if (count > payload_bytes) fail("chunk event count exceeds payload size");
    if (payload_bytes > remaining) fail("truncated event chunk");
}

}  // namespace dsspy::runtime::codec
