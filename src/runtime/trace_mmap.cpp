#include "runtime/trace_mmap.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <exception>
#include <fstream>
#include <iterator>
#include <mutex>
#include <numeric>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define DSSPY_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/trace_binary.hpp"
#include "runtime/trace_codec.hpp"

namespace dsspy::runtime {

namespace {

using codec::chunk_baseline;
using codec::checked_narrow;
using codec::Cursor;
using codec::fail;

/// Self-telemetry: DST1 chunks decoded through the columnar reader.
obs::MetricId column_chunks_metric() {
    static const obs::MetricId id = obs::MetricsRegistry::global().counter(
        "trace.column_chunks_decoded");
    return id;
}

/// Decode one chunk payload into column rows [first_row, first_row+count)
/// plus the temporary seq/instance columns used for grouping.  The wire
/// walk matches trace_binary.cpp's decode_chunk field for field; only the
/// destination differs (five column writes instead of one struct).
void decode_chunk_columns(Cursor cur, std::uint32_t count,
                          std::size_t first_row, ColumnStore& columns,
                          std::uint64_t* seq_col,
                          std::uint32_t* instance_col) {
    std::uint64_t* time_col = columns.mutable_time_ns() + first_row;
    std::int64_t* pos_col = columns.mutable_position() + first_row;
    std::uint32_t* size_col = columns.mutable_sizes() + first_row;
    std::uint8_t* op_col = columns.mutable_op() + first_row;
    std::uint16_t* thread_col = columns.mutable_thread() + first_row;
    seq_col += first_row;
    instance_col += first_row;

    AccessEvent prev = chunk_baseline();
    for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint8_t control = cur.u8();
        if (control & codec::kControlReserved) fail("bad event control byte");
        prev.seq = (control & codec::kSeqPlusOne) ? prev.seq + 1
                                                  : cur.delta(prev.seq);
        prev.time_ns = (control & codec::kTimeSame)
                           ? prev.time_ns
                           : cur.delta(prev.time_ns);
        if (!(control & codec::kSameInstance))
            prev.instance = checked_narrow<InstanceId>(
                cur.delta(prev.instance), "instance");
        if (!(control & codec::kSameOp)) {
            const std::uint8_t op = cur.u8();
            if (op >= kOpKindCount) fail("bad op value");
            prev.op = static_cast<OpKind>(op);
        }
        const auto uprev_pos = static_cast<std::uint64_t>(prev.position);
        prev.position = static_cast<std::int64_t>(
            (control & codec::kPosPlusOne) ? uprev_pos + 1
                                           : cur.delta(uprev_pos));
        if (!(control & codec::kSizeSame))
            prev.size = checked_narrow<std::uint32_t>(cur.delta(prev.size),
                                                      "size");
        if (!(control & codec::kSameThread))
            prev.thread = checked_narrow<ThreadId>(cur.delta(prev.thread),
                                                   "thread");
        seq_col[i] = prev.seq;
        time_col[i] = prev.time_ns;
        instance_col[i] = prev.instance;
        op_col[i] = static_cast<std::uint8_t>(prev.op);
        pos_col[i] = prev.position;
        size_col[i] = prev.size;
        thread_col[i] = prev.thread;
    }
    if (cur.ptr != cur.end) fail("chunk payload longer than declared events");
}

struct InstanceRun {
    InstanceId id = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
};

/// Fast path: rows already grouped (every instance one contiguous run, seq
/// ascending within it — what write_trace emits).  Fills `runs` and
/// returns true; returns false when a permutation sort is needed.
bool collect_grouped_runs(const std::uint32_t* instance_col,
                          const std::uint64_t* seq_col, std::size_t n,
                          std::vector<InstanceRun>& runs) {
    runs.clear();
    std::size_t begin = 0;
    for (std::size_t i = 1; i <= n; ++i) {
        if (i < n && instance_col[i] == instance_col[i - 1]) {
            if (seq_col[i] <= seq_col[i - 1]) return false;  // out of order
            continue;
        }
        runs.push_back(InstanceRun{instance_col[begin], begin, i});
        begin = i;
    }
    // One run per instance?  Duplicate ids mean interleaved blocks.
    std::vector<InstanceRun> by_id(runs);
    std::sort(by_id.begin(), by_id.end(),
              [](const InstanceRun& a, const InstanceRun& b) {
                  return a.id < b.id;
              });
    for (std::size_t i = 1; i < by_id.size(); ++i)
        if (by_id[i].id == by_id[i - 1].id) return false;
    return true;
}

/// Slow path: argsort rows by (instance, seq) and rebuild every column
/// through the permutation.  Deterministic: the key includes the row index
/// as final tie-breaker, so even adversarial duplicate (instance, seq)
/// pairs land in a fixed order.
void regroup_by_sort(ColumnStore& columns, std::vector<std::uint64_t>& seqs,
                     std::vector<std::uint32_t>& instances,
                     std::vector<InstanceRun>& runs) {
    const std::size_t n = seqs.size();
    std::vector<std::size_t> perm(n);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::sort(perm.begin(), perm.end(),
              [&](std::size_t a, std::size_t b) {
                  if (instances[a] != instances[b])
                      return instances[a] < instances[b];
                  if (seqs[a] != seqs[b]) return seqs[a] < seqs[b];
                  return a < b;
              });

    ColumnStore sorted;
    sorted.allocate(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t src = perm[i];
        sorted.mutable_time_ns()[i] = columns.time_ns()[src];
        sorted.mutable_position()[i] = columns.position()[src];
        sorted.mutable_sizes()[i] = columns.sizes()[src];
        sorted.mutable_op()[i] = columns.op()[src];
        sorted.mutable_thread()[i] = columns.thread()[src];
    }
    columns = std::move(sorted);

    runs.clear();
    std::size_t begin = 0;
    for (std::size_t i = 1; i <= n; ++i) {
        if (i < n && instances[perm[i]] == instances[perm[i - 1]]) continue;
        runs.push_back(InstanceRun{instances[perm[begin]], begin, i});
        begin = i;
    }
}

}  // namespace

bool is_binary_trace_file(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) return false;
    char magic[sizeof(kTraceBinaryMagic)];
    is.read(magic, sizeof(magic));
    return is.gcount() == sizeof(magic) &&
           std::memcmp(magic, kTraceBinaryMagic, sizeof(magic)) == 0;
}

ColumnTrace read_trace_columns(std::string_view bytes,
                               par::ThreadPool* pool) {
    // The kernels downstream issue wide aligned-friendly loads; a mapping
    // that is not even word-aligned indicates a broken producer (mmap
    // returns page-aligned addresses, partial-page offsets do not).
    if (reinterpret_cast<std::uintptr_t>(bytes.data()) %
            alignof(std::uint64_t) !=
        0)
        fail("misaligned mmap region");
    Cursor cur{reinterpret_cast<const unsigned char*>(bytes.data()),
               reinterpret_cast<const unsigned char*>(bytes.data()) +
                   bytes.size()};
    if (!is_binary_trace(bytes)) fail("bad magic (not a DST1 trace)");
    cur.ptr += sizeof(kTraceBinaryMagic);
    const std::uint32_t version = cur.u32();
    if (version != kTraceBinaryVersion)
        fail("unsupported DST1 version " + std::to_string(version));
    const std::uint64_t instance_count = cur.u64();
    const std::uint64_t event_count = cur.u64();

    ColumnTrace trace;
    if (instance_count > cur.remaining())  // each record is >= 7 bytes
        fail("instance count exceeds input size");
    trace.instances.reserve(static_cast<std::size_t>(instance_count));
    for (std::uint64_t i = 0; i < instance_count; ++i) {
        InstanceInfo info;
        info.id = checked_narrow<InstanceId>(cur.varint(), "id");
        const std::uint64_t kind = cur.varint();
        if (kind >= kDsKindCount) fail("bad kind value");
        info.kind = static_cast<DsKind>(kind);
        info.location.position =
            checked_narrow<std::uint32_t>(cur.varint(), "position");
        info.type_name = cur.str();
        info.location.class_name = cur.str();
        info.location.method = cur.str();
        info.deallocated = cur.u8() != 0;
        trace.instances.push_back(std::move(info));
    }

    // Chunk index: headers carry the payload size, so this is a cheap
    // skip-scan that also yields each chunk's first output row.
    struct ChunkRef {
        Cursor payload;
        std::uint32_t count;
        std::size_t first_row;
    };
    std::vector<ChunkRef> chunks;
    std::uint64_t declared = 0;
    while (declared < event_count) {
        if (cur.remaining() < 8) fail("truncated chunk header");
        const std::uint32_t count = cur.u32();
        const std::uint32_t payload_bytes = cur.u32();
        codec::check_chunk_header(count, payload_bytes, cur.remaining());
        chunks.push_back(ChunkRef{{cur.ptr, cur.ptr + payload_bytes},
                                  count,
                                  static_cast<std::size_t>(declared)});
        cur.ptr += payload_bytes;
        declared += count;
    }
    if (declared != event_count) fail("chunk event counts exceed header total");
    if (cur.ptr != cur.end) fail("trailing bytes after final chunk");

    const auto rows = static_cast<std::size_t>(event_count);
    trace.columns.allocate(rows, 0);
    std::vector<std::uint64_t> seqs(rows);
    std::vector<std::uint32_t> instance_col(rows);

    // Chunks write disjoint row ranges, so the decode parallelizes without
    // synchronization and lands bit-identical to a sequential pass.
    DSSPY_TRACE_SPAN("trace.column_decode");
    const obs::TraceContext decode_ctx = obs::current_trace_context();
    const auto decode_range = [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            decode_chunk_columns(chunks[i].payload, chunks[i].count,
                                 chunks[i].first_row, trace.columns,
                                 seqs.data(), instance_col.data());
    };
    if (pool != nullptr && chunks.size() > 1) {
        std::mutex error_mutex;
        std::exception_ptr error;
        par::parallel_for_chunks(
            *pool, 0, chunks.size(), [&](std::size_t lo, std::size_t hi) {
                DSSPY_TRACE_SPAN_UNDER("trace.decode_shard", decode_ctx);
                try {
                    decode_range(lo, hi);
                } catch (...) {
                    const std::scoped_lock lock(error_mutex);
                    if (!error) error = std::current_exception();
                }
            });
        if (error) std::rethrow_exception(error);
    } else {
        decode_range(0, chunks.size());
    }
    if (obs::enabled())
        obs::MetricsRegistry::global().add(column_chunks_metric(),
                                           chunks.size());

    std::vector<InstanceRun> runs;
    if (!collect_grouped_runs(instance_col.data(), seqs.data(), rows, runs))
        regroup_by_sort(trace.columns, seqs, instance_col, runs);
    for (const InstanceRun& run : runs)
        trace.columns.set_range(run.id, run.begin, run.end);
    return trace;
}

ColumnTrace read_trace_columns_file(const std::string& path,
                                    par::ThreadPool* pool) {
#if DSSPY_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) fail("cannot open trace file: " + path);
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        fail("cannot stat trace file: " + path);
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        ::close(fd);
        fail("bad magic (not a DST1 trace)");
    }
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // the mapping keeps the file alive
    if (base != MAP_FAILED) {
#if defined(__linux__)
        ::madvise(base, size, MADV_SEQUENTIAL);
#endif
        DSSPY_TRACE_SPAN("trace.mmap_read");
        try {
            ColumnTrace trace = read_trace_columns(
                std::string_view(static_cast<const char*>(base), size),
                pool);
            ::munmap(base, size);
            return trace;
        } catch (...) {
            ::munmap(base, size);
            throw;
        }
    }
    // MAP_FAILED: fall through to the buffered read below.
#endif
    std::ifstream is(path, std::ios::binary);
    if (!is) fail("cannot open trace file: " + path);
    std::string buffer((std::istreambuf_iterator<char>(is)),
                       std::istreambuf_iterator<char>());
    return read_trace_columns(buffer, pool);
}

}  // namespace dsspy::runtime
