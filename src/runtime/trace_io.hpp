// Trace serialization: export a recorded session to CSV and re-import it
// for offline analysis.
//
// DSspy analyzes profiles post-mortem; persisting the raw event stream
// decouples capture from analysis entirely — a trace taken on one machine
// (or by an external instrumentation layer such as a Pin tool) can be
// analyzed anywhere.  The format is line-oriented CSV with two record
// types:
//
//   I,<id>,<kind>,<type_name>,<class>,<method>,<position>,<deallocated>
//   E,<seq>,<time_ns>,<instance>,<op>,<position>,<size>,<thread>
//
// Instance records come first; event records follow in arbitrary order
// (the store is re-sorted on finalize).  Text fields are CSV-escaped.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/instance_registry.hpp"
#include "runtime/profile_store.hpp"
#include "runtime/session.hpp"

namespace dsspy::runtime {

/// A deserialized trace: instance metadata plus the finalized store.
struct Trace {
    std::vector<InstanceInfo> instances;
    ProfileStore store;
};

/// Write a stopped session's registry and events to `os`.
/// Returns the number of events written.
std::size_t write_trace(std::ostream& os, const ProfilingSession& session);

/// Write explicit instances/events (for tools that build traces directly).
std::size_t write_trace(std::ostream& os,
                        const std::vector<InstanceInfo>& instances,
                        const ProfileStore& store);

/// Parse a trace written by `write_trace`.  Throws std::runtime_error on
/// malformed input (wrong field counts, non-numeric fields, unknown record
/// tags).  The returned store is finalized.
[[nodiscard]] Trace read_trace(std::istream& is);

/// Convenience: file-path overloads.  Return false / empty on I/O failure.
bool write_trace_file(const std::string& path,
                      const ProfilingSession& session);
[[nodiscard]] Trace read_trace_file(const std::string& path);

}  // namespace dsspy::runtime
