// Trace serialization: export a recorded session and re-import it for
// offline analysis.
//
// DSspy analyzes profiles post-mortem; persisting the raw event stream
// decouples capture from analysis entirely — a trace taken on one machine
// (or by an external instrumentation layer such as a Pin tool) can be
// analyzed anywhere.  Two on-disk formats are supported (see DESIGN.md §7):
//
//  * CSV — line-oriented text with two record types:
//
//      I,<id>,<kind>,<type_name>,<class>,<method>,<position>,<deallocated>
//      E,<seq>,<time_ns>,<instance>,<op>,<position>,<size>,<thread>
//
//    Instance records come first; event records follow in arbitrary order
//    (the store is re-sorted on finalize).  Text fields are CSV-escaped;
//    quoted fields may span physical lines (a name may contain newlines).
//
//  * DST1 — the compact binary format in trace_binary.hpp: a fixed header,
//    an instance table, then ~64K-event chunks with delta/varint-encoded
//    fields.  Roughly an order of magnitude smaller and several times
//    faster to read than CSV; chunks decode in parallel on a ThreadPool.
//
// `read_trace` auto-detects the format from the leading magic bytes.
#pragma once

#include <cstddef>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/instance_registry.hpp"
#include "runtime/profile_store.hpp"
#include "runtime/session.hpp"

namespace dsspy::par {
class ThreadPool;
}

namespace dsspy::runtime {

/// On-disk trace encodings.
enum class TraceFormat {
    Csv,     ///< Line-oriented text (human-inspectable, foreign-tool-friendly).
    Binary,  ///< DST1 chunked binary (compact, fast, parallel-decodable).
};

/// A deserialized trace: instance metadata plus the finalized store.
struct Trace {
    std::vector<InstanceInfo> instances;
    ProfileStore store;
};

/// Write a stopped session's registry and events to `os`.
/// Returns the number of events written.
std::size_t write_trace(std::ostream& os, const ProfilingSession& session,
                        TraceFormat format = TraceFormat::Csv);

/// Write explicit instances/events (for tools that build traces directly).
/// Events whose instance id does not appear in `instances` are written too
/// (after the listed instances, in id order), so externally built stores
/// survive a write/read cycle.
std::size_t write_trace(std::ostream& os,
                        const std::vector<InstanceInfo>& instances,
                        const ProfileStore& store,
                        TraceFormat format = TraceFormat::Csv);

/// Parse a trace written by `write_trace`, auto-detecting the format from
/// the magic bytes.  Throws std::runtime_error on malformed input (wrong
/// field counts, non-numeric fields, unknown record tags, truncated or
/// corrupt binary data).  The returned store is finalized.  With a pool,
/// binary chunk decode and the finalize sort run in parallel; the result
/// is bit-identical to the sequential path.
[[nodiscard]] Trace read_trace(std::istream& is,
                               par::ThreadPool* pool = nullptr);

/// Incremental consumer for read_trace_stream: instance metadata and event
/// batches are delivered as they are decoded, without materializing the
/// trace.  Within one instance, events arrive in the file's (per-instance
/// seq) order — the order write_trace emits and the order the incremental
/// analyzer requires.
class TraceSink {
public:
    virtual ~TraceSink() = default;
    virtual void on_instance(const InstanceInfo& info) = 0;
    virtual void on_events(std::span<const AccessEvent> events) = 0;
};

/// Stream a trace through `sink` in bounded memory (roughly `buffer_bytes`
/// for CSV, one ~64K-event chunk for DST1 — never the whole trace).  The
/// format is auto-detected from the magic bytes; CSV quote state is
/// carried across buffer refills, so quoted fields spanning any boundary
/// parse exactly as in read_trace.  Throws std::runtime_error on the same
/// malformed inputs read_trace rejects.  Returns the number of events
/// delivered.
std::size_t read_trace_stream(std::istream& is, TraceSink& sink,
                              std::size_t buffer_bytes = 1u << 20);

/// File-path convenience; throws when the file cannot be opened.
std::size_t read_trace_stream_file(const std::string& path, TraceSink& sink,
                                   std::size_t buffer_bytes = 1u << 20);

/// Pull-based byte source for read_trace_stream when the trace does not
/// sit behind a std::istream: each call returns the next chunk of the
/// trace byte stream, or an empty view at end of input.  The returned
/// bytes must stay valid until the next call.  The serve layer's framed
/// socket connections implement this (src/serve/), so a network-delivered
/// trace flows through exactly the same prefix-carry streaming readers —
/// CSV quote-state carry, DST1 chunk decode — as a file on disk.
using ChunkSource = std::function<std::string_view()>;

/// Stream a trace pulled from `next_chunk` through `sink` in bounded
/// memory.  Chunk boundaries are arbitrary: they need not align to CSV
/// records or DST1 chunks (the readers carry partial state across
/// refills).  Same format auto-detection, validation, errors, and return
/// value as the istream overload.
std::size_t read_trace_stream(const ChunkSource& next_chunk, TraceSink& sink,
                              std::size_t buffer_bytes = 1u << 20);

/// Convenience: file-path overloads.  `write_trace_file` returns false if
/// the file cannot be opened or the flushed stream reports a short write;
/// `read_trace_file` throws std::runtime_error when the file cannot be
/// opened (a missing trace is not an empty trace) and propagates
/// `read_trace` parse errors.
bool write_trace_file(const std::string& path, const ProfilingSession& session,
                      TraceFormat format = TraceFormat::Csv);
bool write_trace_file(const std::string& path,
                      const std::vector<InstanceInfo>& instances,
                      const ProfileStore& store,
                      TraceFormat format = TraceFormat::Csv);
[[nodiscard]] Trace read_trace_file(const std::string& path,
                                    par::ThreadPool* pool = nullptr);

namespace detail {

/// The instance-id order in which writers emit event sequences: ids from
/// `instances` first (in list order), then store-only ("orphan") ids in
/// ascending order.  Both the CSV and DST1 writers follow this order, so
/// cross-format conversions produce identically ordered stores.
std::vector<InstanceId> event_write_order(
    const std::vector<InstanceInfo>& instances, const ProfileStore& store);

/// Emit one CSV instance/event record (including the trailing newline) in
/// exactly the encoding write_trace produces.  Shared with the serve
/// layer's SocketTraceSink, which streams records live over a socket: one
/// encoder means a live stream and a written file parse identically.
void write_csv_instance_record(std::ostream& os, const InstanceInfo& info);
void write_csv_event_record(std::ostream& os, const AccessEvent& ev);

}  // namespace detail

}  // namespace dsspy::runtime
