// DST1 — DSspy's compact binary trace format.
//
// CSV traces are portable but cost ~40 bytes and two integer parses per
// field at the million-event scale the ROADMAP targets.  DST1 follows the
// standard memory-profiler recipe (compact binary log + post-hoc toolchain,
// cf. DINAMITE in PAPERS.md): a fixed header, an instance table, then the
// event stream in independently decodable chunks.
//
// Layout (all fixed-width integers little-endian, varints LEB128):
//
//   Header (24 bytes)
//     magic           4 bytes   "DST1"
//     version         u32       1
//     instance_count  u64
//     event_count     u64
//   Instance table — instance_count records of:
//     id, kind, position   varint
//     type_name, class_name, method   varint length + raw UTF-8 bytes
//     deallocated          u8 (0/1)
//   Event chunks — until event_count events have been emitted:
//     chunk header: count u32, payload_bytes u32
//     payload: `count` events.  Each event starts with a control byte
//     whose bits say, per field, "the common delta against the previous
//     event in this chunk" (baseline all-zero); only fields whose bit is
//     clear are materialized, in order, as zigzag varint deltas (op as a
//     raw u8):
//       bit 0  seq      == prev.seq + 1
//       bit 1  time_ns  == prev.time_ns   (amortized-timestamp plateau)
//       bit 2  instance == prev.instance  (writers emit per-instance runs)
//       bit 3  op       == prev.op
//       bit 4  position == prev.position + 1  (sweeps and appends)
//       bit 5  size     == prev.size          (read-only phases)
//       bit 6  thread   == prev.thread
//       bit 7  reserved, must be zero
//
// A sequential read sweep is one control byte per event; an append run is
// two bytes.  Chunk-local baselines keep every chunk independently
// decodable, which is what lets `read_trace` fan the decode out over a
// ThreadPool while appending chunks in file order — the store is
// bit-identical to a sequential decode.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "runtime/trace_io.hpp"

namespace dsspy::runtime {

/// Leading magic of a DST1 stream ("DST1").
inline constexpr char kTraceBinaryMagic[4] = {'D', 'S', 'T', '1'};

/// Current format version.
inline constexpr std::uint32_t kTraceBinaryVersion = 1;

/// Events per chunk (the last chunk may be shorter).
inline constexpr std::size_t kTraceBinaryChunkEvents = 64 * 1024;

/// Serialize instances/events as DST1.  Returns the number of events
/// written.  Event sequences are emitted in `detail::event_write_order`.
std::size_t write_trace_binary(std::ostream& os,
                               const std::vector<InstanceInfo>& instances,
                               const ProfileStore& store);

/// Decode a complete DST1 byte buffer (including the magic).  Throws
/// std::runtime_error on truncated or corrupt input (bad magic/version,
/// unterminated varint, chunk size or event-count mismatch, out-of-range
/// enum or field values).  With a pool, chunks decode concurrently; the
/// returned store is finalized and bit-identical to a sequential decode.
[[nodiscard]] Trace read_trace_binary(std::string_view bytes,
                                      par::ThreadPool* pool = nullptr);

/// True if `bytes` starts with the DST1 magic.
[[nodiscard]] bool is_binary_trace(std::string_view bytes);

/// Stream-decode DST1 from `prefix` (bytes already pulled off the stream
/// by format sniffing) followed by `is`: instances, then one decoded chunk
/// at a time to `sink`.  Memory stays bounded by one chunk regardless of
/// trace size.  Same validation and errors as read_trace_binary; returns
/// the number of events delivered.
std::size_t read_trace_binary_stream(std::istream& is, std::string_view prefix,
                                     TraceSink& sink);

}  // namespace dsspy::runtime
