#include "runtime/session.hpp"

#include <array>
#include <chrono>

namespace dsspy::runtime {

namespace {

std::uint64_t steady_now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t next_session_token() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache: resolves (session token) -> channel without locking
/// on the hot path.  A thread that records into several live sessions keeps
/// one slot per session.
struct ThreadSlot {
    std::uint64_t token = 0;
    void* channel = nullptr;
};

thread_local std::array<ThreadSlot, 4> t_slots{};

}  // namespace

ProfilingSession::Channel::Channel(ThreadId id, CaptureMode mode,
                                   std::size_t ring_capacity)
    : tid(id) {
    if (mode == CaptureMode::Streaming) {
        ring = std::make_unique<SpscRing<AccessEvent>>(ring_capacity);
    } else {
        buffer.reserve(4096);
    }
}

ProfilingSession::ProfilingSession(CaptureMode mode, std::size_t ring_capacity)
    : mode_(mode),
      ring_capacity_(ring_capacity),
      token_(next_session_token()),
      start_ns_(steady_now_ns()) {
    if (mode_ == CaptureMode::Streaming) {
        collector_ = std::jthread(
            [this](const std::stop_token& st) { collector_loop(st); });
    }
}

ProfilingSession::~ProfilingSession() { stop(); }

InstanceId ProfilingSession::register_instance(DsKind kind,
                                               std::string type_name,
                                               support::SourceLoc location) {
    return registry_.register_instance(kind, std::move(type_name),
                                       std::move(location));
}

void ProfilingSession::mark_deallocated(InstanceId id) {
    registry_.mark_deallocated(id);
}

ProfilingSession::Channel& ProfilingSession::channel_for_current_thread() {
    for (ThreadSlot& slot : t_slots) {
        if (slot.token == token_)
            return *static_cast<Channel*>(slot.channel);
    }
    // Slow path: register this thread with the session.
    std::scoped_lock lock(channels_mutex_);
    const auto tid = static_cast<ThreadId>(channels_.size());
    channels_.push_back(std::make_unique<Channel>(tid, mode_, ring_capacity_));
    Channel* chan = channels_.back().get();
    // Install into the least-recently-used slot (slot 0 shifts down).
    for (std::size_t i = t_slots.size() - 1; i > 0; --i)
        t_slots[i] = t_slots[i - 1];
    t_slots[0] = ThreadSlot{token_, chan};
    return *chan;
}

void ProfilingSession::record(InstanceId instance, OpKind op,
                              std::int64_t position,
                              std::uint32_t size) noexcept {
    if (!capturing_.load(std::memory_order_relaxed)) return;
    Channel& chan = channel_for_current_thread();
    AccessEvent ev;
    ev.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    ev.time_ns = now_ns();
    ev.position = position;
    ev.instance = instance;
    ev.size = size;
    ev.op = op;
    ev.thread = chan.tid;

    if (mode_ == CaptureMode::Buffered) {
        chan.buffer.push_back(ev);
    } else {
        // Blocking backpressure: the mutator waits for the collector rather
        // than dropping events — profiles must be complete for the pattern
        // analysis to be meaningful.
        while (!chan.ring->try_push(ev)) std::this_thread::yield();
    }
}

std::uint64_t ProfilingSession::now_ns() const noexcept {
    return steady_now_ns();
}

void ProfilingSession::collector_loop(const std::stop_token& st) {
    std::array<AccessEvent, 1024> batch;
    while (!st.stop_requested()) {
        bool any = false;
        {
            std::scoped_lock lock(channels_mutex_);
            for (const auto& chan : channels_) {
                const std::size_t n = chan->ring->pop_into(batch);
                if (n > 0) {
                    store_.append(std::span(batch.data(), n));
                    any = true;
                }
            }
        }
        if (!any) std::this_thread::yield();
    }
    drain_all_rings();
}

void ProfilingSession::drain_all_rings() {
    std::array<AccessEvent, 1024> batch;
    std::scoped_lock lock(channels_mutex_);
    for (const auto& chan : channels_) {
        if (!chan->ring) continue;
        std::size_t n;
        while ((n = chan->ring->pop_into(batch)) > 0)
            store_.append(std::span(batch.data(), n));
    }
}

void ProfilingSession::stop() {
    bool expected = true;
    if (!capturing_.compare_exchange_strong(expected, false,
                                            std::memory_order_acq_rel))
        return;  // already stopped
    stop_ns_ = steady_now_ns();

    if (mode_ == CaptureMode::Streaming) {
        if (collector_.joinable()) {
            collector_.request_stop();
            collector_.join();  // collector drains remaining events on exit
        }
    } else {
        std::scoped_lock lock(channels_mutex_);
        for (const auto& chan : channels_) store_.append(chan->buffer);
    }
    store_.finalize();
}

std::size_t ProfilingSession::thread_count() const {
    std::scoped_lock lock(channels_mutex_);
    return channels_.size();
}

std::uint64_t ProfilingSession::capture_duration_ns() const noexcept {
    const std::uint64_t end =
        capturing_.load(std::memory_order_acquire) ? steady_now_ns() : stop_ns_;
    return end - start_ns_;
}

}  // namespace dsspy::runtime
