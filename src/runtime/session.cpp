#include "runtime/session.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <span>

#include "parallel/thread_pool.hpp"

namespace dsspy::runtime {

namespace {

/// Events below this count are finalized sequentially; above it the
/// per-instance sorts go to the shared thread pool.
constexpr std::size_t kParallelFinalizeThreshold = 1u << 16;

/// Collector backoff: yield this many empty rounds before sleeping.
constexpr unsigned kCollectorYieldRounds = 32;

/// Collector backoff: cap the timed sleep (microseconds, power of two).
constexpr unsigned kCollectorMaxSleepLog2 = 8;  // 256 us

/// Buffered-mode chunk sizing: 4K events (128 KiB) first, doubling to a
/// 64K-event (2 MiB) steady state.
constexpr std::size_t kFirstChunkEvents = 4096;
constexpr std::size_t kMaxChunkEvents = 1u << 16;

std::uint64_t steady_now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t next_session_token() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache: resolves (session token) -> channel without locking
/// on the hot path.  A thread that records into several live sessions keeps
/// one slot per session.
struct ThreadSlot {
    std::uint64_t token = 0;
    void* channel = nullptr;
};

thread_local std::array<ThreadSlot, 4> t_slots{};

}  // namespace

ProfilingSession::Channel::Channel(ThreadId id, CaptureMode mode,
                                   std::size_t ring_capacity)
    : tid(id) {
    if (mode == CaptureMode::Streaming)
        ring = std::make_unique<SpscRing<AccessEvent>>(ring_capacity);
    // Buffered mode allocates its first chunk lazily on the first record.
}

void ProfilingSession::Channel::grow_chunk() {
    const std::size_t cap =
        chunks.empty()
            ? kFirstChunkEvents
            : std::min(chunks.back().capacity * 2, kMaxChunkEvents);
    chunks.push_back(Chunk{
        std::make_unique_for_overwrite<AccessEvent[]>(cap), cap});
    write_pos = chunks.back().events.get();
    write_end = write_pos + cap;
}

ProfilingSession::ProfilingSession(CaptureMode mode, std::size_t ring_capacity)
    : mode_(mode),
      ring_capacity_(ring_capacity),
      token_(next_session_token()),
      start_ns_(steady_now_ns()) {
    if (mode_ == CaptureMode::Streaming) {
        collector_ = std::jthread(
            [this](const std::stop_token& st) { collector_loop(st); });
    }
}

ProfilingSession::~ProfilingSession() {
    stop();
    Channel* chan = channels_head_.load(std::memory_order_acquire);
    while (chan != nullptr) {
        Channel* next = chan->next;
        delete chan;
        chan = next;
    }
}

InstanceId ProfilingSession::register_instance(DsKind kind,
                                               std::string type_name,
                                               support::SourceLoc location) {
    return registry_.register_instance(kind, std::move(type_name),
                                       std::move(location));
}

void ProfilingSession::mark_deallocated(InstanceId id) {
    registry_.mark_deallocated(id);
}

ProfilingSession::Channel& ProfilingSession::channel_for_current_thread() {
    for (ThreadSlot& slot : t_slots) {
        if (slot.token == token_)
            return *static_cast<Channel*>(slot.channel);
    }
    // Slow path: register this thread with the session.  Push-front onto
    // the lock-free list — neither the collector nor other producers are
    // ever stalled by a registration.
    const auto tid = static_cast<ThreadId>(
        next_tid_.fetch_add(1, std::memory_order_relaxed));
    auto* chan = new Channel(tid, mode_, ring_capacity_);
    Channel* head = channels_head_.load(std::memory_order_relaxed);
    do {
        chan->next = head;
    } while (!channels_head_.compare_exchange_weak(
        head, chan, std::memory_order_release, std::memory_order_relaxed));
    // Install into the least-recently-used slot (slot 0 shifts down).
    for (std::size_t i = t_slots.size() - 1; i > 0; --i)
        t_slots[i] = t_slots[i - 1];
    t_slots[0] = ThreadSlot{token_, chan};
    return *chan;
}

void ProfilingSession::record(InstanceId instance, OpKind op,
                              std::int64_t position,
                              std::uint32_t size) noexcept {
    if (!capturing_.load(std::memory_order_acquire)) return;
    Channel& chan = channel_for_current_thread();
    if (chan.sealed.load(std::memory_order_relaxed)) {
        // Quiesce-contract violation: a record raced stop().  Loud in debug
        // builds, dropped in release builds.
        assert(false && "record() after stop(): recording threads must be "
                        "quiesced before stopping the session");
        return;
    }

    AccessEvent ev;
    if (chan.next_seq == chan.seq_block_end) {
        const std::uint64_t base =
            seq_alloc_.fetch_add(kSeqBlockSize, std::memory_order_relaxed);
        chan.next_seq = base;
        chan.seq_block_end = base + kSeqBlockSize;
        // A fresh block also refreshes the timestamp, bounding the skew
        // between a thread's seq block and its clock readings.
        chan.last_ts_ns = steady_now_ns();
        chan.ts_countdown = kTimestampStride;
    }
    ev.seq = chan.next_seq++;
    if (chan.ts_countdown == 0) {
        chan.last_ts_ns = steady_now_ns();
        chan.ts_countdown = kTimestampStride;
    }
    --chan.ts_countdown;
    ev.time_ns = chan.last_ts_ns;
    ev.position = position;
    ev.instance = instance;
    ev.size = size;
    ev.op = op;
    ev.thread = chan.tid;

    if (mode_ == CaptureMode::Buffered) {
        if (chan.write_pos == chan.write_end) chan.grow_chunk();
        *chan.write_pos++ = ev;
    } else {
        // Blocking backpressure: the mutator waits for the collector rather
        // than dropping events — profiles must be complete for the pattern
        // analysis to be meaningful.  Escalate from yield to a short sleep
        // in case the collector is in its idle backoff.
        unsigned spins = 0;
        while (!chan.ring->try_push(ev)) {
            if (++spins < 64) {
                std::this_thread::yield();
            } else {
                std::this_thread::sleep_for(std::chrono::microseconds(10));
            }
        }
    }
    // Release-publish the completed record; stop() acquire-reads this count
    // so every merged event is fully visible (single writer: plain add).
    chan.events.store(chan.events.load(std::memory_order_relaxed) + 1,
                      std::memory_order_release);
}

std::uint64_t ProfilingSession::now_ns() const noexcept {
    return steady_now_ns();
}

void ProfilingSession::collector_loop(const std::stop_token& st) {
    std::array<AccessEvent, 1024> batch;
    unsigned idle_rounds = 0;
    while (!st.stop_requested()) {
        bool any = false;
        for (Channel* chan = channels_head_.load(std::memory_order_acquire);
             chan != nullptr; chan = chan->next) {
            const std::size_t n = chan->ring->pop_into(batch);
            if (n > 0) {
                store_.append(std::span(batch.data(), n));
                any = true;
            }
        }
        if (any) {
            idle_rounds = 0;
            continue;
        }
        // Idle: back off exponentially instead of burning a core.  Start
        // with yields (cheap wakeup while producers are merely between
        // events), end in a bounded timed sleep.
        ++idle_rounds;
        if (idle_rounds <= kCollectorYieldRounds) {
            std::this_thread::yield();
        } else {
            const unsigned exp = idle_rounds - kCollectorYieldRounds;
            const unsigned log2 =
                exp < kCollectorMaxSleepLog2 ? exp : kCollectorMaxSleepLog2;
            std::this_thread::sleep_for(std::chrono::microseconds(1u << log2));
        }
    }
    drain_all_rings();
}

void ProfilingSession::drain_all_rings() {
    std::array<AccessEvent, 1024> batch;
    for (Channel* chan = channels_head_.load(std::memory_order_acquire);
         chan != nullptr; chan = chan->next) {
        if (!chan->ring) continue;
        std::size_t n;
        while ((n = chan->ring->pop_into(batch)) > 0)
            store_.append(std::span(batch.data(), n));
    }
}

void ProfilingSession::stop() {
    bool expected = true;
    if (!capturing_.compare_exchange_strong(expected, false,
                                            std::memory_order_acq_rel))
        return;  // already stopped
    stop_ns_ = steady_now_ns();

    if (mode_ == CaptureMode::Streaming) {
        if (collector_.joinable()) {
            collector_.request_stop();
            collector_.join();  // collector drains remaining events on exit
        }
        for (Channel* chan = channels_head_.load(std::memory_order_acquire);
             chan != nullptr; chan = chan->next)
            chan->sealed.store(true, std::memory_order_release);
    } else {
        for (Channel* chan = channels_head_.load(std::memory_order_acquire);
             chan != nullptr; chan = chan->next) {
            chan->sealed.store(true, std::memory_order_release);
            // The acquire pairs with the release in record(): exactly the
            // events whose writes are fully published are merged.
            std::uint64_t remaining =
                chan->events.load(std::memory_order_acquire);
            for (const Channel::Chunk& chunk : chan->chunks) {
                if (remaining == 0) break;
                const std::size_t n = static_cast<std::size_t>(
                    std::min<std::uint64_t>(remaining, chunk.capacity));
                store_.append(std::span(chunk.events.get(), n));
                remaining -= n;
            }
        }
    }
    store_.finalize(store_.total_events() >= kParallelFinalizeThreshold
                        ? &par::ThreadPool::default_pool()
                        : nullptr);
}

std::size_t ProfilingSession::thread_count() const noexcept {
    return next_tid_.load(std::memory_order_acquire);
}

std::uint64_t ProfilingSession::events_recorded() const noexcept {
    std::uint64_t total = 0;
    for (const Channel* chan =
             channels_head_.load(std::memory_order_acquire);
         chan != nullptr; chan = chan->next)
        total += chan->events.load(std::memory_order_acquire);
    return total;
}

std::uint64_t ProfilingSession::capture_duration_ns() const noexcept {
    const std::uint64_t end =
        capturing_.load(std::memory_order_acquire) ? steady_now_ns() : stop_ns_;
    return end - start_ns_;
}

}  // namespace dsspy::runtime
