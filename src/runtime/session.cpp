#include "runtime/session.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <chrono>
#include <cstddef>
#include <limits>
#include <span>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "support/stopwatch.hpp"

namespace dsspy::runtime {

namespace {

/// Self-telemetry ids for the capture pipeline, registered once on first
/// enabled use (every call site guards on obs::enabled() first, so a
/// disabled process never touches the registry).
struct CaptureMetricIds {
    obs::MetricId seq_block_refills;   ///< Per-thread seq blocks drawn.
    obs::MetricId channels;            ///< Recording threads registered.
    obs::MetricId dropped_after_stop;  ///< Quiesce-contract violations.
    obs::MetricId backpressure_waits;  ///< Ring-full wait episodes.
    obs::MetricId events_recorded;     ///< Total events captured.
    obs::MetricId events_per_sec;      ///< Capture-window throughput.
    obs::MetricId capture_wall_ns;     ///< Capture-window duration.
    obs::MetricId orphan_events;       ///< Store-only instance events.
    obs::MetricId collector_yields;    ///< Idle-backoff yield rounds.
    obs::MetricId collector_sleeps;    ///< Idle-backoff timed sleeps.
    obs::MetricId drain_batch;         ///< Histogram of drain batch sizes.
    obs::MetricId pending_hwm;         ///< Ordered-delivery buffer peak.
};

const CaptureMetricIds& capture_metrics() {
    static const CaptureMetricIds ids = [] {
        auto& reg = obs::MetricsRegistry::global();
        return CaptureMetricIds{
            reg.counter("capture.seq_block_refills"),
            reg.counter("capture.channels_registered"),
            reg.counter("capture.dropped_after_stop"),
            reg.counter("capture.backpressure_waits"),
            reg.counter("capture.events_recorded"),
            reg.gauge("capture.events_per_sec"),
            reg.gauge("capture.wall_ns"),
            reg.counter("store.orphan_events"),
            reg.counter("collector.backoff_yields"),
            reg.counter("collector.backoff_sleeps"),
            reg.histogram("collector.drain_batch_events"),
            reg.gauge("collector.pending_depth_hwm"),
        };
    }();
    return ids;
}

/// Events below this count are finalized sequentially; above it the
/// per-instance sorts go to the shared thread pool.
constexpr std::size_t kParallelFinalizeThreshold = 1u << 16;

/// Collector backoff: yield this many empty rounds before sleeping.
constexpr unsigned kCollectorYieldRounds = 32;

/// Collector backoff: cap the timed sleep (microseconds, power of two).
constexpr unsigned kCollectorMaxSleepLog2 = 8;  // 256 us

/// Buffered-mode chunk sizing: 4K events (128 KiB) first, doubling to a
/// 64K-event (2 MiB) steady state.
constexpr std::size_t kFirstChunkEvents = 4096;
constexpr std::size_t kMaxChunkEvents = 1u << 16;

std::uint64_t next_session_token() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache: resolves (session token) -> channel without locking
/// on the hot path.  A thread that records into several live sessions keeps
/// one slot per session.
struct ThreadSlot {
    std::uint64_t token = 0;
    void* channel = nullptr;
};

thread_local std::array<ThreadSlot, 4> t_slots{};

}  // namespace

ProfilingSession::Channel::Channel(ThreadId id, CaptureMode mode,
                                   std::size_t ring_capacity)
    : tid(id) {
    if (mode == CaptureMode::Streaming)
        ring = std::make_unique<SpscRing<AccessEvent>>(ring_capacity);
    // Buffered mode allocates its first chunk lazily on the first record.
}

void ProfilingSession::Channel::grow_chunk() {
    const std::size_t cap =
        chunks.empty()
            ? kFirstChunkEvents
            : std::min(chunks.back().capacity * 2, kMaxChunkEvents);
    chunks.push_back(Chunk{
        std::make_unique_for_overwrite<AccessEvent[]>(cap), cap});
    write_pos = chunks.back().events.get();
    write_end = write_pos + cap;
}

ProfilingSession::ProfilingSession(CaptureMode mode, std::size_t ring_capacity,
                                   AnalysisMode analysis)
    : mode_(mode),
      ring_capacity_(ring_capacity),
      analysis_(analysis),
      token_(next_session_token()),
      trace_ctx_(obs::current_trace_context()),
      start_ns_(support::now_ns()) {
    if (mode_ == CaptureMode::Streaming) {
        collector_ = std::jthread(
            [this](const std::stop_token& st) { collector_loop(st); });
    }
}

ProfilingSession::~ProfilingSession() {
    stop();
    Channel* chan = channels_head_.load(std::memory_order_acquire);
    while (chan != nullptr) {
        Channel* next = chan->next;
        delete chan;
        chan = next;
    }
}

InstanceId ProfilingSession::register_instance(DsKind kind,
                                               std::string type_name,
                                               support::SourceLoc location) {
    const InstanceId id = registry_.register_instance(
        kind, std::move(type_name), std::move(location));
    if (instance_sink_) instance_sink_(registry_.info(id));
    return id;
}

void ProfilingSession::set_event_sink(EventSink sink) {
    sink_ = std::move(sink);
    has_sink_.store(static_cast<bool>(sink_), std::memory_order_release);
}

void ProfilingSession::set_instance_sink(InstanceSink sink) {
    instance_sink_ = std::move(sink);
}

void ProfilingSession::mark_deallocated(InstanceId id) {
    registry_.mark_deallocated(id);
}

ProfilingSession::Channel& ProfilingSession::channel_for_current_thread() {
    for (ThreadSlot& slot : t_slots) {
        if (slot.token == token_)
            return *static_cast<Channel*>(slot.channel);
    }
    // Slow path: register this thread with the session.  Push-front onto
    // the lock-free list — neither the collector nor other producers are
    // ever stalled by a registration.
    const auto tid = static_cast<ThreadId>(
        next_tid_.fetch_add(1, std::memory_order_relaxed));
    auto* chan = new Channel(tid, mode_, ring_capacity_);
    Channel* head = channels_head_.load(std::memory_order_relaxed);
    do {
        chan->next = head;
    } while (!channels_head_.compare_exchange_weak(
        head, chan, std::memory_order_release, std::memory_order_relaxed));
    // Install into the least-recently-used slot (slot 0 shifts down).
    for (std::size_t i = t_slots.size() - 1; i > 0; --i)
        t_slots[i] = t_slots[i - 1];
    t_slots[0] = ThreadSlot{token_, chan};
    if (obs::enabled())
        obs::MetricsRegistry::global().add(capture_metrics().channels);
    return *chan;
}

void ProfilingSession::record(InstanceId instance, OpKind op,
                              std::int64_t position,
                              std::uint32_t size) noexcept {
    if (!capturing_.load(std::memory_order_acquire)) return;
    Channel& chan = channel_for_current_thread();
    if (chan.sealed.load(std::memory_order_relaxed)) {
        // Quiesce-contract violation: a record raced stop().  Loud in debug
        // builds, dropped (but counted) in release builds.
        if (obs::enabled())
            obs::MetricsRegistry::global().add(
                capture_metrics().dropped_after_stop);
        assert(false && "record() after stop(): recording threads must be "
                        "quiesced before stopping the session");
        return;
    }

    AccessEvent ev;
    if (chan.next_seq == chan.seq_block_end) {
        // Telemetry rides the cold refill branch (once per kSeqBlockSize
        // events); the per-event path stays untouched.  The span parents
        // under the session creator's context so refills show up inside
        // the run's tree rather than as orphan roots.
        DSSPY_TRACE_SPAN_UNDER("capture.seq_refill", trace_ctx_);
        const std::uint64_t base =
            seq_alloc_.fetch_add(kSeqBlockSize, std::memory_order_relaxed);
        chan.next_seq = base;
        chan.seq_block_end = base + kSeqBlockSize;
        if (obs::enabled())
            obs::MetricsRegistry::global().add(
                capture_metrics().seq_block_refills);
        // A fresh block also refreshes the timestamp, bounding the skew
        // between a thread's seq block and its clock readings.
        chan.last_ts_ns = support::now_ns();
        chan.ts_countdown = kTimestampStride;
    }
    ev.seq = chan.next_seq++;
    if (chan.ts_countdown == 0) {
        chan.last_ts_ns = support::now_ns();
        chan.ts_countdown = kTimestampStride;
    }
    --chan.ts_countdown;
    ev.time_ns = chan.last_ts_ns;
    ev.position = position;
    ev.instance = instance;
    ev.size = size;
    ev.op = op;
    ev.thread = chan.tid;

    if (mode_ == CaptureMode::Buffered) {
        if (chan.write_pos == chan.write_end) chan.grow_chunk();
        *chan.write_pos++ = ev;
    } else {
        // Blocking backpressure: the mutator waits for the collector rather
        // than dropping events — profiles must be complete for the pattern
        // analysis to be meaningful.  Escalate from yield to a short sleep
        // in case the collector is in its idle backoff.
        unsigned spins = 0;
        while (!chan.ring->try_push(ev)) {
            if (spins == 0 && obs::enabled())
                obs::MetricsRegistry::global().add(
                    capture_metrics().backpressure_waits);
            if (++spins < 64) {
                std::this_thread::yield();
            } else {
                std::this_thread::sleep_for(std::chrono::microseconds(10));
            }
        }
    }
    // Release-publish the completed record; stop() acquire-reads this count
    // so every merged event is fully visible (single writer: plain add).
    chan.events.store(chan.events.load(std::memory_order_relaxed) + 1,
                      std::memory_order_release);
    // Ordered delivery: next_seq lower-bounds every future seq from this
    // channel (fresh blocks come from a monotonic allocator).  The release
    // pairs with the collector's acquire, so once it reads this bound,
    // every event below it is already in the ring.
    if (mode_ == CaptureMode::Streaming &&
        has_sink_.load(std::memory_order_relaxed))
        chan.published.store(chan.next_seq, std::memory_order_release);
}

std::uint64_t ProfilingSession::now_ns() const noexcept {
    return support::now_ns();
}

void ProfilingSession::collector_loop(const std::stop_token& st) {
    std::array<AccessEvent, 1024> batch;
    unsigned idle_rounds = 0;
    while (!st.stop_requested()) {
        bool any = false;
        // Re-read each round: the collector starts in the constructor,
        // before any set_event_sink() call can have happened.
        if (has_sink_.load(std::memory_order_acquire)) {
            any = collect_ordered_round();
        } else {
            for (Channel* chan =
                     channels_head_.load(std::memory_order_acquire);
                 chan != nullptr; chan = chan->next) {
                const std::size_t n = chan->ring->pop_into(batch);
                if (n > 0) {
                    if (analysis_ == AnalysisMode::Postmortem)
                        store_.append(std::span(batch.data(), n));
                    if (obs::enabled())
                        obs::MetricsRegistry::global().observe(
                            capture_metrics().drain_batch, n);
                    any = true;
                }
            }
        }
        if (any) {
            idle_rounds = 0;
            continue;
        }
        // Idle: back off exponentially instead of burning a core.  Start
        // with yields (cheap wakeup while producers are merely between
        // events), end in a bounded timed sleep.
        ++idle_rounds;
        if (obs::enabled())
            obs::MetricsRegistry::global().add(
                idle_rounds <= kCollectorYieldRounds
                    ? capture_metrics().collector_yields
                    : capture_metrics().collector_sleeps);
        if (idle_rounds <= kCollectorYieldRounds) {
            std::this_thread::yield();
        } else {
            const unsigned exp = idle_rounds - kCollectorYieldRounds;
            const unsigned log2 =
                exp < kCollectorMaxSleepLog2 ? exp : kCollectorMaxSleepLog2;
            std::this_thread::sleep_for(std::chrono::microseconds(1u << log2));
        }
    }
    // Final drain only: spanning every collector round would flood the
    // trace with millions of idle-loop spans; the steady-state drains are
    // already covered by the drain_batch histogram.
    DSSPY_TRACE_SPAN_UNDER("capture.drain", trace_ctx_);
    drain_all_rings();
    if (has_sink_.load(std::memory_order_acquire)) {
        // All producers have quiesced: no bound can rise any more, so
        // everything still pending is deliverable.
        deliver_ordered(/*final_flush=*/true);
    }
}

/// One ordered-collection round: per channel, read its published sequence
/// bound and THEN drain the ring into the channel's pending buffer — that
/// order guarantees that every event below the bound is in the buffer (the
/// bound is release-stored after the push it covers).  Then deliver every
/// pending event below the cross-channel watermark.
bool ProfilingSession::collect_ordered_round() {
    std::array<AccessEvent, 1024> batch;
    bool any = false;
    for (Channel* chan = channels_head_.load(std::memory_order_acquire);
         chan != nullptr; chan = chan->next) {
        chan->bound = chan->published.load(std::memory_order_acquire);
        std::size_t n;
        unsigned rounds = 0;
        while ((n = chan->ring->pop_into(batch)) > 0) {
            if (analysis_ == AnalysisMode::Postmortem)
                store_.append(std::span(batch.data(), n));
            chan->pending.insert(chan->pending.end(), batch.data(),
                                 batch.data() + n);
            any = true;
            if (obs::enabled())
                obs::MetricsRegistry::global().observe(
                    capture_metrics().drain_batch, n);
            // A fast producer could refill indefinitely; cap the drain and
            // revisit next round.  Stopping early is safe: with events left
            // in the ring, the channel's pending front (older than anything
            // in the ring) bounds the watermark instead of `bound`.
            if (++rounds == 16) break;
        }
        if (obs::enabled() && chan->pending.size() > chan->pending_head)
            obs::MetricsRegistry::global().gauge_max(
                capture_metrics().pending_hwm,
                chan->pending.size() - chan->pending_head);
    }
    deliver_ordered(/*final_flush=*/false);
    return any;
}

/// Deliver pending events to the sink in ascending global seq order, up to
/// the watermark (the minimum over every channel's next undelivered seq or,
/// for fully-drained channels, its published bound).  With `final_flush`
/// the bounds are ignored: no further events can appear.
void ProfilingSession::deliver_ordered(bool final_flush) {
    for (;;) {
        Channel* best = nullptr;
        std::uint64_t best_seq = 0;
        // Smallest cursor among the *other* channels = how far `best` may
        // be delivered without risking a seq inversion.
        std::uint64_t limit = std::numeric_limits<std::uint64_t>::max();
        for (Channel* chan = channels_head_.load(std::memory_order_acquire);
             chan != nullptr; chan = chan->next) {
            const bool has_pending = chan->pending_head < chan->pending.size();
            if (!has_pending && final_flush) continue;
            const std::uint64_t cursor =
                has_pending ? chan->pending[chan->pending_head].seq
                            : chan->bound;
            if (has_pending && (best == nullptr || cursor < best_seq)) {
                if (best != nullptr) limit = std::min(limit, best_seq);
                best = chan;
                best_seq = cursor;
            } else {
                limit = std::min(limit, cursor);
            }
        }
        if (best == nullptr) return;
        const std::vector<AccessEvent>& pend = best->pending;
        std::size_t end = best->pending_head;
        while (end < pend.size() && pend[end].seq < limit) ++end;
        if (end == best->pending_head) return;  // watermark blocks progress
        sink_(std::span(pend.data() + best->pending_head,
                        end - best->pending_head));
        best->pending_head = end;
        if (best->pending_head == best->pending.size()) {
            best->pending.clear();
            best->pending_head = 0;
        } else if (best->pending_head >= 4096 &&
                   best->pending_head * 2 >= best->pending.size()) {
            best->pending.erase(best->pending.begin(),
                                best->pending.begin() +
                                    static_cast<std::ptrdiff_t>(
                                        best->pending_head));
            best->pending_head = 0;
        }
    }
}

void ProfilingSession::drain_all_rings() {
    std::array<AccessEvent, 1024> batch;
    const bool ordered = has_sink_.load(std::memory_order_acquire);
    for (Channel* chan = channels_head_.load(std::memory_order_acquire);
         chan != nullptr; chan = chan->next) {
        if (!chan->ring) continue;
        std::size_t n;
        while ((n = chan->ring->pop_into(batch)) > 0) {
            if (analysis_ == AnalysisMode::Postmortem)
                store_.append(std::span(batch.data(), n));
            if (ordered)
                chan->pending.insert(chan->pending.end(), batch.data(),
                                     batch.data() + n);
        }
    }
}

/// Buffered-mode ordered delivery: k-way merge of the sealed per-thread
/// chunk chains by seq, batched to the sink.  Runs on the stop() caller.
void ProfilingSession::buffered_merge_to_sink() {
    struct Cursor {
        Channel* chan;
        std::size_t chunk = 0;
        std::size_t offset = 0;
        std::uint64_t remaining = 0;
    };
    std::vector<Cursor> cursors;
    for (Channel* chan = channels_head_.load(std::memory_order_acquire);
         chan != nullptr; chan = chan->next) {
        const std::uint64_t events =
            chan->events.load(std::memory_order_acquire);
        if (events > 0) cursors.push_back(Cursor{chan, 0, 0, events});
    }
    const auto front = [](const Cursor& c) -> const AccessEvent& {
        return c.chan->chunks[c.chunk].events[c.offset];
    };
    const auto advance = [](Cursor& c) {
        --c.remaining;
        if (++c.offset == c.chan->chunks[c.chunk].capacity) {
            ++c.chunk;
            c.offset = 0;
        }
    };
    std::vector<AccessEvent> batch;
    batch.reserve(1024);
    while (!cursors.empty()) {
        // Pick the channel holding the globally smallest seq and stream it
        // until the runner-up channel's seq takes over.
        std::size_t bi = 0;
        std::uint64_t second = std::numeric_limits<std::uint64_t>::max();
        for (std::size_t i = 1; i < cursors.size(); ++i) {
            const std::uint64_t seq = front(cursors[i]).seq;
            if (seq < front(cursors[bi]).seq) {
                second = std::min(second, front(cursors[bi]).seq);
                bi = i;
            } else {
                second = std::min(second, seq);
            }
        }
        Cursor& c = cursors[bi];
        while (c.remaining > 0 && front(c).seq < second) {
            batch.push_back(front(c));
            advance(c);
            if (batch.size() == batch.capacity()) {
                sink_(std::span<const AccessEvent>(batch));
                batch.clear();
            }
        }
        if (c.remaining == 0) {
            cursors[bi] = cursors.back();
            cursors.pop_back();
        }
    }
    if (!batch.empty()) sink_(std::span<const AccessEvent>(batch));
}

void ProfilingSession::stop() {
    bool expected = true;
    if (!capturing_.compare_exchange_strong(expected, false,
                                            std::memory_order_acq_rel))
        return;  // already stopped
    stop_ns_ = support::now_ns();
    DSSPY_TRACE_SPAN("capture.stop");

    if (mode_ == CaptureMode::Streaming) {
        if (collector_.joinable()) {
            collector_.request_stop();
            collector_.join();  // collector drains remaining events on exit
        }
        for (Channel* chan = channels_head_.load(std::memory_order_acquire);
             chan != nullptr; chan = chan->next)
            chan->sealed.store(true, std::memory_order_release);
    } else {
        for (Channel* chan = channels_head_.load(std::memory_order_acquire);
             chan != nullptr; chan = chan->next)
            chan->sealed.store(true, std::memory_order_release);
        if (has_sink_.load(std::memory_order_acquire))
            buffered_merge_to_sink();
        if (analysis_ == AnalysisMode::Postmortem) {
            for (Channel* chan =
                     channels_head_.load(std::memory_order_acquire);
                 chan != nullptr; chan = chan->next) {
                // The acquire pairs with the release in record(): exactly
                // the events whose writes are fully published are merged.
                std::uint64_t remaining =
                    chan->events.load(std::memory_order_acquire);
                for (const Channel::Chunk& chunk : chan->chunks) {
                    if (remaining == 0) break;
                    const std::size_t n = static_cast<std::size_t>(
                        std::min<std::uint64_t>(remaining, chunk.capacity));
                    store_.append(std::span(chunk.events.get(), n));
                    remaining -= n;
                }
            }
        }
    }
    {
        DSSPY_TRACE_SPAN("capture.finalize");
        store_.finalize(store_.total_events() >= kParallelFinalizeThreshold
                            ? &par::ThreadPool::default_pool()
                            : nullptr);
    }

    if (obs::enabled()) {
        auto& reg = obs::MetricsRegistry::global();
        const CaptureMetricIds& m = capture_metrics();
        const std::uint64_t events = events_recorded();
        reg.add(m.events_recorded, events);
        const std::uint64_t wall = stop_ns_ - start_ns_;
        reg.gauge_max(m.capture_wall_ns, wall);
        if (wall > 0) {
            // events/sec = events / (wall / 1e9), computed in integer space.
            const std::uint64_t rate =
                static_cast<std::uint64_t>(static_cast<double>(events) *
                                           1e9 / static_cast<double>(wall));
            reg.gauge_max(m.events_per_sec, rate);
        }
        const std::size_t orphans = store_.orphan_events(registry_.size());
        if (orphans > 0) reg.add(m.orphan_events, orphans);
    }
}

std::size_t ProfilingSession::orphan_events() const {
    return store_.orphan_events(registry_.size());
}

std::size_t ProfilingSession::thread_count() const noexcept {
    return next_tid_.load(std::memory_order_acquire);
}

std::uint64_t ProfilingSession::events_recorded() const noexcept {
    std::uint64_t total = 0;
    for (const Channel* chan =
             channels_head_.load(std::memory_order_acquire);
         chan != nullptr; chan = chan->next)
        total += chan->events.load(std::memory_order_acquire);
    return total;
}

std::uint64_t ProfilingSession::capture_duration_ns() const noexcept {
    const std::uint64_t end =
        capturing_.load(std::memory_order_acquire) ? support::now_ns() : stop_ns_;
    return end - start_ns_;
}

}  // namespace dsspy::runtime
