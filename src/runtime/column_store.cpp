#include "runtime/column_store.hpp"

namespace dsspy::runtime {

void ColumnStore::clear() {
    time_ns_.clear();
    position_.clear();
    size_.clear();
    op_.clear();
    thread_.clear();
    ranges_.clear();
}

void ColumnStore::allocate(std::size_t rows, std::size_t instance_slots) {
    time_ns_.resize(rows);
    position_.resize(rows);
    size_.resize(rows);
    op_.resize(rows);
    thread_.resize(rows);
    ranges_.assign(instance_slots, ColumnRange{});
}

void ColumnStore::set_range(InstanceId id, std::size_t begin,
                            std::size_t end) {
    if (id >= ranges_.size()) ranges_.resize(id + 1);
    ranges_[id] = ColumnRange{begin, end};
}

void ColumnStore::place_events(InstanceId id, std::size_t first_row,
                               std::span<const AccessEvent> events) {
    // One pass per column keeps every write stream unit-stride; the AoS
    // source line is read five times but stays cache-resident per block.
    const std::size_t n = events.size();
    for (std::size_t i = 0; i < n; ++i) time_ns_[first_row + i] = events[i].time_ns;
    for (std::size_t i = 0; i < n; ++i) position_[first_row + i] = events[i].position;
    for (std::size_t i = 0; i < n; ++i) size_[first_row + i] = events[i].size;
    for (std::size_t i = 0; i < n; ++i)
        op_[first_row + i] = static_cast<std::uint8_t>(events[i].op);
    for (std::size_t i = 0; i < n; ++i) thread_[first_row + i] = events[i].thread;
    set_range(id, first_row, first_row + n);
}

}  // namespace dsspy::runtime
