#include "runtime/profile_store.hpp"

#include <algorithm>

namespace dsspy::runtime {

ProfileStore::ProfileStore(ProfileStore&& other) noexcept {
    std::scoped_lock lock(other.mutex_);
    per_instance_ = std::move(other.per_instance_);
    total_ = other.total_;
    finalized_ = other.finalized_;
    other.per_instance_.clear();
    other.total_ = 0;
}

ProfileStore& ProfileStore::operator=(ProfileStore&& other) noexcept {
    if (this != &other) {
        std::scoped_lock lock(mutex_, other.mutex_);
        per_instance_ = std::move(other.per_instance_);
        total_ = other.total_;
        finalized_ = other.finalized_;
        other.per_instance_.clear();
        other.total_ = 0;
    }
    return *this;
}

void ProfileStore::append(std::span<const AccessEvent> events) {
    std::scoped_lock lock(mutex_);
    for (const AccessEvent& ev : events) {
        if (ev.instance == kInvalidInstance) continue;
        if (ev.instance >= per_instance_.size())
            per_instance_.resize(ev.instance + 1);
        per_instance_[ev.instance].push_back(ev);
        ++total_;
    }
    finalized_ = false;
}

void ProfileStore::finalize() {
    std::scoped_lock lock(mutex_);
    for (auto& seq : per_instance_) {
        std::sort(seq.begin(), seq.end(),
                  [](const AccessEvent& a, const AccessEvent& b) {
                      return a.seq < b.seq;
                  });
    }
    finalized_ = true;
}

std::span<const AccessEvent> ProfileStore::events(InstanceId id) const {
    std::scoped_lock lock(mutex_);
    if (id >= per_instance_.size()) return {};
    return per_instance_[id];
}

std::size_t ProfileStore::total_events() const {
    std::scoped_lock lock(mutex_);
    return total_;
}

std::size_t ProfileStore::populated_instances() const {
    std::scoped_lock lock(mutex_);
    std::size_t count = 0;
    for (const auto& seq : per_instance_)
        if (!seq.empty()) ++count;
    return count;
}

std::size_t ProfileStore::instance_slots() const {
    std::scoped_lock lock(mutex_);
    return per_instance_.size();
}

}  // namespace dsspy::runtime
