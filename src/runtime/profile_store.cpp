#include "runtime/profile_store.hpp"

#include <algorithm>

#include "parallel/parallel_for.hpp"

namespace dsspy::runtime {

ProfileStore::ProfileStore(ProfileStore&& other) noexcept {
    std::scoped_lock lock(other.mutex_);
    per_instance_ = std::move(other.per_instance_);
    total_ = other.total_;
    finalized_ = other.finalized_;
    columns_ = std::move(other.columns_);
    columns_built_ = other.columns_built_;
    other.per_instance_.clear();
    other.total_ = 0;
    other.columns_built_ = false;
}

ProfileStore& ProfileStore::operator=(ProfileStore&& other) noexcept {
    if (this != &other) {
        std::scoped_lock lock(mutex_, other.mutex_);
        per_instance_ = std::move(other.per_instance_);
        total_ = other.total_;
        finalized_ = other.finalized_;
        columns_ = std::move(other.columns_);
        columns_built_ = other.columns_built_;
        other.per_instance_.clear();
        other.total_ = 0;
        other.columns_built_ = false;
    }
    return *this;
}

void ProfileStore::append(std::span<const AccessEvent> events) {
    std::scoped_lock lock(mutex_);
    // Batch by instance: consecutive events for the same instance (the
    // common case — a collector drain batch comes from one thread's ring,
    // and threads tend to work one container at a time) become a single
    // range insert instead of per-event push_backs.
    std::size_t i = 0;
    const std::size_t n = events.size();
    while (i < n) {
        const InstanceId inst = events[i].instance;
        std::size_t j = i + 1;
        while (j < n && events[j].instance == inst) ++j;
        if (inst != kInvalidInstance) {
            if (inst >= per_instance_.size())
                per_instance_.resize(inst + 1);
            auto& seq = per_instance_[inst];
            seq.insert(seq.end(), events.begin() + static_cast<std::ptrdiff_t>(i),
                       events.begin() + static_cast<std::ptrdiff_t>(j));
            total_ += j - i;
        }
        i = j;
    }
    finalized_ = false;
    columns_built_ = false;
}

void ProfileStore::finalize(par::ThreadPool* pool) {
    std::scoped_lock lock(mutex_);
    auto sort_range = [this](std::size_t lo, std::size_t hi) {
        for (std::size_t idx = lo; idx < hi; ++idx) {
            auto& seq = per_instance_[idx];
            std::sort(seq.begin(), seq.end(),
                      [](const AccessEvent& a, const AccessEvent& b) {
                          return a.seq < b.seq;
                      });
        }
    };
    if (pool != nullptr && per_instance_.size() > 1) {
        par::parallel_for_chunks(*pool, 0, per_instance_.size(), sort_range);
    } else {
        sort_range(0, per_instance_.size());
    }
    finalized_ = true;
    build_columns_locked(pool);
}

void ProfileStore::build_columns_locked(par::ThreadPool* pool) const {
    // Row layout: instances in id order, each instance's events contiguous
    // and already in seq order after the finalize sort.
    const std::size_t slots = per_instance_.size();
    std::vector<std::size_t> offsets(slots + 1, 0);
    for (std::size_t id = 0; id < slots; ++id)
        offsets[id + 1] = offsets[id] + per_instance_[id].size();
    columns_.allocate(offsets[slots], slots);
    auto place_range = [this, &offsets](std::size_t lo, std::size_t hi) {
        for (std::size_t id = lo; id < hi; ++id)
            columns_.place_events(static_cast<InstanceId>(id), offsets[id],
                                  per_instance_[id]);
    };
    // Each instance writes a disjoint row range, so the transpose
    // parallelizes without synchronization (ranges_ was pre-sized by
    // allocate; set_range only stores).
    if (pool != nullptr && slots > 1) {
        par::parallel_for_chunks(*pool, 0, slots, place_range);
    } else {
        place_range(0, slots);
    }
    columns_built_ = true;
}

const ColumnStore& ProfileStore::columns(par::ThreadPool* pool) const {
    std::scoped_lock lock(mutex_);
    if (!columns_built_) build_columns_locked(pool);
    return columns_;
}

std::span<const AccessEvent> ProfileStore::events(InstanceId id) const {
    std::scoped_lock lock(mutex_);
    if (id >= per_instance_.size()) return {};
    return per_instance_[id];
}

std::size_t ProfileStore::total_events() const {
    std::scoped_lock lock(mutex_);
    return total_;
}

std::size_t ProfileStore::populated_instances() const {
    std::scoped_lock lock(mutex_);
    std::size_t count = 0;
    for (const auto& seq : per_instance_)
        if (!seq.empty()) ++count;
    return count;
}

std::size_t ProfileStore::instance_slots() const {
    std::scoped_lock lock(mutex_);
    return per_instance_.size();
}

std::size_t ProfileStore::orphan_events(
    std::size_t registered_instances) const {
    std::scoped_lock lock(mutex_);
    std::size_t orphans = 0;
    for (std::size_t id = registered_instances; id < per_instance_.size();
         ++id)
        orphans += per_instance_[id].size();
    return orphans;
}

}  // namespace dsspy::runtime
