// Registry of live data-structure instances and their instantiation sites.
//
// DSspy assigns every access event to the instance's instantiation location
// ("All access events are assigned to their instantiation location",
// Section IV).  The registry hands out dense InstanceIds and stores, per
// instance, the data-structure kind, element type name, and SourceLoc.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/access_event.hpp"
#include "runtime/op.hpp"
#include "support/source_location.hpp"

namespace dsspy::runtime {

/// Static metadata of one registered instance.
struct InstanceInfo {
    InstanceId id = kInvalidInstance;
    DsKind kind = DsKind::List;
    std::string type_name;            ///< e.g. "List<Int32>".
    support::SourceLoc location;      ///< Instantiation site.
    bool deallocated = false;         ///< Instance lifetime ended.

    friend bool operator==(const InstanceInfo&, const InstanceInfo&) = default;
};

/// Thread-safe, append-only registry of instances.
class InstanceRegistry {
public:
    /// Register a new instance; returns its dense id.
    InstanceId register_instance(DsKind kind, std::string type_name,
                                 support::SourceLoc location);

    /// Mark the end of an instance's life cycle (profile boundary for the
    /// Write-Without-Read use case).
    void mark_deallocated(InstanceId id);

    /// Copy of the info for `id`.  `id` must be valid.
    [[nodiscard]] InstanceInfo info(InstanceId id) const;

    /// Snapshot of all registered instances.
    [[nodiscard]] std::vector<InstanceInfo> snapshot() const;

    /// Number of registered instances.
    [[nodiscard]] std::size_t size() const;

private:
    mutable std::mutex mutex_;
    std::vector<InstanceInfo> instances_;
};

}  // namespace dsspy::runtime
