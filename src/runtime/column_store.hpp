// Structure-of-arrays view of the recorded event stream (DESIGN.md §11).
//
// The post-mortem detectors are per-field scans: access-type histograms,
// position-regularity streaks, end-traffic window counts.  Run over the
// AoS ProfileStore they drag all 32 bytes of every AccessEvent through the
// cache to look at one or two fields.  The ColumnStore keeps each field in
// its own contiguous array — timestamps, positions, sizes, op kinds,
// thread ids — with events grouped into one half-open row range per
// instance, in the same per-instance `seq` order the finalized AoS store
// holds.  Detector kernels (core/detector_kernels.hpp) then stream exactly
// the bytes they need, and the SIMD paths get unit-stride loads for free.
//
// Two producers fill it:
//   * ProfileStore::columns() — transposed from the finalized AoS store;
//   * runtime::read_trace_columns — decoded straight out of mmapped DST1
//     chunks without materializing AccessEvent records (trace_mmap.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "runtime/access_event.hpp"

namespace dsspy::runtime {

/// Half-open range of column rows belonging to one instance.
struct ColumnRange {
    std::size_t begin = 0;
    std::size_t end = 0;

    [[nodiscard]] std::size_t size() const noexcept { return end - begin; }
    [[nodiscard]] bool empty() const noexcept { return begin == end; }
};

/// Five per-field event columns plus the per-instance row ranges.
///
/// Rows within one instance's range are in ascending `seq` order (the
/// chronological order RuntimeProfile expects); `seq` itself is not stored
/// — it only exists to establish that order and is dropped once rows are
/// placed.
class ColumnStore {
public:
    /// Discard all rows and ranges.
    void clear();

    /// Size all columns for `rows` events and `instance_slots` range slots
    /// (builder step; rows are filled through the mutable column pointers).
    void allocate(std::size_t rows, std::size_t instance_slots);

    /// Assign the row range of one instance (builder step).
    void set_range(InstanceId id, std::size_t begin, std::size_t end);

    /// Transpose one instance's AoS event sequence into rows
    /// [`first_row`, `first_row + events.size()`) and record its range.
    void place_events(InstanceId id, std::size_t first_row,
                      std::span<const AccessEvent> events);

    [[nodiscard]] std::size_t total_events() const noexcept {
        return time_ns_.size();
    }
    [[nodiscard]] std::size_t instance_slots() const noexcept {
        return ranges_.size();
    }

    /// Row range of one instance; empty when the id is unknown or silent.
    [[nodiscard]] ColumnRange range(InstanceId id) const noexcept {
        if (id >= ranges_.size()) return {};
        return ranges_[id];
    }

    // Read-only columns; all have total_events() entries.
    [[nodiscard]] const std::uint64_t* time_ns() const noexcept {
        return time_ns_.data();
    }
    [[nodiscard]] const std::int64_t* position() const noexcept {
        return position_.data();
    }
    [[nodiscard]] const std::uint32_t* sizes() const noexcept {
        return size_.data();
    }
    [[nodiscard]] const std::uint8_t* op() const noexcept {
        return op_.data();
    }
    [[nodiscard]] const std::uint16_t* thread() const noexcept {
        return thread_.data();
    }

    // Mutable column pointers for builders.  Only valid after allocate().
    [[nodiscard]] std::uint64_t* mutable_time_ns() noexcept {
        return time_ns_.data();
    }
    [[nodiscard]] std::int64_t* mutable_position() noexcept {
        return position_.data();
    }
    [[nodiscard]] std::uint32_t* mutable_sizes() noexcept {
        return size_.data();
    }
    [[nodiscard]] std::uint8_t* mutable_op() noexcept { return op_.data(); }
    [[nodiscard]] std::uint16_t* mutable_thread() noexcept {
        return thread_.data();
    }

    /// Reconstruct one row as an AccessEvent (tests and debugging; `seq`
    /// is synthesized as the row index, not the original capture seq).
    [[nodiscard]] AccessEvent row(std::size_t i) const noexcept {
        AccessEvent ev;
        ev.seq = i;
        ev.time_ns = time_ns_[i];
        ev.position = position_[i];
        ev.size = size_[i];
        ev.op = static_cast<OpKind>(op_[i]);
        ev.thread = thread_[i];
        return ev;
    }

private:
    std::vector<std::uint64_t> time_ns_;
    std::vector<std::int64_t> position_;
    std::vector<std::uint32_t> size_;
    std::vector<std::uint8_t> op_;
    std::vector<std::uint16_t> thread_;
    std::vector<ColumnRange> ranges_;
};

}  // namespace dsspy::runtime
