// Profiling session: owns the instance registry, the per-thread event
// channels, the asynchronous collector, and the post-mortem profile store.
//
// This is the C++ equivalent of DSspy's dynamic-analysis module.  The paper
// runs analysis "in a separate process which receives the runtime
// information via asynchronous intra-process communication"; here each
// recording thread owns a lock-free SPSC ring drained by a dedicated
// collector thread (`CaptureMode::Streaming`), or an unsynchronized
// per-thread buffer merged at `stop()` (`CaptureMode::Buffered`).  Both
// modes produce an identical ProfileStore; the micro benches compare their
// overhead.
//
// Hot-path design (the paper reports an average 47x capture slowdown; this
// implementation targets low single-digit overhead):
//   * Sequencing: instead of a globally-contended fetch-add per event, each
//     thread draws blocks of `kSeqBlockSize` sequence numbers from a global
//     allocator and numbers its events from the block.  Sequence numbers
//     stay globally unique and strictly increasing per thread, so sorting
//     by `seq` at finalize() reconciles them into a deterministic total
//     order that preserves every thread's program order.
//   * Timestamps: the clock is read once per `kTimestampStride` events per
//     thread (and at every block boundary); events in between reuse the
//     last reading.  Timestamps stay monotonic per thread at stride
//     granularity — sufficient for the duration-based use-case rules,
//     ~60x fewer clock reads.
//   * Registration: channels live on a lock-free intrusive list, so thread
//     registration never stalls the collector and the collector never
//     blocks producers (the old design drained rings while holding a
//     mutex that registration also needed).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "obs/trace.hpp"
#include "runtime/access_event.hpp"
#include "runtime/instance_registry.hpp"
#include "runtime/profile_store.hpp"
#include "runtime/spsc_ring.hpp"

namespace dsspy::runtime {

/// How events travel from the mutator threads to the ProfileStore.
enum class CaptureMode {
    Buffered,   ///< Per-thread append-only buffers, merged at stop().
    Streaming,  ///< Per-thread SPSC rings drained live by a collector thread.
};

/// What happens to events once captured (DESIGN.md §8).
enum class AnalysisMode {
    /// Retain every event in the ProfileStore for post-mortem analysis.
    Postmortem,
    /// Events are handed to the event sink as they drain and are NOT
    /// retained: the store stays empty and memory is bounded by the
    /// live-instance state of the attached incremental analyzer.
    Incremental,
};

/// One recording session: create, run the instrumented workload, stop(),
/// then hand the session to `core::Dsspy` for analysis.
///
/// Threading contract: `record()` may be called from any number of threads
/// concurrently.  `stop()` must be called after all recording threads have
/// quiesced (joined); it drains/merges outstanding events and finalizes the
/// store.  After `stop()` the session is read-only.  The contract is
/// enforced by an acquire/release handshake: every completed `record()`
/// release-publishes its channel's event count, `stop()` acquire-reads it
/// and seals the channel; late records are dropped (and assert in debug
/// builds).
class ProfilingSession {
public:
    /// Sequence numbers are handed to threads in blocks of this size; the
    /// global allocator is touched once per block instead of once per event.
    static constexpr std::uint64_t kSeqBlockSize = 1024;

    /// The monotonic clock is read once per this many events per thread.
    static constexpr std::uint32_t kTimestampStride = 64;

    /// Batch consumer for captured events; see set_event_sink().
    using EventSink = std::function<void(std::span<const AccessEvent>)>;
    /// Consumer for instance registrations; see set_instance_sink().
    using InstanceSink = std::function<void(const InstanceInfo&)>;

    explicit ProfilingSession(CaptureMode mode = CaptureMode::Buffered,
                              std::size_t ring_capacity = 64 * 1024,
                              AnalysisMode analysis = AnalysisMode::Postmortem);
    ~ProfilingSession();

    ProfilingSession(const ProfilingSession&) = delete;
    ProfilingSession& operator=(const ProfilingSession&) = delete;

    /// Register a new data-structure instance (called by the proxies).
    InstanceId register_instance(DsKind kind, std::string type_name,
                                 support::SourceLoc location);

    /// Mark the end of an instance's life cycle.
    void mark_deallocated(InstanceId id);

    /// Record one access event.  Hot path; safe from any thread.
    void record(InstanceId instance, OpKind op, std::int64_t position,
                std::uint32_t size) noexcept;

    /// Stop capture: drain rings / merge buffers, finalize the store.
    /// Idempotent.
    void stop();

    /// True until `stop()` has been called.
    [[nodiscard]] bool capturing() const noexcept {
        return capturing_.load(std::memory_order_acquire);
    }

    [[nodiscard]] CaptureMode mode() const noexcept { return mode_; }

    [[nodiscard]] AnalysisMode analysis_mode() const noexcept {
        return analysis_;
    }

    /// Install a consumer for captured events.  Must be installed before
    /// the first record().  Delivery is in ascending global `seq` order —
    /// which implies each instance's (and each thread's) events arrive in
    /// their program order, the order the finalized store would present:
    /// in Streaming mode the collector merges the per-thread rings behind
    /// a watermark (every channel's published sequence bound) and delivers
    /// as the watermark advances; in Buffered mode the per-thread chains
    /// are merge-delivered at stop().  The sink runs on the collector
    /// thread (Streaming) or the stop() caller (Buffered) and must not
    /// call back into this session except for registry()/snapshot reads.
    void set_event_sink(EventSink sink);

    /// Install a consumer notified of every instance registration (after
    /// it lands in the registry).  Must be installed before profiling
    /// starts; runs on the registering thread.
    void set_instance_sink(InstanceSink sink);

    /// The recorded profiles.  Call after `stop()`.
    [[nodiscard]] const ProfileStore& store() const noexcept { return store_; }

    [[nodiscard]] const InstanceRegistry& registry() const noexcept {
        return registry_;
    }

    /// Number of distinct threads that recorded events.
    [[nodiscard]] std::size_t thread_count() const noexcept;

    /// Total events recorded so far (exact after stop()).
    [[nodiscard]] std::uint64_t events_recorded() const noexcept;

    /// Wall-clock duration of the capture window in nanoseconds
    /// (start of session to stop()).
    [[nodiscard]] std::uint64_t capture_duration_ns() const noexcept;

    /// Events stored against instance ids the registry never issued
    /// (store-only "orphans"; see ProfileStore::orphan_events).  Exact
    /// after stop().
    [[nodiscard]] std::size_t orphan_events() const;

private:
    struct Channel {
        explicit Channel(ThreadId id, CaptureMode mode,
                         std::size_t ring_capacity);
        ThreadId tid;

        /// Buffered mode: events land in a chain of fixed chunks (cap
        /// doubling up to kMaxChunkEvents).  Unlike a growable vector this
        /// never copies on growth — at millions of events the reallocation
        /// memcpy dominates the capture cost — and chunks are allocated
        /// uninitialized so each page is touched exactly once.
        struct Chunk {
            std::unique_ptr<AccessEvent[]> events;
            std::size_t capacity = 0;
        };
        std::vector<Chunk> chunks;                    // Buffered mode
        AccessEvent* write_pos = nullptr;             ///< Next free slot.
        AccessEvent* write_end = nullptr;             ///< Chunk end.
        void grow_chunk();

        std::unique_ptr<SpscRing<AccessEvent>> ring;  // Streaming mode

        // Hot-path state, touched only by the owning thread.
        std::uint64_t next_seq = 0;       ///< Next seq in the current block.
        std::uint64_t seq_block_end = 0;  ///< Exclusive end of the block.
        std::uint64_t last_ts_ns = 0;     ///< Most recent clock reading.
        std::uint32_t ts_countdown = 0;   ///< Events until the next reading.

        // Published state (read by stop()/collector).
        std::atomic<std::uint64_t> events{0};  ///< Completed records.
        std::atomic<bool> sealed{false};       ///< Set by stop().
        /// Lower bound on the seq of any future event from this channel
        /// (stored after each record when an event sink is attached);
        /// the collector's ordered-delivery watermark is the minimum of
        /// these bounds across channels.
        std::atomic<std::uint64_t> published{0};

        // Ordered-delivery state, touched only by the collector.
        std::vector<AccessEvent> pending;  ///< Drained, not yet delivered.
        std::size_t pending_head = 0;
        std::uint64_t bound = 0;           ///< published, read pre-drain.

        Channel* next = nullptr;  ///< Lock-free registration list link.
    };

    Channel& channel_for_current_thread();
    void collector_loop(const std::stop_token& st);
    void drain_all_rings();
    bool collect_ordered_round();
    void deliver_ordered(bool final_flush);
    void buffered_merge_to_sink();
    [[nodiscard]] std::uint64_t now_ns() const noexcept;

    const CaptureMode mode_;
    const std::size_t ring_capacity_;
    const AnalysisMode analysis_;
    const std::uint64_t token_;  ///< Unique id for thread-local caching.
    /// Trace context of the thread that constructed the session: collector
    /// and stop()-time spans parent here so capture work nests under the
    /// pipeline's root span even though it runs on other threads.
    const obs::TraceContext trace_ctx_;

    InstanceRegistry registry_;
    ProfileStore store_;

    std::atomic<std::uint64_t> seq_alloc_{0};  ///< Next unissued seq block.
    std::atomic<std::uint32_t> next_tid_{0};
    std::atomic<bool> capturing_{true};
    std::uint64_t start_ns_ = 0;
    std::uint64_t stop_ns_ = 0;

    /// Head of the intrusive channel list (push-front on registration;
    /// traversal needs no lock).  Channels are owned by the list and freed
    /// in the destructor.
    std::atomic<Channel*> channels_head_{nullptr};

    EventSink sink_;            ///< Ordered-delivery consumer (may be empty).
    InstanceSink instance_sink_;
    /// Fast flags mirroring sink_ presence: checked on the hot path
    /// (record) and every collector round without touching std::function.
    std::atomic<bool> has_sink_{false};

    std::jthread collector_;  // Streaming mode only.
};

}  // namespace dsspy::runtime
