// Profiling session: owns the instance registry, the per-thread event
// channels, the asynchronous collector, and the post-mortem profile store.
//
// This is the C++ equivalent of DSspy's dynamic-analysis module.  The paper
// runs analysis "in a separate process which receives the runtime
// information via asynchronous intra-process communication"; here each
// recording thread owns a lock-free SPSC ring drained by a dedicated
// collector thread (`CaptureMode::Streaming`), or an unsynchronized
// per-thread buffer merged at `stop()` (`CaptureMode::Buffered`).  Both
// modes produce an identical ProfileStore; the micro benches compare their
// overhead.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "runtime/access_event.hpp"
#include "runtime/instance_registry.hpp"
#include "runtime/profile_store.hpp"
#include "runtime/spsc_ring.hpp"

namespace dsspy::runtime {

/// How events travel from the mutator threads to the ProfileStore.
enum class CaptureMode {
    Buffered,   ///< Per-thread append-only buffers, merged at stop().
    Streaming,  ///< Per-thread SPSC rings drained live by a collector thread.
};

/// One recording session: create, run the instrumented workload, stop(),
/// then hand the session to `core::Dsspy` for analysis.
///
/// Threading contract: `record()` may be called from any number of threads
/// concurrently.  `stop()` must be called after all recording threads have
/// quiesced (joined); it drains/merges outstanding events and finalizes the
/// store.  After `stop()` the session is read-only.
class ProfilingSession {
public:
    explicit ProfilingSession(CaptureMode mode = CaptureMode::Buffered,
                              std::size_t ring_capacity = 64 * 1024);
    ~ProfilingSession();

    ProfilingSession(const ProfilingSession&) = delete;
    ProfilingSession& operator=(const ProfilingSession&) = delete;

    /// Register a new data-structure instance (called by the proxies).
    InstanceId register_instance(DsKind kind, std::string type_name,
                                 support::SourceLoc location);

    /// Mark the end of an instance's life cycle.
    void mark_deallocated(InstanceId id);

    /// Record one access event.  Hot path; safe from any thread.
    void record(InstanceId instance, OpKind op, std::int64_t position,
                std::uint32_t size) noexcept;

    /// Stop capture: drain rings / merge buffers, finalize the store.
    /// Idempotent.
    void stop();

    /// True until `stop()` has been called.
    [[nodiscard]] bool capturing() const noexcept {
        return capturing_.load(std::memory_order_acquire);
    }

    [[nodiscard]] CaptureMode mode() const noexcept { return mode_; }

    /// The recorded profiles.  Call after `stop()`.
    [[nodiscard]] const ProfileStore& store() const noexcept { return store_; }

    [[nodiscard]] const InstanceRegistry& registry() const noexcept {
        return registry_;
    }

    /// Number of distinct threads that recorded events.
    [[nodiscard]] std::size_t thread_count() const;

    /// Total events recorded so far (exact after stop()).
    [[nodiscard]] std::uint64_t events_recorded() const noexcept {
        return seq_.load(std::memory_order_relaxed);
    }

    /// Wall-clock duration of the capture window in nanoseconds
    /// (start of session to stop()).
    [[nodiscard]] std::uint64_t capture_duration_ns() const noexcept;

private:
    struct Channel {
        explicit Channel(ThreadId id, CaptureMode mode,
                         std::size_t ring_capacity);
        ThreadId tid;
        std::vector<AccessEvent> buffer;          // Buffered mode
        std::unique_ptr<SpscRing<AccessEvent>> ring;  // Streaming mode
    };

    Channel& channel_for_current_thread();
    void collector_loop(const std::stop_token& st);
    void drain_all_rings();
    [[nodiscard]] std::uint64_t now_ns() const noexcept;

    const CaptureMode mode_;
    const std::size_t ring_capacity_;
    const std::uint64_t token_;  ///< Unique id for thread-local caching.

    InstanceRegistry registry_;
    ProfileStore store_;

    std::atomic<std::uint64_t> seq_{0};
    std::atomic<bool> capturing_{true};
    std::uint64_t start_ns_ = 0;
    std::uint64_t stop_ns_ = 0;

    mutable std::mutex channels_mutex_;
    std::vector<std::unique_ptr<Channel>> channels_;

    std::jthread collector_;  // Streaming mode only.
};

}  // namespace dsspy::runtime
