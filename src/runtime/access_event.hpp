// The access event — the unit of information DSspy records at runtime.
//
// Section IV of the paper lists the five fields gathered per event:
//   * Time stamp  — when did the event occur?
//   * Read/Write  — did the event read or write the data structure?
//   * Position    — what location of the data structure was accessed?
//   * Size        — what was the size of the structure at the access?
//   * Thread-ID   — what thread raised the access event?
// We additionally keep the raw interface operation (OpKind) and the target
// instance id; read/write-ness is derived from OpKind in `core/`.
#pragma once

#include <cstdint>

#include "runtime/op.hpp"

namespace dsspy::runtime {

/// Dense identifier of a registered data-structure instance.
using InstanceId = std::uint32_t;

/// Sentinel for "no instance".
inline constexpr InstanceId kInvalidInstance = 0xFFFFFFFFu;

/// Compact per-session thread identifier (assigned on first record).
using ThreadId = std::uint16_t;

/// Position sentinel for whole-container operations (Clear, Sort, ...).
inline constexpr std::int64_t kWholeContainer = -1;

/// One recorded access event (32 bytes).
struct AccessEvent {
    std::uint64_t seq = 0;        ///< Global logical timestamp (total order).
    std::uint64_t time_ns = 0;    ///< Monotonic wall-clock timestamp.
    std::int64_t position = 0;    ///< Target index, or kWholeContainer.
    InstanceId instance = kInvalidInstance;  ///< Target instance.
    std::uint32_t size = 0;       ///< Container size at the access.
    OpKind op = OpKind::Get;      ///< Raw interface operation.
    ThreadId thread = 0;          ///< Raising thread.

    friend bool operator==(const AccessEvent&, const AccessEvent&) = default;
};

static_assert(sizeof(AccessEvent) <= 40, "keep events compact");

}  // namespace dsspy::runtime
