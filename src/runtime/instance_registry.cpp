#include "runtime/instance_registry.hpp"

namespace dsspy::runtime {

InstanceId InstanceRegistry::register_instance(DsKind kind,
                                               std::string type_name,
                                               support::SourceLoc location) {
    std::scoped_lock lock(mutex_);
    const auto id = static_cast<InstanceId>(instances_.size());
    instances_.push_back(InstanceInfo{id, kind, std::move(type_name),
                                      std::move(location), false});
    return id;
}

void InstanceRegistry::mark_deallocated(InstanceId id) {
    std::scoped_lock lock(mutex_);
    if (id < instances_.size()) instances_[id].deallocated = true;
}

InstanceInfo InstanceRegistry::info(InstanceId id) const {
    std::scoped_lock lock(mutex_);
    return instances_.at(id);
}

std::vector<InstanceInfo> InstanceRegistry::snapshot() const {
    std::scoped_lock lock(mutex_);
    return instances_;
}

std::size_t InstanceRegistry::size() const {
    std::scoped_lock lock(mutex_);
    return instances_.size();
}

}  // namespace dsspy::runtime
