// Post-mortem store of access events, grouped by instance.
//
// The dynamic-analysis module keeps the execution slowdown low "by only
// recording the access events at runtime and analyzing them post-mortem"
// (Section IV).  The ProfileStore is where recorded events land; the
// analysis in `core/` reads event sequences per instance from here.
#pragma once

#include <cstddef>
#include <mutex>
#include <span>
#include <vector>

#include "runtime/access_event.hpp"
#include "runtime/column_store.hpp"

namespace dsspy::par {
class ThreadPool;
}

namespace dsspy::runtime {

/// Accumulates events per instance; thread-safe for concurrent appends.
///
/// Events within one instance are kept sorted by `seq` (the collector may
/// interleave drains from several producer rings out of order; `finalize`
/// restores the global total order).
class ProfileStore {
public:
    ProfileStore() = default;

    /// Movable (single-threaded contexts only — the source must not be
    /// receiving concurrent appends).
    ProfileStore(ProfileStore&& other) noexcept;
    ProfileStore& operator=(ProfileStore&& other) noexcept;
    ProfileStore(const ProfileStore&) = delete;
    ProfileStore& operator=(const ProfileStore&) = delete;

    /// Append a batch of events (collector thread or merge path).  Runs of
    /// consecutive events targeting the same instance are bulk-inserted.
    void append(std::span<const AccessEvent> events);

    /// Sort all per-instance sequences by `seq` and build the columnar
    /// (SoA) view.  Call once after capture.  With a pool, the per-instance
    /// sorts and the column transpose run in parallel (the result is
    /// identical: `seq` values are globally unique, so the comparator is a
    /// strict total order, and each instance fills a disjoint row range).
    void finalize(par::ThreadPool* pool = nullptr);

    /// Structure-of-arrays view of all events (DESIGN.md §11): one
    /// contiguous row range per instance, rows in per-instance `seq`
    /// order.  Built by finalize (or lazily here); invalidated by append.
    /// The returned reference is invalidated by further appends.
    [[nodiscard]] const ColumnStore& columns(
        par::ThreadPool* pool = nullptr) const;

    /// Event sequence of one instance (empty if none were recorded).
    /// Only valid to call after `finalize()`; the returned span is
    /// invalidated by further appends.
    [[nodiscard]] std::span<const AccessEvent> events(InstanceId id) const;

    /// Total number of stored events.
    [[nodiscard]] std::size_t total_events() const;

    /// Number of instances that have at least one event.
    [[nodiscard]] std::size_t populated_instances() const;

    /// Highest instance id seen plus one (ids are dense).
    [[nodiscard]] std::size_t instance_slots() const;

    /// Events recorded against instance ids >= `registered_instances` —
    /// "orphan" (store-only) events with no registry entry behind them.
    /// Registry ids are dense, so everything at or past the registered
    /// count was appended with a fabricated id (external tools, corrupted
    /// producers).  Trace writers already persist these (see
    /// trace_io.hpp); this surfaces the same count in session summaries
    /// and the self-telemetry registry instead of only on disk.
    [[nodiscard]] std::size_t orphan_events(
        std::size_t registered_instances) const;

private:
    void build_columns_locked(par::ThreadPool* pool) const;

    mutable std::mutex mutex_;
    std::vector<std::vector<AccessEvent>> per_instance_;
    std::size_t total_ = 0;
    bool finalized_ = false;
    mutable ColumnStore columns_;
    mutable bool columns_built_ = false;
};

}  // namespace dsspy::runtime
