#include "runtime/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "support/strings.hpp"

namespace dsspy::runtime {

namespace {

/// CSV-escape a text field (quotes only when needed).
std::string escape(const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"') out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

/// Split one CSV line honoring quoted fields.
std::vector<std::string> split_csv(const std::string& line) {
    std::vector<std::string> fields;
    std::string current;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (quoted) {
            if (ch == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    current += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                current += ch;
            }
        } else if (ch == '"') {
            quoted = true;
        } else if (ch == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else {
            current += ch;
        }
    }
    fields.push_back(std::move(current));
    return fields;
}

template <typename T>
T parse_number(const std::string& field, const char* what) {
    T value{};
    const auto* begin = field.data();
    const auto* end = field.data() + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end)
        throw std::runtime_error(std::string("trace_io: bad ") + what +
                                 " field: '" + field + "'");
    return value;
}

}  // namespace

std::size_t write_trace(std::ostream& os,
                        const std::vector<InstanceInfo>& instances,
                        const ProfileStore& store) {
    for (const InstanceInfo& info : instances) {
        os << "I," << info.id << ','
           << static_cast<unsigned>(info.kind) << ','
           << escape(info.type_name) << ','
           << escape(info.location.class_name) << ','
           << escape(info.location.method) << ','
           << info.location.position << ','
           << (info.deallocated ? 1 : 0) << '\n';
    }
    std::size_t events = 0;
    for (const InstanceInfo& info : instances) {
        for (const AccessEvent& ev : store.events(info.id)) {
            os << "E," << ev.seq << ',' << ev.time_ns << ',' << ev.instance
               << ',' << static_cast<unsigned>(ev.op) << ',' << ev.position
               << ',' << ev.size << ',' << ev.thread << '\n';
            ++events;
        }
    }
    return events;
}

std::size_t write_trace(std::ostream& os, const ProfilingSession& session) {
    return write_trace(os, session.registry().snapshot(), session.store());
}

Trace read_trace(std::istream& is) {
    Trace trace;
    std::string line;
    std::vector<AccessEvent> batch;
    batch.reserve(1024);
    while (std::getline(is, line)) {
        if (line.empty()) continue;
        const std::vector<std::string> fields = split_csv(line);
        if (fields[0] == "I") {
            if (fields.size() != 8)
                throw std::runtime_error(
                    "trace_io: instance record needs 8 fields, got " +
                    std::to_string(fields.size()));
            InstanceInfo info;
            info.id = parse_number<InstanceId>(fields[1], "id");
            const auto kind = parse_number<unsigned>(fields[2], "kind");
            if (kind >= kDsKindCount)
                throw std::runtime_error("trace_io: bad kind value");
            info.kind = static_cast<DsKind>(kind);
            info.type_name = fields[3];
            info.location.class_name = fields[4];
            info.location.method = fields[5];
            info.location.position =
                parse_number<std::uint32_t>(fields[6], "position");
            info.deallocated = fields[7] == "1";
            trace.instances.push_back(std::move(info));
        } else if (fields[0] == "E") {
            if (fields.size() != 8)
                throw std::runtime_error(
                    "trace_io: event record needs 8 fields, got " +
                    std::to_string(fields.size()));
            AccessEvent ev;
            ev.seq = parse_number<std::uint64_t>(fields[1], "seq");
            ev.time_ns = parse_number<std::uint64_t>(fields[2], "time_ns");
            ev.instance = parse_number<InstanceId>(fields[3], "instance");
            const auto op = parse_number<unsigned>(fields[4], "op");
            if (op >= kOpKindCount)
                throw std::runtime_error("trace_io: bad op value");
            ev.op = static_cast<OpKind>(op);
            ev.position = parse_number<std::int64_t>(fields[5], "position");
            ev.size = parse_number<std::uint32_t>(fields[6], "size");
            ev.thread = parse_number<ThreadId>(fields[7], "thread");
            batch.push_back(ev);
            if (batch.size() == batch.capacity()) {
                trace.store.append(batch);
                batch.clear();
            }
        } else {
            throw std::runtime_error("trace_io: unknown record tag '" +
                                     fields[0] + "'");
        }
    }
    trace.store.append(batch);
    trace.store.finalize();
    return trace;
}

bool write_trace_file(const std::string& path,
                      const ProfilingSession& session) {
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    write_trace(out, session);
    return static_cast<bool>(out);
}

Trace read_trace_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return {};
    return read_trace(in);
}

}  // namespace dsspy::runtime
