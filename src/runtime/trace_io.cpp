#include "runtime/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "runtime/trace_binary.hpp"

namespace dsspy::runtime {

namespace {

/// CSV-escape a text field (quotes only when needed).
std::string escape(const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"') out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

/// Split one CSV record honoring quoted fields (which may contain commas,
/// escaped quotes, and newlines — record extraction below guarantees the
/// record holds a balanced set of quotes).
std::vector<std::string> split_csv(const std::string& line) {
    std::vector<std::string> fields;
    std::string current;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (quoted) {
            if (ch == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    current += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                current += ch;
            }
        } else if (ch == '"') {
            quoted = true;
        } else if (ch == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else {
            current += ch;
        }
    }
    fields.push_back(std::move(current));
    return fields;
}

template <typename T>
T parse_number(const std::string& field, const char* what) {
    T value{};
    const auto* begin = field.data();
    const auto* end = field.data() + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end)
        throw std::runtime_error(std::string("trace_io: bad ") + what +
                                 " field: '" + field + "'");
    return value;
}

std::size_t write_trace_csv(std::ostream& os,
                            const std::vector<InstanceInfo>& instances,
                            const ProfileStore& store) {
    for (const InstanceInfo& info : instances) {
        os << "I," << info.id << ','
           << static_cast<unsigned>(info.kind) << ','
           << escape(info.type_name) << ','
           << escape(info.location.class_name) << ','
           << escape(info.location.method) << ','
           << info.location.position << ','
           << (info.deallocated ? 1 : 0) << '\n';
    }
    std::size_t events = 0;
    for (const InstanceId id : detail::event_write_order(instances, store)) {
        for (const AccessEvent& ev : store.events(id)) {
            os << "E," << ev.seq << ',' << ev.time_ns << ',' << ev.instance
               << ',' << static_cast<unsigned>(ev.op) << ',' << ev.position
               << ',' << ev.size << ',' << ev.thread << '\n';
            ++events;
        }
    }
    return events;
}

Trace read_trace_csv(const std::string& data, par::ThreadPool* pool) {
    Trace trace;
    std::vector<AccessEvent> batch;
    batch.reserve(1024);
    std::string line;
    std::size_t pos = 0;
    while (pos < data.size()) {
        // Extract one logical record: a '\n' inside an open quote belongs
        // to the field (escape() quotes fields containing newlines), so
        // track quote state instead of splitting on every physical line.
        bool quoted = false;
        std::size_t end = pos;
        while (end < data.size()) {
            const char ch = data[end];
            if (ch == '"') {
                quoted = !quoted;  // "" toggles twice: no net change
            } else if (ch == '\n' && !quoted) {
                break;
            }
            ++end;
        }
        if (quoted)
            throw std::runtime_error("trace_io: unterminated quoted field");
        line.assign(data, pos, end - pos);
        pos = end + 1;
        if (line.empty()) continue;
        const std::vector<std::string> fields = split_csv(line);
        if (fields[0] == "I") {
            if (fields.size() != 8)
                throw std::runtime_error(
                    "trace_io: instance record needs 8 fields, got " +
                    std::to_string(fields.size()));
            InstanceInfo info;
            info.id = parse_number<InstanceId>(fields[1], "id");
            const auto kind = parse_number<unsigned>(fields[2], "kind");
            if (kind >= kDsKindCount)
                throw std::runtime_error("trace_io: bad kind value");
            info.kind = static_cast<DsKind>(kind);
            info.type_name = fields[3];
            info.location.class_name = fields[4];
            info.location.method = fields[5];
            info.location.position =
                parse_number<std::uint32_t>(fields[6], "position");
            info.deallocated = fields[7] == "1";
            trace.instances.push_back(std::move(info));
        } else if (fields[0] == "E") {
            if (fields.size() != 8)
                throw std::runtime_error(
                    "trace_io: event record needs 8 fields, got " +
                    std::to_string(fields.size()));
            AccessEvent ev;
            ev.seq = parse_number<std::uint64_t>(fields[1], "seq");
            ev.time_ns = parse_number<std::uint64_t>(fields[2], "time_ns");
            ev.instance = parse_number<InstanceId>(fields[3], "instance");
            const auto op = parse_number<unsigned>(fields[4], "op");
            if (op >= kOpKindCount)
                throw std::runtime_error("trace_io: bad op value");
            ev.op = static_cast<OpKind>(op);
            ev.position = parse_number<std::int64_t>(fields[5], "position");
            ev.size = parse_number<std::uint32_t>(fields[6], "size");
            ev.thread = parse_number<ThreadId>(fields[7], "thread");
            batch.push_back(ev);
            if (batch.size() == batch.capacity()) {
                trace.store.append(batch);
                batch.clear();
            }
        } else {
            throw std::runtime_error("trace_io: unknown record tag '" +
                                     fields[0] + "'");
        }
    }
    trace.store.append(batch);
    trace.store.finalize(pool);
    return trace;
}

}  // namespace

namespace detail {

std::vector<InstanceId> event_write_order(
    const std::vector<InstanceInfo>& instances, const ProfileStore& store) {
    std::vector<InstanceId> order;
    order.reserve(instances.size());
    std::vector<bool> listed(store.instance_slots(), false);
    for (const InstanceInfo& info : instances) {
        order.push_back(info.id);
        if (info.id < listed.size()) listed[info.id] = true;
    }
    // Store-only ids (events appended without a matching registry entry,
    // e.g. by an external tool building traces directly) must still be
    // written — dropping them silently would corrupt the round trip.
    for (InstanceId id = 0; id < listed.size(); ++id)
        if (!listed[id] && !store.events(id).empty()) order.push_back(id);
    return order;
}

}  // namespace detail

std::size_t write_trace(std::ostream& os,
                        const std::vector<InstanceInfo>& instances,
                        const ProfileStore& store, TraceFormat format) {
    return format == TraceFormat::Binary
               ? write_trace_binary(os, instances, store)
               : write_trace_csv(os, instances, store);
}

std::size_t write_trace(std::ostream& os, const ProfilingSession& session,
                        TraceFormat format) {
    return write_trace(os, session.registry().snapshot(), session.store(),
                       format);
}

Trace read_trace(std::istream& is, par::ThreadPool* pool) {
    // Slurp the stream once and dispatch on the magic: binary decode needs
    // random access for the chunk index, and CSV record extraction is
    // simpler over a contiguous buffer than across getline boundaries.
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (is.bad())
        throw std::runtime_error("trace_io: I/O error while reading trace");
    const std::string data = std::move(buffer).str();
    if (is_binary_trace(data)) return read_trace_binary(data, pool);
    return read_trace_csv(data, pool);
}

bool write_trace_file(const std::string& path,
                      const std::vector<InstanceInfo>& instances,
                      const ProfileStore& store, TraceFormat format) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    write_trace(out, instances, store, format);
    // A short write (full disk, dead pipe) may only surface at flush time;
    // report it instead of pretending the trace landed.
    out.flush();
    return static_cast<bool>(out);
}

bool write_trace_file(const std::string& path, const ProfilingSession& session,
                      TraceFormat format) {
    return write_trace_file(path, session.registry().snapshot(),
                            session.store(), format);
}

Trace read_trace_file(const std::string& path, par::ThreadPool* pool) {
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("trace_io: cannot open trace file '" + path +
                                 "'");
    return read_trace(in, pool);
}

}  // namespace dsspy::runtime
