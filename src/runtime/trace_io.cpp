#include "runtime/trace_io.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <streambuf>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/trace_binary.hpp"

namespace dsspy::runtime {

namespace {

/// Self-telemetry ids for trace serialization (registered lazily; every
/// call site guards on obs::enabled() first).
struct TraceMetricIds {
    obs::MetricId bytes_written;
    obs::MetricId bytes_read;
    obs::MetricId events_written;
    obs::MetricId events_read;
    obs::MetricId blank_records;  ///< Empty CSV records skipped.
};

const TraceMetricIds& trace_metrics() {
    static const TraceMetricIds ids = [] {
        auto& reg = obs::MetricsRegistry::global();
        return TraceMetricIds{
            reg.counter("trace.bytes_written"),
            reg.counter("trace.bytes_read"),
            reg.counter("trace.events_written"),
            reg.counter("trace.events_read"),
            reg.counter("trace.blank_records_skipped"),
        };
    }();
    return ids;
}

/// CSV-escape a text field (quotes only when needed).
std::string escape(const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) return field;
    std::string out = "\"";
    for (char ch : field) {
        if (ch == '"') out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

/// Split one CSV record honoring quoted fields (which may contain commas,
/// escaped quotes, and newlines — record extraction below guarantees the
/// record holds a balanced set of quotes).
std::vector<std::string> split_csv(std::string_view line) {
    std::vector<std::string> fields;
    std::string current;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (quoted) {
            if (ch == '"') {
                if (i + 1 < line.size() && line[i + 1] == '"') {
                    current += '"';
                    ++i;
                } else {
                    quoted = false;
                }
            } else {
                current += ch;
            }
        } else if (ch == '"') {
            quoted = true;
        } else if (ch == ',') {
            fields.push_back(std::move(current));
            current.clear();
        } else {
            current += ch;
        }
    }
    fields.push_back(std::move(current));
    return fields;
}

template <typename T>
T parse_number(std::string_view field, const char* what) {
    T value{};
    const auto* begin = field.data();
    const auto* end = field.data() + field.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end)
        throw std::runtime_error(std::string("trace_io: bad ") + what +
                                 " field: '" + std::string(field) + "'");
    return value;
}

/// Quote-aware CSV record extraction as a resumable state machine: a
/// record ends at a '\n' outside quotes, and `""` toggles the quote state
/// twice (no net change), so quoted fields may span physical lines — and,
/// here, buffer refills: the quote state and any partial record carry over
/// between feed() calls, so a boundary can fall anywhere (even between the
/// two '"' of an escaped quote) without changing what is parsed.  Both the
/// slurped read_trace path and the streaming reader run on this scanner.
class CsvRecordScanner {
public:
    /// Scan `chunk`, invoking `emit(std::string_view record)` for every
    /// completed record.  The view is valid only during the call.
    template <typename Fn>
    void feed(std::string_view chunk, Fn&& emit) {
        std::size_t start = 0;
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            const char ch = chunk[i];
            if (ch == '"') {
                in_quote_ = !in_quote_;
            } else if (ch == '\n' && !in_quote_) {
                if (carry_.empty()) {
                    emit(chunk.substr(start, i - start));
                } else {
                    carry_.append(chunk, start, i - start);
                    emit(std::string_view(carry_));
                    carry_.clear();
                }
                start = i + 1;
            }
        }
        carry_.append(chunk, start, chunk.size() - start);
    }

    /// End of input: emit the final unterminated record, if any.  Throws
    /// if a quoted field is still open.
    template <typename Fn>
    void finish(Fn&& emit) {
        if (in_quote_)
            throw std::runtime_error("trace_io: unterminated quoted field");
        if (!carry_.empty()) {
            emit(std::string_view(carry_));
            carry_.clear();
        }
    }

private:
    std::string carry_;    ///< Partial record spanning feed() boundaries.
    bool in_quote_ = false;
};

/// Parse one CSV record and route it to the sink (events via `batch`,
/// flushed when full).  Returns the number of events parsed (0 or 1).
std::size_t parse_csv_record(std::string_view line, TraceSink& sink,
                             std::vector<AccessEvent>& batch) {
    if (line.empty()) {
        if (obs::enabled())
            obs::MetricsRegistry::global().add(trace_metrics().blank_records);
        return 0;
    }
    const std::vector<std::string> fields = split_csv(line);
    if (fields[0] == "I") {
        if (fields.size() != 8)
            throw std::runtime_error(
                "trace_io: instance record needs 8 fields, got " +
                std::to_string(fields.size()));
        InstanceInfo info;
        info.id = parse_number<InstanceId>(fields[1], "id");
        const auto kind = parse_number<unsigned>(fields[2], "kind");
        if (kind >= kDsKindCount)
            throw std::runtime_error("trace_io: bad kind value");
        info.kind = static_cast<DsKind>(kind);
        info.type_name = fields[3];
        info.location.class_name = fields[4];
        info.location.method = fields[5];
        info.location.position =
            parse_number<std::uint32_t>(fields[6], "position");
        info.deallocated = fields[7] == "1";
        sink.on_instance(info);
        return 0;
    }
    if (fields[0] == "E") {
        if (fields.size() != 8)
            throw std::runtime_error(
                "trace_io: event record needs 8 fields, got " +
                std::to_string(fields.size()));
        AccessEvent ev;
        ev.seq = parse_number<std::uint64_t>(fields[1], "seq");
        ev.time_ns = parse_number<std::uint64_t>(fields[2], "time_ns");
        ev.instance = parse_number<InstanceId>(fields[3], "instance");
        const auto op = parse_number<unsigned>(fields[4], "op");
        if (op >= kOpKindCount)
            throw std::runtime_error("trace_io: bad op value");
        ev.op = static_cast<OpKind>(op);
        ev.position = parse_number<std::int64_t>(fields[5], "position");
        ev.size = parse_number<std::uint32_t>(fields[6], "size");
        ev.thread = parse_number<ThreadId>(fields[7], "thread");
        batch.push_back(ev);
        if (batch.size() == batch.capacity()) {
            sink.on_events(batch);
            batch.clear();
        }
        return 1;
    }
    throw std::runtime_error("trace_io: unknown record tag '" + fields[0] +
                             "'");
}

/// Builds an in-memory Trace from sink callbacks (the slurped path).
class TraceBuildSink final : public TraceSink {
public:
    void on_instance(const InstanceInfo& info) override {
        trace.instances.push_back(info);
    }
    void on_events(std::span<const AccessEvent> events) override {
        trace.store.append(events);
    }
    Trace trace;
};

std::size_t write_trace_csv(std::ostream& os,
                            const std::vector<InstanceInfo>& instances,
                            const ProfileStore& store) {
    for (const InstanceInfo& info : instances)
        detail::write_csv_instance_record(os, info);
    std::size_t events = 0;
    for (const InstanceId id : detail::event_write_order(instances, store)) {
        for (const AccessEvent& ev : store.events(id)) {
            detail::write_csv_event_record(os, ev);
            ++events;
        }
    }
    return events;
}

Trace read_trace_csv(const std::string& data, par::ThreadPool* pool) {
    TraceBuildSink sink;
    std::vector<AccessEvent> batch;
    batch.reserve(1024);
    CsvRecordScanner scanner;
    const auto handle = [&](std::string_view line) {
        parse_csv_record(line, sink, batch);
    };
    scanner.feed(data, handle);
    scanner.finish(handle);
    if (!batch.empty()) sink.on_events(batch);
    Trace trace = std::move(sink.trace);
    trace.store.finalize(pool);
    return trace;
}

/// Streaming CSV: refill a fixed buffer and feed it through the scanner;
/// quote state and partial records survive the refills.
std::size_t read_trace_csv_stream(std::istream& is, std::string_view first,
                                  TraceSink& sink, std::size_t buffer_bytes) {
    CsvRecordScanner scanner;
    std::vector<AccessEvent> batch;
    batch.reserve(1024);
    std::size_t events = 0;
    std::size_t bytes = first.size();
    const auto handle = [&](std::string_view line) {
        events += parse_csv_record(line, sink, batch);
    };
    scanner.feed(first, handle);
    std::string buf(buffer_bytes, '\0');
    while (is) {
        is.read(buf.data(), static_cast<std::streamsize>(buf.size()));
        const auto got = static_cast<std::size_t>(is.gcount());
        if (got == 0) break;
        bytes += got;
        scanner.feed(std::string_view(buf.data(), got), handle);
    }
    if (is.bad())
        throw std::runtime_error("trace_io: I/O error while reading trace");
    scanner.finish(handle);
    if (!batch.empty()) sink.on_events(batch);
    if (obs::enabled()) {
        auto& reg = obs::MetricsRegistry::global();
        reg.add(trace_metrics().bytes_read, bytes);
        reg.add(trace_metrics().events_read, events);
    }
    return events;
}

}  // namespace

namespace detail {

std::vector<InstanceId> event_write_order(
    const std::vector<InstanceInfo>& instances, const ProfileStore& store) {
    std::vector<InstanceId> order;
    order.reserve(instances.size());
    std::vector<bool> listed(store.instance_slots(), false);
    for (const InstanceInfo& info : instances) {
        order.push_back(info.id);
        if (info.id < listed.size()) listed[info.id] = true;
    }
    // Store-only ids (events appended without a matching registry entry,
    // e.g. by an external tool building traces directly) must still be
    // written — dropping them silently would corrupt the round trip.
    for (InstanceId id = 0; id < listed.size(); ++id)
        if (!listed[id] && !store.events(id).empty()) order.push_back(id);
    return order;
}

void write_csv_instance_record(std::ostream& os, const InstanceInfo& info) {
    os << "I," << info.id << ','
       << static_cast<unsigned>(info.kind) << ','
       << escape(info.type_name) << ','
       << escape(info.location.class_name) << ','
       << escape(info.location.method) << ','
       << info.location.position << ','
       << (info.deallocated ? 1 : 0) << '\n';
}

void write_csv_event_record(std::ostream& os, const AccessEvent& ev) {
    os << "E," << ev.seq << ',' << ev.time_ns << ',' << ev.instance << ','
       << static_cast<unsigned>(ev.op) << ',' << ev.position << ',' << ev.size
       << ',' << ev.thread << '\n';
}

}  // namespace detail

std::size_t write_trace(std::ostream& os,
                        const std::vector<InstanceInfo>& instances,
                        const ProfileStore& store, TraceFormat format) {
    DSSPY_TRACE_SPAN("trace.write");
    const std::streampos before = obs::enabled() ? os.tellp()
                                                 : std::streampos{-1};
    const std::size_t events = format == TraceFormat::Binary
                                   ? write_trace_binary(os, instances, store)
                                   : write_trace_csv(os, instances, store);
    if (obs::enabled()) {
        auto& reg = obs::MetricsRegistry::global();
        reg.add(trace_metrics().events_written, events);
        // Non-seekable sinks (pipes) report -1; skip the byte count then.
        const std::streampos after = os.tellp();
        if (before >= std::streampos{0} && after >= before)
            reg.add(trace_metrics().bytes_written,
                    static_cast<std::uint64_t>(after - before));
    }
    return events;
}

std::size_t write_trace(std::ostream& os, const ProfilingSession& session,
                        TraceFormat format) {
    return write_trace(os, session.registry().snapshot(), session.store(),
                       format);
}

std::size_t read_trace_stream(std::istream& is, TraceSink& sink,
                              std::size_t buffer_bytes) {
    DSSPY_TRACE_SPAN("trace.read");
    const std::size_t cap = std::max<std::size_t>(buffer_bytes, 64);
    // Probe one buffer to sniff the format, then hand the consumed prefix
    // to the chosen reader so no byte is parsed twice.
    std::string probe(cap, '\0');
    is.read(probe.data(), static_cast<std::streamsize>(cap));
    probe.resize(static_cast<std::size_t>(is.gcount()));
    if (is.bad())
        throw std::runtime_error("trace_io: I/O error while reading trace");
    if (is_binary_trace(probe))
        return read_trace_binary_stream(is, probe, sink);
    return read_trace_csv_stream(is, probe, sink, cap);
}

std::size_t read_trace_stream_file(const std::string& path, TraceSink& sink,
                                   std::size_t buffer_bytes) {
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("trace_io: cannot open trace file '" + path +
                                 "'");
    return read_trace_stream(in, sink, buffer_bytes);
}

namespace {

/// Read-only streambuf over a ChunkSource: underflow() pulls the next
/// chunk and exposes it as the get area without copying.  This is what
/// lets the framed socket connections of the serve layer feed the same
/// istream-based prefix-carry readers files go through.
class ChunkSourceBuf final : public std::streambuf {
public:
    explicit ChunkSourceBuf(const ChunkSource& next) : next_(next) {}

protected:
    int_type underflow() override {
        if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
        const std::string_view chunk = next_();
        if (chunk.empty()) return traits_type::eof();
        // The source guarantees the chunk stays valid until the next pull;
        // the get area never outlives it (underflow refills before reads).
        char* base = const_cast<char*>(chunk.data());
        setg(base, base, base + chunk.size());
        return traits_type::to_int_type(*gptr());
    }

private:
    const ChunkSource& next_;
};

}  // namespace

std::size_t read_trace_stream(const ChunkSource& next_chunk, TraceSink& sink,
                              std::size_t buffer_bytes) {
    ChunkSourceBuf buf(next_chunk);
    std::istream is(&buf);
    return read_trace_stream(is, sink, buffer_bytes);
}

Trace read_trace(std::istream& is, par::ThreadPool* pool) {
    DSSPY_TRACE_SPAN("trace.read");
    // Slurp the stream once and dispatch on the magic: binary decode needs
    // random access for the chunk index, and CSV record extraction is
    // simpler over a contiguous buffer than across getline boundaries.
    std::ostringstream buffer;
    buffer << is.rdbuf();
    if (is.bad())
        throw std::runtime_error("trace_io: I/O error while reading trace");
    const std::string data = std::move(buffer).str();
    Trace trace = is_binary_trace(data) ? read_trace_binary(data, pool)
                                        : read_trace_csv(data, pool);
    if (obs::enabled()) {
        auto& reg = obs::MetricsRegistry::global();
        reg.add(trace_metrics().bytes_read, data.size());
        reg.add(trace_metrics().events_read, trace.store.total_events());
    }
    return trace;
}

bool write_trace_file(const std::string& path,
                      const std::vector<InstanceInfo>& instances,
                      const ProfileStore& store, TraceFormat format) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    write_trace(out, instances, store, format);
    // A short write (full disk, dead pipe) may only surface at flush time;
    // report it instead of pretending the trace landed.
    out.flush();
    return static_cast<bool>(out);
}

bool write_trace_file(const std::string& path, const ProfilingSession& session,
                      TraceFormat format) {
    return write_trace_file(path, session.registry().snapshot(),
                            session.store(), format);
}

Trace read_trace_file(const std::string& path, par::ThreadPool* pool) {
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("trace_io: cannot open trace file '" + path +
                                 "'");
    return read_trace(in, pool);
}

}  // namespace dsspy::runtime
