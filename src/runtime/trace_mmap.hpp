// Zero-copy DST1 decode into event columns (DESIGN.md §11).
//
// read_trace_binary materializes every event as a 32-byte AccessEvent,
// appends them into the AoS ProfileStore, sorts, and only then (for the
// columnar analysis core) transposes into a ColumnStore.  For post-mortem
// `dsspy analyze` runs that never need AccessEvent rows, this reader skips
// the whole middle: the trace file is mmapped, chunk payloads decode in
// parallel straight into column rows, and per-instance ranges come from a
// single grouping pass — no intermediate AccessEvent vector exists at any
// point.  Files written by write_trace emit each instance's events as one
// contiguous ascending-seq block, so the grouping pass is a zero-copy scan;
// arbitrarily interleaved (externally produced) traces fall back to one
// deterministic argsort permutation.
//
// Same validation surface as trace_binary.cpp (shared via trace_codec.hpp)
// plus mmap-specific checks: unopenable or unmappable files and misaligned
// mapped regions are rejected with clear errors.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "runtime/column_store.hpp"
#include "runtime/instance_registry.hpp"

namespace dsspy::par {
class ThreadPool;
}

namespace dsspy::runtime {

/// A column-decoded trace: instance metadata plus the SoA event store.
struct ColumnTrace {
    std::vector<InstanceInfo> instances;
    ColumnStore columns;
};

/// True when the file exists and starts with the DST1 magic (cheap sniff;
/// CSV traces and unreadable files return false).
[[nodiscard]] bool is_binary_trace_file(const std::string& path);

/// Decode a complete DST1 buffer into columns.  Throws std::runtime_error
/// on the same malformed inputs read_trace_binary rejects (plus a
/// misaligned buffer, which the mmap path forwards here).  With a pool,
/// chunks decode concurrently into disjoint row ranges; the result is
/// bit-identical to a sequential decode.
[[nodiscard]] ColumnTrace read_trace_columns(std::string_view bytes,
                                             par::ThreadPool* pool = nullptr);

/// mmap `path` and decode without copying the file into memory; falls
/// back to a buffered read where mmap is unavailable.  Throws
/// std::runtime_error when the file cannot be opened, mapped, or parsed.
[[nodiscard]] ColumnTrace read_trace_columns_file(
    const std::string& path, par::ThreadPool* pool = nullptr);

}  // namespace dsspy::runtime
