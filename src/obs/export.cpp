#include "obs/export.hpp"

#include <cctype>
#include <fstream>
#include <ostream>

namespace dsspy::obs {

namespace {

const char* kind_name(MetricKind kind) {
    switch (kind) {
        case MetricKind::Counter: return "counter";
        case MetricKind::Gauge: return "gauge";
        case MetricKind::Histogram: return "histogram";
    }
    return "unknown";
}

/// Prometheus metric names allow [a-zA-Z0-9_:]; everything else maps to
/// '_'.  All dsspy metrics share the "dsspy_" prefix.
std::string prom_name(std::string_view name) {
    std::string out = "dsspy_";
    for (const char ch : name) {
        const bool ok = std::isalnum(static_cast<unsigned char>(ch)) != 0 ||
                        ch == '_' || ch == ':';
        out += ok ? ch : '_';
    }
    return out;
}

/// Prometheus label names allow [a-zA-Z_][a-zA-Z0-9_]* and nothing else
/// — and unlike values they have no escape syntax, so invalid characters
/// map to '_' (and a leading digit gets a '_' prefix).  Returns "" for an
/// empty input; the caller drops such labels entirely.
std::string prom_label_name(std::string_view name) {
    std::string out;
    out.reserve(name.size());
    for (const char ch : name) {
        const bool alpha = (ch >= 'a' && ch <= 'z') ||
                           (ch >= 'A' && ch <= 'Z') || ch == '_';
        const bool digit = ch >= '0' && ch <= '9';
        if (out.empty() && digit) out += '_';
        out += (alpha || digit) ? ch : '_';
    }
    return out;
}

/// Prometheus label-value escaping: backslash, double quote, newline.
std::string prom_label_value(std::string_view value) {
    std::string out;
    for (const char ch : value) {
        if (ch == '\\' || ch == '"') {
            out += '\\';
            out += ch;
        } else if (ch == '\n') {
            out += "\\n";
        } else {
            out += ch;
        }
    }
    return out;
}

/// JSON string escaping for metric names (they are ASCII identifiers, but
/// stay safe against future names).
std::string json_escape(const std::string& s) {
    std::string out;
    for (const char ch : s) {
        if (ch == '"' || ch == '\\') {
            out += '\\';
            out += ch;
        } else if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
            out += buf;
        } else {
            out += ch;
        }
    }
    return out;
}

void write_overhead_json(std::ostream& os, const SelfOverhead& ov) {
    os << "  \"self_overhead\": {\n"
       << "    \"events\": " << ov.events << ",\n"
       << "    \"capture_wall_ns\": " << ov.capture_wall_ns << ",\n"
       << "    \"instrumented_ns_per_event\": "
       << ov.instrumented_ns_per_event << ",\n"
       << "    \"amortized_ns_per_event\": " << ov.amortized_ns_per_event
       << ",\n"
       << "    \"capture_cost_ns\": " << ov.capture_cost_ns << ",\n"
       << "    \"overhead_fraction\": " << ov.overhead_fraction << ",\n"
       << "    \"estimated_slowdown\": " << ov.estimated_slowdown << "\n"
       << "  }";
}

}  // namespace

void write_metrics_json(std::ostream& os,
                        const std::vector<MetricValue>& metrics,
                        const SelfOverhead* overhead) {
    os << "{\n  \"dsspy_metrics_version\": 1,\n  \"metrics\": [\n";
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        const MetricValue& mv = metrics[i];
        os << "    {\"name\": \"" << json_escape(mv.name) << "\", \"kind\": \""
           << kind_name(mv.kind) << "\"";
        if (mv.kind == MetricKind::Histogram) {
            os << ", \"count\": " << mv.count << ", \"sum\": " << mv.sum
               << ", \"buckets\": [";
            for (std::size_t b = 0; b < mv.buckets.size(); ++b)
                os << (b > 0 ? "," : "") << mv.buckets[b];
            os << "]";
        } else {
            os << ", \"value\": " << mv.value;
        }
        os << "}" << (i + 1 < metrics.size() ? "," : "") << "\n";
    }
    os << "  ]";
    if (overhead != nullptr) {
        os << ",\n";
        write_overhead_json(os, *overhead);
    }
    os << "\n}\n";
}

void write_metrics_prometheus(std::ostream& os,
                              const std::vector<MetricValue>& metrics,
                              const SelfOverhead* overhead) {
    for (const MetricValue& mv : metrics) {
        const std::string name = prom_name(mv.name);
        os << "# TYPE " << name << ' ' << kind_name(mv.kind) << '\n';
        if (mv.kind == MetricKind::Histogram) {
            std::uint64_t cumulative = 0;
            for (std::size_t b = 0; b < mv.buckets.size(); ++b) {
                cumulative += mv.buckets[b];
                // Skip interior empty prefixes?  No: Prometheus expects
                // the full cumulative series; emit only buckets up to the
                // last non-empty one to keep the exposition compact, then
                // +Inf which always carries the total.
                if (cumulative > 0 || b + 1 == mv.buckets.size())
                    os << name << "_bucket{le=\""
                       << MetricsRegistry::bucket_upper_bound(b) << "\"} "
                       << cumulative << '\n';
            }
            os << name << "_bucket{le=\"+Inf\"} " << mv.count << '\n'
               << name << "_sum " << mv.sum << '\n'
               << name << "_count " << mv.count << '\n';
        } else {
            os << name << ' ' << mv.value << '\n';
        }
    }
    if (overhead != nullptr) {
        os << "# TYPE dsspy_self_overhead_estimated_slowdown gauge\n"
           << "dsspy_self_overhead_estimated_slowdown "
           << overhead->estimated_slowdown << '\n'
           << "# TYPE dsspy_self_overhead_fraction gauge\n"
           << "dsspy_self_overhead_fraction " << overhead->overhead_fraction
           << '\n'
           << "# TYPE dsspy_self_overhead_amortized_ns_per_event gauge\n"
           << "dsspy_self_overhead_amortized_ns_per_event "
           << overhead->amortized_ns_per_event << '\n';
    }
}

void write_prometheus_sample(std::ostream& os, std::string_view name,
                             std::span<const PromLabel> labels,
                             std::uint64_t value) {
    os << prom_name(name);
    // Label names cannot be escaped (the exposition format has no escape
    // inside the name position), so anything outside
    // [a-zA-Z_][a-zA-Z0-9_]* is sanitized to '_' — a hostile label name
    // must not be able to break out of the brace block or smuggle a
    // second sample line into the exposition.
    bool wrote_label = false;
    for (const PromLabel& label : labels) {
        const std::string safe = prom_label_name(label.first);
        if (safe.empty()) continue;
        os << (wrote_label ? ',' : '{') << safe << "=\""
           << prom_label_value(label.second) << '"';
        wrote_label = true;
    }
    if (wrote_label) os << '}';
    os << ' ' << value << '\n';
}

bool write_metrics_json_file(const std::string& path,
                             const std::vector<MetricValue>& metrics,
                             const SelfOverhead* overhead) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    write_metrics_json(out, metrics, overhead);
    out.flush();
    return static_cast<bool>(out);
}

}  // namespace dsspy::obs
