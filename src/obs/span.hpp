// Pipeline span tracer: times a scope into a histogram of the global
// MetricsRegistry (DESIGN.md §9).
//
//     void Dsspy::analyze(...) {
//         DSSPY_SPAN("analyze.total");
//         ...
//     }
//
// registers (once, via a function-local static) a histogram named
// "span.analyze.total" and records the scope's wall time in nanoseconds
// on every pass.  Timing uses support::now_ns() — the same monotonic
// source as the capture path, so span and capture timestamps compare
// directly.  When telemetry is disabled the timer costs one relaxed
// bool load at construction and nothing at destruction.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "support/stopwatch.hpp"

namespace dsspy::obs {

/// RAII scope timer; observes elapsed ns into `id` on destruction.
/// No-op (and clock-free) when telemetry was disabled at construction.
class SpanTimer {
public:
    explicit SpanTimer(MetricId id) noexcept
        : id_(id), start_ns_(enabled() ? support::now_ns() : 0) {}

    ~SpanTimer() {
        if (start_ns_ != 0)
            MetricsRegistry::global().observe(id_,
                                              support::now_ns() - start_ns_);
    }

    SpanTimer(const SpanTimer&) = delete;
    SpanTimer& operator=(const SpanTimer&) = delete;

private:
    MetricId id_;
    std::uint64_t start_ns_;
};

/// Register (once) the span histogram for `name` under "span.<name>".
inline MetricId span_metric(std::string_view name) {
    return MetricsRegistry::global().histogram(std::string("span.") +
                                               std::string(name));
}

}  // namespace dsspy::obs

#define DSSPY_OBS_CAT2(a, b) a##b
#define DSSPY_OBS_CAT(a, b) DSSPY_OBS_CAT2(a, b)
#define DSSPY_SPAN_IMPL(name, line)                                        \
    static const ::dsspy::obs::MetricId DSSPY_OBS_CAT(dsspy_span_id_,      \
                                                      line) =              \
        ::dsspy::obs::span_metric(name);                                   \
    const ::dsspy::obs::SpanTimer DSSPY_OBS_CAT(dsspy_span_timer_, line) { \
        DSSPY_OBS_CAT(dsspy_span_id_, line)                                \
    }

/// Time the enclosing scope into histogram "span.<name>".  `name` must be
/// a string literal (or stable string) unique per call site meaning.
#define DSSPY_SPAN(name) DSSPY_SPAN_IMPL(name, __LINE__)
