#include "obs/self_overhead.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>

#include "support/stopwatch.hpp"

namespace dsspy::obs {

namespace {

/// Synthetic stand-in for runtime::AccessEvent (obs stays independent of
/// runtime/): same size class, same field-assembly work per iteration.
struct FakeEvent {
    std::uint64_t seq;
    std::uint64_t time_ns;
    std::int64_t position;
    std::uint32_t instance;
    std::uint32_t size;
};

/// Sink that survives optimization: folding the buffer into an atomic
/// keeps the compiler from deleting the calibration loop.
std::atomic<std::uint64_t> g_calibration_sink{0};

/// ns/event of assembling kIters events with one clock read per `stride`
/// iterations.  Best of `rounds` (minimum is the noise-robust statistic).
double calibrate_ns_per_event(std::uint32_t stride, int rounds) {
    constexpr std::size_t kIters = 1u << 15;
    std::array<FakeEvent, 256> ring{};
    double best = 1e100;
    for (int r = 0; r < rounds; ++r) {
        std::uint64_t ts = support::now_ns();
        std::uint32_t countdown = 0;
        const std::uint64_t t0 = support::now_ns();
        for (std::size_t i = 0; i < kIters; ++i) {
            if (countdown == 0) {
                ts = support::now_ns();
                countdown = stride;
            }
            --countdown;
            FakeEvent& ev = ring[i & (ring.size() - 1)];
            ev.seq = i;
            ev.time_ns = ts;
            ev.position = static_cast<std::int64_t>(i);
            ev.instance = static_cast<std::uint32_t>(i & 0xff);
            ev.size = static_cast<std::uint32_t>(i + 1);
        }
        const std::uint64_t t1 = support::now_ns();
        std::uint64_t fold = 0;
        for (const FakeEvent& ev : ring) fold += ev.time_ns + ev.seq;
        g_calibration_sink.fetch_add(fold, std::memory_order_relaxed);
        best = std::min(best, static_cast<double>(t1 - t0) /
                                  static_cast<double>(kIters));
    }
    return best;
}

}  // namespace

SelfOverhead estimate_self_overhead(std::uint64_t events,
                                    std::uint64_t capture_wall_ns,
                                    std::uint32_t timestamp_stride) {
    SelfOverhead est;
    est.events = events;
    est.capture_wall_ns = capture_wall_ns;
    constexpr int kRounds = 3;
    est.instrumented_ns_per_event = calibrate_ns_per_event(1, kRounds);
    est.amortized_ns_per_event =
        calibrate_ns_per_event(std::max<std::uint32_t>(timestamp_stride, 1),
                               kRounds);
    est.capture_cost_ns =
        static_cast<double>(events) * est.amortized_ns_per_event;
    if (events == 0 || capture_wall_ns == 0) return est;
    const double wall = static_cast<double>(capture_wall_ns);
    // Application time = wall minus estimated capture time; clamp so a
    // tiny window (or noisy calibration) cannot send the fraction to
    // infinity — the window itself bounds what capture can have cost.
    const double app_ns = std::max(wall - est.capture_cost_ns, wall * 0.01);
    est.overhead_fraction = std::min(est.capture_cost_ns, wall) / app_ns;
    est.estimated_slowdown = 1.0 + est.overhead_fraction;
    return est;
}

std::uint64_t sample_peak_rss_bytes() {
#if defined(__linux__)
    std::FILE* f = std::fopen("/proc/self/status", "r");
    if (f == nullptr) return 0;
    char line[256];
    std::uint64_t kb = 0;
    while (std::fgets(line, sizeof(line), f) != nullptr) {
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            std::sscanf(line + 6, "%llu",
                        reinterpret_cast<unsigned long long*>(&kb));
            break;
        }
    }
    std::fclose(f);
    return kb * 1024;
#else
    return 0;
#endif
}

}  // namespace dsspy::obs
