// Self-telemetry metrics registry (DESIGN.md §9).
//
// The profiler's own health — event throughput, collector backpressure,
// trace I/O volume, analysis stage latency — must be observable online,
// not just in offline benches: a profiler is only trusted at production
// scale when it can account for its own overhead and data loss live.
// This registry is the process-wide home for those numbers.
//
// Design constraints, in priority order:
//   * Zero-cost when disabled: every instrumentation site guards on
//     `obs::enabled()` (one relaxed atomic bool load); nothing else runs.
//   * No contention when enabled: metrics are sharded per thread.  Each
//     recording thread owns a fixed block of cells (one per counter/gauge,
//     kHistogramBuckets+2 per histogram) and updates them with relaxed
//     single-writer atomics — no locks, no fetch_add contention, no false
//     sharing with other threads' shards.  `collect()` aggregates across
//     shards on read (counters/histograms sum, gauges take the max).
//   * Deterministic on quiesced reads: once writer threads are quiesced,
//     aggregate totals are exact and independent of how work was sharded.
//
// A MetricId is the metric's cell offset within a shard, so the hot-path
// update is a single indexed relaxed store — no name lookup, no
// indirection.  Registration (cold, mutex-protected) interns by name and
// is idempotent: re-registering a name of the same kind returns the same
// id, so call sites may register lazily via function-local statics.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace dsspy::obs {

using MetricId = std::uint32_t;

/// Returned when registration fails (cell budget exhausted or a name is
/// re-registered with a different kind); every operation on it is a no-op.
inline constexpr MetricId kInvalidMetric = ~MetricId{0};

/// Histogram bucket count (a histogram occupies kHistogramBuckets + 2 =
/// 34 cells per shard: count, sum, then the buckets).  Bucket 0 counts
/// values in [0, 2); bucket i>0 counts [2^i, 2^(i+1)); the last bucket,
/// [2^31, inf), absorbs everything above.  Nanosecond observations thus
/// resolve distinctly from 1 ns up to 2^31 ns ≈ 2.1 s; anything slower
/// lands in the final catch-all bucket.
inline constexpr std::size_t kHistogramBuckets = 32;

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

namespace detail {
/// Process-wide enable flag for the global registry; read via enabled().
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when self-telemetry is on.  Instrumentation sites check this (one
/// relaxed load) before touching the registry — the entire telemetry layer
/// costs one predictable branch per site when disabled.
[[nodiscard]] inline bool enabled() noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
}

/// One aggregated metric as returned by MetricsRegistry::collect().
struct MetricValue {
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t value = 0;  ///< Counter: sum over shards.  Gauge: max.
    std::uint64_t count = 0;  ///< Histogram: total observations.
    std::uint64_t sum = 0;    ///< Histogram: sum of observed values.
    std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// Process-wide metrics registry; see the file comment for the design.
///
/// Threading contract: registration, updates, collect(), and reset() are
/// all safe from any thread.  collect() while writers are running yields a
/// consistent-enough live snapshot (each cell is atomic; cross-cell skew
/// is possible); after writers quiesce it is exact.  Destroying a
/// registry while another thread still updates it is a use-after-free —
/// join instrumented threads first (only tests construct registries;
/// production code uses the immortal global()).
class MetricsRegistry {
public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry&) = delete;
    MetricsRegistry& operator=(const MetricsRegistry&) = delete;

    /// The process-wide registry every DSSPY_SPAN and pipeline
    /// instrumentation site reports into.
    static MetricsRegistry& global();

    /// Register (or look up) a metric.  Cold path; thread-safe.
    MetricId counter(std::string_view name);
    MetricId gauge(std::string_view name);
    MetricId histogram(std::string_view name);

    /// Increment a counter.  Hot path: one relaxed load+store on the
    /// calling thread's shard.
    void add(MetricId id, std::uint64_t delta = 1) noexcept;

    /// Set a gauge on this thread's shard (aggregated as max on read).
    void gauge_set(MetricId id, std::uint64_t value) noexcept;

    /// Raise a gauge to `value` if larger (high-water mark).
    void gauge_max(MetricId id, std::uint64_t value) noexcept;

    /// Record one observation into a histogram.
    void observe(MetricId id, std::uint64_t value) noexcept;

    /// Toggle telemetry.  On the global registry this also flips the flag
    /// behind obs::enabled().
    void set_enabled(bool on) noexcept;
    [[nodiscard]] bool is_enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Aggregate every registered metric across all shards, sorted by
    /// name (deterministic export order).
    [[nodiscard]] std::vector<MetricValue> collect() const;

    /// Zero every cell in every shard; registrations are kept.  Callers
    /// must quiesce writers first (tests, CLI reuse).
    void reset() noexcept;

    /// Number of per-thread shards allocated so far.
    [[nodiscard]] std::size_t shard_count() const noexcept;

    /// Registrations refused because the cell budget was exhausted.
    [[nodiscard]] std::uint64_t dropped_registrations() const noexcept {
        return dropped_registrations_.load(std::memory_order_relaxed);
    }

    /// Bucket index a value lands in: 0 for [0,2), else bit_width-1,
    /// clamped to the last bucket.
    [[nodiscard]] static std::size_t bucket_index(
        std::uint64_t value) noexcept {
        if (value < 2) return 0;
        const std::size_t idx = static_cast<std::size_t>(
            std::bit_width(value)) - 1;
        return idx < kHistogramBuckets ? idx : kHistogramBuckets - 1;
    }

    /// Inclusive upper bound of bucket i (2^(i+1) - 1); the last bucket is
    /// unbounded.
    [[nodiscard]] static std::uint64_t bucket_upper_bound(
        std::size_t bucket) noexcept {
        return (std::uint64_t{2} << bucket) - 1;
    }

private:
    /// Fixed per-shard cell budget: 4096 u64 cells = 32 KiB per recording
    /// thread, room for ~hundreds of scalars plus dozens of histograms.
    static constexpr std::size_t kShardCells = 4096;

    /// Histogram cell layout at offset o: [o]=count, [o+1]=sum,
    /// [o+2..o+2+kHistogramBuckets) = buckets.
    static constexpr std::uint32_t kHistogramCells =
        static_cast<std::uint32_t>(kHistogramBuckets) + 2;

    struct Shard {
        std::array<std::atomic<std::uint64_t>, kShardCells> cells{};
        Shard* next = nullptr;  ///< Lock-free registration list link.
    };

    struct Desc {
        std::string name;
        MetricKind kind;
        MetricId offset;
    };

    Shard& shard_for_current_thread() noexcept;
    MetricId register_metric(std::string_view name, MetricKind kind,
                             std::uint32_t cells);

    const std::uint64_t token_;  ///< Unique id for thread-local caching.
    std::atomic<bool> enabled_{false};
    std::atomic<Shard*> shards_head_{nullptr};
    std::atomic<std::uint64_t> dropped_registrations_{0};

    mutable std::mutex reg_mutex_;  ///< Guards descs_ / cells_used_.
    std::vector<Desc> descs_;
    std::uint32_t cells_used_ = 0;
};

}  // namespace dsspy::obs
