#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>

namespace dsspy::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

std::uint64_t next_recorder_token() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Small stable per-thread index for SpanRecord::thread (and the
/// exporter's tid tracks); issued once per thread, process-wide.
std::uint32_t current_thread_index() noexcept {
    static std::atomic<std::uint32_t> counter{1};
    thread_local const std::uint32_t index =
        counter.fetch_add(1, std::memory_order_relaxed);
    return index;
}

/// Thread-local cache resolving (recorder token) -> buffer without
/// locking; same LRU-shift scheme as the metrics registry's shard cache.
/// Tokens are never reused, so entries for destroyed recorders can only
/// go stale, never alias a live one.
struct BufferSlot {
    std::uint64_t token = 0;
    void* buffer = nullptr;
};

thread_local std::array<BufferSlot, 4> t_buffer_slots{};

/// The innermost open ScopedSpan on this thread (global recorder only).
thread_local TraceContext t_current_context{};

}  // namespace

TraceContext current_trace_context() noexcept { return t_current_context; }

TraceRecorder::TraceRecorder() : token_(next_recorder_token()) {}

TraceRecorder::~TraceRecorder() {
    ThreadBuffer* buf = buffers_head_.load(std::memory_order_acquire);
    while (buf != nullptr) {
        ThreadBuffer* next = buf->next;
        Chunk* chunk = buf->head.next.load(std::memory_order_acquire);
        while (chunk != nullptr) {
            Chunk* chunk_next = chunk->next.load(std::memory_order_acquire);
            delete chunk;
            chunk = chunk_next;
        }
        delete buf;
        buf = next;
    }
}

TraceRecorder& TraceRecorder::global() {
    static TraceRecorder recorder;
    return recorder;
}

void TraceRecorder::set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
    if (this == &global())
        detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

TraceRecorder::ThreadBuffer&
TraceRecorder::buffer_for_current_thread() noexcept {
    for (BufferSlot& slot : t_buffer_slots) {
        if (slot.token == token_)
            return *static_cast<ThreadBuffer*>(slot.buffer);
    }
    auto* buf = new ThreadBuffer(current_thread_index());
    ThreadBuffer* head = buffers_head_.load(std::memory_order_relaxed);
    do {
        buf->next = head;
    } while (!buffers_head_.compare_exchange_weak(
        head, buf, std::memory_order_release, std::memory_order_relaxed));
    for (std::size_t i = t_buffer_slots.size() - 1; i > 0; --i)
        t_buffer_slots[i] = t_buffer_slots[i - 1];
    t_buffer_slots[0] = BufferSlot{token_, buf};
    return *buf;
}

void TraceRecorder::publish(SpanRecord&& rec) noexcept {
    const std::uint64_t duration =
        rec.end_ns > rec.start_ns ? rec.end_ns - rec.start_ns : 0;
    const std::uint64_t slow_ns =
        slow_op_threshold_ns_.load(std::memory_order_relaxed);
    if (slow_ns != 0 && duration >= slow_ns) {
        slow_ops_.fetch_add(1, std::memory_order_relaxed);
        std::fprintf(stderr, "[slow-op] %s %.2f ms (span %llu, thread %u)\n",
                     rec.name, static_cast<double>(duration) / 1e6,
                     static_cast<unsigned long long>(rec.id), rec.thread);
    }
    if (total_spans_.fetch_add(1, std::memory_order_relaxed) >=
        span_cap_.load(std::memory_order_relaxed)) {
        total_spans_.fetch_sub(1, std::memory_order_relaxed);
        dropped_spans_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    ThreadBuffer& buf = buffer_for_current_thread();
    Chunk* tail = buf.tail;
    std::uint32_t used = tail->used.load(std::memory_order_relaxed);
    if (used == kChunkSpans) {
        auto* next = new Chunk();
        tail->next.store(next, std::memory_order_release);
        buf.tail = next;
        tail = next;
        used = 0;
    }
    tail->spans[used] = std::move(rec);
    // Release-publish: a snapshot() that sees this count sees the record.
    tail->used.store(used + 1, std::memory_order_release);
}

ManualSpan TraceRecorder::begin_span(const char* name,
                                     TraceContext parent) noexcept {
    ManualSpan span;
    span.name = name;
    if (!is_enabled()) return span;
    const SpanId id = next_span_id();
    span.ctx.span_id = id;
    span.ctx.root_id = parent.valid() ? parent.root_id : id;
    span.start_ns = support::now_ns();
    span.parent = parent.span_id;
    return span;
}

void TraceRecorder::end_span(const ManualSpan& span,
                             std::string annotations) {
    if (!span.ctx.valid()) return;
    SpanRecord rec;
    rec.id = span.ctx.span_id;
    rec.parent = span.parent;
    rec.root = span.ctx.root_id;
    rec.thread = current_thread_index();
    rec.name = span.name;
    rec.start_ns = span.start_ns;
    rec.end_ns = support::now_ns();
    rec.annotations = std::move(annotations);
    publish(std::move(rec));
}

std::vector<SpanRecord> TraceRecorder::snapshot() const {
    std::vector<SpanRecord> out;
    for (const ThreadBuffer* buf =
             buffers_head_.load(std::memory_order_acquire);
         buf != nullptr; buf = buf->next) {
        for (const Chunk* chunk = &buf->head; chunk != nullptr;
             chunk = chunk->next.load(std::memory_order_acquire)) {
            const std::uint32_t used =
                chunk->used.load(std::memory_order_acquire);
            for (std::uint32_t i = 0; i < used; ++i)
                out.push_back(chunk->spans[i]);
        }
    }
    std::sort(out.begin(), out.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                  return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                                  : a.id < b.id;
              });
    return out;
}

void TraceRecorder::reset() noexcept {
    for (ThreadBuffer* buf = buffers_head_.load(std::memory_order_acquire);
         buf != nullptr; buf = buf->next) {
        // Contract: writers are quiesced, so touching the owner-side
        // cursor and freeing overflow chunks is safe here.
        Chunk* chunk = buf->head.next.load(std::memory_order_acquire);
        while (chunk != nullptr) {
            Chunk* next = chunk->next.load(std::memory_order_acquire);
            delete chunk;
            chunk = next;
        }
        buf->head.next.store(nullptr, std::memory_order_release);
        buf->head.used.store(0, std::memory_order_release);
        buf->tail = &buf->head;
        buf->depth.store(0, std::memory_order_release);
    }
    total_spans_.store(0, std::memory_order_relaxed);
    dropped_spans_.store(0, std::memory_order_relaxed);
    slow_ops_.store(0, std::memory_order_relaxed);
}

OpenSpanInfo TraceRecorder::slowest_open_span() const noexcept {
    OpenSpanInfo info;
    info.start_ns = ~std::uint64_t{0};
    for (const ThreadBuffer* buf =
             buffers_head_.load(std::memory_order_acquire);
         buf != nullptr; buf = buf->next) {
        const std::uint32_t depth =
            std::min<std::uint32_t>(
                buf->depth.load(std::memory_order_acquire),
                static_cast<std::uint32_t>(kOpenDepth));
        info.depth = std::max(info.depth, depth);
        for (std::uint32_t i = 0; i < depth; ++i) {
            const char* name =
                buf->open[i].name.load(std::memory_order_acquire);
            const std::uint64_t start =
                buf->open[i].start_ns.load(std::memory_order_acquire);
            if (name != nullptr && start != 0 && start < info.start_ns) {
                info.name = name;
                info.start_ns = start;
            }
        }
    }
    if (info.name == nullptr) info.start_ns = 0;
    return info;
}

void TraceRecorder::open_push(ThreadBuffer& buf, const char* name,
                              std::uint64_t start_ns) noexcept {
    const std::uint32_t depth = buf.depth.load(std::memory_order_relaxed);
    if (depth < kOpenDepth) {
        buf.open[depth].name.store(name, std::memory_order_relaxed);
        buf.open[depth].start_ns.store(start_ns, std::memory_order_relaxed);
    }
    buf.depth.store(depth + 1, std::memory_order_release);
}

void TraceRecorder::open_pop(ThreadBuffer& buf) noexcept {
    const std::uint32_t depth = buf.depth.load(std::memory_order_relaxed);
    if (depth == 0) return;
    if (depth <= kOpenDepth) {
        buf.open[depth - 1].name.store(nullptr, std::memory_order_relaxed);
        buf.open[depth - 1].start_ns.store(0, std::memory_order_relaxed);
    }
    buf.depth.store(depth - 1, std::memory_order_release);
}

ScopedSpan::ScopedSpan(const char* name, const TraceContext* parent,
                       MetricId metric) noexcept
    : name_(name), metric_(metric) {
    // Metric leg: identical to the old SpanTimer (span.hpp).
    if (metric_ != kInvalidMetric && enabled())
        metric_start_ns_ = support::now_ns();
    if (!trace_enabled()) return;
    TraceRecorder& recorder = TraceRecorder::global();
    const TraceContext effective_parent =
        parent != nullptr ? *parent : t_current_context;
    const SpanId id = recorder.next_span_id();
    ctx_.span_id = id;
    ctx_.root_id = effective_parent.valid() ? effective_parent.root_id : id;
    parent_ = effective_parent.span_id;
    start_ns_ = metric_start_ns_ != 0 ? metric_start_ns_ : support::now_ns();
    saved_ = t_current_context;
    t_current_context = ctx_;
    restore_ = true;
    TraceRecorder::ThreadBuffer& buf =
        recorder.buffer_for_current_thread();
    buffer_ = &buf;
    recorder.open_push(buf, name_, start_ns_);
}

ScopedSpan::~ScopedSpan() {
    const std::uint64_t end_ns =
        (ctx_.valid() || metric_start_ns_ != 0) ? support::now_ns() : 0;
    if (ctx_.valid()) {
        if (restore_) t_current_context = saved_;
        TraceRecorder& recorder = TraceRecorder::global();
        recorder.open_pop(
            *static_cast<TraceRecorder::ThreadBuffer*>(buffer_));
        SpanRecord rec;
        rec.id = ctx_.span_id;
        rec.parent = parent_;
        rec.root = ctx_.root_id;
        rec.thread = current_thread_index();
        rec.name = name_;
        rec.start_ns = start_ns_;
        rec.end_ns = end_ns;
        rec.annotations = std::move(annotations_);
        recorder.publish(std::move(rec));
    }
    if (metric_start_ns_ != 0)
        MetricsRegistry::global().observe(metric_,
                                          end_ns - metric_start_ns_);
}

void ScopedSpan::annotate(std::string_view key, std::string_view value) {
    if (!ctx_.valid()) return;
    if (!annotations_.empty()) annotations_ += ' ';
    annotations_ += key;
    annotations_ += '=';
    annotations_ += value;
}

}  // namespace dsspy::obs
