#include "obs/metrics.hpp"

#include <algorithm>

namespace dsspy::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

namespace {

std::uint64_t next_registry_token() noexcept {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local cache resolving (registry token) -> shard without locking
/// on the hot path; same LRU-shift scheme as the session's channel cache.
/// Tokens are never reused, so entries for destroyed registries can only
/// go stale, never alias a live one.
struct ShardSlot {
    std::uint64_t token = 0;
    void* shard = nullptr;
};

thread_local std::array<ShardSlot, 4> t_shard_slots{};

}  // namespace

MetricsRegistry::MetricsRegistry() : token_(next_registry_token()) {}

MetricsRegistry::~MetricsRegistry() {
    Shard* shard = shards_head_.load(std::memory_order_acquire);
    while (shard != nullptr) {
        Shard* next = shard->next;
        delete shard;
        shard = next;
    }
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

void MetricsRegistry::set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
    if (this == &global())
        detail::g_enabled.store(on, std::memory_order_relaxed);
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_current_thread() noexcept {
    for (ShardSlot& slot : t_shard_slots) {
        if (slot.token == token_) return *static_cast<Shard*>(slot.shard);
    }
    // Slow path: allocate this thread's shard and push-front onto the
    // lock-free list — registration never stalls readers or other writers.
    auto* shard = new Shard();
    Shard* head = shards_head_.load(std::memory_order_relaxed);
    do {
        shard->next = head;
    } while (!shards_head_.compare_exchange_weak(
        head, shard, std::memory_order_release, std::memory_order_relaxed));
    for (std::size_t i = t_shard_slots.size() - 1; i > 0; --i)
        t_shard_slots[i] = t_shard_slots[i - 1];
    t_shard_slots[0] = ShardSlot{token_, shard};
    return *shard;
}

MetricId MetricsRegistry::register_metric(std::string_view name,
                                          MetricKind kind,
                                          std::uint32_t cells) {
    const std::lock_guard<std::mutex> lock(reg_mutex_);
    for (const Desc& desc : descs_) {
        if (desc.name == name)
            return desc.kind == kind ? desc.offset : kInvalidMetric;
    }
    if (cells_used_ + cells > kShardCells) {
        dropped_registrations_.fetch_add(1, std::memory_order_relaxed);
        return kInvalidMetric;
    }
    const MetricId offset = cells_used_;
    cells_used_ += cells;
    descs_.push_back(Desc{std::string(name), kind, offset});
    return offset;
}

MetricId MetricsRegistry::counter(std::string_view name) {
    return register_metric(name, MetricKind::Counter, 1);
}

MetricId MetricsRegistry::gauge(std::string_view name) {
    return register_metric(name, MetricKind::Gauge, 1);
}

MetricId MetricsRegistry::histogram(std::string_view name) {
    return register_metric(name, MetricKind::Histogram, kHistogramCells);
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) noexcept {
    if (id >= kShardCells) return;
    // Single writer per cell (the owning thread): a relaxed load+store is
    // enough and avoids the lock prefix of fetch_add.
    std::atomic<std::uint64_t>& cell = shard_for_current_thread().cells[id];
    cell.store(cell.load(std::memory_order_relaxed) + delta,
               std::memory_order_relaxed);
}

void MetricsRegistry::gauge_set(MetricId id, std::uint64_t value) noexcept {
    if (id >= kShardCells) return;
    shard_for_current_thread().cells[id].store(value,
                                               std::memory_order_relaxed);
}

void MetricsRegistry::gauge_max(MetricId id, std::uint64_t value) noexcept {
    if (id >= kShardCells) return;
    std::atomic<std::uint64_t>& cell = shard_for_current_thread().cells[id];
    if (cell.load(std::memory_order_relaxed) < value)
        cell.store(value, std::memory_order_relaxed);
}

void MetricsRegistry::observe(MetricId id, std::uint64_t value) noexcept {
    // 64-bit sum: id + kHistogramCells must not wrap for kInvalidMetric.
    if (std::uint64_t{id} + kHistogramCells > kShardCells) return;
    Shard& shard = shard_for_current_thread();
    const auto bump = [&shard](std::size_t cell, std::uint64_t delta) {
        std::atomic<std::uint64_t>& c = shard.cells[cell];
        c.store(c.load(std::memory_order_relaxed) + delta,
                std::memory_order_relaxed);
    };
    bump(id, 1);
    bump(id + 1, value);
    bump(id + 2 + bucket_index(value), 1);
}

std::vector<MetricValue> MetricsRegistry::collect() const {
    std::vector<Desc> descs;
    {
        const std::lock_guard<std::mutex> lock(reg_mutex_);
        descs = descs_;
    }
    std::vector<MetricValue> out;
    out.reserve(descs.size());
    for (const Desc& desc : descs) {
        MetricValue mv;
        mv.name = desc.name;
        mv.kind = desc.kind;
        for (const Shard* shard = shards_head_.load(std::memory_order_acquire);
             shard != nullptr; shard = shard->next) {
            const auto cell = [shard](std::size_t i) {
                return shard->cells[i].load(std::memory_order_relaxed);
            };
            switch (desc.kind) {
                case MetricKind::Counter:
                    mv.value += cell(desc.offset);
                    break;
                case MetricKind::Gauge:
                    mv.value = std::max(mv.value, cell(desc.offset));
                    break;
                case MetricKind::Histogram:
                    mv.count += cell(desc.offset);
                    mv.sum += cell(desc.offset + 1);
                    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
                        mv.buckets[b] += cell(desc.offset + 2 + b);
                    break;
            }
        }
        out.push_back(std::move(mv));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricValue& a, const MetricValue& b) {
                  return a.name < b.name;
              });
    return out;
}

void MetricsRegistry::reset() noexcept {
    for (Shard* shard = shards_head_.load(std::memory_order_acquire);
         shard != nullptr; shard = shard->next) {
        for (std::atomic<std::uint64_t>& cell : shard->cells)
            cell.store(0, std::memory_order_relaxed);
    }
}

std::size_t MetricsRegistry::shard_count() const noexcept {
    std::size_t n = 0;
    for (const Shard* shard = shards_head_.load(std::memory_order_acquire);
         shard != nullptr; shard = shard->next)
        ++n;
    return n;
}

}  // namespace dsspy::obs
