// Hierarchical span tracing (DESIGN.md §13).
//
// Where the metrics registry (metrics.hpp) answers "how much time does
// stage X cost in aggregate", this recorder answers "where did THIS run
// spend it": every instrumented scope records one SpanRecord with an id,
// a parent link, a root id, the recording thread, and optional key=value
// annotations — a forest of span trees, one root per pipeline run (or
// per serve-daemon tenant).  trace_export.hpp renders a snapshot as
// Chrome trace-event / Perfetto JSON or a compact text summary.
//
// Design constraints, in the same priority order as the registry:
//   * Zero-cost when disabled: every site guards on `trace_enabled()`
//     (one relaxed atomic bool load); nothing else runs.  The recorder is
//     enabled independently of the metrics registry (`--trace-spans-out`
//     vs `--metrics-out`), and nothing rides the per-event record() hot
//     path — spans instrument the cold branches around it (seq refill,
//     collector drain, stage boundaries).
//   * No contention when enabled: spans land in per-thread buffers.
//     Each recording thread owns a chunked append-only list registered on
//     a lock-free CAS list (the same TLS-shard discipline as
//     MetricsRegistry); the owner publishes each record with one release
//     store, so snapshot() can read a live timeline without stopping
//     writers (the serve daemon's /tenants/<id>/trace endpoint does).
//   * Bounded memory: a process-wide span cap; past it new spans are
//     counted as dropped, never buffered.
//
// Parent links come from a per-thread context stack maintained by the
// RAII ScopedSpan, so nesting works without any plumbing:
//
//     void PipelineRunner::run(...) {
//         DSSPY_TRACE_SPAN("run");           // becomes a root span
//         ...
//         analyze(...);                      // spans inside nest under it
//     }
//
// Work that fans out to other threads (pool shards, daemon connection
// threads) propagates the tree explicitly: capture current_trace_context()
// before the fan-out and open children with DSSPY_TRACE_SPAN_UNDER (or
// the manual begin_span/end_span pair for spans whose begin and end
// happen on different threads, like a tenant's whole session).
//
// `name` must be a string literal (or otherwise immortal string): records
// and the cross-thread open-span table store the pointer, not a copy.
// Dynamic detail goes in annotations.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "support/stopwatch.hpp"

namespace dsspy::obs {

using SpanId = std::uint64_t;

/// A node's position in the span forest: its own id and the id of the
/// tree's root.  span_id 0 means "no span" (tracing disabled or span
/// budget exhausted); such a context parents children as new roots.
struct TraceContext {
    SpanId span_id = 0;
    SpanId root_id = 0;

    [[nodiscard]] bool valid() const noexcept { return span_id != 0; }
};

/// One completed span.  start/end use support::now_ns() — the same
/// monotonic source as capture timestamps and DSSPY_SPAN histograms, so
/// all three compare directly.
struct SpanRecord {
    SpanId id = 0;
    SpanId parent = 0;  ///< 0 for roots.
    SpanId root = 0;    ///< Root of this span's tree (== id for roots).
    std::uint32_t thread = 0;  ///< Small per-process thread index.
    const char* name = "";     ///< Immortal string, see the file comment.
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
    std::string annotations;  ///< "key=value key2=value2", often empty.
};

/// Live view for the watch ticker: the deepest open-span nesting across
/// all threads and the longest-open span (earliest start that has not
/// ended).  `name` is null when nothing is open.
struct OpenSpanInfo {
    const char* name = nullptr;
    std::uint64_t start_ns = 0;
    std::uint32_t depth = 0;
};

namespace detail {
/// Process-wide enable flag for the global recorder; read trace_enabled().
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True when span tracing is on (one relaxed load; the whole tracing
/// layer costs one predictable branch per site when off).
[[nodiscard]] inline bool trace_enabled() noexcept {
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// A manually-managed span: begin and end may happen on different
/// threads (the serve daemon opens one per tenant on the connection
/// thread and may finalize it from the shutdown path).
struct ManualSpan {
    TraceContext ctx;
    SpanId parent = 0;
    std::uint64_t start_ns = 0;
    const char* name = "";
};

/// Process-wide span recorder; see the file comment for the design.
///
/// Threading contract: begin/end/record and snapshot() are safe from any
/// thread; snapshot() while writers run yields every span published
/// before the call.  reset() requires quiesced writers (tests, bench
/// rounds), like MetricsRegistry::reset().  Only tests construct
/// recorders; production code uses the immortal global().
class TraceRecorder {
public:
    TraceRecorder();
    ~TraceRecorder();

    TraceRecorder(const TraceRecorder&) = delete;
    TraceRecorder& operator=(const TraceRecorder&) = delete;

    /// The process-wide recorder every DSSPY_TRACE_SPAN reports into.
    static TraceRecorder& global();

    /// Toggle tracing.  On the global recorder this also flips the flag
    /// behind trace_enabled().
    void set_enabled(bool on) noexcept;
    [[nodiscard]] bool is_enabled() const noexcept {
        return enabled_.load(std::memory_order_relaxed);
    }

    /// Spans at least this long log one `[slow-op]` line to stderr when
    /// they end (0 disables; `--slow-op-ms=N` sets it).
    void set_slow_op_threshold_ns(std::uint64_t ns) noexcept {
        slow_op_threshold_ns_.store(ns, std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t slow_op_threshold_ns() const noexcept {
        return slow_op_threshold_ns_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t slow_ops() const noexcept {
        return slow_ops_.load(std::memory_order_relaxed);
    }

    /// Open a span whose end may come from another thread.  A zero
    /// `parent` starts a new tree.  Returns an inert span (ctx invalid)
    /// when tracing is off.
    [[nodiscard]] ManualSpan begin_span(const char* name,
                                        TraceContext parent = {}) noexcept;

    /// Complete a begin_span() span; no-op for inert spans.  Safe from
    /// any thread (the record lands in the calling thread's buffer).
    void end_span(const ManualSpan& span, std::string annotations = {});

    /// Every span published so far, sorted by start time.  Safe while
    /// writers are running (live daemon timelines read this).
    [[nodiscard]] std::vector<SpanRecord> snapshot() const;

    /// Drop every recorded span; ids keep increasing.  Callers must
    /// quiesce writers first (tests, bench rounds between measurements).
    void reset() noexcept;

    [[nodiscard]] std::uint64_t spans_recorded() const noexcept {
        return total_spans_.load(std::memory_order_relaxed);
    }

    /// Spans refused because the process-wide buffer cap was reached.
    [[nodiscard]] std::uint64_t spans_dropped() const noexcept {
        return dropped_spans_.load(std::memory_order_relaxed);
    }

    /// Live open-span view for the watch ticker; see OpenSpanInfo.
    [[nodiscard]] OpenSpanInfo slowest_open_span() const noexcept;

    /// Process-wide cap on buffered spans (default kDefaultSpanCap);
    /// tests shrink it to exercise the drop path.
    void set_span_cap(std::uint64_t cap) noexcept {
        span_cap_.store(cap, std::memory_order_relaxed);
    }

    /// 256 Ki buffered spans ≈ 24 MiB worst case — hours of pipeline
    /// spans; a long-lived daemon that exhausts it keeps serving with
    /// spans_dropped() accounting for the loss.
    static constexpr std::uint64_t kDefaultSpanCap = 1u << 18;

private:
    friend class ScopedSpan;

    /// Spans per buffer chunk; chunks are allocated on the owning thread
    /// and linked with release stores (readers acquire).
    static constexpr std::size_t kChunkSpans = 256;

    /// Cross-thread-visible open-span stack depth per thread; deeper
    /// nesting still records, it just leaves the live view.
    static constexpr std::size_t kOpenDepth = 16;

    struct Chunk {
        std::array<SpanRecord, kChunkSpans> spans{};
        std::atomic<std::uint32_t> used{0};
        std::atomic<Chunk*> next{nullptr};
    };

    struct OpenSlot {
        std::atomic<const char*> name{nullptr};
        std::atomic<std::uint64_t> start_ns{0};
    };

    struct ThreadBuffer {
        explicit ThreadBuffer(std::uint32_t index) : thread_index(index) {}
        const std::uint32_t thread_index;
        Chunk head;             ///< First chunk, inline.
        Chunk* tail = &head;    ///< Owner-only append cursor.
        std::array<OpenSlot, kOpenDepth> open{};
        std::atomic<std::uint32_t> depth{0};
        ThreadBuffer* next = nullptr;  ///< Lock-free registration link.
    };

    ThreadBuffer& buffer_for_current_thread() noexcept;

    /// Append one completed record to this thread's buffer (or count it
    /// as dropped past the cap), then run the slow-op check.
    void publish(SpanRecord&& rec) noexcept;

    [[nodiscard]] SpanId next_span_id() noexcept {
        return next_id_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Cross-thread open-span table maintenance (ScopedSpan push/pop).
    void open_push(ThreadBuffer& buf, const char* name,
                   std::uint64_t start_ns) noexcept;
    void open_pop(ThreadBuffer& buf) noexcept;

    const std::uint64_t token_;  ///< Unique id for thread-local caching.
    std::atomic<bool> enabled_{false};
    std::atomic<ThreadBuffer*> buffers_head_{nullptr};
    std::atomic<SpanId> next_id_{1};
    std::atomic<std::uint64_t> total_spans_{0};
    std::atomic<std::uint64_t> dropped_spans_{0};
    std::atomic<std::uint64_t> span_cap_{kDefaultSpanCap};
    std::atomic<std::uint64_t> slow_op_threshold_ns_{0};
    std::atomic<std::uint64_t> slow_ops_{0};
};

/// The calling thread's innermost open ScopedSpan context on the global
/// recorder ({} outside any span).  Capture this before fanning work out
/// to a pool and pass it to DSSPY_TRACE_SPAN_UNDER in the workers.
[[nodiscard]] TraceContext current_trace_context() noexcept;

/// RAII span: one trace record on the global recorder (when tracing is
/// on) plus, optionally, an observation into a "span.<name>" histogram
/// (when metrics are on) — so DSSPY_TRACE_SPAN sites keep feeding the
/// exact histograms DSSPY_SPAN fed before the upgrade.  Costs two
/// relaxed loads when both layers are off.
class ScopedSpan {
public:
    /// Parent = the thread's current context (normal nesting).
    explicit ScopedSpan(const char* name,
                        MetricId metric = kInvalidMetric) noexcept
        : ScopedSpan(name, nullptr, metric) {}

    /// Parent = `parent` (cross-thread fan-out); a zero parent roots a
    /// new tree.
    ScopedSpan(const char* name, TraceContext parent,
               MetricId metric = kInvalidMetric) noexcept
        : ScopedSpan(name, &parent, metric) {}

    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /// Append "key=value" to the record's annotations.  Only worth
    /// calling under an `if (trace_enabled())` guard for non-trivial
    /// values; a no-op when this span is inert.
    void annotate(std::string_view key, std::string_view value);

    /// This span's context, for parenting cross-thread children.
    [[nodiscard]] TraceContext context() const noexcept { return ctx_; }

private:
    /// Shared implementation: `parent` null means "nest under the TLS
    /// context"; non-null pins the parent (zero ctx = new root).
    ScopedSpan(const char* name, const TraceContext* parent,
               MetricId metric) noexcept;

    const char* name_;
    MetricId metric_;
    std::uint64_t metric_start_ns_ = 0;  ///< 0 = metrics were off.
    std::uint64_t start_ns_ = 0;
    TraceContext ctx_{};    ///< span_id 0 = tracing was off.
    SpanId parent_ = 0;
    TraceContext saved_{};  ///< TLS context to restore.
    bool restore_ = false;  ///< Whether this span owns the TLS slot.
    void* buffer_ = nullptr;  ///< Owning ThreadBuffer (open-table pop).
    std::string annotations_;
};

}  // namespace dsspy::obs

/// Time the enclosing scope into histogram "span.<name>" AND record it as
/// a span in the trace tree (each layer subject to its own enable flag).
/// `name` must be a string literal.  Drop-in upgrade for DSSPY_SPAN.
#define DSSPY_TRACE_SPAN(name)                                             \
    static const ::dsspy::obs::MetricId DSSPY_OBS_CAT(dsspy_tspan_id_,     \
                                                      __LINE__) =          \
        ::dsspy::obs::span_metric(name);                                   \
    const ::dsspy::obs::ScopedSpan DSSPY_OBS_CAT(dsspy_tspan_, __LINE__) { \
        name, DSSPY_OBS_CAT(dsspy_tspan_id_, __LINE__)                     \
    }

/// DSSPY_TRACE_SPAN with an explicit parent context — for work running on
/// a different thread than the span that spawned it (pool shards, daemon
/// connection threads).
#define DSSPY_TRACE_SPAN_UNDER(name, parent)                               \
    static const ::dsspy::obs::MetricId DSSPY_OBS_CAT(dsspy_tspan_id_,     \
                                                      __LINE__) =          \
        ::dsspy::obs::span_metric(name);                                   \
    const ::dsspy::obs::ScopedSpan DSSPY_OBS_CAT(dsspy_tspan_, __LINE__) { \
        name, (parent), DSSPY_OBS_CAT(dsspy_tspan_id_, __LINE__)           \
    }
