// Exporters for the self-telemetry registry (DESIGN.md §9).
//
// Two text formats over the same MetricsRegistry::collect() snapshot:
//
//  * JSON — one self-contained document for dashboards and the
//    `--metrics-out=<file>` CLI flag: every metric with kind and value
//    (histograms carry count/sum and the full bucket array), plus the
//    optional self-overhead estimate.
//  * Prometheus text exposition — `dsspy metrics` default output; metric
//    names are sanitized ('.' -> '_') and prefixed "dsspy_"; histograms
//    emit cumulative `_bucket{le="..."}` series plus `_sum`/`_count`.
//
// Both emit metrics in collect()'s name-sorted order, so equal registry
// states export byte-identical documents.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/self_overhead.hpp"

namespace dsspy::obs {

/// JSON document; `overhead` may be null (no "self_overhead" member).
void write_metrics_json(std::ostream& os,
                        const std::vector<MetricValue>& metrics,
                        const SelfOverhead* overhead = nullptr);

/// Prometheus text exposition format; the overhead estimate, when given,
/// appears as dsspy_self_overhead_* gauges.
void write_metrics_prometheus(std::ostream& os,
                              const std::vector<MetricValue>& metrics,
                              const SelfOverhead* overhead = nullptr);

/// File convenience for the JSON document; false when the file cannot be
/// opened or the flushed stream reports a short write.
bool write_metrics_json_file(const std::string& path,
                             const std::vector<MetricValue>& metrics,
                             const SelfOverhead* overhead = nullptr);

/// One Prometheus label: key and value (the value is escaped on write per
/// the exposition format — backslash, double quote, newline).
using PromLabel = std::pair<std::string_view, std::string_view>;

/// Append one labeled Prometheus sample outside the registry:
///
///   dsspy_serve_tenant_events{tenant="3",name="push-7"} 1234
///
/// The sharded registry aggregates by metric name only; dimensions that
/// need a label per entity (the serve daemon's per-tenant series) render
/// through this instead.  `name` is sanitized and "dsspy_"-prefixed
/// exactly like registry metric names, so labeled and unlabeled series
/// share one namespace.
void write_prometheus_sample(std::ostream& os, std::string_view name,
                             std::span<const PromLabel> labels,
                             std::uint64_t value);

}  // namespace dsspy::obs
