// Exporters for recorded span trees (DESIGN.md §13).
//
// Two renderings over one TraceRecorder::snapshot():
//
//  * Chrome trace-event JSON — loads directly in Perfetto and
//    chrome://tracing: one "X" (complete) event per span with ts/dur in
//    microseconds, pid 1, tid = the recording thread's index (so each
//    thread renders as its own track), and args carrying the span id,
//    parent id, root id, and annotations.  Thread-name metadata events
//    label the tracks.  `--trace-spans-out=FILE` writes this document.
//  * Text summary — top-N slowest spans, per-name aggregates, and a
//    per-root critical-path estimate (the wall time the tree would still
//    cost if every parallel sibling group were collapsed to its longest
//    member — serial time plus the longest shard).
//
// Both render a snapshot deterministically: equal span vectors export
// byte-identical documents.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace dsspy::obs {

/// Chrome trace-event / Perfetto JSON for `spans` (typically a
/// TraceRecorder::snapshot()).  Timestamps are rebased to the earliest
/// span start so ts stays small.
void write_trace_json(std::ostream& os, const std::vector<SpanRecord>& spans);

/// File convenience; false when the file cannot be opened or the flushed
/// stream reports a short write.
bool write_trace_json_file(const std::string& path,
                           const std::vector<SpanRecord>& spans);

/// Compact text summary: span/thread counts, top-N slowest spans,
/// per-name aggregates, and per-root critical-path estimates.
void write_trace_summary(std::ostream& os,
                         const std::vector<SpanRecord>& spans,
                         std::size_t top_n = 10);

/// The subset of `spans` belonging to root `root`'s tree, order kept.
[[nodiscard]] std::vector<SpanRecord> spans_for_root(
    const std::vector<SpanRecord>& spans, SpanId root);

/// Critical-path estimate through root `root`'s tree: recursively, a
/// span's critical path is its duration outside any child, plus — for
/// each group of time-overlapping children (a parallel fan-out) — the
/// longest child critical path in the group.  Sequential children
/// contribute fully; parallel shards collapse to the slowest one.
/// Returns 0 when the root span is absent from `spans`.
[[nodiscard]] std::uint64_t critical_path_ns(
    const std::vector<SpanRecord>& spans, SpanId root);

}  // namespace dsspy::obs
