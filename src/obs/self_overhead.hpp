// Self-overhead estimate: how much did profiling slow this workload down?
//
// The paper reports an average 47.13x capture slowdown (Table IV) measured
// offline; DSspy's capture path amortizes timestamps (one clock read per
// kTimestampStride events) precisely to push that figure toward 1x.  This
// module turns the offline number into an online one: from the observed
// event count and capture wall time plus a short calibration loop, it
// estimates the fraction of the run spent inside record() — the user sees
// the paper's slowdown figure for their own workload, live.
//
// Method: two calibration loops assemble synthetic events into a small
// ring buffer, one reading the clock every event ("instrumented" — what a
// naive profiler pays) and one reading it once per `timestamp_stride`
// events (the amortized capture path).  The amortized per-event cost times
// the recorded event count approximates total capture time; dividing by
// the remaining (application) time yields the overhead fraction and the
// estimated slowdown.  Calibration costs a few hundred microseconds and
// runs only on demand (metrics export), never on the hot path.
#pragma once

#include <cstdint>

namespace dsspy::obs {

struct SelfOverhead {
    std::uint64_t events = 0;            ///< Events recorded in the window.
    std::uint64_t capture_wall_ns = 0;   ///< Capture-window wall time.
    double instrumented_ns_per_event = 0;  ///< Clock read every event.
    double amortized_ns_per_event = 0;     ///< Clock read once per stride.
    double capture_cost_ns = 0;   ///< events * amortized_ns_per_event.
    double overhead_fraction = 0;  ///< capture cost / application time.
    double estimated_slowdown = 1;  ///< 1 + overhead_fraction.
};

/// Calibrate and estimate; see the file comment.  `timestamp_stride`
/// should be ProfilingSession::kTimestampStride.  With zero events or an
/// empty window the estimate degenerates to a 1.0x slowdown; if the
/// estimated capture cost exceeds the whole window (tiny windows, noisy
/// calibration) the fraction is clamped so the slowdown stays finite.
[[nodiscard]] SelfOverhead estimate_self_overhead(
    std::uint64_t events, std::uint64_t capture_wall_ns,
    std::uint32_t timestamp_stride);

/// Peak resident set size of this process in bytes (VmHWM on Linux);
/// 0 where the platform offers no cheap source.
[[nodiscard]] std::uint64_t sample_peak_rss_bytes();

}  // namespace dsspy::obs
