#include "obs/trace_export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <string_view>

namespace dsspy::obs {

namespace {

/// JSON string escaping; span names are identifiers but annotations can
/// carry arbitrary bytes (tenant names, file paths).
std::string json_escape(std::string_view s) {
    std::string out;
    for (const char ch : s) {
        if (ch == '"' || ch == '\\') {
            out += '\\';
            out += ch;
        } else if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
            out += buf;
        } else {
            out += ch;
        }
    }
    return out;
}

/// Microseconds with nanosecond resolution, as trace-event ts/dur want.
std::string us_fixed(std::uint64_t ns) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                  static_cast<unsigned>(ns % 1000));
    return buf;
}

std::uint64_t duration_ns(const SpanRecord& rec) {
    return rec.end_ns > rec.start_ns ? rec.end_ns - rec.start_ns : 0;
}

std::string ms_fixed(std::uint64_t ns) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
    return buf;
}

/// parent id -> children in start order, built once per tree walk.
using ChildIndex = std::map<SpanId, std::vector<const SpanRecord*>>;

ChildIndex build_child_index(const std::vector<SpanRecord>& spans) {
    ChildIndex index;
    for (const SpanRecord& rec : spans)
        if (rec.parent != 0) index[rec.parent].push_back(&rec);
    for (auto& [parent, kids] : index)
        std::sort(kids.begin(), kids.end(),
                  [](const SpanRecord* a, const SpanRecord* b) {
                      return a->start_ns != b->start_ns
                                 ? a->start_ns < b->start_ns
                                 : a->id < b->id;
                  });
    return index;
}

std::uint64_t critical_path_of(const ChildIndex& index,
                               const SpanRecord& node, int depth) {
    // Defensive depth cap: a malformed parent cycle must not recurse
    // forever (ids are unique, so >64 levels means corruption).
    if (depth > 64) return duration_ns(node);
    const auto it = index.find(node.id);
    if (it == index.end()) return duration_ns(node);
    const std::vector<const SpanRecord*>& kids = it->second;
    // Group time-overlapping children (a parallel fan-out renders as one
    // group); each group contributes its longest member's critical path,
    // and the parent contributes its time outside all children.
    std::uint64_t cp = duration_ns(node);
    std::size_t i = 0;
    while (i < kids.size()) {
        std::uint64_t group_start = kids[i]->start_ns;
        std::uint64_t group_end = kids[i]->end_ns;
        std::uint64_t group_cp = critical_path_of(index, *kids[i], depth + 1);
        std::size_t j = i + 1;
        while (j < kids.size() && kids[j]->start_ns < group_end) {
            group_end = std::max(group_end, kids[j]->end_ns);
            group_cp = std::max(group_cp,
                                critical_path_of(index, *kids[j], depth + 1));
            ++j;
        }
        const std::uint64_t group_union =
            group_end > group_start ? group_end - group_start : 0;
        // Swap the group's wall-clock footprint for its longest member.
        cp = cp > group_union ? cp - group_union : 0;
        cp += group_cp;
        i = j;
    }
    return cp;
}

}  // namespace

void write_trace_json(std::ostream& os,
                      const std::vector<SpanRecord>& spans) {
    std::uint64_t base_ns = ~std::uint64_t{0};
    std::set<std::uint32_t> threads;
    for (const SpanRecord& rec : spans) {
        base_ns = std::min(base_ns, rec.start_ns);
        threads.insert(rec.thread);
    }
    if (spans.empty()) base_ns = 0;
    os << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
    bool first = true;
    // Thread-name metadata first, so every tid track is labeled.
    for (const std::uint32_t tid : threads) {
        if (!first) os << ",\n";
        first = false;
        os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
           << ", \"name\": \"thread_name\", \"args\": {\"name\": "
              "\"dsspy-thread-"
           << tid << "\"}}";
    }
    for (const SpanRecord& rec : spans) {
        if (!first) os << ",\n";
        first = false;
        os << "{\"ph\": \"X\", \"pid\": 1, \"tid\": " << rec.thread
           << ", \"name\": \"" << json_escape(rec.name) << "\", \"cat\": "
           << "\"dsspy\", \"ts\": " << us_fixed(rec.start_ns - base_ns)
           << ", \"dur\": " << us_fixed(duration_ns(rec))
           << ", \"args\": {\"id\": " << rec.id << ", \"parent\": "
           << rec.parent << ", \"root\": " << rec.root;
        if (!rec.annotations.empty())
            os << ", \"annotations\": \"" << json_escape(rec.annotations)
               << "\"";
        os << "}}";
    }
    os << "\n]\n}\n";
}

bool write_trace_json_file(const std::string& path,
                           const std::vector<SpanRecord>& spans) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) return false;
    write_trace_json(out, spans);
    out.flush();
    return static_cast<bool>(out);
}

std::vector<SpanRecord> spans_for_root(const std::vector<SpanRecord>& spans,
                                       SpanId root) {
    std::vector<SpanRecord> out;
    for (const SpanRecord& rec : spans)
        if (rec.root == root) out.push_back(rec);
    return out;
}

std::uint64_t critical_path_ns(const std::vector<SpanRecord>& spans,
                               SpanId root) {
    const ChildIndex index = build_child_index(spans);
    for (const SpanRecord& rec : spans)
        if (rec.id == root) return critical_path_of(index, rec, 0);
    return 0;
}

void write_trace_summary(std::ostream& os,
                         const std::vector<SpanRecord>& spans,
                         std::size_t top_n) {
    std::set<std::uint32_t> threads;
    for (const SpanRecord& rec : spans) threads.insert(rec.thread);
    os << "trace summary: " << spans.size() << " spans across "
       << threads.size() << " threads\n";
    if (spans.empty()) return;

    std::vector<const SpanRecord*> by_duration;
    by_duration.reserve(spans.size());
    for (const SpanRecord& rec : spans) by_duration.push_back(&rec);
    std::sort(by_duration.begin(), by_duration.end(),
              [](const SpanRecord* a, const SpanRecord* b) {
                  const std::uint64_t da = duration_ns(*a);
                  const std::uint64_t db = duration_ns(*b);
                  return da != db ? da > db : a->id < b->id;
              });
    os << "top spans by duration:\n";
    for (std::size_t i = 0; i < std::min(top_n, by_duration.size()); ++i) {
        const SpanRecord& rec = *by_duration[i];
        os << "  " << (i + 1) << ". " << rec.name << "  "
           << ms_fixed(duration_ns(rec)) << " ms  (span " << rec.id
           << ", thread " << rec.thread;
        if (!rec.annotations.empty()) os << ", " << rec.annotations;
        os << ")\n";
    }

    struct Aggregate {
        std::uint64_t count = 0;
        std::uint64_t total_ns = 0;
        std::uint64_t max_ns = 0;
    };
    std::map<std::string_view, Aggregate> by_name;
    for (const SpanRecord& rec : spans) {
        Aggregate& agg = by_name[rec.name];
        agg.count += 1;
        agg.total_ns += duration_ns(rec);
        agg.max_ns = std::max(agg.max_ns, duration_ns(rec));
    }
    os << "per-name aggregates (count, total ms, max ms):\n";
    for (const auto& [name, agg] : by_name)
        os << "  " << name << "  " << agg.count << "  "
           << ms_fixed(agg.total_ns) << "  " << ms_fixed(agg.max_ns)
           << "\n";

    os << "roots (wall ms, critical-path ms):\n";
    for (const SpanRecord& rec : spans) {
        if (rec.parent != 0 || rec.id != rec.root) continue;
        const std::uint64_t cp = critical_path_ns(spans, rec.id);
        os << "  " << rec.name << " (span " << rec.id << "): "
           << ms_fixed(duration_ns(rec)) << " ms wall, " << ms_fixed(cp)
           << " ms critical path";
        if (!rec.annotations.empty()) os << "  [" << rec.annotations << "]";
        os << "\n";
    }
}

}  // namespace dsspy::obs
