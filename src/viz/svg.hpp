// Minimal SVG writer and profile-chart export.
//
// DSspy "visualizes the runtime profiles" to the engineer; the SVG export
// reproduces the look of the paper's Figure 2 (bars, green reads, red
// writes, grey size background) for inclusion in reports.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/profile.hpp"

namespace dsspy::viz {

/// Tiny streaming SVG document builder.
class SvgWriter {
public:
    SvgWriter(double width, double height);

    void rect(double x, double y, double w, double h,
              std::string_view fill, double opacity = 1.0);
    void line(double x1, double y1, double x2, double y2,
              std::string_view stroke, double stroke_width = 1.0);
    void text(double x, double y, std::string_view content,
              double font_size = 10.0, std::string_view fill = "#333");
    void circle(double cx, double cy, double r, std::string_view fill);

    /// Append raw SVG markup (escape hatch for transforms etc.).
    void raw(std::string_view markup);

    /// Finish the document and return the SVG source.
    [[nodiscard]] std::string finish();

    [[nodiscard]] double width() const noexcept { return width_; }
    [[nodiscard]] double height() const noexcept { return height_; }

private:
    double width_;
    double height_;
    std::string body_;
    bool finished_ = false;
};

/// Figure-2 style SVG chart of a runtime profile.  Reads are green bars,
/// writes/inserts red, deletes orange, the container size is a grey
/// background bar per event.  Events are downsampled to `max_columns`.
[[nodiscard]] std::string profile_to_svg(const core::RuntimeProfile& profile,
                                         std::size_t max_columns = 400);

/// One bar of a stacked bar chart (Figure 1 style).
struct StackedBar {
    std::string label;                       ///< x-axis label.
    std::vector<double> segments;            ///< One value per series.
};

/// Figure-1 style stacked bar chart: one bar per program, one colored
/// segment per data-structure type, with a legend.
[[nodiscard]] std::string stacked_bars_to_svg(
    const std::vector<StackedBar>& bars,
    const std::vector<std::string>& series_names);

/// Write `content` to `path`; returns false on I/O failure.
bool write_file(const std::string& path, std::string_view content);

}  // namespace dsspy::viz
