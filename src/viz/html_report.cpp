#include "viz/html_report.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "support/table.hpp"
#include "viz/svg.hpp"

namespace dsspy::viz {

namespace {

std::string html_escape(std::string_view text) {
    std::string out;
    out.reserve(text.size());
    for (char ch : text) {
        switch (ch) {
            case '&': out += "&amp;"; break;
            case '<': out += "&lt;"; break;
            case '>': out += "&gt;"; break;
            case '"': out += "&quot;"; break;
            default: out += ch;
        }
    }
    return out;
}

const char* kStyle = R"css(
body { font-family: -apple-system, "Segoe UI", Roboto, sans-serif;
       margin: 2em auto; max-width: 70em; color: #222; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3em; }
h2 { margin-top: 2em; }
table { border-collapse: collapse; width: 100%; margin: 1em 0; }
th, td { border: 1px solid #ccc; padding: .35em .6em; font-size: .92em; }
th { background: #f0f0f0; text-align: left; }
tr.flagged { background: #fff4e5; }
.summary { display: flex; gap: 2em; margin: 1em 0; }
.stat { background: #f6f8fa; border: 1px solid #ddd; border-radius: 6px;
        padding: .8em 1.2em; }
.stat b { display: block; font-size: 1.5em; }
.usecase { border-left: 4px solid #d62728; background: #fafafa;
           margin: .8em 0; padding: .6em 1em; }
.usecase.sequential { border-left-color: #7f7f7f; }
.usecase h4 { margin: 0 0 .3em 0; }
.reason { color: #555; font-size: .92em; }
.recommendation { margin-top: .3em; font-weight: 600; }
.chart { overflow-x: auto; border: 1px solid #eee; margin: .6em 0; }
code { background: #f0f0f0; padding: 0 .25em; border-radius: 3px; }
)css";

}  // namespace

void write_html_report(std::ostream& os, const core::AnalysisResult& result,
                       const HtmlReportOptions& options) {
    using support::Table;

    os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>"
       << html_escape(options.title) << "</title>\n<style>" << kStyle
       << "</style></head>\n<body>\n";
    os << "<h1>" << html_escape(options.title) << "</h1>\n";

    // --- summary ---------------------------------------------------------
    os << "<div class=\"summary\">\n";
    os << "<div class=\"stat\"><b>" << result.list_array_instances()
       << "</b>list/array instances</div>\n";
    os << "<div class=\"stat\"><b>" << result.flagged_instances()
       << "</b>flagged with parallel potential</div>\n";
    os << "<div class=\"stat\"><b>"
       << Table::pct(result.search_space_reduction())
       << "</b>search space reduction</div>\n";
    os << "<div class=\"stat\"><b>" << result.total_events()
       << "</b>access events</div>\n";
    os << "</div>\n";

    // --- instance table -----------------------------------------------------
    os << "<h2>Instances</h2>\n<table>\n<tr><th>Location</th><th>Type</th>"
          "<th>Events</th><th>Threads</th><th>Patterns</th>"
          "<th>Use cases</th></tr>\n";
    for (const core::InstanceAnalysis& ia : result.instances()) {
        if (ia.profile.total_events() == 0) continue;
        std::string codes;
        for (const core::UseCase& uc : ia.use_cases) {
            if (!codes.empty()) codes += ", ";
            codes += use_case_code(uc.kind);
        }
        os << "<tr" << (ia.flagged_parallel() ? " class=\"flagged\"" : "")
           << "><td><code>"
           << html_escape(ia.profile.info().location.to_string())
           << "</code></td><td>" << html_escape(ia.profile.info().type_name)
           << "</td><td>" << ia.profile.total_events() << "</td><td>"
           << ia.profile.thread_count() << "</td><td>"
           << ia.patterns.size() << "</td><td>"
           << (codes.empty() ? "&mdash;" : html_escape(codes))
           << "</td></tr>\n";
    }
    os << "</table>\n";

    // --- per-instance detail sections ------------------------------------
    os << "<h2>Flagged locations</h2>\n";
    bool any = false;
    for (const core::InstanceAnalysis& ia : result.instances()) {
        const bool charted =
            ia.flagged() ||
            (options.chart_unflagged_min_events > 0 &&
             ia.profile.total_events() >= options.chart_unflagged_min_events);
        if (!charted) continue;
        any = true;

        os << "<h3><code>"
           << html_escape(ia.profile.info().location.to_string())
           << "</code> &mdash; " << html_escape(ia.profile.info().type_name)
           << "</h3>\n";

        os << "<div class=\"chart\">"
           << profile_to_svg(ia.profile, options.svg_columns)
           << "</div>\n";

        if (!ia.patterns.empty()) {
            os << "<p>Patterns: ";
            std::array<std::size_t, core::kPatternKindCount> counts{};
            for (const core::Pattern& p : ia.patterns)
                ++counts[static_cast<std::size_t>(p.kind)];
            bool first = true;
            for (std::size_t k = 0; k < core::kPatternKindCount; ++k) {
                if (counts[k] == 0) continue;
                if (!first) os << ", ";
                first = false;
                os << counts[k] << "&times; "
                   << core::pattern_name(
                          static_cast<core::PatternKind>(k));
            }
            os << "</p>\n";
        }

        for (const core::UseCase& uc : ia.use_cases) {
            os << "<div class=\"usecase"
               << (uc.parallel_potential() ? "" : " sequential") << "\">\n"
               << "<h4>" << core::use_case_name(uc.kind)
               << (uc.parallel_potential() ? " (parallel potential)"
                                         : " (sequential optimization)")
               << "</h4>\n"
               << "<div class=\"reason\">" << html_escape(uc.reason())
               << "</div>\n"
               << "<div class=\"recommendation\">"
               << html_escape(uc.recommendation()) << "</div>\n</div>\n";
        }
    }
    if (!any) os << "<p>No flagged locations.</p>\n";

    os << "</body></html>\n";
}

bool write_html_report_file(const std::string& path,
                            const core::AnalysisResult& result,
                            const HtmlReportOptions& options) {
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    write_html_report(out, result, options);
    return static_cast<bool>(out);
}

}  // namespace dsspy::viz
