#include "viz/ascii_chart.hpp"

#include <algorithm>
#include <vector>

namespace dsspy::viz {

namespace {

char mark_for(core::AccessType type) noexcept {
    using core::AccessType;
    switch (type) {
        case AccessType::Read: return 'R';
        case AccessType::Write: return 'W';
        case AccessType::Insert: return 'I';
        case AccessType::Delete: return 'D';
        case AccessType::Search: return 'S';
        case AccessType::Clear: return 'C';
        case AccessType::Sort: return 'O';
        case AccessType::Reverse: return 'V';
        case AccessType::Copy: return 'Y';
        case AccessType::ForAll: return 'A';
        case AccessType::Count: break;
    }
    return '?';
}

/// One downsampled column of the chart.
struct Column {
    std::int64_t position = -1;  // representative access position
    std::size_t size = 0;        // container size at that point
    char mark = ' ';
};

std::vector<Column> downsample(const core::RuntimeProfile& profile,
                               std::size_t max_width) {
    const auto events = profile.events();
    std::vector<Column> cols;
    if (events.empty() || max_width == 0) return cols;
    const std::size_t n = events.size();
    const std::size_t width = std::min(max_width, n);
    cols.resize(width);
    for (std::size_t c = 0; c < width; ++c) {
        // Representative event: first event of the column's bucket.
        const std::size_t i = c * n / width;
        const runtime::AccessEvent& ev = events[i];
        cols[c].position = ev.position;
        cols[c].size = ev.size;
        cols[c].mark = mark_for(core::derive_access_type(ev.op));
    }
    return cols;
}

std::size_t scale(std::size_t value, std::size_t max_value,
                  std::size_t rows) noexcept {
    if (max_value == 0 || rows == 0) return 0;
    const std::size_t scaled = value * (rows - 1) / max_value;
    return std::min(scaled, rows - 1);
}

std::string legend() {
    return "legend: R=read W=write I=insert D=delete S=search C=clear "
           "O=sort  .=container size\n";
}

std::string render(const core::RuntimeProfile& profile,
                   const ChartOptions& options, bool bars) {
    const std::vector<Column> cols =
        downsample(profile, options.max_width);
    std::string out;
    if (cols.empty()) return "(empty profile)\n";

    std::size_t max_value = 1;
    for (const Column& col : cols) {
        max_value = std::max(max_value, col.size);
        if (col.position > 0)
            max_value =
                std::max(max_value, static_cast<std::size_t>(col.position));
    }

    const std::size_t rows = std::min(options.max_height, max_value + 1);
    std::vector<std::string> grid(rows, std::string(cols.size(), ' '));

    for (std::size_t c = 0; c < cols.size(); ++c) {
        const Column& col = cols[c];
        // Size line in the background.
        if (col.size > 0) {
            const std::size_t sr = scale(col.size, max_value, rows);
            grid[sr][c] = '.';
        }
        if (col.position >= 0) {
            const std::size_t pr = scale(
                static_cast<std::size_t>(col.position), max_value, rows);
            if (bars) {
                for (std::size_t r = 0; r < pr; ++r) grid[r][c] = ':';
            }
            grid[pr][c] = col.mark;
        }
    }

    // Print top row first (highest position).
    for (std::size_t r = rows; r-- > 0;) {
        out += grid[r];
        out += '\n';
    }
    out += std::string(cols.size(), '-');
    out += "> time (";
    out += std::to_string(profile.total_events());
    out += " events, max size ";
    out += std::to_string(profile.max_size());
    out += ")\n";
    if (options.show_legend) out += legend();
    return out;
}

}  // namespace

std::string render_profile_bars(const core::RuntimeProfile& profile,
                                const ChartOptions& options) {
    return render(profile, options, /*bars=*/true);
}

std::string render_profile_scatter(const core::RuntimeProfile& profile,
                                   const ChartOptions& options) {
    return render(profile, options, /*bars=*/false);
}

void print_profile(std::ostream& os, const core::RuntimeProfile& profile,
                   const ChartOptions& options) {
    os << "Runtime profile of " << profile.info().type_name << " @ "
       << profile.info().location.to_string() << '\n'
       << render_profile_scatter(profile, options);
}

}  // namespace dsspy::viz
