// ASCII rendering of runtime profiles (Figures 2 and 3 of the paper).
//
// "Visualizing data structure accesses facilitates their analysis": the
// x-axis is the chronological event order, the y-axis the accessed index;
// the container size is drawn behind the access marks.  Event types are
// encoded as characters:
//   R read    W write    I insert    D delete    S search
//   and '.' marks the container-size line.
#pragma once

#include <ostream>
#include <string>

#include "core/profile.hpp"

namespace dsspy::viz {

/// Rendering options.
struct ChartOptions {
    std::size_t max_width = 100;   ///< Columns; events are downsampled to fit.
    std::size_t max_height = 20;   ///< Rows; positions are scaled to fit.
    bool show_legend = true;
};

/// Figure-2 style bar chart: one column per access event, bar height equal
/// to the accessed index, size line in the background.
[[nodiscard]] std::string render_profile_bars(
    const core::RuntimeProfile& profile, const ChartOptions& options = {});

/// Figure-3 style scatter/line chart: access positions over time as single
/// marks (not bars) — better for long profiles with overlapping patterns.
[[nodiscard]] std::string render_profile_scatter(
    const core::RuntimeProfile& profile, const ChartOptions& options = {});

/// Convenience: render scatter to a stream with a heading.
void print_profile(std::ostream& os, const core::RuntimeProfile& profile,
                   const ChartOptions& options = {});

}  // namespace dsspy::viz
