#include "viz/svg.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

namespace dsspy::viz {

namespace {

std::string num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

std::string_view color_for(core::AccessType type) noexcept {
    using core::AccessType;
    switch (type) {
        case AccessType::Read: return "#2e9e4f";     // green (paper)
        case AccessType::Search: return "#1f77b4";   // blue
        case AccessType::ForAll: return "#66c2a5";   // light green
        case AccessType::Write: return "#d62728";    // red (paper)
        case AccessType::Insert: return "#d62728";
        case AccessType::Delete: return "#ff7f0e";   // orange
        default: return "#7f7f7f";
    }
}

}  // namespace

SvgWriter::SvgWriter(double width, double height)
    : width_(width), height_(height) {
    body_ = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
            num(width_) + "\" height=\"" + num(height_) +
            "\" viewBox=\"0 0 " + num(width_) + " " + num(height_) + "\">\n";
    body_ += "<rect x=\"0\" y=\"0\" width=\"" + num(width_) +
             "\" height=\"" + num(height_) + "\" fill=\"#ffffff\"/>\n";
}

void SvgWriter::rect(double x, double y, double w, double h,
                     std::string_view fill, double opacity) {
    body_ += "<rect x=\"" + num(x) + "\" y=\"" + num(y) + "\" width=\"" +
             num(w) + "\" height=\"" + num(h) + "\" fill=\"" +
             std::string(fill) + "\" opacity=\"" + num(opacity) + "\"/>\n";
}

void SvgWriter::line(double x1, double y1, double x2, double y2,
                     std::string_view stroke, double stroke_width) {
    body_ += "<line x1=\"" + num(x1) + "\" y1=\"" + num(y1) + "\" x2=\"" +
             num(x2) + "\" y2=\"" + num(y2) + "\" stroke=\"" +
             std::string(stroke) + "\" stroke-width=\"" + num(stroke_width) +
             "\"/>\n";
}

void SvgWriter::text(double x, double y, std::string_view content,
                     double font_size, std::string_view fill) {
    body_ += "<text x=\"" + num(x) + "\" y=\"" + num(y) +
             "\" font-family=\"sans-serif\" font-size=\"" + num(font_size) +
             "\" fill=\"" + std::string(fill) + "\">" +
             std::string(content) + "</text>\n";
}

void SvgWriter::circle(double cx, double cy, double r,
                       std::string_view fill) {
    body_ += "<circle cx=\"" + num(cx) + "\" cy=\"" + num(cy) + "\" r=\"" +
             num(r) + "\" fill=\"" + std::string(fill) + "\"/>\n";
}

void SvgWriter::raw(std::string_view markup) { body_ += markup; }

std::string SvgWriter::finish() {
    if (!finished_) {
        body_ += "</svg>\n";
        finished_ = true;
    }
    return body_;
}

std::string profile_to_svg(const core::RuntimeProfile& profile,
                           std::size_t max_columns) {
    const auto events = profile.events();
    const std::size_t n = events.size();
    const std::size_t cols = std::min(max_columns, n == 0 ? 1 : n);

    constexpr double kMarginLeft = 40.0;
    constexpr double kMarginBottom = 30.0;
    constexpr double kMarginTop = 24.0;
    constexpr double kPlotHeight = 220.0;
    const double col_width = std::max(1.5, 720.0 / static_cast<double>(cols));
    const double plot_width = col_width * static_cast<double>(cols);

    SvgWriter svg(kMarginLeft + plot_width + 10.0,
                  kMarginTop + kPlotHeight + kMarginBottom);

    std::size_t max_value = 1;
    for (const runtime::AccessEvent& ev : events) {
        max_value = std::max(max_value, static_cast<std::size_t>(ev.size));
        if (ev.position > 0)
            max_value =
                std::max(max_value, static_cast<std::size_t>(ev.position));
    }

    auto y_of = [&](double value) {
        return kMarginTop +
               kPlotHeight * (1.0 - value / static_cast<double>(max_value));
    };

    svg.text(kMarginLeft, 14.0,
             profile.info().type_name + " @ " +
                 profile.info().location.to_string(),
             11.0);

    for (std::size_t c = 0; c < cols && n > 0; ++c) {
        const std::size_t i = c * n / cols;
        const runtime::AccessEvent& ev = events[i];
        const double x = kMarginLeft + static_cast<double>(c) * col_width;

        // Grey background bar: container size at this access.
        if (ev.size > 0) {
            const double top = y_of(static_cast<double>(ev.size));
            svg.rect(x, top, col_width, kMarginTop + kPlotHeight - top,
                     "#cccccc", 0.5);
        }
        // Colored bar: accessed index.
        if (ev.position >= 0) {
            const double top = y_of(static_cast<double>(ev.position));
            const core::AccessType type = core::derive_access_type(ev.op);
            svg.rect(x, top, std::max(1.0, col_width - 0.5),
                     kMarginTop + kPlotHeight - top, color_for(type), 0.9);
        }
    }

    // Axes.
    svg.line(kMarginLeft, kMarginTop, kMarginLeft, kMarginTop + kPlotHeight,
             "#333333");
    svg.line(kMarginLeft, kMarginTop + kPlotHeight,
             kMarginLeft + plot_width, kMarginTop + kPlotHeight, "#333333");
    svg.text(4.0, kMarginTop + 8.0, std::to_string(max_value), 9.0);
    svg.text(4.0, kMarginTop + kPlotHeight, "0", 9.0);
    svg.text(kMarginLeft, kMarginTop + kPlotHeight + 16.0,
             "time (" + std::to_string(n) + " access events)", 9.0);
    return svg.finish();
}

std::string stacked_bars_to_svg(const std::vector<StackedBar>& bars,
                                const std::vector<std::string>& series_names) {
    static constexpr std::string_view kSeriesColors[] = {
        "#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
        "#9467bd", "#8c564b", "#7f7f7f", "#bcbd22",
    };
    constexpr double kMarginLeft = 48.0;
    constexpr double kMarginBottom = 110.0;
    constexpr double kMarginTop = 30.0;
    constexpr double kPlotHeight = 260.0;
    const double bar_width = 16.0;
    const double gap = 4.0;
    const double plot_width =
        static_cast<double>(bars.size()) * (bar_width + gap) + gap;

    double max_total = 1.0;
    for (const StackedBar& bar : bars) {
        double total = 0.0;
        for (const double v : bar.segments) total += v;
        max_total = std::max(max_total, total);
    }

    SvgWriter svg(kMarginLeft + plot_width + 160.0,
                  kMarginTop + kPlotHeight + kMarginBottom);

    for (std::size_t b = 0; b < bars.size(); ++b) {
        const double x =
            kMarginLeft + gap + static_cast<double>(b) * (bar_width + gap);
        double y = kMarginTop + kPlotHeight;
        for (std::size_t s = 0; s < bars[b].segments.size(); ++s) {
            const double value = bars[b].segments[s];
            if (value <= 0.0) continue;
            const double h = kPlotHeight * value / max_total;
            y -= h;
            svg.rect(x, y, bar_width, h,
                     kSeriesColors[s % std::size(kSeriesColors)], 0.95);
        }
        // Vertical x label (rotated around the bar's baseline).
        const double lx = x + bar_width / 2.0;
        const double ly = kMarginTop + kPlotHeight + 6.0;
        svg.raw("<text x=\"" + num(lx) + "\" y=\"" + num(ly) +
                "\" font-family=\"sans-serif\" font-size=\"8\" "
                "fill=\"#333\" transform=\"rotate(60 " + num(lx) + " " +
                num(ly) + ")\">" + bars[b].label + "</text>\n");
    }

    // Axes + legend.
    svg.line(kMarginLeft, kMarginTop, kMarginLeft,
             kMarginTop + kPlotHeight, "#333");
    svg.line(kMarginLeft, kMarginTop + kPlotHeight,
             kMarginLeft + plot_width, kMarginTop + kPlotHeight, "#333");
    svg.text(4.0, kMarginTop + 8.0, num(max_total), 9.0);
    svg.text(4.0, kMarginTop + kPlotHeight, "0", 9.0);
    for (std::size_t s = 0; s < series_names.size(); ++s) {
        const double ly = kMarginTop + 14.0 * static_cast<double>(s);
        svg.rect(kMarginLeft + plot_width + 12.0, ly, 10.0, 10.0,
                 kSeriesColors[s % std::size(kSeriesColors)]);
        svg.text(kMarginLeft + plot_width + 28.0, ly + 9.0,
                 series_names[s], 9.0);
    }
    return svg.finish();
}

bool write_file(const std::string& path, std::string_view content) {
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    return static_cast<bool>(out);
}

}  // namespace dsspy::viz
