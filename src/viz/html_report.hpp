// Self-contained HTML report: the engineer-facing deliverable.
//
// DSspy "visualizes the results to the software engineer" — this renders a
// complete analysis into one HTML file: the search-space summary, a
// sortable instance table, and per-flagged-instance sections with the
// embedded SVG runtime-profile chart, the detected patterns, and the use
// cases with reasons and recommended actions.  No external assets.
#pragma once

#include <iosfwd>
#include <string>

#include "core/dsspy.hpp"

namespace dsspy::viz {

/// Options for the HTML report.
struct HtmlReportOptions {
    std::string title = "DSspy analysis report";
    /// Also render charts for unflagged instances with >= this many
    /// events (0 = flagged instances only).
    std::size_t chart_unflagged_min_events = 0;
    /// Downsampling width of the embedded SVG charts.
    std::size_t svg_columns = 400;
};

/// Render the full report to `os`.
void write_html_report(std::ostream& os, const core::AnalysisResult& result,
                       const HtmlReportOptions& options = {});

/// Convenience: write to `path`; false on I/O failure.
bool write_html_report_file(const std::string& path,
                            const core::AnalysisResult& result,
                            const HtmlReportOptions& options = {});

}  // namespace dsspy::viz
