// Blocking data-parallel loops over index ranges.
#pragma once

#include <atomic>
#include <cstddef>
#include <latch>

#include "parallel/thread_pool.hpp"

namespace dsspy::par {

/// Invoke `body(begin, end)` over contiguous chunks of [begin, end) on the
/// pool; blocks until all chunks are done.  `body` must be safe to run
/// concurrently on disjoint ranges.
template <typename Body>
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         Body body) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    const std::size_t chunks =
        std::min<std::size_t>(pool.thread_count() * 4, n);
    if (chunks <= 1) {
        body(begin, end);
        return;
    }
    std::latch done(static_cast<std::ptrdiff_t>(chunks));
    const std::size_t chunk_size = (n + chunks - 1) / chunks;
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t lo = begin + c * chunk_size;
        const std::size_t hi = std::min(end, lo + chunk_size);
        pool.submit([lo, hi, &body, &done] {
            if (lo < hi) body(lo, hi);
            done.count_down();
        });
    }
    done.wait();
}

/// Invoke `body(i)` for every i in [begin, end) in parallel.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body body) {
    parallel_for_chunks(pool, begin, end,
                        [&body](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i) body(i);
                        });
}

/// Convenience overloads on the default pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body body) {
    parallel_for(ThreadPool::default_pool(), begin, end, std::move(body));
}

template <typename Body>
void parallel_for_chunks(std::size_t begin, std::size_t end, Body body) {
    parallel_for_chunks(ThreadPool::default_pool(), begin, end,
                        std::move(body));
}

}  // namespace dsspy::par
