// ParallelList<T> — a drop-in list whose whole-container operations run in
// parallel above a size threshold.
//
// This is the library form of two recommended actions:
//   * Frequent-Search: "Either employ a parallel data structure that is
//     optimized for searches or parallelize the search operation..."
//   * Sort-After-Insert / Frequent-Long-Read: parallel sort / parallel
//     reductions over the whole structure.
// Small containers stay on the sequential paths (parallel dispatch has a
// fixed cost); the crossover is configurable per instance.
//
// Thread-safety contract: like the sequential List, ParallelList is
// externally synchronized — concurrent mutation is the caller's problem.
// The internal parallelism only spans the duration of a single call.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

#include "ds/list.hpp"
#include "parallel/algorithms.hpp"
#include "parallel/thread_pool.hpp"

namespace dsspy::par {

/// List with internally parallel search/sort/reduce operations.
template <typename T>
class ParallelList {
public:
    /// `parallel_threshold`: container size at which whole-container
    /// operations switch to the pool.
    explicit ParallelList(ThreadPool& pool = ThreadPool::default_pool(),
                          std::size_t parallel_threshold = 2048)
        : pool_(&pool), threshold_(parallel_threshold) {}

    ParallelList(std::size_t capacity, ThreadPool& pool,
                 std::size_t parallel_threshold = 2048)
        : list_(capacity), pool_(&pool), threshold_(parallel_threshold) {}

    // --- sequential element interface (same as ds::List) -----------------

    void add(T value) { list_.add(std::move(value)); }
    void insert(std::size_t index, T value) {
        list_.insert(index, std::move(value));
    }
    void remove_at(std::size_t index) { list_.remove_at(index); }
    void clear() noexcept { list_.clear(); }
    void set(std::size_t index, T value) {
        list_.set(index, std::move(value));
    }
    [[nodiscard]] const T& get(std::size_t index) const {
        return list_.get(index);
    }
    [[nodiscard]] const T& operator[](std::size_t index) const {
        return list_[index];
    }
    [[nodiscard]] std::size_t count() const noexcept { return list_.count(); }
    [[nodiscard]] bool empty() const noexcept { return list_.empty(); }
    void reserve(std::size_t capacity) { list_.reserve(capacity); }

    // --- parallel whole-container operations ------------------------------

    /// First index of `value`, or -1; chunked parallel scan when large.
    [[nodiscard]] std::ptrdiff_t index_of(const T& value) const {
        if (list_.count() < threshold_) return list_.index_of(value);
        return parallel_index_of(*pool_, view(), value);
    }

    [[nodiscard]] bool contains(const T& value) const {
        return index_of(value) >= 0;
    }

    /// First index satisfying `pred`, or -1.
    template <typename Pred>
    [[nodiscard]] std::ptrdiff_t find_index(Pred pred) const {
        if (list_.count() < threshold_) return list_.find_index(pred);
        return parallel_find_index(*pool_, view(), pred);
    }

    /// Index of the maximum element (parallel extract-max).
    template <typename Less = std::less<T>>
    [[nodiscard]] std::ptrdiff_t max_index(Less less = {}) const {
        if (list_.empty()) return -1;
        if (list_.count() < threshold_) {
            std::size_t best = 0;
            for (std::size_t i = 1; i < list_.count(); ++i)
                if (less(list_[best], list_[i])) best = i;
            return static_cast<std::ptrdiff_t>(best);
        }
        return parallel_max_index(*pool_, view(), less);
    }

    /// Parallel merge sort when large, introsort otherwise.
    template <typename Less = std::less<T>>
    void sort(Less less = {}) {
        if (list_.count() < threshold_) {
            list_.sort(less);
        } else {
            parallel_sort(*pool_, std::span<T>(list_.data(), list_.count()),
                          less);
        }
    }

    /// Parallel map/reduce over the elements.
    template <typename R, typename Map, typename Combine>
    [[nodiscard]] R reduce(R identity, Map map, Combine combine) const {
        if (list_.count() < threshold_) {
            R acc = identity;
            for (std::size_t i = 0; i < list_.count(); ++i)
                acc = combine(acc, map(list_[i]));
            return acc;
        }
        return parallel_reduce(*pool_, view(), identity, map, combine);
    }

    /// Append `n` generated elements, computed in parallel.
    template <typename Make>
    void append_generated(std::size_t n, Make make) {
        if (n < threshold_) {
            for (std::size_t i = 0; i < n; ++i) list_.add(make(i));
        } else {
            parallel_append(*pool_, list_, n, make);
        }
    }

    /// The wrapped sequential list.
    [[nodiscard]] const ds::List<T>& raw() const noexcept { return list_; }
    [[nodiscard]] ds::List<T>& raw_mut() noexcept { return list_; }

    [[nodiscard]] std::size_t parallel_threshold() const noexcept {
        return threshold_;
    }

private:
    [[nodiscard]] std::span<const T> view() const noexcept {
        return {list_.data(), list_.count()};
    }

    ds::List<T> list_;
    ThreadPool* pool_;
    std::size_t threshold_;
};

}  // namespace dsspy::par
