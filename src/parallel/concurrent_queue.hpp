// Thread-safe MPMC queue — the "parallel queue" of the Implement-Queue
// recommendation ("Employ a parallel queue as data container").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>

#include "ds/queue.hpp"

namespace dsspy::par {

/// Blocking multi-producer/multi-consumer queue on top of ds::Queue.
///
/// `close()` wakes every blocked consumer; after close, `pop()` drains the
/// remaining elements and then returns nullopt.
template <typename T>
class ConcurrentQueue {
public:
    ConcurrentQueue() = default;
    explicit ConcurrentQueue(std::size_t capacity) : queue_(capacity) {}

    /// Enqueue one element; wakes one waiting consumer.
    void push(T value) {
        {
            std::scoped_lock lock(mutex_);
            queue_.enqueue(std::move(value));
        }
        cv_.notify_one();
    }

    /// Dequeue one element, blocking while the queue is empty and open.
    /// Returns nullopt once the queue is closed and drained.
    std::optional<T> pop() {
        std::unique_lock lock(mutex_);
        cv_.wait(lock, [this] { return closed_ || !queue_.empty(); });
        if (queue_.empty()) return std::nullopt;
        return queue_.dequeue();
    }

    /// Non-blocking dequeue.
    std::optional<T> try_pop() {
        std::scoped_lock lock(mutex_);
        if (queue_.empty()) return std::nullopt;
        return queue_.dequeue();
    }

    /// Mark the queue closed; consumers drain and then receive nullopt.
    void close() {
        {
            std::scoped_lock lock(mutex_);
            closed_ = true;
        }
        cv_.notify_all();
    }

    [[nodiscard]] bool closed() const {
        std::scoped_lock lock(mutex_);
        return closed_;
    }

    [[nodiscard]] std::size_t size() const {
        std::scoped_lock lock(mutex_);
        return queue_.count();
    }

    [[nodiscard]] bool empty() const {
        std::scoped_lock lock(mutex_);
        return queue_.empty();
    }

private:
    mutable std::mutex mutex_;
    std::condition_variable cv_;
    ds::Queue<T> queue_;
    bool closed_ = false;
};

}  // namespace dsspy::par
