#include "parallel/thread_pool.hpp"

#include <atomic>

#include "obs/metrics.hpp"

namespace dsspy::par {

namespace {

/// Self-telemetry: peak task-queue depth (lazy-registered; call sites
/// guard on obs::enabled()).
obs::MetricId queue_depth_metric() {
    static const obs::MetricId id =
        obs::MetricsRegistry::global().gauge("parallel.queue_depth_hwm");
    return id;
}

/// Requested default-pool width (0 = hardware concurrency); read when
/// default_pool() first constructs.
std::atomic<unsigned> g_default_threads{0};
/// Set once default_pool() has materialized (its width is frozen).
std::atomic<bool> g_default_pool_created{false};

/// The worker count a pool constructed with `threads` ends up with.
unsigned resolve_width(unsigned threads) noexcept {
    unsigned n = threads != 0 ? threads : std::thread::hardware_concurrency();
    return n != 0 ? n : 4;
}

}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
    const unsigned n = resolve_width(threads);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
        workers_.emplace_back(
            [this](const std::stop_token& st) { worker_loop(st); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::scoped_lock lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    // jthread joins in destructor; workers drain remaining tasks first.
}

void ThreadPool::submit(std::function<void()> task) {
    std::size_t depth = 0;
    {
        std::scoped_lock lock(mutex_);
        tasks_.push_back(std::move(task));
        depth = tasks_.size();
    }
    work_cv_.notify_one();
    if (obs::enabled())
        obs::MetricsRegistry::global().gauge_max(queue_depth_metric(), depth);
}

void ThreadPool::wait_idle() {
    std::unique_lock lock(mutex_);
    idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(const std::stop_token& st) {
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock lock(mutex_);
            work_cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty()) {
                if (stopping_ || st.stop_requested()) return;
                continue;
            }
            task = std::move(tasks_.front());
            tasks_.pop_front();
            ++active_;
        }
        task();
        {
            std::scoped_lock lock(mutex_);
            --active_;
            if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
        }
    }
}

ThreadPool& ThreadPool::default_pool() {
    static ThreadPool pool(g_default_threads.load(std::memory_order_relaxed));
    g_default_pool_created.store(true, std::memory_order_release);
    return pool;
}

void ThreadPool::set_default_threads(unsigned threads) noexcept {
    g_default_threads.store(threads, std::memory_order_relaxed);
}

unsigned ThreadPool::effective_default_threads() noexcept {
    if (g_default_pool_created.load(std::memory_order_acquire))
        return default_pool().thread_count();
    return resolve_width(g_default_threads.load(std::memory_order_relaxed));
}

}  // namespace dsspy::par
