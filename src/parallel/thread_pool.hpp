// Fixed-size thread pool used to execute the recommended actions.
//
// The paper's evaluation parallelizes the flagged locations by hand on an
// 8-core machine; this pool plus the algorithms in `algorithms.hpp` are the
// reusable form of those hand parallelizations (parallelize the insert
// operation, parallelize the search operation, ...).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsspy::par {

/// Simple FIFO thread pool.  Tasks are type-erased thunks; `wait_idle()`
/// blocks until every submitted task has finished.
class ThreadPool {
public:
    /// Spawn `threads` workers (0 = hardware concurrency).
    explicit ThreadPool(unsigned threads = 0);

    /// Joins all workers after draining the queue.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueue a task for asynchronous execution.
    void submit(std::function<void()> task);

    /// Block until the queue is empty and all workers are idle.
    void wait_idle();

    /// Number of worker threads.
    [[nodiscard]] unsigned thread_count() const noexcept {
        return static_cast<unsigned>(workers_.size());
    }

    /// Process-wide default pool (hardware concurrency unless overridden
    /// with set_default_threads), created on first use.  Shared by the
    /// parallel algorithms unless given another pool.
    static ThreadPool& default_pool();

    /// Configure the width default_pool() is created with (the CLI's
    /// `--threads` plumbing; 0 restores hardware concurrency).  Must be
    /// called before the first default_pool() use — once the pool exists
    /// its width is fixed and later calls have no effect.
    static void set_default_threads(unsigned threads) noexcept;

    /// The width default_pool() has — or, if it has not been created yet,
    /// the width it would be created with.  Never instantiates the pool.
    [[nodiscard]] static unsigned effective_default_threads() noexcept;

private:
    void worker_loop(const std::stop_token& st);

    std::mutex mutex_;
    std::condition_variable work_cv_;   // signals workers: task available/stop
    std::condition_variable idle_cv_;   // signals waiters: everything drained
    std::deque<std::function<void()>> tasks_;
    std::size_t active_ = 0;
    bool stopping_ = false;
    std::vector<std::jthread> workers_;
};

}  // namespace dsspy::par
