// Virtual-time simulation of parallel execution on a P-worker machine.
//
// This host may have fewer cores than the paper's 8-core testbed.  Rather
// than projecting speedups with plain Amdahl (which ignores load
// imbalance), this component executes a chunked parallel region
// *sequentially*, measures each chunk, and replays the chunk durations
// through a greedy list scheduler with P virtual workers — the same
// earliest-available-worker policy a dynamic thread pool implements.  The
// resulting makespan is the region's wall-clock on the simulated machine,
// including the imbalance tail (e.g. Mandelbrot's expensive interior
// rows), without any oversubscription noise.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/stopwatch.hpp"

namespace dsspy::par {

/// Measured chunk durations of one parallel region.
class SimulatedSchedule {
public:
    SimulatedSchedule() = default;
    explicit SimulatedSchedule(std::vector<std::uint64_t> chunk_ns)
        : chunk_ns_(std::move(chunk_ns)) {}

    void record_chunk(std::uint64_t ns) { chunk_ns_.push_back(ns); }

    [[nodiscard]] std::size_t chunk_count() const noexcept {
        return chunk_ns_.size();
    }

    [[nodiscard]] const std::vector<std::uint64_t>& chunks() const noexcept {
        return chunk_ns_;
    }

    /// Total sequential work (sum of all chunks).
    [[nodiscard]] std::uint64_t total_work_ns() const noexcept {
        std::uint64_t sum = 0;
        for (const std::uint64_t ns : chunk_ns_) sum += ns;
        return sum;
    }

    /// Longest single chunk — the lower bound no worker count can beat.
    [[nodiscard]] std::uint64_t critical_chunk_ns() const noexcept {
        std::uint64_t best = 0;
        for (const std::uint64_t ns : chunk_ns_) best = std::max(best, ns);
        return best;
    }

    /// Wall-clock of the region on `workers` virtual workers under greedy
    /// list scheduling in submission order (what a work queue does).
    [[nodiscard]] std::uint64_t makespan_ns(unsigned workers) const {
        if (workers == 0) return total_work_ns();
        std::vector<std::uint64_t> free_at(workers, 0);
        for (const std::uint64_t ns : chunk_ns_) {
            auto earliest =
                std::min_element(free_at.begin(), free_at.end());
            *earliest += ns;
        }
        std::uint64_t makespan = 0;
        for (const std::uint64_t t : free_at)
            makespan = std::max(makespan, t);
        return makespan;
    }

    /// Region-level speedup at `workers` (total work / makespan).
    [[nodiscard]] double region_speedup(unsigned workers) const {
        const std::uint64_t span = makespan_ns(workers);
        if (span == 0) return 1.0;
        return static_cast<double>(total_work_ns()) /
               static_cast<double>(span);
    }

private:
    std::vector<std::uint64_t> chunk_ns_;
};

/// Execute `body(lo, hi)` sequentially over `chunks` contiguous slices of
/// [begin, end), timing each slice.  Functionally identical to running the
/// region (all side effects happen); the returned schedule replays it on
/// any virtual machine size.
template <typename Body>
[[nodiscard]] SimulatedSchedule simulate_chunks(std::size_t begin,
                                                std::size_t end,
                                                std::size_t chunks,
                                                Body body) {
    SimulatedSchedule schedule;
    if (begin >= end) return schedule;
    const std::size_t n = end - begin;
    chunks = std::clamp<std::size_t>(chunks, 1, n);
    const std::size_t chunk_size = (n + chunks - 1) / chunks;
    for (std::size_t lo = begin; lo < end; lo += chunk_size) {
        const std::size_t hi = std::min(end, lo + chunk_size);
        support::Stopwatch sw;
        body(lo, hi);
        schedule.record_chunk(sw.elapsed_ns());
    }
    return schedule;
}

/// Whole-program speedup on a simulated `workers`-core machine: the
/// sequential remainder runs as-is, the region shrinks to its makespan.
[[nodiscard]] inline double simulated_program_speedup(
    std::uint64_t sequential_remainder_ns, const SimulatedSchedule& schedule,
    unsigned workers) {
    const std::uint64_t before =
        sequential_remainder_ns + schedule.total_work_ns();
    const std::uint64_t after =
        sequential_remainder_ns + schedule.makespan_ns(workers);
    if (after == 0) return 1.0;
    return static_cast<double>(before) / static_cast<double>(after);
}

}  // namespace dsspy::par
