// Parallel data-structure operations — the recommended actions as code.
//
// Each of the paper's five parallel use cases comes with a recommended
// action; this header is the library form of those actions:
//   * Long-Insert          -> parallel_build / parallel_append
//   * Frequent-Search      -> parallel_index_of (chunked search)
//   * Frequent-Long-Read   -> parallel_reduce / parallel_min_index
//   * Sort-After-Insert    -> parallel_sort (+ parallel_build)
//   * Implement-Queue      -> ConcurrentQueue (concurrent_queue.hpp)
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <limits>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "ds/detail/sort.hpp"
#include "ds/list.hpp"
#include "parallel/parallel_for.hpp"

namespace dsspy::par {

// ---------------------------------------------------------------------------
// Long-Insert: "Parallelize the insert operation."
// ---------------------------------------------------------------------------

/// Build a list of `n` elements where element i is `make(i)`, computing the
/// elements in parallel and appending them in index order.  Replaces a
/// sequential `for (i) list.add(make(i))` loop when `make` dominates.
template <typename T, typename Make>
[[nodiscard]] ds::List<T> parallel_build(ThreadPool& pool, std::size_t n,
                                         Make make) {
    ds::List<T> out(n);
    T* dest = out.data();
    // Elements land directly at their final index; disjoint ranges per task.
    parallel_for_chunks(pool, 0, n, [dest, &make](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
            std::construct_at(dest + i, make(i));
    });
    out.set_count_after_parallel_build(n);
    return out;
}

/// Append `n` generated elements to an existing list in parallel.
template <typename T, typename Make>
void parallel_append(ThreadPool& pool, ds::List<T>& list, std::size_t n,
                     Make make) {
    const std::size_t base = list.count();
    list.reserve(base + n);
    T* dest = list.data();
    parallel_for_chunks(pool, 0, n,
                        [dest, base, &make](std::size_t lo, std::size_t hi) {
                            for (std::size_t i = lo; i < hi; ++i)
                                std::construct_at(dest + base + i, make(i));
                        });
    list.set_count_after_parallel_build(base + n);
}

// ---------------------------------------------------------------------------
// Frequent-Search: "split the list into smaller chunks and search them in
// parallel."
// ---------------------------------------------------------------------------

/// Parallel first-index-of: chunked scan with early exit.  Returns the
/// smallest index whose element satisfies `pred`, or -1.
template <typename T, typename Pred>
[[nodiscard]] std::ptrdiff_t parallel_find_index(ThreadPool& pool,
                                                 std::span<const T> data,
                                                 Pred pred) {
    std::atomic<std::size_t> best{std::numeric_limits<std::size_t>::max()};
    parallel_for_chunks(pool, 0, data.size(),
                        [&](std::size_t lo, std::size_t hi) {
        // Skip chunks entirely above an already-found hit.
        if (lo >= best.load(std::memory_order_relaxed)) return;
        for (std::size_t i = lo; i < hi; ++i) {
            if (i >= best.load(std::memory_order_relaxed)) return;
            if (pred(data[i])) {
                std::size_t cur = best.load(std::memory_order_relaxed);
                while (i < cur && !best.compare_exchange_weak(
                                      cur, i, std::memory_order_relaxed)) {
                }
                return;
            }
        }
    });
    const std::size_t found = best.load(std::memory_order_relaxed);
    return found == std::numeric_limits<std::size_t>::max()
               ? -1
               : static_cast<std::ptrdiff_t>(found);
}

/// Parallel IndexOf for a concrete value.
template <typename T>
[[nodiscard]] std::ptrdiff_t parallel_index_of(ThreadPool& pool,
                                               std::span<const T> data,
                                               const T& value) {
    return parallel_find_index(pool, data,
                               [&value](const T& x) { return x == value; });
}

// ---------------------------------------------------------------------------
// Frequent-Long-Read: "transform this operation into a parallel search
// operation" — parallel reductions over the whole structure.
// ---------------------------------------------------------------------------

/// Parallel reduction: combine(map(e0), map(e1), ...) with `identity` as
/// the neutral element.  `combine` must be associative.
template <typename T, typename R, typename Map, typename Combine>
[[nodiscard]] R parallel_reduce(ThreadPool& pool, std::span<const T> data,
                                R identity, Map map, Combine combine) {
    const std::size_t chunks =
        std::min<std::size_t>(pool.thread_count() * 4,
                              data.size() == 0 ? 1 : data.size());
    std::vector<R> partial(chunks, identity);
    std::atomic<std::size_t> next{0};
    parallel_for_chunks(pool, 0, data.size(),
                        [&](std::size_t lo, std::size_t hi) {
        R acc = identity;
        for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(data[i]));
        partial[next.fetch_add(1, std::memory_order_relaxed)] = acc;
    });
    R out = identity;
    for (const R& p : partial) out = combine(out, p);
    return out;
}

/// Index of the maximum element under `less` (priority-queue extraction —
/// the Algorithmia use case the paper parallelized for a 2.30x speedup).
template <typename T, typename Less = std::less<T>>
[[nodiscard]] std::ptrdiff_t parallel_max_index(ThreadPool& pool,
                                                std::span<const T> data,
                                                Less less = {}) {
    if (data.empty()) return -1;
    std::mutex merge_mutex;
    std::optional<std::size_t> best;
    parallel_for_chunks(pool, 0, data.size(),
                        [&](std::size_t lo, std::size_t hi) {
        std::size_t local = lo;
        for (std::size_t i = lo + 1; i < hi; ++i)
            if (less(data[local], data[i])) local = i;
        // Prefer the larger element; break ties toward the lower index so
        // the result matches the sequential scan.
        std::scoped_lock lock(merge_mutex);
        if (!best || less(data[*best], data[local]) ||
            (!less(data[local], data[*best]) && local < *best)) {
            best = local;
        }
    });
    return static_cast<std::ptrdiff_t>(*best);
}

// ---------------------------------------------------------------------------
// Sort-After-Insert: "Parallelize both insert and search phases."
// ---------------------------------------------------------------------------

/// Parallel merge sort: chunk-sort on the pool, then pairwise merges.
template <typename T, typename Less = std::less<T>>
void parallel_sort(ThreadPool& pool, std::span<T> data, Less less = {}) {
    const std::size_t n = data.size();
    if (n < 2) return;
    std::size_t chunks = pool.thread_count();
    if (chunks < 2) chunks = 2;
    if (chunks > n / 1024 + 1) chunks = n / 1024 + 1;  // avoid tiny chunks
    const std::size_t chunk_size = (n + chunks - 1) / chunks;

    std::vector<std::pair<std::size_t, std::size_t>> runs;
    for (std::size_t lo = 0; lo < n; lo += chunk_size)
        runs.emplace_back(lo, std::min(n, lo + chunk_size));

    // Sort each run in parallel.
    {
        std::latch done(static_cast<std::ptrdiff_t>(runs.size()));
        for (auto [lo, hi] : runs) {
            pool.submit([&data, lo, hi, &less, &done] {
                dsspy::ds::detail::introsort(data.data() + lo,
                                             data.data() + hi, less);
                done.count_down();
            });
        }
        done.wait();
    }

    // Pairwise merge rounds (log(chunks) rounds), merging into a scratch
    // buffer and swapping roles each round.
    std::vector<T> scratch(data.begin(), data.end());
    T* src = data.data();
    T* dst = scratch.data();
    while (runs.size() > 1) {
        std::vector<std::pair<std::size_t, std::size_t>> next_runs;
        const std::size_t pairs = runs.size() / 2;
        std::latch done(static_cast<std::ptrdiff_t>(pairs));
        for (std::size_t p = 0; p < pairs; ++p) {
            const auto [alo, ahi] = runs[2 * p];
            const auto [blo, bhi] = runs[2 * p + 1];
            next_runs.emplace_back(alo, bhi);
            pool.submit([src, dst, alo, ahi, blo, bhi, &less, &done] {
                std::size_t i = alo;
                std::size_t j = blo;
                std::size_t o = alo;
                while (i < ahi && j < bhi)
                    dst[o++] = less(src[j], src[i]) ? std::move(src[j++])
                                                    : std::move(src[i++]);
                while (i < ahi) dst[o++] = std::move(src[i++]);
                while (j < bhi) dst[o++] = std::move(src[j++]);
                done.count_down();
            });
        }
        if (runs.size() % 2 == 1) {
            const auto [lo, hi] = runs.back();
            for (std::size_t i = lo; i < hi; ++i) dst[i] = std::move(src[i]);
            next_runs.push_back(runs.back());
        }
        done.wait();
        runs = std::move(next_runs);
        std::swap(src, dst);
    }
    if (src != data.data()) {
        for (std::size_t i = 0; i < n; ++i) data[i] = std::move(src[i]);
    }
}

/// Default-pool conveniences.
template <typename T, typename Pred>
[[nodiscard]] std::ptrdiff_t parallel_find_index(std::span<const T> data,
                                                 Pred pred) {
    return parallel_find_index(ThreadPool::default_pool(), data,
                               std::move(pred));
}

template <typename T, typename Less = std::less<T>>
void parallel_sort(std::span<T> data, Less less = {}) {
    parallel_sort(ThreadPool::default_pool(), data, less);
}

}  // namespace dsspy::par
