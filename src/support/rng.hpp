// Deterministic pseudo-random number generation.
//
// Every workload driver and synthetic corpus generator in this repository is
// seeded explicitly so that experiments and tests are reproducible run to
// run.  We use SplitMix64 for seeding and xoshiro256** as the workhorse
// generator; both are tiny, fast, and have well-understood statistical
// quality — more than adequate for workload synthesis.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace dsspy::support {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
public:
    explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

    constexpr std::uint64_t next() noexcept {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        return z ^ (z >> 31);
    }

private:
    std::uint64_t state_;
};

/// xoshiro256**: the repository-wide deterministic RNG.
///
/// Satisfies `std::uniform_random_bit_generator`, so it can be handed to
/// `std::shuffle` and the `<random>` distributions as well.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit constexpr Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
        SplitMix64 sm(seed);
        for (auto& word : state_) word = sm.next();
    }

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept {
        return std::numeric_limits<result_type>::max();
    }

    constexpr result_type operator()() noexcept { return next(); }

    constexpr std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). `bound` must be > 0.
    constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
        // Lemire's multiply-shift: map the full 64-bit draw onto [0, bound)
        // branch-free via a widening multiply (negligible bias).
        __extension__ using uint128 = unsigned __int128;
        return static_cast<std::uint64_t>(
            (static_cast<uint128>(next()) * bound) >> 64);
    }

    /// Uniform integer in [lo, hi] inclusive.
    constexpr std::int64_t next_range(std::int64_t lo, std::int64_t hi) noexcept {
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(next_below(span));
    }

    /// Uniform double in [0, 1).
    constexpr double next_double() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Bernoulli draw with probability `p`.
    constexpr bool next_bool(double p = 0.5) noexcept { return next_double() < p; }

private:
    static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

}  // namespace dsspy::support
