#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace dsspy::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
    alignment_.assign(headers_.size(), Align::Right);
    if (!alignment_.empty()) alignment_.front() = Align::Left;
}

void Table::set_alignment(std::vector<Align> alignment) {
    alignment_ = std::move(alignment);
    alignment_.resize(headers_.size(), Align::Right);
}

void Table::add_row(std::vector<std::string> cells) {
    cells.resize(headers_.size());
    rows_.push_back(Row{std::move(cells), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        if (row.separator) continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    auto print_cells = [&](const std::vector<std::string>& cells) {
        os << "| ";
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string& cell = c < cells.size() ? cells[c] : headers_[c];
            const auto pad = widths[c] - cell.size();
            if (alignment_[c] == Align::Right) os << std::string(pad, ' ');
            os << cell;
            if (alignment_[c] == Align::Left) os << std::string(pad, ' ');
            os << (c + 1 == headers_.size() ? " |" : " | ");
        }
        os << '\n';
    };

    auto print_rule = [&] {
        os << '+';
        for (std::size_t c = 0; c < headers_.size(); ++c)
            os << std::string(widths[c] + 2, '-') << '+';
        os << '\n';
    };

    print_rule();
    print_cells(headers_);
    print_rule();
    for (const auto& row : rows_) {
        if (row.separator) {
            print_rule();
        } else {
            print_cells(row.cells);
        }
    }
    print_rule();
}

void Table::print_csv(std::ostream& os) const {
    auto escape = [](const std::string& s) {
        if (s.find_first_of(",\"\n") == std::string::npos) return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"') out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << escape(headers_[c]) << (c + 1 == headers_.size() ? "\n" : ",");
    for (const auto& row : rows_) {
        if (row.separator) continue;
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            os << (c < row.cells.size() ? escape(row.cells[c]) : std::string{})
               << (c + 1 == headers_.size() ? "\n" : ",");
        }
    }
}

std::string Table::fmt(double value, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string Table::with_commas(long long value) {
    const bool negative = value < 0;
    unsigned long long magnitude =
        negative ? 0ULL - static_cast<unsigned long long>(value)
                 : static_cast<unsigned long long>(value);
    std::string digits = std::to_string(magnitude);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3 + 1);
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0) out += ',';
        out += *it;
        ++count;
    }
    if (negative) out += '-';
    std::reverse(out.begin(), out.end());
    return out;
}

std::string Table::pct(double ratio) { return fmt(ratio * 100.0, 2) + "%"; }

}  // namespace dsspy::support
