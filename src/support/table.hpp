// Plain-text table rendering for the bench binaries.
//
// Every bench binary regenerates one of the paper's tables; this class
// renders aligned ASCII tables (and CSV) so all of them look uniform.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace dsspy::support {

/// Column alignment inside a rendered table.
enum class Align { Left, Right };

/// Builder for aligned plain-text tables.
///
/// Usage:
///   Table t({"Name", "LOC"});
///   t.add_row({"astrogrep", "4,800"});
///   t.print(std::cout);
class Table {
public:
    explicit Table(std::vector<std::string> headers);

    /// Set alignment per column; defaults to Left for column 0, Right after.
    void set_alignment(std::vector<Align> alignment);

    /// Append a data row. Rows shorter than the header are padded with "".
    void add_row(std::vector<std::string> cells);

    /// Append a horizontal separator row.
    void add_separator();

    /// Render as aligned ASCII.
    void print(std::ostream& os) const;

    /// Render as CSV (no separator rows).
    void print_csv(std::ostream& os) const;

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

    // --- numeric formatting helpers used by the bench binaries ----------

    /// Fixed-point with `digits` decimals, e.g. fmt(2.126, 2) == "2.13".
    static std::string fmt(double value, int digits = 2);

    /// Thousands-separated integer, e.g. with_commas(936356) == "936,356".
    static std::string with_commas(long long value);

    /// Percentage with two decimals, e.g. pct(0.7692) == "76.92%".
    static std::string pct(double ratio);

private:
    struct Row {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::vector<std::string> headers_;
    std::vector<Align> alignment_;
    std::vector<Row> rows_;
};

}  // namespace dsspy::support
