// Value type describing the instantiation site of a data-structure instance.
//
// DSspy binds every runtime profile to the location where the instance was
// created (class, method, position).  Table V of the paper reports exactly
// these three fields plus the data-structure type, so they are first-class
// here rather than derived from debug info.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace dsspy::support {

/// Instantiation site of a data-structure instance.
///
/// `position` is the paper's "Position" column: the line (or statement
/// offset) of the `new List<T>()` / array-creation expression inside
/// `method`.
struct SourceLoc {
    std::string class_name;   ///< Fully qualified declaring class.
    std::string method;       ///< Method containing the instantiation.
    std::uint32_t position = 0;  ///< Line/statement offset inside the method.

    auto operator<=>(const SourceLoc&) const = default;

    /// "Class.Method:Position" — the format used in reports.
    [[nodiscard]] std::string to_string() const {
        std::string out;
        out.reserve(class_name.size() + method.size() + 12);
        out += class_name;
        out += '.';
        out += method;
        out += ':';
        out += std::to_string(position);
        return out;
    }
};

}  // namespace dsspy::support
