// Monotonic wall-clock stopwatch used by the evaluation harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace dsspy::support {

/// Monotonic nanoseconds since an arbitrary epoch (steady_clock).  The
/// single timing source shared by the capture hot path, the span tracer
/// (obs/span.hpp), and the Stopwatch below — keep every timing consumer on
/// this helper so there is exactly one clock in the system.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Simple monotonic stopwatch.  Started on construction.
class Stopwatch {
public:
    Stopwatch() noexcept : start_(now_ns()) {}

    void restart() noexcept { start_ = now_ns(); }

    [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
        return now_ns() - start_;
    }

    [[nodiscard]] double elapsed_ms() const noexcept {
        return static_cast<double>(elapsed_ns()) / 1e6;
    }

    [[nodiscard]] double elapsed_s() const noexcept {
        return static_cast<double>(elapsed_ns()) / 1e9;
    }

private:
    std::uint64_t start_;
};

}  // namespace dsspy::support
