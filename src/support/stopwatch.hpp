// Monotonic wall-clock stopwatch used by the evaluation harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace dsspy::support {

/// Simple monotonic stopwatch.  Started on construction.
class Stopwatch {
public:
    Stopwatch() noexcept : start_(clock::now()) {}

    void restart() noexcept { start_ = clock::now(); }

    [[nodiscard]] std::uint64_t elapsed_ns() const noexcept {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                 start_)
                .count());
    }

    [[nodiscard]] double elapsed_ms() const noexcept {
        return static_cast<double>(elapsed_ns()) / 1e6;
    }

    [[nodiscard]] double elapsed_s() const noexcept {
        return static_cast<double>(elapsed_ns()) / 1e9;
    }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

}  // namespace dsspy::support
