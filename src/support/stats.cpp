#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

namespace dsspy::support {

Summary summarize(std::span<const double> sample) {
    Summary s;
    s.count = sample.size();
    if (sample.empty()) return s;

    double sum = 0.0;
    s.min = sample.front();
    s.max = sample.front();
    for (double v : sample) {
        sum += v;
        s.min = std::min(s.min, v);
        s.max = std::max(s.max, v);
    }
    s.mean = sum / static_cast<double>(sample.size());

    if (sample.size() > 1) {
        double ss = 0.0;
        for (double v : sample) {
            const double d = v - s.mean;
            ss += d * d;
        }
        s.stddev = std::sqrt(ss / static_cast<double>(sample.size() - 1));
    }
    s.median = percentile(sample, 50.0);
    return s;
}

double percentile(std::span<const double> sample, double p) {
    if (sample.empty()) return 0.0;
    std::vector<double> sorted(sample.begin(), sample.end());
    std::sort(sorted.begin(), sorted.end());
    const double clamped = std::clamp(p, 0.0, 100.0);
    const double rank =
        clamped / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double speedup(double sequential_time, double parallel_time) {
    if (sequential_time <= 0.0 || parallel_time <= 0.0) return 0.0;
    return sequential_time / parallel_time;
}

double amdahl_speedup(double sequential_fraction, unsigned threads) {
    if (threads == 0) return 0.0;
    const double f = std::clamp(sequential_fraction, 0.0, 1.0);
    return 1.0 / (f + (1.0 - f) / static_cast<double>(threads));
}

double fraction(double a, double b) {
    const double total = a + b;
    if (total <= 0.0) return 0.0;
    return a / total;
}

double geomean(std::span<const double> sample) {
    if (sample.empty()) return 0.0;
    double log_sum = 0.0;
    for (double v : sample) {
        if (v <= 0.0) return 0.0;
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(sample.size()));
}

}  // namespace dsspy::support
