// Small descriptive-statistics helpers for the evaluation harness.
//
// Table IV of the paper reports averages over ten repeated runs; Table VI
// reports runtime fractions.  These helpers centralize that arithmetic so
// every bench binary computes it the same way.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dsspy::support {

/// Summary statistics over a sample.
struct Summary {
    double mean = 0.0;
    double stddev = 0.0;   ///< Sample standard deviation (n-1 denominator).
    double min = 0.0;
    double max = 0.0;
    double median = 0.0;
    std::size_t count = 0;
};

/// Compute summary statistics.  Empty input yields a zeroed Summary.
[[nodiscard]] Summary summarize(std::span<const double> sample);

/// p-th percentile (0..100) by linear interpolation.  Empty input -> 0.
[[nodiscard]] double percentile(std::span<const double> sample, double p);

/// Speedup of `parallel_time` relative to `sequential_time`; 0 if invalid.
[[nodiscard]] double speedup(double sequential_time, double parallel_time);

/// Amdahl's-law predicted speedup for `threads` given a sequential fraction
/// in [0,1].  Used by the Table VI bench to sanity-check measured numbers.
[[nodiscard]] double amdahl_speedup(double sequential_fraction, unsigned threads);

/// Fraction a/(a+b), 0 when both are 0.  Used for "sequential fraction".
[[nodiscard]] double fraction(double a, double b);

/// Geometric mean; 0 for empty input or any non-positive element.
[[nodiscard]] double geomean(std::span<const double> sample);

}  // namespace dsspy::support
