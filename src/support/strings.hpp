// String helpers shared by the scanner, corpus generator, and reports.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dsspy::support {

/// Split `text` on `sep`, keeping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view text, char sep);

/// Split `text` into non-empty whitespace-delimited tokens.
[[nodiscard]] std::vector<std::string> tokenize(std::string_view text);

/// Trim ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
[[nodiscard]] bool ends_with(std::string_view text, std::string_view suffix);

/// Lower-case ASCII copy.
[[nodiscard]] std::string to_lower(std::string_view text);

/// Join `parts` with `sep`.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

/// Replace every occurrence of `from` with `to`.
[[nodiscard]] std::string replace_all(std::string_view text,
                                      std::string_view from,
                                      std::string_view to);

/// Count non-overlapping occurrences of `needle` in `haystack`.
[[nodiscard]] std::size_t count_occurrences(std::string_view haystack,
                                            std::string_view needle);

}  // namespace dsspy::support
