#include "support/strings.hpp"

#include <cctype>

namespace dsspy::support {

std::vector<std::string> split(std::string_view text, char sep) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::vector<std::string> tokenize(std::string_view text) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        const std::size_t start = i;
        while (i < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
        if (i > start) out.emplace_back(text.substr(start, i - start));
    }
    return out;
}

std::string_view trim(std::string_view text) {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end &&
           std::isspace(static_cast<unsigned char>(text[begin])))
        ++begin;
    while (end > begin &&
           std::isspace(static_cast<unsigned char>(text[end - 1])))
        --end;
    return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
    return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string to_lower(std::string_view text) {
    std::string out(text);
    for (char& ch : out)
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
    return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
    if (from.empty()) return std::string(text);
    std::string out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(from, start);
        if (pos == std::string_view::npos) {
            out += text.substr(start);
            return out;
        }
        out += text.substr(start, pos - start);
        out += to;
        start = pos + from.size();
    }
}

std::size_t count_occurrences(std::string_view haystack,
                              std::string_view needle) {
    if (needle.empty()) return 0;
    std::size_t count = 0;
    std::size_t pos = 0;
    while ((pos = haystack.find(needle, pos)) != std::string_view::npos) {
        ++count;
        pos += needle.size();
    }
    return count;
}

}  // namespace dsspy::support
