// LIFO stack modeled after the CTS Stack<T>.
//
// The paper's Stack-Implementation use case detects lists that behave like
// this container ("insert and delete operations always access a common
// end") and recommends switching to it.
#pragma once

#include <cassert>
#include <cstddef>

#include "ds/list.hpp"

namespace dsspy::ds {

/// LIFO stack backed by a growable array (as the CTS Stack is).
template <typename T>
class Stack {
public:
    Stack() = default;
    explicit Stack(std::size_t capacity) : items_(capacity) {}

    [[nodiscard]] std::size_t count() const noexcept { return items_.count(); }
    [[nodiscard]] bool empty() const noexcept { return items_.empty(); }

    /// Push on top (Stack.Push).
    void push(T value) { items_.add(std::move(value)); }

    /// Pop the top element (Stack.Pop).  Stack must be non-empty.
    T pop() {
        assert(!items_.empty());
        T value = std::move(items_[items_.count() - 1]);
        items_.remove_at(items_.count() - 1);
        return value;
    }

    /// Top element without removing it (Stack.Peek).
    [[nodiscard]] const T& peek() const {
        assert(!items_.empty());
        return items_[items_.count() - 1];
    }

    [[nodiscard]] bool contains(const T& value) const {
        return items_.contains(value);
    }

    void clear() noexcept { items_.clear(); }

private:
    List<T> items_;
};

}  // namespace dsspy::ds
