// Doubly-linked list modeled after the CTS LinkedList<T>.
//
// Rare in the paper's study (0.15 % of instances) but part of the CTS
// vocabulary the empirical-study scanner covers.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

namespace dsspy::ds {

/// Doubly-linked list.  Forward ownership via unique_ptr, raw back links.
template <typename T>
class LinkedList {
public:
    struct Node {
        T value;
        std::unique_ptr<Node> next;
        Node* prev = nullptr;
    };

    LinkedList() = default;
    LinkedList(const LinkedList& other) {
        for (const Node* n = other.head_.get(); n != nullptr; n = n->next.get())
            add_last(n->value);
    }
    LinkedList(LinkedList&&) noexcept = default;
    LinkedList& operator=(const LinkedList& other) {
        if (this != &other) {
            LinkedList tmp(other);
            swap(tmp);
        }
        return *this;
    }
    LinkedList& operator=(LinkedList&&) noexcept = default;
    ~LinkedList() { clear(); }

    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

    /// Prepend (LinkedList.AddFirst).
    void add_first(T value) {
        auto node = std::make_unique<Node>(Node{std::move(value), nullptr, nullptr});
        if (head_) {
            head_->prev = node.get();
            node->next = std::move(head_);
        } else {
            tail_ = node.get();
        }
        head_ = std::move(node);
        ++count_;
    }

    /// Append (LinkedList.AddLast).
    void add_last(T value) {
        auto node = std::make_unique<Node>(Node{std::move(value), nullptr, tail_});
        Node* raw = node.get();
        if (tail_ != nullptr) {
            tail_->next = std::move(node);
        } else {
            head_ = std::move(node);
        }
        tail_ = raw;
        ++count_;
    }

    /// Remove the first element.  List must be non-empty.
    T remove_first() {
        assert(head_ != nullptr);
        T value = std::move(head_->value);
        head_ = std::move(head_->next);
        if (head_) {
            head_->prev = nullptr;
        } else {
            tail_ = nullptr;
        }
        --count_;
        return value;
    }

    /// Remove the last element.  List must be non-empty.
    T remove_last() {
        assert(tail_ != nullptr);
        T value = std::move(tail_->value);
        Node* prev = tail_->prev;
        if (prev != nullptr) {
            prev->next.reset();
            tail_ = prev;
        } else {
            head_.reset();
            tail_ = nullptr;
        }
        --count_;
        return value;
    }

    [[nodiscard]] const T& first() const {
        assert(head_ != nullptr);
        return head_->value;
    }
    [[nodiscard]] const T& last() const {
        assert(tail_ != nullptr);
        return tail_->value;
    }

    /// Linear search (LinkedList.Find); nullptr when absent.
    [[nodiscard]] const Node* find(const T& value) const {
        for (const Node* n = head_.get(); n != nullptr; n = n->next.get())
            if (n->value == value) return n;
        return nullptr;
    }

    [[nodiscard]] bool contains(const T& value) const {
        return find(value) != nullptr;
    }

    template <typename Fn>
    void for_each(Fn fn) const {
        for (const Node* n = head_.get(); n != nullptr; n = n->next.get())
            fn(n->value);
    }

    void clear() noexcept {
        // Iteratively unlink to avoid deep recursive unique_ptr destruction.
        while (head_) head_ = std::move(head_->next);
        tail_ = nullptr;
        count_ = 0;
    }

    void swap(LinkedList& other) noexcept {
        std::swap(head_, other.head_);
        std::swap(tail_, other.tail_);
        std::swap(count_, other.count_);
    }

private:
    std::unique_ptr<Node> head_;
    Node* tail_ = nullptr;
    std::size_t count_ = 0;
};

}  // namespace dsspy::ds
