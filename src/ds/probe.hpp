// Instrumentation probe bound to one data-structure instance.
//
// The paper implements "the dynamic profiler using the proxy design
// pattern so that it is easily extensible to runtime profiles of other
// data structures" (Section IV).  Probe is the shared half of every proxy:
// it registers the instance with the active ProfilingSession at
// construction, forwards access events on the hot path, and marks the
// instance deallocated when the proxy dies.
//
// A Probe constructed with a null session records nothing; this is how the
// evaluation harness runs the *identical* application code instrumented and
// uninstrumented to measure the Table IV slowdown.
#pragma once

#include <string>
#include <utility>

#include "runtime/session.hpp"
#include "support/source_location.hpp"

namespace dsspy::ds {

/// Per-instance recording handle.  Movable, not copyable (a copy of a
/// container is a new instance and must register itself).
class Probe {
public:
    /// Unprofiled probe: every rec() is a no-op.
    Probe() noexcept = default;

    /// Register `location` as a new instance of `kind` with `session`.
    /// A null session produces an unprofiled probe.
    Probe(runtime::ProfilingSession* session, runtime::DsKind kind,
          std::string type_name, support::SourceLoc location)
        : session_(session) {
        if (session_ != nullptr) {
            id_ = session_->register_instance(kind, std::move(type_name),
                                              std::move(location));
        }
    }

    Probe(Probe&& other) noexcept
        : session_(std::exchange(other.session_, nullptr)),
          id_(std::exchange(other.id_, runtime::kInvalidInstance)) {}

    Probe& operator=(Probe&& other) noexcept {
        if (this != &other) {
            release();
            session_ = std::exchange(other.session_, nullptr);
            id_ = std::exchange(other.id_, runtime::kInvalidInstance);
        }
        return *this;
    }

    Probe(const Probe&) = delete;
    Probe& operator=(const Probe&) = delete;

    ~Probe() { release(); }

    /// Record one access event.  Hot path — no-op when unprofiled.
    void rec(runtime::OpKind op, std::int64_t position,
             std::size_t size) const noexcept {
        if (session_ != nullptr)
            session_->record(id_, op, position,
                             static_cast<std::uint32_t>(size));
    }

    [[nodiscard]] bool profiled() const noexcept { return session_ != nullptr; }
    [[nodiscard]] runtime::InstanceId id() const noexcept { return id_; }
    [[nodiscard]] runtime::ProfilingSession* session() const noexcept {
        return session_;
    }

private:
    void release() noexcept {
        if (session_ != nullptr) session_->mark_deallocated(id_);
        session_ = nullptr;
    }

    runtime::ProfilingSession* session_ = nullptr;
    runtime::InstanceId id_ = runtime::kInvalidInstance;
};

}  // namespace dsspy::ds
