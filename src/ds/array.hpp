// Fixed-size array container modeled after CTS arrays.
//
// Arrays are the second data-structure family DSspy instruments.  Unlike
// List, an Array has a fixed length; `resize()` allocates a new buffer and
// copies every element — the copy overhead that motivates the paper's
// Insert/Delete-Front sequential use case ("Resizing them means that an
// array of the new size is allocated and all elements are copied").
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <utility>

#include "ds/detail/raw_buffer.hpp"
#include "ds/detail/sort.hpp"

namespace dsspy::ds {

/// Fixed-length array with CTS-array semantics.  Elements are
/// value-initialized on construction (like `new T[n]` in C#).
template <typename T>
class Array {
public:
    using value_type = T;
    using iterator = T*;
    using const_iterator = const T*;

    Array() noexcept = default;

    /// Allocate `length` value-initialized elements.
    explicit Array(std::size_t length) : storage_(length), length_(length) {
        std::uninitialized_value_construct(data(), data() + length_);
    }

    Array(const Array& other) : storage_(other.length_), length_(other.length_) {
        std::uninitialized_copy(other.data(), other.data() + length_, data());
    }

    Array(Array&& other) noexcept
        : storage_(std::move(other.storage_)),
          length_(std::exchange(other.length_, 0)) {}

    Array& operator=(const Array& other) {
        if (this != &other) {
            Array tmp(other);
            swap(tmp);
        }
        return *this;
    }

    Array& operator=(Array&& other) noexcept {
        if (this != &other) {
            destroy_all();
            storage_ = std::move(other.storage_);
            length_ = std::exchange(other.length_, 0);
        }
        return *this;
    }

    ~Array() { destroy_all(); }

    // --- element access ----------------------------------------------------

    [[nodiscard]] T& operator[](std::size_t index) {
        assert(index < length_);
        return data()[index];
    }
    [[nodiscard]] const T& operator[](std::size_t index) const {
        assert(index < length_);
        return data()[index];
    }

    [[nodiscard]] const T& get(std::size_t index) const {
        assert(index < length_);
        return data()[index];
    }

    void set(std::size_t index, T value) {
        assert(index < length_);
        data()[index] = std::move(value);
    }

    [[nodiscard]] T* data() noexcept { return storage_.data(); }
    [[nodiscard]] const T* data() const noexcept { return storage_.data(); }

    [[nodiscard]] std::size_t length() const noexcept { return length_; }
    [[nodiscard]] bool empty() const noexcept { return length_ == 0; }

    // --- whole-array operations ---------------------------------------------

    /// Reallocate to `new_length`, copying min(old,new) elements and
    /// value-initializing any tail (Array.Resize).  O(n) copy — the cost the
    /// Insert/Delete-Front use case warns about.
    void resize(std::size_t new_length) {
        if (new_length == length_) return;
        detail::RawBuffer<T> next(new_length);
        const std::size_t keep = new_length < length_ ? new_length : length_;
        if constexpr (std::is_nothrow_move_constructible_v<T>) {
            std::uninitialized_move(data(), data() + keep, next.data());
        } else {
            std::uninitialized_copy(data(), data() + keep, next.data());
        }
        std::uninitialized_value_construct(next.data() + keep,
                                           next.data() + new_length);
        std::destroy(data(), data() + length_);
        storage_ = std::move(next);
        length_ = new_length;
    }

    /// Set every element to `value` (Array.Fill).
    void fill(const T& value) {
        for (std::size_t i = 0; i < length_; ++i) data()[i] = value;
    }

    /// Index of the first element equal to `value`, or -1 (Array.IndexOf).
    [[nodiscard]] std::ptrdiff_t index_of(const T& value) const {
        for (std::size_t i = 0; i < length_; ++i)
            if (data()[i] == value) return static_cast<std::ptrdiff_t>(i);
        return -1;
    }

    [[nodiscard]] bool contains(const T& value) const {
        return index_of(value) >= 0;
    }

    template <typename Less = std::less<T>>
    void sort(Less less = {}) {
        detail::introsort(data(), data() + length_, less);
    }

    void reverse() noexcept {
        for (std::size_t i = 0, j = length_; i + 1 < j; ++i, --j)
            std::swap(data()[i], data()[j - 1]);
    }

    void copy_to(std::span<T> out) const {
        assert(out.size() >= length_);
        for (std::size_t i = 0; i < length_; ++i) out[i] = data()[i];
    }

    template <typename Fn>
    void for_each(Fn fn) {
        for (std::size_t i = 0; i < length_; ++i) fn(data()[i]);
    }
    template <typename Fn>
    void for_each(Fn fn) const {
        for (std::size_t i = 0; i < length_; ++i) fn(data()[i]);
    }

    [[nodiscard]] iterator begin() noexcept { return data(); }
    [[nodiscard]] iterator end() noexcept { return data() + length_; }
    [[nodiscard]] const_iterator begin() const noexcept { return data(); }
    [[nodiscard]] const_iterator end() const noexcept {
        return data() + length_;
    }

    void swap(Array& other) noexcept {
        storage_.swap(other.storage_);
        std::swap(length_, other.length_);
    }

    friend bool operator==(const Array& a, const Array& b) {
        if (a.length_ != b.length_) return false;
        for (std::size_t i = 0; i < a.length_; ++i)
            if (!(a.data()[i] == b.data()[i])) return false;
        return true;
    }

private:
    void destroy_all() noexcept {
        std::destroy(data(), data() + length_);
        length_ = 0;
    }

    detail::RawBuffer<T> storage_;
    std::size_t length_ = 0;
};

}  // namespace dsspy::ds
