// Hash map modeled after the CTS Dictionary<TKey, TValue>.
//
// Second most frequent dynamic data structure in the paper's empirical
// study (324 of 1,960 instances, 16.53 %).  Dictionary accesses have no
// linear position, so their events never form positional patterns — they
// mostly contribute "rest" instances to the search-space denominator.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>

#include "ds/detail/hash_table.hpp"

namespace dsspy::ds {

/// Hash map with C#-Dictionary semantics.
template <typename K, typename V, typename Hash = std::hash<K>>
class Dictionary {
public:
    Dictionary() = default;
    explicit Dictionary(std::size_t capacity) : table_(capacity) {}

    [[nodiscard]] std::size_t count() const noexcept { return table_.size(); }
    [[nodiscard]] bool empty() const noexcept { return table_.empty(); }

    /// Add a new key (Dictionary.Add). Throws if the key already exists.
    void add(K key, V value) {
        if (!table_.insert_if_absent(std::move(key), std::move(value)))
            throw std::invalid_argument("Dictionary::add: duplicate key");
    }

    /// Insert or overwrite (indexer set).
    void set(K key, V value) {
        table_.insert_or_assign(std::move(key), std::move(value));
    }

    /// Indexer get. Throws if missing.
    [[nodiscard]] const V& get(const K& key) const {
        const V* v = table_.find(key);
        if (v == nullptr)
            throw std::out_of_range("Dictionary::get: missing key");
        return *v;
    }

    /// TryGetValue: writes to `out` and returns true if present.
    bool try_get(const K& key, V& out) const {
        const V* v = table_.find(key);
        if (v == nullptr) return false;
        out = *v;
        return true;
    }

    [[nodiscard]] bool contains_key(const K& key) const {
        return table_.contains(key);
    }

    /// Remove `key`; true if it was present.
    bool remove(const K& key) { return table_.erase(key); }

    void clear() noexcept { table_.clear(); }

    /// Visit every (key, value) pair.
    template <typename Fn>
    void for_each(Fn fn) const {
        table_.for_each(fn);
    }

private:
    detail::HashTable<K, V, Hash> table_;
};

}  // namespace dsspy::ds
