// Sorted key/value container modeled after the CTS SortedList<K, V>.
//
// Keeps keys in a sorted array with binary-search lookup — the data
// structure the paper's Frequent-Search recommendation points engineers
// toward when a list is linearly scanned for specific elements.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <optional>
#include <stdexcept>

#include "ds/list.hpp"

namespace dsspy::ds {

/// Sorted associative array; O(log n) lookup, O(n) insert.
template <typename K, typename V, typename Less = std::less<K>>
class SortedList {
public:
    SortedList() = default;

    [[nodiscard]] std::size_t count() const noexcept { return keys_.count(); }
    [[nodiscard]] bool empty() const noexcept { return keys_.empty(); }

    /// Insert a new key (SortedList.Add). Throws on duplicates.
    void add(K key, V value) {
        const std::size_t pos = lower_bound(key);
        if (pos < keys_.count() && equal(keys_[pos], key))
            throw std::invalid_argument("SortedList::add: duplicate key");
        keys_.insert(pos, std::move(key));
        values_.insert(pos, std::move(value));
    }

    /// Insert or overwrite (indexer set).
    void set(K key, V value) {
        const std::size_t pos = lower_bound(key);
        if (pos < keys_.count() && equal(keys_[pos], key)) {
            values_.set(pos, std::move(value));
        } else {
            keys_.insert(pos, std::move(key));
            values_.insert(pos, std::move(value));
        }
    }

    /// Indexer get. Throws if missing.
    [[nodiscard]] const V& get(const K& key) const {
        const auto idx = index_of_key(key);
        if (idx < 0) throw std::out_of_range("SortedList::get: missing key");
        return values_[static_cast<std::size_t>(idx)];
    }

    bool try_get(const K& key, V& out) const {
        const auto idx = index_of_key(key);
        if (idx < 0) return false;
        out = values_[static_cast<std::size_t>(idx)];
        return true;
    }

    /// Binary-search index of `key`, or -1 (SortedList.IndexOfKey).
    [[nodiscard]] std::ptrdiff_t index_of_key(const K& key) const {
        const std::size_t pos = lower_bound(key);
        if (pos < keys_.count() && equal(keys_[pos], key))
            return static_cast<std::ptrdiff_t>(pos);
        return -1;
    }

    [[nodiscard]] bool contains_key(const K& key) const {
        return index_of_key(key) >= 0;
    }

    bool remove(const K& key) {
        const auto idx = index_of_key(key);
        if (idx < 0) return false;
        keys_.remove_at(static_cast<std::size_t>(idx));
        values_.remove_at(static_cast<std::size_t>(idx));
        return true;
    }

    /// Key at sorted position i.
    [[nodiscard]] const K& key_at(std::size_t i) const { return keys_[i]; }
    /// Value at sorted position i.
    [[nodiscard]] const V& value_at(std::size_t i) const { return values_[i]; }

    void clear() noexcept {
        keys_.clear();
        values_.clear();
    }

    template <typename Fn>
    void for_each(Fn fn) const {
        for (std::size_t i = 0; i < keys_.count(); ++i)
            fn(keys_[i], values_[i]);
    }

private:
    [[nodiscard]] std::size_t lower_bound(const K& key) const {
        std::size_t lo = 0;
        std::size_t hi = keys_.count();
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (Less{}(keys_[mid], key)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return lo;
    }

    [[nodiscard]] static bool equal(const K& a, const K& b) {
        return !Less{}(a, b) && !Less{}(b, a);
    }

    List<K> keys_;
    List<V> values_;
};

}  // namespace dsspy::ds
