// Ordered key/value map modeled after the CTS SortedDictionary<K, V>.
//
// AVL-backed: O(log n) everywhere, unlike SortedList whose array layout
// makes inserts O(n) — the classic trade-off between the two CTS types.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>

#include "ds/detail/avl_tree.hpp"

namespace dsspy::ds {

/// Ordered map with O(log n) add/get/remove and in-order traversal.
template <typename K, typename V, typename Less = std::less<K>>
class SortedDictionary {
public:
    SortedDictionary() = default;

    [[nodiscard]] std::size_t count() const noexcept { return tree_.size(); }
    [[nodiscard]] bool empty() const noexcept { return tree_.empty(); }

    /// Add a new key; throws on duplicates (SortedDictionary.Add).
    void add(K key, V value) {
        if (!tree_.insert_if_absent(std::move(key), std::move(value)))
            throw std::invalid_argument(
                "SortedDictionary::add: duplicate key");
    }

    /// Insert or overwrite (indexer set).
    void set(K key, V value) {
        tree_.insert_or_assign(std::move(key), std::move(value));
    }

    /// Indexer get; throws if missing.
    [[nodiscard]] const V& get(const K& key) const {
        const V* v = tree_.find(key);
        if (v == nullptr)
            throw std::out_of_range("SortedDictionary::get: missing key");
        return *v;
    }

    bool try_get(const K& key, V& out) const {
        const V* v = tree_.find(key);
        if (v == nullptr) return false;
        out = *v;
        return true;
    }

    [[nodiscard]] bool contains_key(const K& key) const {
        return tree_.contains(key);
    }

    bool remove(const K& key) { return tree_.erase(key); }

    [[nodiscard]] const K* min_key() const { return tree_.min_key(); }
    [[nodiscard]] const K* max_key() const { return tree_.max_key(); }

    void clear() noexcept { tree_.clear(); }

    /// Ascending-key traversal: fn(key, value).
    template <typename Fn>
    void for_each(Fn fn) const {
        tree_.for_each(fn);
    }

    /// Test hook: AVL invariants hold.
    [[nodiscard]] bool validate() const { return tree_.validate(); }

private:
    detail::AvlTree<K, V, Less> tree_;
};

}  // namespace dsspy::ds
