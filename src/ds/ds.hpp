// Umbrella header for the data-structure substrate.
#pragma once

#include "ds/array.hpp"
#include "ds/dictionary.hpp"
#include "ds/hash_set.hpp"
#include "ds/linked_list.hpp"
#include "ds/list.hpp"
#include "ds/probe.hpp"
#include "ds/profiled_array.hpp"
#include "ds/profiled_containers.hpp"
#include "ds/profiled_list.hpp"
#include "ds/queue.hpp"
#include "ds/sorted_dictionary.hpp"
#include "ds/sorted_list.hpp"
#include "ds/sorted_set.hpp"
#include "ds/stack.hpp"
#include "ds/type_names.hpp"
