// Hash set modeled after the CTS HashSet<T>.
#pragma once

#include <cstddef>
#include <cstddef>
#include <functional>

#include "ds/detail/hash_table.hpp"

namespace dsspy::ds {

/// Unordered unique-element set with C#-HashSet semantics.
template <typename T, typename Hash = std::hash<T>>
class HashSet {
public:
    HashSet() = default;
    explicit HashSet(std::size_t capacity) : table_(capacity) {}

    [[nodiscard]] std::size_t count() const noexcept { return table_.size(); }
    [[nodiscard]] bool empty() const noexcept { return table_.empty(); }

    /// Add `value`; true if it was newly inserted (HashSet.Add).
    bool add(T value) {
        return table_.insert_if_absent(std::move(value), std::byte{});
    }

    [[nodiscard]] bool contains(const T& value) const {
        return table_.contains(value);
    }

    /// Remove `value`; true if it was present.
    bool remove(const T& value) { return table_.erase(value); }

    void clear() noexcept { table_.clear(); }

    template <typename Fn>
    void for_each(Fn fn) const {
        table_.for_each([&fn](const T& key, std::byte) { fn(key); });
    }

private:
    detail::HashTable<T, std::byte, Hash> table_;
};

}  // namespace dsspy::ds
