// Human-readable element-type names for instance registration.
//
// DSspy reports instances as e.g. "List<GPdotNET.Core.IChromosome>" or
// "Array<System.Double>" (Table V).  This trait produces those names.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dsspy::ds {

/// Customization point: specialize for domain types to get nice report
/// names; the primary template falls back to a generic placeholder.
template <typename T>
struct TypeName {
    static constexpr std::string_view value = "T";
};

template <> struct TypeName<bool> { static constexpr std::string_view value = "Boolean"; };
template <> struct TypeName<char> { static constexpr std::string_view value = "Char"; };
template <> struct TypeName<std::int32_t> { static constexpr std::string_view value = "Int32"; };
template <> struct TypeName<std::uint32_t> { static constexpr std::string_view value = "UInt32"; };
template <> struct TypeName<std::int64_t> { static constexpr std::string_view value = "Int64"; };
template <> struct TypeName<std::uint64_t> { static constexpr std::string_view value = "UInt64"; };
template <> struct TypeName<float> { static constexpr std::string_view value = "Single"; };
template <> struct TypeName<double> { static constexpr std::string_view value = "Double"; };
template <> struct TypeName<std::string> { static constexpr std::string_view value = "String"; };

/// "List<Int32>"-style name for a container of T.
template <typename T>
[[nodiscard]] std::string container_type_name(std::string_view container) {
    std::string out(container);
    out += '<';
    out += TypeName<T>::value;
    out += '>';
    return out;
}

/// "Dictionary<String, Int32>"-style name.
template <typename K, typename V>
[[nodiscard]] std::string container_type_name2(std::string_view container) {
    std::string out(container);
    out += '<';
    out += TypeName<K>::value;
    out += ", ";
    out += TypeName<V>::value;
    out += '>';
    return out;
}

}  // namespace dsspy::ds
