// FIFO queue modeled after the CTS Queue<T>.
//
// The paper's Implement-Queue use case detects lists used like this
// container (reads and writes concentrated on two different ends) and
// recommends a (parallel) queue instead.  Implemented as a circular buffer
// so enqueue/dequeue are O(1) — the very property the recommendation is
// about.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

#include "ds/detail/raw_buffer.hpp"

namespace dsspy::ds {

/// FIFO queue on a circular buffer with geometric growth.
template <typename T>
class Queue {
public:
    Queue() = default;
    explicit Queue(std::size_t capacity) : storage_(capacity) {}

    Queue(const Queue& other) : storage_(other.count_) {
        for (std::size_t i = 0; i < other.count_; ++i)
            std::construct_at(storage_.data() + i, other.at(i));
        count_ = other.count_;
    }

    Queue(Queue&& other) noexcept
        : storage_(std::move(other.storage_)),
          head_(std::exchange(other.head_, 0)),
          count_(std::exchange(other.count_, 0)) {}

    Queue& operator=(const Queue& other) {
        if (this != &other) {
            Queue tmp(other);
            swap(tmp);
        }
        return *this;
    }

    Queue& operator=(Queue&& other) noexcept {
        if (this != &other) {
            destroy_all();
            storage_ = std::move(other.storage_);
            head_ = std::exchange(other.head_, 0);
            count_ = std::exchange(other.count_, 0);
        }
        return *this;
    }

    ~Queue() { destroy_all(); }

    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

    /// Append at the back (Queue.Enqueue).
    void enqueue(T value) {
        if (count_ == storage_.capacity()) grow();
        std::construct_at(slot(count_), std::move(value));
        ++count_;
    }

    /// Remove from the front (Queue.Dequeue).  Queue must be non-empty.
    T dequeue() {
        assert(count_ > 0);
        T* front = slot(0);
        T value = std::move(*front);
        std::destroy_at(front);
        head_ = storage_.capacity() == 0 ? 0 : (head_ + 1) % storage_.capacity();
        --count_;
        return value;
    }

    /// Front element without removing it (Queue.Peek).
    [[nodiscard]] const T& peek() const {
        assert(count_ > 0);
        return *slot(0);
    }

    /// i-th element from the front (used for traversal/copy).
    [[nodiscard]] const T& at(std::size_t i) const {
        assert(i < count_);
        return *slot(i);
    }

    [[nodiscard]] bool contains(const T& value) const {
        for (std::size_t i = 0; i < count_; ++i)
            if (at(i) == value) return true;
        return false;
    }

    void clear() noexcept {
        for (std::size_t i = 0; i < count_; ++i) std::destroy_at(slot(i));
        head_ = 0;
        count_ = 0;
    }

    void swap(Queue& other) noexcept {
        storage_.swap(other.storage_);
        std::swap(head_, other.head_);
        std::swap(count_, other.count_);
    }

private:
    [[nodiscard]] T* slot(std::size_t i) const noexcept {
        const std::size_t cap = storage_.capacity();
        return const_cast<T*>(storage_.data()) + (head_ + i) % (cap == 0 ? 1 : cap);
    }

    void grow() {
        const std::size_t new_cap =
            storage_.capacity() == 0 ? 4 : storage_.capacity() * 2;
        detail::RawBuffer<T> next(new_cap);
        for (std::size_t i = 0; i < count_; ++i) {
            std::construct_at(next.data() + i, std::move(*slot(i)));
            std::destroy_at(slot(i));
        }
        storage_ = std::move(next);
        head_ = 0;
    }

    void destroy_all() noexcept {
        clear();
    }

    detail::RawBuffer<T> storage_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

}  // namespace dsspy::ds
