// Instrumented proxy for List<T> — the central DSspy hook.
//
// Every interface method records one access event before forwarding to the
// wrapped container.  Recorded fields follow Section IV of the paper:
// timestamp and thread id are added by the session; this proxy supplies the
// operation, the target position, and the container size at the access.
//
// Position/size conventions (shared with the pattern detector in core/):
//   * Get(i)/Set(i)      : position i, size = current count.
//   * Add                : position = index the element lands on (old
//                          count), size = count after the insert — so an
//                          append always satisfies position == size - 1.
//   * Insert(i, v)       : position i, size = count after the insert.
//   * RemoveAt(i)        : position i, size = count after the removal — a
//                          back-removal satisfies position == size.
//   * IndexOf/Contains   : op IndexOf, position = hit index or -1.
//   * Clear/Sort/Reverse/CopyTo/ForEach : whole-container (position -1).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <utility>

#include "ds/list.hpp"
#include "ds/probe.hpp"
#include "ds/type_names.hpp"

namespace dsspy::ds {

/// Proxy-instrumented List<T>.
template <typename T>
class ProfiledList {
public:
    /// Wrap a fresh list and register it with `session` (null = unprofiled).
    ProfiledList(runtime::ProfilingSession* session,
                 support::SourceLoc location, std::size_t capacity = 0)
        : list_(capacity),
          probe_(session, runtime::DsKind::List,
                 container_type_name<T>("List"), std::move(location)) {}

    // --- element access -----------------------------------------------------

    /// Indexer read; recorded as Get.
    [[nodiscard]] const T& get(std::size_t index) const {
        probe_.rec(runtime::OpKind::Get, static_cast<std::int64_t>(index),
                   list_.count());
        return list_.get(index);
    }

    [[nodiscard]] const T& operator[](std::size_t index) const {
        return get(index);
    }

    /// Indexer write; recorded as Set.
    void set(std::size_t index, T value) {
        probe_.rec(runtime::OpKind::Set, static_cast<std::int64_t>(index),
                   list_.count());
        list_.set(index, std::move(value));
    }

    // --- size ---------------------------------------------------------------

    [[nodiscard]] std::size_t count() const noexcept { return list_.count(); }
    [[nodiscard]] bool empty() const noexcept { return list_.empty(); }
    [[nodiscard]] std::size_t capacity() const noexcept {
        return list_.capacity();
    }

    // --- mutation -------------------------------------------------------------

    /// Append; recorded as Add at the landing index.
    void add(T value) {
        const std::size_t landing = list_.count();
        list_.add(std::move(value));
        probe_.rec(runtime::OpKind::Add, static_cast<std::int64_t>(landing),
                   list_.count());
    }

    /// Positional insert; recorded as InsertAt.
    void insert(std::size_t index, T value) {
        list_.insert(index, std::move(value));
        probe_.rec(runtime::OpKind::InsertAt,
                   static_cast<std::int64_t>(index), list_.count());
    }

    /// Positional removal; recorded as RemoveAt.
    void remove_at(std::size_t index) {
        list_.remove_at(index);
        probe_.rec(runtime::OpKind::RemoveAt,
                   static_cast<std::int64_t>(index), list_.count());
    }

    /// Remove first equal element; search + removal are both recorded.
    bool remove(const T& value) {
        const std::ptrdiff_t idx = index_of(value);
        if (idx < 0) return false;
        remove_at(static_cast<std::size_t>(idx));
        return true;
    }

    /// Remove all elements; recorded as Clear.
    void clear() {
        list_.clear();
        probe_.rec(runtime::OpKind::Clear, runtime::kWholeContainer, 0);
    }

    // --- whole-container operations -------------------------------------------

    /// Linear search; recorded as IndexOf with the hit position.
    [[nodiscard]] std::ptrdiff_t index_of(const T& value) const {
        const std::ptrdiff_t idx = list_.index_of(value);
        probe_.rec(runtime::OpKind::IndexOf,
                   idx >= 0 ? idx : runtime::kWholeContainer, list_.count());
        return idx;
    }

    [[nodiscard]] bool contains(const T& value) const {
        return index_of(value) >= 0;
    }

    /// Predicate search; recorded as IndexOf.
    template <typename Pred>
    [[nodiscard]] std::ptrdiff_t find_index(Pred pred) const {
        const std::ptrdiff_t idx = list_.find_index(pred);
        probe_.rec(runtime::OpKind::IndexOf,
                   idx >= 0 ? idx : runtime::kWholeContainer, list_.count());
        return idx;
    }

    template <typename Less = std::less<T>>
    void sort(Less less = {}) {
        list_.sort(less);
        probe_.rec(runtime::OpKind::Sort, runtime::kWholeContainer,
                   list_.count());
    }

    void reverse() {
        list_.reverse();
        probe_.rec(runtime::OpKind::Reverse, runtime::kWholeContainer,
                   list_.count());
    }

    void copy_to(std::span<T> out) const {
        list_.copy_to(out);
        probe_.rec(runtime::OpKind::CopyTo, runtime::kWholeContainer,
                   list_.count());
    }

    /// Whole-container traversal; recorded as a single ForEach event.
    template <typename Fn>
    void for_each(Fn fn) const {
        probe_.rec(runtime::OpKind::ForEach, runtime::kWholeContainer,
                   list_.count());
        list_.for_each(fn);
    }

    // --- escape hatches ---------------------------------------------------------

    /// The wrapped (uninstrumented) container.
    [[nodiscard]] const List<T>& raw() const noexcept { return list_; }
    [[nodiscard]] List<T>& raw_mut() noexcept { return list_; }

    /// Instance id this proxy records under (kInvalidInstance if unprofiled).
    [[nodiscard]] runtime::InstanceId instance_id() const noexcept {
        return probe_.id();
    }

private:
    List<T> list_;
    Probe probe_;
};

}  // namespace dsspy::ds
