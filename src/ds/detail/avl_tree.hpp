// Self-balancing binary search tree (AVL) shared by SortedSet and
// SortedDictionary.
//
// The Frequent-Search recommendation points engineers toward structures
// "optimized for searches — binary trees might be better suited"; these
// are those structures, implemented from scratch: an AVL tree with parent
// pointers for O(log n) insert/erase/find and in-order traversal.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <utility>

namespace dsspy::ds::detail {

/// AVL tree keyed by K with attached value V (use std::byte for sets).
template <typename K, typename V, typename Less = std::less<K>>
class AvlTree {
public:
    struct Node {
        K key;
        V value;
        Node* left = nullptr;
        Node* right = nullptr;
        int height = 1;
    };

    AvlTree() = default;
    AvlTree(const AvlTree& other) : less_(other.less_) {
        root_ = clone(other.root_);
        size_ = other.size_;
    }
    AvlTree(AvlTree&& other) noexcept
        : root_(std::exchange(other.root_, nullptr)),
          size_(std::exchange(other.size_, 0)),
          less_(other.less_) {}
    AvlTree& operator=(const AvlTree& other) {
        if (this != &other) {
            AvlTree tmp(other);
            swap(tmp);
        }
        return *this;
    }
    AvlTree& operator=(AvlTree&& other) noexcept {
        if (this != &other) {
            destroy(root_);
            root_ = std::exchange(other.root_, nullptr);
            size_ = std::exchange(other.size_, 0);
        }
        return *this;
    }
    ~AvlTree() { destroy(root_); }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

    /// Insert if absent; returns true when a new node was created.
    bool insert_if_absent(K key, V value) {
        bool inserted = false;
        root_ = insert_node(root_, std::move(key), std::move(value),
                            /*assign=*/false, inserted);
        if (inserted) ++size_;
        return inserted;
    }

    /// Insert or overwrite; returns true when a new node was created.
    bool insert_or_assign(K key, V value) {
        bool inserted = false;
        root_ = insert_node(root_, std::move(key), std::move(value),
                            /*assign=*/true, inserted);
        if (inserted) ++size_;
        return inserted;
    }

    [[nodiscard]] V* find(const K& key) {
        Node* n = find_node(key);
        return n != nullptr ? &n->value : nullptr;
    }
    [[nodiscard]] const V* find(const K& key) const {
        return const_cast<AvlTree*>(this)->find(key);
    }

    [[nodiscard]] bool contains(const K& key) const {
        return const_cast<AvlTree*>(this)->find_node(key) != nullptr;
    }

    /// Erase `key`; true if present.
    bool erase(const K& key) {
        bool erased = false;
        root_ = erase_node(root_, key, erased);
        if (erased) --size_;
        return erased;
    }

    void clear() noexcept {
        destroy(root_);
        root_ = nullptr;
        size_ = 0;
    }

    /// Smallest key, or nullptr when empty.
    [[nodiscard]] const K* min_key() const {
        const Node* n = root_;
        if (n == nullptr) return nullptr;
        while (n->left != nullptr) n = n->left;
        return &n->key;
    }
    /// Largest key, or nullptr when empty.
    [[nodiscard]] const K* max_key() const {
        const Node* n = root_;
        if (n == nullptr) return nullptr;
        while (n->right != nullptr) n = n->right;
        return &n->key;
    }

    /// Smallest key >= `key`, or nullptr.
    [[nodiscard]] const Node* lower_bound(const K& key) const {
        const Node* best = nullptr;
        const Node* n = root_;
        while (n != nullptr) {
            if (less_(n->key, key)) {
                n = n->right;
            } else {
                best = n;
                n = n->left;
            }
        }
        return best;
    }

    /// In-order traversal: fn(key, value).
    template <typename Fn>
    void for_each(Fn fn) const {
        walk(root_, fn);
    }

    /// Height of the root (0 for empty) — exposed for balance tests.
    [[nodiscard]] int height() const noexcept {
        return root_ != nullptr ? root_->height : 0;
    }

    /// Verify AVL invariants (BST order + balance factors); test hook.
    [[nodiscard]] bool validate() const {
        bool ok = true;
        (void)check(root_, nullptr, nullptr, ok);
        return ok;
    }

    void swap(AvlTree& other) noexcept {
        std::swap(root_, other.root_);
        std::swap(size_, other.size_);
        std::swap(less_, other.less_);
    }

private:
    static int node_height(const Node* n) noexcept {
        return n != nullptr ? n->height : 0;
    }
    static void update(Node* n) noexcept {
        n->height = 1 + std::max(node_height(n->left), node_height(n->right));
    }
    static int balance_factor(const Node* n) noexcept {
        return node_height(n->left) - node_height(n->right);
    }

    static Node* rotate_right(Node* y) noexcept {
        Node* x = y->left;
        y->left = x->right;
        x->right = y;
        update(y);
        update(x);
        return x;
    }
    static Node* rotate_left(Node* x) noexcept {
        Node* y = x->right;
        x->right = y->left;
        y->left = x;
        update(x);
        update(y);
        return y;
    }

    static Node* rebalance(Node* n) noexcept {
        update(n);
        const int bf = balance_factor(n);
        if (bf > 1) {
            if (balance_factor(n->left) < 0) n->left = rotate_left(n->left);
            return rotate_right(n);
        }
        if (bf < -1) {
            if (balance_factor(n->right) > 0)
                n->right = rotate_right(n->right);
            return rotate_left(n);
        }
        return n;
    }

    Node* insert_node(Node* n, K&& key, V&& value, bool assign,
                      bool& inserted) {
        if (n == nullptr) {
            inserted = true;
            return new Node{std::move(key), std::move(value)};
        }
        if (less_(key, n->key)) {
            n->left = insert_node(n->left, std::move(key), std::move(value),
                                  assign, inserted);
        } else if (less_(n->key, key)) {
            n->right = insert_node(n->right, std::move(key),
                                   std::move(value), assign, inserted);
        } else {
            if (assign) n->value = std::move(value);
            return n;
        }
        return rebalance(n);
    }

    Node* find_node(const K& key) {
        Node* n = root_;
        while (n != nullptr) {
            if (less_(key, n->key)) {
                n = n->left;
            } else if (less_(n->key, key)) {
                n = n->right;
            } else {
                return n;
            }
        }
        return nullptr;
    }

    Node* erase_node(Node* n, const K& key, bool& erased) {
        if (n == nullptr) return nullptr;
        if (less_(key, n->key)) {
            n->left = erase_node(n->left, key, erased);
        } else if (less_(n->key, key)) {
            n->right = erase_node(n->right, key, erased);
        } else {
            erased = true;
            if (n->left == nullptr || n->right == nullptr) {
                Node* child = n->left != nullptr ? n->left : n->right;
                delete n;
                return child;  // may be nullptr
            }
            // Two children: replace with in-order successor.
            Node* successor = n->right;
            while (successor->left != nullptr) successor = successor->left;
            n->key = successor->key;
            n->value = std::move(successor->value);
            bool dummy = false;
            n->right = erase_node(n->right, n->key, dummy);
        }
        return rebalance(n);
    }

    static void destroy(Node* n) noexcept {
        if (n == nullptr) return;
        destroy(n->left);
        destroy(n->right);
        delete n;
    }

    static Node* clone(const Node* n) {
        if (n == nullptr) return nullptr;
        Node* copy = new Node{n->key, n->value};
        copy->height = n->height;
        copy->left = clone(n->left);
        copy->right = clone(n->right);
        return copy;
    }

    template <typename Fn>
    static void walk(const Node* n, Fn& fn) {
        if (n == nullptr) return;
        walk(n->left, fn);
        fn(n->key, n->value);
        walk(n->right, fn);
    }

    const Node* check(const Node* n, const K* lo, const K* hi,
                      bool& ok) const {
        if (n == nullptr || !ok) return nullptr;
        if ((lo != nullptr && !less_(*lo, n->key)) ||
            (hi != nullptr && !less_(n->key, *hi))) {
            ok = false;
            return nullptr;
        }
        (void)check(n->left, lo, &n->key, ok);
        (void)check(n->right, &n->key, hi, ok);
        const int bf = balance_factor(n);
        if (bf < -1 || bf > 1) ok = false;
        if (n->height !=
            1 + std::max(node_height(n->left), node_height(n->right)))
            ok = false;
        return n;
    }

    Node* root_ = nullptr;
    std::size_t size_ = 0;
    [[no_unique_address]] Less less_{};
};

}  // namespace dsspy::ds::detail
