// From-scratch sorting used by the containers' Sort() interface method.
//
// Introsort: quicksort with median-of-three pivot selection, insertion sort
// below a small threshold, and a heapsort fallback when recursion depth
// exceeds 2*log2(n) — the same scheme standard libraries use, implemented
// here so the substrate has no hidden dependencies.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <functional>
#include <utility>

namespace dsspy::ds::detail {

template <typename T, typename Less>
void insertion_sort(T* first, T* last, Less less) {
    for (T* it = first + (last - first > 0 ? 1 : 0); it < last; ++it) {
        T value = std::move(*it);
        T* hole = it;
        while (hole != first && less(value, *(hole - 1))) {
            *hole = std::move(*(hole - 1));
            --hole;
        }
        *hole = std::move(value);
    }
}

template <typename T, typename Less>
void sift_down(T* data, std::size_t start, std::size_t end, Less less) {
    std::size_t root = start;
    while (2 * root + 1 < end) {
        std::size_t child = 2 * root + 1;
        if (child + 1 < end && less(data[child], data[child + 1])) ++child;
        if (!less(data[root], data[child])) return;
        std::swap(data[root], data[child]);
        root = child;
    }
}

template <typename T, typename Less>
void heap_sort(T* first, T* last, Less less) {
    const auto n = static_cast<std::size_t>(last - first);
    if (n < 2) return;
    for (std::size_t start = n / 2; start-- > 0;)
        sift_down(first, start, n, less);
    for (std::size_t end = n; end-- > 1;) {
        std::swap(first[0], first[end]);
        sift_down(first, 0, end, less);
    }
}

template <typename T, typename Less>
T* median_of_three(T* a, T* b, T* c, Less less) {
    if (less(*a, *b)) {
        if (less(*b, *c)) return b;
        return less(*a, *c) ? c : a;
    }
    if (less(*a, *c)) return a;
    return less(*b, *c) ? c : b;
}

template <typename T, typename Less>
void introsort_impl(T* first, T* last, int depth_budget, Less less) {
    constexpr std::ptrdiff_t kInsertionThreshold = 24;
    while (last - first > kInsertionThreshold) {
        if (depth_budget-- == 0) {
            heap_sort(first, last, less);
            return;
        }
        T* mid = first + (last - first) / 2;
        T* pivot_ptr = median_of_three(first, mid, last - 1, less);
        std::swap(*pivot_ptr, *(last - 1));
        const T& pivot = *(last - 1);

        T* store = first;
        for (T* it = first; it != last - 1; ++it) {
            if (less(*it, pivot)) {
                std::swap(*it, *store);
                ++store;
            }
        }
        std::swap(*store, *(last - 1));

        // Recurse into the smaller half; loop on the larger one.
        if (store - first < last - (store + 1)) {
            introsort_impl(first, store, depth_budget, less);
            first = store + 1;
        } else {
            introsort_impl(store + 1, last, depth_budget, less);
            last = store;
        }
    }
    insertion_sort(first, last, less);
}

/// Sort [first, last) with `less`; O(n log n) worst case.
template <typename T, typename Less = std::less<T>>
void introsort(T* first, T* last, Less less = {}) {
    if (last - first < 2) return;
    const auto n = static_cast<std::size_t>(last - first);
    const int depth_budget = 2 * (std::bit_width(n) + 1);
    introsort_impl(first, last, depth_budget, less);
}

}  // namespace dsspy::ds::detail
