// Uninitialized-storage helper shared by the from-scratch containers.
//
// The containers in dsspy::ds are written from scratch (not typedefs over
// the standard containers) because they are the reproduction's substrate:
// the profiler hooks their interface methods exactly the way DSspy hooked
// the .NET CTS containers.  RawBuffer owns raw memory for `capacity`
// elements; element lifetimes are managed by the containers themselves via
// the std::uninitialized_* / std::destroy algorithms.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

namespace dsspy::ds::detail {

/// Owns uninitialized storage for `capacity()` objects of type T.
/// Does not construct or destroy elements — that is the caller's job.
template <typename T>
class RawBuffer {
public:
    RawBuffer() noexcept = default;

    explicit RawBuffer(std::size_t capacity)
        : data_(capacity != 0 ? alloc_traits::allocate(alloc_, capacity)
                              : nullptr),
          capacity_(capacity) {}

    RawBuffer(RawBuffer&& other) noexcept
        : data_(std::exchange(other.data_, nullptr)),
          capacity_(std::exchange(other.capacity_, 0)) {}

    RawBuffer& operator=(RawBuffer&& other) noexcept {
        if (this != &other) {
            release();
            data_ = std::exchange(other.data_, nullptr);
            capacity_ = std::exchange(other.capacity_, 0);
        }
        return *this;
    }

    RawBuffer(const RawBuffer&) = delete;
    RawBuffer& operator=(const RawBuffer&) = delete;

    ~RawBuffer() { release(); }

    [[nodiscard]] T* data() noexcept { return data_; }
    [[nodiscard]] const T* data() const noexcept { return data_; }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

    void swap(RawBuffer& other) noexcept {
        std::swap(data_, other.data_);
        std::swap(capacity_, other.capacity_);
    }

private:
    using alloc_traits = std::allocator_traits<std::allocator<T>>;

    void release() noexcept {
        if (data_ != nullptr) {
            alloc_traits::deallocate(alloc_, data_, capacity_);
            data_ = nullptr;
            capacity_ = 0;
        }
    }

    [[no_unique_address]] std::allocator<T> alloc_;
    T* data_ = nullptr;
    std::size_t capacity_ = 0;
};

}  // namespace dsspy::ds::detail
