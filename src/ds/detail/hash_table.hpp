// Open-addressing hash table core shared by Dictionary and HashSet.
//
// Linear probing with tombstones, power-of-two capacity, max load factor
// 0.7, Fibonacci hash mixing of the user hash.  Written from scratch so the
// substrate carries no hidden standard-container dependency.
#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace dsspy::ds::detail {

/// Slot state for open addressing.
enum class SlotState : std::uint8_t { Empty, Occupied, Tombstone };

/// Open-addressing hash table mapping K -> V.  V may be a dummy (std::byte)
/// for set semantics; the wrappers decide what to expose.
template <typename K, typename V, typename Hash = std::hash<K>,
          typename Eq = std::equal_to<K>>
class HashTable {
public:
    struct Slot {
        K key;
        V value;
    };

    HashTable() = default;

    explicit HashTable(std::size_t min_capacity) { rehash_to(bucket_count_for(min_capacity)); }

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t bucket_count() const noexcept {
        return slots_.size();
    }

    /// Insert or assign; returns true if a new key was inserted.
    bool insert_or_assign(K key, V value) {
        ensure_capacity_for(size_ + 1);
        const std::size_t idx = probe_for_insert(key);
        if (states_[idx] == SlotState::Occupied) {
            slots_[idx].value = std::move(value);
            return false;
        }
        if (states_[idx] == SlotState::Tombstone) --tombstones_;
        states_[idx] = SlotState::Occupied;
        slots_[idx] = Slot{std::move(key), std::move(value)};
        ++size_;
        return true;
    }

    /// Insert only if absent; returns true if inserted.
    bool insert_if_absent(K key, V value) {
        ensure_capacity_for(size_ + 1);
        const std::size_t idx = probe_for_insert(key);
        if (states_[idx] == SlotState::Occupied) return false;
        if (states_[idx] == SlotState::Tombstone) --tombstones_;
        states_[idx] = SlotState::Occupied;
        slots_[idx] = Slot{std::move(key), std::move(value)};
        ++size_;
        return true;
    }

    /// Pointer to the value for `key`, or nullptr.
    [[nodiscard]] V* find(const K& key) {
        const auto idx = probe_for_lookup(key);
        return idx ? &slots_[*idx].value : nullptr;
    }
    [[nodiscard]] const V* find(const K& key) const {
        const auto idx = probe_for_lookup(key);
        return idx ? &slots_[*idx].value : nullptr;
    }

    [[nodiscard]] bool contains(const K& key) const {
        return probe_for_lookup(key).has_value();
    }

    /// Remove `key`; true if it was present.
    bool erase(const K& key) {
        const auto idx = probe_for_lookup(key);
        if (!idx) return false;
        states_[*idx] = SlotState::Tombstone;
        slots_[*idx] = Slot{};  // release resources held by key/value
        ++tombstones_;
        --size_;
        return true;
    }

    void clear() noexcept {
        for (auto& st : states_) st = SlotState::Empty;
        for (auto& slot : slots_) slot = Slot{};
        size_ = 0;
        tombstones_ = 0;
    }

    /// Visit every occupied slot (unspecified order).
    template <typename Fn>
    void for_each(Fn fn) const {
        for (std::size_t i = 0; i < slots_.size(); ++i)
            if (states_[i] == SlotState::Occupied)
                fn(slots_[i].key, slots_[i].value);
    }
    template <typename Fn>
    void for_each_mut(Fn fn) {
        for (std::size_t i = 0; i < slots_.size(); ++i)
            if (states_[i] == SlotState::Occupied)
                fn(slots_[i].key, slots_[i].value);
    }

private:
    static constexpr double kMaxLoad = 0.7;

    [[nodiscard]] static std::size_t bucket_count_for(std::size_t n) {
        const auto needed =
            static_cast<std::size_t>(static_cast<double>(n) / kMaxLoad) + 1;
        return std::bit_ceil(needed < 8 ? std::size_t{8} : needed);
    }

    [[nodiscard]] std::size_t mix(const K& key) const noexcept {
        // Fibonacci mixing spreads poor user hashes across the table.
        const auto h = static_cast<std::uint64_t>(Hash{}(key));
        return static_cast<std::size_t>((h * 0x9E3779B97F4A7C15ULL) >>
                                        shift_);
    }

    void ensure_capacity_for(std::size_t n) {
        if (slots_.empty() ||
            static_cast<double>(n + tombstones_) >
                kMaxLoad * static_cast<double>(slots_.size())) {
            rehash_to(bucket_count_for(n * 2));
        }
    }

    void rehash_to(std::size_t new_buckets) {
        std::vector<Slot> old_slots = std::move(slots_);
        std::vector<SlotState> old_states = std::move(states_);
        slots_.assign(new_buckets, Slot{});
        states_.assign(new_buckets, SlotState::Empty);
        shift_ = 64 - std::bit_width(new_buckets - 1);
        size_ = 0;
        tombstones_ = 0;
        for (std::size_t i = 0; i < old_slots.size(); ++i) {
            if (old_states[i] == SlotState::Occupied) {
                const std::size_t idx = probe_for_insert(old_slots[i].key);
                states_[idx] = SlotState::Occupied;
                slots_[idx] = std::move(old_slots[i]);
                ++size_;
            }
        }
    }

    /// Index of the slot where `key` lives or should be inserted.
    [[nodiscard]] std::size_t probe_for_insert(const K& key) const {
        assert(!slots_.empty());
        const std::size_t mask = slots_.size() - 1;
        std::size_t idx = mix(key) & mask;
        std::optional<std::size_t> first_tombstone;
        while (true) {
            if (states_[idx] == SlotState::Empty)
                return first_tombstone.value_or(idx);
            if (states_[idx] == SlotState::Tombstone) {
                if (!first_tombstone) first_tombstone = idx;
            } else if (Eq{}(slots_[idx].key, key)) {
                return idx;
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Index of the occupied slot holding `key`, if present.
    [[nodiscard]] std::optional<std::size_t> probe_for_lookup(
        const K& key) const {
        if (slots_.empty()) return std::nullopt;
        const std::size_t mask = slots_.size() - 1;
        std::size_t idx = mix(key) & mask;
        while (true) {
            if (states_[idx] == SlotState::Empty) return std::nullopt;
            if (states_[idx] == SlotState::Occupied &&
                Eq{}(slots_[idx].key, key))
                return idx;
            idx = (idx + 1) & mask;
        }
    }

    std::vector<Slot> slots_;
    std::vector<SlotState> states_;
    std::size_t size_ = 0;
    std::size_t tombstones_ = 0;
    unsigned shift_ = 64;
};

}  // namespace dsspy::ds::detail
