// Ordered unique-element set modeled after the CTS SortedSet<T>.
//
// Backed by the from-scratch AVL tree — the "binary tree from the standard
// library" the paper's code inspections found people re-implementing on
// lists (Section II: "In one case a list was used to act like a binary
// tree, although binary tree implementations are available").
#pragma once

#include <cstddef>
#include <functional>

#include "ds/detail/avl_tree.hpp"

namespace dsspy::ds {

/// Ordered set with O(log n) add/contains/remove.
template <typename T, typename Less = std::less<T>>
class SortedSet {
public:
    SortedSet() = default;

    [[nodiscard]] std::size_t count() const noexcept { return tree_.size(); }
    [[nodiscard]] bool empty() const noexcept { return tree_.empty(); }

    /// Add `value`; true if newly inserted (SortedSet.Add).
    bool add(T value) {
        return tree_.insert_if_absent(std::move(value), std::byte{});
    }

    [[nodiscard]] bool contains(const T& value) const {
        return tree_.contains(value);
    }

    bool remove(const T& value) { return tree_.erase(value); }

    /// Smallest / largest element (SortedSet.Min / .Max); nullptr if empty.
    [[nodiscard]] const T* min() const { return tree_.min_key(); }
    [[nodiscard]] const T* max() const { return tree_.max_key(); }

    /// Smallest element >= `value`, or nullptr.
    [[nodiscard]] const T* ceiling(const T& value) const {
        const auto* node = tree_.lower_bound(value);
        return node != nullptr ? &node->key : nullptr;
    }

    void clear() noexcept { tree_.clear(); }

    /// Ascending-order traversal.
    template <typename Fn>
    void for_each(Fn fn) const {
        tree_.for_each([&fn](const T& key, std::byte) { fn(key); });
    }

    /// Test hook: AVL invariants hold.
    [[nodiscard]] bool validate() const { return tree_.validate(); }
    [[nodiscard]] int tree_height() const noexcept { return tree_.height(); }

private:
    detail::AvlTree<T, std::byte, Less> tree_;
};

}  // namespace dsspy::ds
