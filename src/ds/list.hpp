// Growable array container modeled after the CTS List<T>.
//
// This is the paper's central data structure: the empirical study found
// that 65 % of all dynamic data-structure instances were lists, so DSspy
// instruments lists (and arrays) first.  The interface mirrors the C#
// List<T> surface that the profiler hooks: Add, Insert, RemoveAt, indexer
// get/set, IndexOf/Contains, Sort, Reverse, Clear, CopyTo, ForEach.
//
// Implemented from scratch on raw storage (geometric growth, factor 2),
// with the strong guarantee for Add/Insert of nothrow-move types and the
// basic guarantee otherwise.
#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <initializer_list>
#include <memory>
#include <span>
#include <utility>

#include "ds/detail/raw_buffer.hpp"
#include "ds/detail/sort.hpp"

namespace dsspy::ds {

/// Dynamic array with C#-List semantics.
template <typename T>
class List {
public:
    using value_type = T;
    using iterator = T*;
    using const_iterator = const T*;

    List() noexcept = default;

    /// Construct with reserved capacity (like `new List<T>(capacity)`).
    explicit List(std::size_t capacity) : storage_(capacity) {}

    List(std::initializer_list<T> init) : storage_(init.size()) {
        std::uninitialized_copy(init.begin(), init.end(), storage_.data());
        count_ = init.size();
    }

    List(const List& other) : storage_(other.count_) {
        std::uninitialized_copy(other.data(), other.data() + other.count_,
                                storage_.data());
        count_ = other.count_;
    }

    List(List&& other) noexcept
        : storage_(std::move(other.storage_)),
          count_(std::exchange(other.count_, 0)) {}

    List& operator=(const List& other) {
        if (this != &other) {
            List tmp(other);
            swap(tmp);
        }
        return *this;
    }

    List& operator=(List&& other) noexcept {
        if (this != &other) {
            destroy_all();
            storage_ = std::move(other.storage_);
            count_ = std::exchange(other.count_, 0);
        }
        return *this;
    }

    ~List() { destroy_all(); }

    // --- element access -------------------------------------------------

    [[nodiscard]] T& operator[](std::size_t index) {
        assert(index < count_);
        return data()[index];
    }
    [[nodiscard]] const T& operator[](std::size_t index) const {
        assert(index < count_);
        return data()[index];
    }

    /// Indexer read (the interface method the profiler hooks as Get).
    [[nodiscard]] const T& get(std::size_t index) const {
        assert(index < count_);
        return data()[index];
    }

    /// Indexer write (hooked as Set).
    void set(std::size_t index, T value) {
        assert(index < count_);
        data()[index] = std::move(value);
    }

    [[nodiscard]] T* data() noexcept { return storage_.data(); }
    [[nodiscard]] const T* data() const noexcept { return storage_.data(); }

    // --- size / capacity --------------------------------------------------

    [[nodiscard]] std::size_t count() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
    [[nodiscard]] std::size_t capacity() const noexcept {
        return storage_.capacity();
    }

    /// Ensure capacity for at least `min_capacity` elements.
    void reserve(std::size_t min_capacity) {
        if (min_capacity > storage_.capacity()) grow_to(min_capacity);
    }

    // --- mutation ---------------------------------------------------------

    /// Append one element (List.Add).
    void add(T value) {
        if (count_ == storage_.capacity()) grow_to(grown_capacity());
        std::construct_at(data() + count_, std::move(value));
        ++count_;
    }

    /// Insert at `index`, shifting the tail right (List.Insert).
    void insert(std::size_t index, T value) {
        assert(index <= count_);
        if (count_ == storage_.capacity()) grow_to(grown_capacity());
        if (index == count_) {
            std::construct_at(data() + count_, std::move(value));
        } else {
            std::construct_at(data() + count_, std::move(data()[count_ - 1]));
            for (std::size_t i = count_ - 1; i > index; --i)
                data()[i] = std::move(data()[i - 1]);
            data()[index] = std::move(value);
        }
        ++count_;
    }

    /// Remove the element at `index`, shifting the tail left (RemoveAt).
    void remove_at(std::size_t index) {
        assert(index < count_);
        for (std::size_t i = index; i + 1 < count_; ++i)
            data()[i] = std::move(data()[i + 1]);
        std::destroy_at(data() + count_ - 1);
        --count_;
    }

    /// Remove the first element equal to `value`; true if one was removed.
    bool remove(const T& value) {
        const std::ptrdiff_t idx = index_of(value);
        if (idx < 0) return false;
        remove_at(static_cast<std::size_t>(idx));
        return true;
    }

    /// Remove all elements; keeps capacity (List.Clear).
    void clear() noexcept {
        std::destroy(data(), data() + count_);
        count_ = 0;
    }

    // --- whole-container operations ----------------------------------------

    /// Index of the first element equal to `value`, or -1 (IndexOf).
    [[nodiscard]] std::ptrdiff_t index_of(const T& value) const {
        for (std::size_t i = 0; i < count_; ++i)
            if (data()[i] == value) return static_cast<std::ptrdiff_t>(i);
        return -1;
    }

    [[nodiscard]] bool contains(const T& value) const {
        return index_of(value) >= 0;
    }

    /// Index of the first element satisfying `pred`, or -1 (FindIndex).
    template <typename Pred>
    [[nodiscard]] std::ptrdiff_t find_index(Pred pred) const {
        for (std::size_t i = 0; i < count_; ++i)
            if (pred(data()[i])) return static_cast<std::ptrdiff_t>(i);
        return -1;
    }

    /// Sort ascending with `less` (List.Sort).
    template <typename Less = std::less<T>>
    void sort(Less less = {}) {
        detail::introsort(data(), data() + count_, less);
    }

    /// Reverse element order in place (List.Reverse).
    void reverse() noexcept {
        for (std::size_t i = 0, j = count_; i + 1 < j; ++i, --j)
            std::swap(data()[i], data()[j - 1]);
    }

    /// Copy all elements into `out` (CopyTo). `out.size()` must be >= count.
    void copy_to(std::span<T> out) const {
        assert(out.size() >= count_);
        for (std::size_t i = 0; i < count_; ++i) out[i] = data()[i];
    }

    /// Apply `fn` to every element in order (ForEach).
    template <typename Fn>
    void for_each(Fn fn) {
        for (std::size_t i = 0; i < count_; ++i) fn(data()[i]);
    }
    template <typename Fn>
    void for_each(Fn fn) const {
        for (std::size_t i = 0; i < count_; ++i) fn(data()[i]);
    }

    // --- iteration (bypasses instrumentation; plain container only) -------

    [[nodiscard]] iterator begin() noexcept { return data(); }
    [[nodiscard]] iterator end() noexcept { return data() + count_; }
    [[nodiscard]] const_iterator begin() const noexcept { return data(); }
    [[nodiscard]] const_iterator end() const noexcept {
        return data() + count_;
    }

    void swap(List& other) noexcept {
        storage_.swap(other.storage_);
        std::swap(count_, other.count_);
    }

    /// Back door for par::parallel_build / parallel_append: the caller has
    /// constructed elements [count(), n) directly in reserved storage and
    /// commits them here.  Capacity must already be >= n.
    void set_count_after_parallel_build(std::size_t n) noexcept {
        assert(n <= storage_.capacity());
        count_ = n;
    }

    friend bool operator==(const List& a, const List& b) {
        if (a.count_ != b.count_) return false;
        for (std::size_t i = 0; i < a.count_; ++i)
            if (!(a.data()[i] == b.data()[i])) return false;
        return true;
    }

private:
    [[nodiscard]] std::size_t grown_capacity() const noexcept {
        return storage_.capacity() == 0 ? 4 : storage_.capacity() * 2;
    }

    void grow_to(std::size_t new_capacity) {
        detail::RawBuffer<T> next(new_capacity);
        if constexpr (std::is_nothrow_move_constructible_v<T>) {
            std::uninitialized_move(data(), data() + count_, next.data());
        } else {
            std::uninitialized_copy(data(), data() + count_, next.data());
        }
        std::destroy(data(), data() + count_);
        storage_ = std::move(next);
    }

    void destroy_all() noexcept {
        std::destroy(data(), data() + count_);
        count_ = 0;
    }

    detail::RawBuffer<T> storage_;
    std::size_t count_ = 0;
};

}  // namespace dsspy::ds
