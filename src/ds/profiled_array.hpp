// Instrumented proxy for Array<T>.
//
// Arrays cannot insert or delete; their profile vocabulary is Get/Set plus
// the whole-array operations.  A loop writing successive indices produces a
// Write-Forward pattern — for fixed-size arrays this plays the role the
// insertion pattern plays for lists (e.g. the Mandelbrot image buffer whose
// "Long-Inserts" the paper reports are sequential pixel writes).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <utility>

#include "ds/array.hpp"
#include "ds/probe.hpp"
#include "ds/type_names.hpp"

namespace dsspy::ds {

/// Proxy-instrumented Array<T>.
template <typename T>
class ProfiledArray {
public:
    ProfiledArray(runtime::ProfilingSession* session,
                  support::SourceLoc location, std::size_t length)
        : array_(length),
          probe_(session, runtime::DsKind::Array,
                 container_type_name<T>("Array"), std::move(location)) {}

    /// Indexer read; recorded as Get.
    [[nodiscard]] const T& get(std::size_t index) const {
        probe_.rec(runtime::OpKind::Get, static_cast<std::int64_t>(index),
                   array_.length());
        return array_.get(index);
    }

    [[nodiscard]] const T& operator[](std::size_t index) const {
        return get(index);
    }

    /// Indexer write; recorded as Set.
    void set(std::size_t index, T value) {
        probe_.rec(runtime::OpKind::Set, static_cast<std::int64_t>(index),
                   array_.length());
        array_.set(index, std::move(value));
    }

    [[nodiscard]] std::size_t length() const noexcept {
        return array_.length();
    }
    [[nodiscard]] bool empty() const noexcept { return array_.empty(); }

    /// Reallocate-and-copy; recorded as Resize.
    void resize(std::size_t new_length) {
        array_.resize(new_length);
        probe_.rec(runtime::OpKind::Resize, runtime::kWholeContainer,
                   array_.length());
    }

    /// Per-element fill; recorded as one Set per element (a fill loop).
    void fill(const T& value) {
        for (std::size_t i = 0; i < array_.length(); ++i)
            set(i, value);
    }

    /// Linear search; recorded as IndexOf.
    [[nodiscard]] std::ptrdiff_t index_of(const T& value) const {
        const std::ptrdiff_t idx = array_.index_of(value);
        probe_.rec(runtime::OpKind::IndexOf,
                   idx >= 0 ? idx : runtime::kWholeContainer,
                   array_.length());
        return idx;
    }

    [[nodiscard]] bool contains(const T& value) const {
        return index_of(value) >= 0;
    }

    template <typename Less = std::less<T>>
    void sort(Less less = {}) {
        array_.sort(less);
        probe_.rec(runtime::OpKind::Sort, runtime::kWholeContainer,
                   array_.length());
    }

    void reverse() {
        array_.reverse();
        probe_.rec(runtime::OpKind::Reverse, runtime::kWholeContainer,
                   array_.length());
    }

    void copy_to(std::span<T> out) const {
        array_.copy_to(out);
        probe_.rec(runtime::OpKind::CopyTo, runtime::kWholeContainer,
                   array_.length());
    }

    /// Whole-array traversal; recorded as one ForEach event.
    template <typename Fn>
    void for_each(Fn fn) const {
        probe_.rec(runtime::OpKind::ForEach, runtime::kWholeContainer,
                   array_.length());
        array_.for_each(fn);
    }

    [[nodiscard]] const Array<T>& raw() const noexcept { return array_; }
    [[nodiscard]] Array<T>& raw_mut() noexcept { return array_; }

    [[nodiscard]] runtime::InstanceId instance_id() const noexcept {
        return probe_.id();
    }

private:
    Array<T> array_;
    Probe probe_;
};

}  // namespace dsspy::ds
