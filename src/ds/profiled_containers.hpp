// Instrumented proxies for the remaining CTS containers.
//
// DSspy's automatic mode instruments lists and arrays (they cover > 75 % of
// all instances); the proxy pattern makes the profiler "easily extensible
// to runtime profiles of other data structures" (Section IV).  These
// wrappers are that extension: Stack/Queue events map onto the same
// positional vocabulary (push = back-insert, dequeue = front-delete), and
// Dictionary/HashSet events are whole-container, contributing instances to
// the search-space denominator without positional patterns.
#pragma once

#include <cstddef>
#include <utility>

#include "ds/dictionary.hpp"
#include "ds/hash_set.hpp"
#include "ds/linked_list.hpp"
#include "ds/probe.hpp"
#include "ds/queue.hpp"
#include "ds/sorted_list.hpp"
#include "ds/stack.hpp"
#include "ds/type_names.hpp"

namespace dsspy::ds {

/// Proxy-instrumented Stack<T>.  Push/Pop are back-insert/back-delete.
template <typename T>
class ProfiledStack {
public:
    ProfiledStack(runtime::ProfilingSession* session,
                  support::SourceLoc location, std::size_t capacity = 0)
        : stack_(capacity),
          probe_(session, runtime::DsKind::Stack,
                 container_type_name<T>("Stack"), std::move(location)) {}

    [[nodiscard]] std::size_t count() const noexcept { return stack_.count(); }
    [[nodiscard]] bool empty() const noexcept { return stack_.empty(); }

    void push(T value) {
        const std::size_t landing = stack_.count();
        stack_.push(std::move(value));
        probe_.rec(runtime::OpKind::Add, static_cast<std::int64_t>(landing),
                   stack_.count());
    }

    T pop() {
        T value = stack_.pop();
        probe_.rec(runtime::OpKind::RemoveAt,
                   static_cast<std::int64_t>(stack_.count()), stack_.count());
        return value;
    }

    [[nodiscard]] const T& peek() const {
        probe_.rec(runtime::OpKind::Get,
                   static_cast<std::int64_t>(stack_.count()) - 1,
                   stack_.count());
        return stack_.peek();
    }

    [[nodiscard]] bool contains(const T& value) const {
        const bool hit = stack_.contains(value);
        probe_.rec(runtime::OpKind::IndexOf, runtime::kWholeContainer,
                   stack_.count());
        return hit;
    }

    void clear() {
        stack_.clear();
        probe_.rec(runtime::OpKind::Clear, runtime::kWholeContainer, 0);
    }

    [[nodiscard]] runtime::InstanceId instance_id() const noexcept {
        return probe_.id();
    }

private:
    Stack<T> stack_;
    Probe probe_;
};

/// Proxy-instrumented Queue<T>.  Enqueue = back-insert, Dequeue =
/// front-delete — the two-ends profile the Implement-Queue use case is
/// looking for when it appears on a *list* instead.
template <typename T>
class ProfiledQueue {
public:
    ProfiledQueue(runtime::ProfilingSession* session,
                  support::SourceLoc location, std::size_t capacity = 0)
        : queue_(capacity),
          probe_(session, runtime::DsKind::Queue,
                 container_type_name<T>("Queue"), std::move(location)) {}

    [[nodiscard]] std::size_t count() const noexcept { return queue_.count(); }
    [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

    void enqueue(T value) {
        const std::size_t landing = queue_.count();
        queue_.enqueue(std::move(value));
        probe_.rec(runtime::OpKind::Add, static_cast<std::int64_t>(landing),
                   queue_.count());
    }

    T dequeue() {
        T value = queue_.dequeue();
        probe_.rec(runtime::OpKind::RemoveAt, 0, queue_.count());
        return value;
    }

    [[nodiscard]] const T& peek() const {
        probe_.rec(runtime::OpKind::Get, 0, queue_.count());
        return queue_.peek();
    }

    void clear() {
        queue_.clear();
        probe_.rec(runtime::OpKind::Clear, runtime::kWholeContainer, 0);
    }

    [[nodiscard]] runtime::InstanceId instance_id() const noexcept {
        return probe_.id();
    }

private:
    Queue<T> queue_;
    Probe probe_;
};

/// Proxy-instrumented Dictionary<K, V>.  No linear positions.
template <typename K, typename V, typename Hash = std::hash<K>>
class ProfiledDictionary {
public:
    ProfiledDictionary(runtime::ProfilingSession* session,
                       support::SourceLoc location, std::size_t capacity = 0)
        : dict_(capacity),
          probe_(session, runtime::DsKind::Dictionary,
                 container_type_name2<K, V>("Dictionary"),
                 std::move(location)) {}

    [[nodiscard]] std::size_t count() const noexcept { return dict_.count(); }
    [[nodiscard]] bool empty() const noexcept { return dict_.empty(); }

    void add(K key, V value) {
        dict_.add(std::move(key), std::move(value));
        probe_.rec(runtime::OpKind::Add, runtime::kWholeContainer,
                   dict_.count());
    }

    void set(K key, V value) {
        dict_.set(std::move(key), std::move(value));
        probe_.rec(runtime::OpKind::Set, runtime::kWholeContainer,
                   dict_.count());
    }

    [[nodiscard]] const V& get(const K& key) const {
        probe_.rec(runtime::OpKind::Get, runtime::kWholeContainer,
                   dict_.count());
        return dict_.get(key);
    }

    bool try_get(const K& key, V& out) const {
        probe_.rec(runtime::OpKind::Get, runtime::kWholeContainer,
                   dict_.count());
        return dict_.try_get(key, out);
    }

    [[nodiscard]] bool contains_key(const K& key) const {
        probe_.rec(runtime::OpKind::IndexOf, runtime::kWholeContainer,
                   dict_.count());
        return dict_.contains_key(key);
    }

    bool remove(const K& key) {
        const bool removed = dict_.remove(key);
        probe_.rec(runtime::OpKind::RemoveAt, runtime::kWholeContainer,
                   dict_.count());
        return removed;
    }

    void clear() {
        dict_.clear();
        probe_.rec(runtime::OpKind::Clear, runtime::kWholeContainer, 0);
    }

    template <typename Fn>
    void for_each(Fn fn) const {
        probe_.rec(runtime::OpKind::ForEach, runtime::kWholeContainer,
                   dict_.count());
        dict_.for_each(fn);
    }

    [[nodiscard]] runtime::InstanceId instance_id() const noexcept {
        return probe_.id();
    }

private:
    Dictionary<K, V, Hash> dict_;
    Probe probe_;
};

/// Proxy-instrumented LinkedList<T>.  Front/back operations map onto the
/// same positional vocabulary as the list proxies.
template <typename T>
class ProfiledLinkedList {
public:
    ProfiledLinkedList(runtime::ProfilingSession* session,
                       support::SourceLoc location)
        : probe_(session, runtime::DsKind::LinkedList,
                 container_type_name<T>("LinkedList"), std::move(location)) {}

    [[nodiscard]] std::size_t count() const noexcept { return list_.count(); }
    [[nodiscard]] bool empty() const noexcept { return list_.empty(); }

    void add_first(T value) {
        list_.add_first(std::move(value));
        probe_.rec(runtime::OpKind::InsertAt, 0, list_.count());
    }

    void add_last(T value) {
        const std::size_t landing = list_.count();
        list_.add_last(std::move(value));
        probe_.rec(runtime::OpKind::Add, static_cast<std::int64_t>(landing),
                   list_.count());
    }

    T remove_first() {
        T value = list_.remove_first();
        probe_.rec(runtime::OpKind::RemoveAt, 0, list_.count());
        return value;
    }

    T remove_last() {
        T value = list_.remove_last();
        probe_.rec(runtime::OpKind::RemoveAt,
                   static_cast<std::int64_t>(list_.count()), list_.count());
        return value;
    }

    [[nodiscard]] const T& first() const {
        probe_.rec(runtime::OpKind::Get, 0, list_.count());
        return list_.first();
    }

    [[nodiscard]] const T& last() const {
        probe_.rec(runtime::OpKind::Get,
                   static_cast<std::int64_t>(list_.count()) - 1,
                   list_.count());
        return list_.last();
    }

    [[nodiscard]] bool contains(const T& value) const {
        const bool hit = list_.contains(value);
        probe_.rec(runtime::OpKind::IndexOf, runtime::kWholeContainer,
                   list_.count());
        return hit;
    }

    template <typename Fn>
    void for_each(Fn fn) const {
        probe_.rec(runtime::OpKind::ForEach, runtime::kWholeContainer,
                   list_.count());
        list_.for_each(fn);
    }

    void clear() {
        list_.clear();
        probe_.rec(runtime::OpKind::Clear, runtime::kWholeContainer, 0);
    }

    [[nodiscard]] runtime::InstanceId instance_id() const noexcept {
        return probe_.id();
    }

private:
    LinkedList<T> list_;
    Probe probe_;
};

/// Proxy-instrumented SortedList<K, V>.  Inserts record the sorted landing
/// index; key lookups are searches.
template <typename K, typename V, typename Less = std::less<K>>
class ProfiledSortedList {
public:
    ProfiledSortedList(runtime::ProfilingSession* session,
                       support::SourceLoc location)
        : probe_(session, runtime::DsKind::SortedList,
                 container_type_name2<K, V>("SortedList"),
                 std::move(location)) {}

    [[nodiscard]] std::size_t count() const noexcept { return list_.count(); }
    [[nodiscard]] bool empty() const noexcept { return list_.empty(); }

    void add(K key, V value) {
        list_.add(key, std::move(value));
        const std::ptrdiff_t landing = list_.index_of_key(key);
        probe_.rec(runtime::OpKind::InsertAt, landing, list_.count());
    }

    void set(K key, V value) {
        list_.set(key, std::move(value));
        const std::ptrdiff_t landing = list_.index_of_key(key);
        probe_.rec(runtime::OpKind::Set, landing, list_.count());
    }

    [[nodiscard]] const V& get(const K& key) const {
        const std::ptrdiff_t idx = list_.index_of_key(key);
        probe_.rec(runtime::OpKind::IndexOf,
                   idx >= 0 ? idx : runtime::kWholeContainer, list_.count());
        return list_.get(key);
    }

    bool try_get(const K& key, V& out) const {
        const std::ptrdiff_t idx = list_.index_of_key(key);
        probe_.rec(runtime::OpKind::IndexOf,
                   idx >= 0 ? idx : runtime::kWholeContainer, list_.count());
        return list_.try_get(key, out);
    }

    [[nodiscard]] bool contains_key(const K& key) const {
        const std::ptrdiff_t idx = list_.index_of_key(key);
        probe_.rec(runtime::OpKind::IndexOf,
                   idx >= 0 ? idx : runtime::kWholeContainer, list_.count());
        return idx >= 0;
    }

    bool remove(const K& key) {
        const std::ptrdiff_t idx = list_.index_of_key(key);
        const bool removed = list_.remove(key);
        if (removed)
            probe_.rec(runtime::OpKind::RemoveAt, idx, list_.count());
        return removed;
    }

    [[nodiscard]] const K& key_at(std::size_t i) const {
        probe_.rec(runtime::OpKind::Get, static_cast<std::int64_t>(i),
                   list_.count());
        return list_.key_at(i);
    }

    [[nodiscard]] const V& value_at(std::size_t i) const {
        probe_.rec(runtime::OpKind::Get, static_cast<std::int64_t>(i),
                   list_.count());
        return list_.value_at(i);
    }

    void clear() {
        list_.clear();
        probe_.rec(runtime::OpKind::Clear, runtime::kWholeContainer, 0);
    }

    template <typename Fn>
    void for_each(Fn fn) const {
        probe_.rec(runtime::OpKind::ForEach, runtime::kWholeContainer,
                   list_.count());
        list_.for_each(fn);
    }

    [[nodiscard]] runtime::InstanceId instance_id() const noexcept {
        return probe_.id();
    }

private:
    SortedList<K, V, Less> list_;
    Probe probe_;
};

/// Proxy-instrumented HashSet<T>.
template <typename T, typename Hash = std::hash<T>>
class ProfiledHashSet {
public:
    ProfiledHashSet(runtime::ProfilingSession* session,
                    support::SourceLoc location, std::size_t capacity = 0)
        : set_(capacity),
          probe_(session, runtime::DsKind::HashSet,
                 container_type_name<T>("HashSet"), std::move(location)) {}

    [[nodiscard]] std::size_t count() const noexcept { return set_.count(); }
    [[nodiscard]] bool empty() const noexcept { return set_.empty(); }

    bool add(T value) {
        const bool inserted = set_.add(std::move(value));
        probe_.rec(runtime::OpKind::Add, runtime::kWholeContainer,
                   set_.count());
        return inserted;
    }

    [[nodiscard]] bool contains(const T& value) const {
        probe_.rec(runtime::OpKind::IndexOf, runtime::kWholeContainer,
                   set_.count());
        return set_.contains(value);
    }

    bool remove(const T& value) {
        const bool removed = set_.remove(value);
        probe_.rec(runtime::OpKind::RemoveAt, runtime::kWholeContainer,
                   set_.count());
        return removed;
    }

    void clear() {
        set_.clear();
        probe_.rec(runtime::OpKind::Clear, runtime::kWholeContainer, 0);
    }

    [[nodiscard]] runtime::InstanceId instance_id() const noexcept {
        return probe_.id();
    }

private:
    HashSet<T, Hash> set_;
    Probe probe_;
};

}  // namespace dsspy::ds
