#include "pipeline/report_sink.hpp"

#include <ostream>

#include "core/export.hpp"
#include "core/report.hpp"
#include "core/transform_plan.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/self_overhead.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "support/table.hpp"
#include "viz/html_report.hpp"

namespace dsspy::pipeline {

namespace {

/// One-line-per-instance table (`--summary`).
class SummarySink final : public ReportSink {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "summary";
    }
    bool emit(const RunOutcome& outcome, std::ostream& out,
              std::ostream&) override {
        if (outcome.analysis) {
            core::print_instance_summary(out, *outcome.analysis);
        } else if (outcome.stream) {
            core::print_instance_summary(out, *outcome.stream);
        }
        out << '\n';
        return true;
    }
};

/// Table V style use-case report plus the search-space reduction line
/// (`--report`, the default output).
class UseCaseReportSink final : public ReportSink {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "report";
    }
    bool emit(const RunOutcome& outcome, std::ostream& out,
              std::ostream&) override {
        const auto footer = [&out](double reduction, std::size_t flagged,
                                   std::size_t total) {
            out << "Search space reduction: " << support::Table::pct(reduction)
                << " (" << flagged << " of " << total
                << " list/array instances flagged)\n";
        };
        if (outcome.analysis) {
            core::print_use_case_report(out, *outcome.analysis);
            footer(outcome.analysis->search_space_reduction(),
                   outcome.analysis->flagged_instances(),
                   outcome.analysis->list_array_instances());
        } else if (outcome.stream) {
            core::print_use_case_report(out, *outcome.stream);
            footer(outcome.stream->search_space_reduction(),
                   outcome.stream->flagged_instances(),
                   outcome.stream->list_array_instances());
        }
        return true;
    }
};

/// Transformation plan (`--plan`); needs materialized patterns.
class TransformPlanSink final : public ReportSink {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "plan";
    }
    [[nodiscard]] bool supports_stream() const noexcept override {
        return false;
    }
    bool emit(const RunOutcome& outcome, std::ostream& out,
              std::ostream&) override {
        if (!outcome.analysis) return true;
        const core::TransformPlan plan =
            core::plan_transformations(*outcome.analysis);
        core::print_transform_plan(out, plan);
        return true;
    }
};

/// Structured advice as one JSON document (`dsspy advise`, `--advice`).
/// Works on both engines: the advice entries render from the classified
/// use cases, which both result types carry.
class AdviceSink final : public ReportSink {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "advice";
    }
    bool emit(const RunOutcome& outcome, std::ostream& out,
              std::ostream&) override {
        if (outcome.analysis) {
            core::write_advice_json(out, *outcome.analysis);
        } else if (outcome.stream) {
            core::write_advice_json(out, *outcome.stream);
        }
        return true;
    }
};

/// Full analysis as one JSON document (`--json`).
class JsonSink final : public ReportSink {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "json";
    }
    [[nodiscard]] bool supports_stream() const noexcept override {
        return false;
    }
    bool emit(const RunOutcome& outcome, std::ostream& out,
              std::ostream&) override {
        if (outcome.analysis) core::write_analysis_json(out, *outcome.analysis);
        return true;
    }
};

class CsvUseCasesSink final : public ReportSink {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "csv-usecases";
    }
    bool emit(const RunOutcome& outcome, std::ostream& out,
              std::ostream&) override {
        if (outcome.analysis) {
            core::write_use_cases_csv(out, *outcome.analysis);
        } else if (outcome.stream) {
            core::write_use_cases_csv(out, *outcome.stream);
        }
        return true;
    }
};

class CsvInstancesSink final : public ReportSink {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "csv-instances";
    }
    bool emit(const RunOutcome& outcome, std::ostream& out,
              std::ostream&) override {
        if (outcome.analysis) {
            core::write_instances_csv(out, *outcome.analysis);
        } else if (outcome.stream) {
            core::write_instances_csv(out, *outcome.stream);
        }
        return true;
    }
};

class CsvPatternsSink final : public ReportSink {
public:
    [[nodiscard]] std::string_view name() const noexcept override {
        return "csv-patterns";
    }
    [[nodiscard]] bool supports_stream() const noexcept override {
        return false;
    }
    bool emit(const RunOutcome& outcome, std::ostream& out,
              std::ostream&) override {
        if (outcome.analysis) core::write_patterns_csv(out, *outcome.analysis);
        return true;
    }
};

/// Self-contained HTML report written to a file (`--html FILE`).
class HtmlSink final : public ReportSink {
public:
    explicit HtmlSink(std::string path) : path_(std::move(path)) {}
    [[nodiscard]] std::string_view name() const noexcept override {
        return "html";
    }
    [[nodiscard]] bool supports_stream() const noexcept override {
        return false;
    }
    bool emit(const RunOutcome& outcome, std::ostream&,
              std::ostream& err) override {
        if (!outcome.analysis) return true;
        if (viz::write_html_report_file(path_, *outcome.analysis)) {
            err << "Wrote " << path_ << '\n';
            return true;
        }
        err << "Failed to write " << path_ << '\n';
        return false;
    }

private:
    std::string path_;
};

/// Self-telemetry snapshot: the `dsspy metrics` stdout document and/or the
/// `--metrics-out` JSON file.  The self-overhead estimate needs a capture
/// window, so it appears only when the outcome carries a session (offline
/// trace analysis does not).
class MetricsSink final : public ReportSink {
public:
    MetricsSink(MetricsDoc doc, std::string out_path)
        : doc_(doc), out_path_(std::move(out_path)) {}
    [[nodiscard]] std::string_view name() const noexcept override {
        return "metrics";
    }
    bool emit(const RunOutcome& outcome, std::ostream& out,
              std::ostream& err) override {
        if (!obs::enabled()) return true;
        auto& reg = obs::MetricsRegistry::global();
        static const obs::MetricId rss_metric =
            reg.gauge("process.peak_rss_bytes");
        reg.gauge_max(rss_metric, obs::sample_peak_rss_bytes());
        obs::SelfOverhead overhead;
        const obs::SelfOverhead* overhead_ptr = nullptr;
        if (outcome.session != nullptr) {
            overhead = obs::estimate_self_overhead(
                outcome.session->events_recorded(),
                outcome.session->capture_duration_ns(),
                runtime::ProfilingSession::kTimestampStride);
            overhead_ptr = &overhead;
        }
        const std::vector<obs::MetricValue> metrics = reg.collect();
        if (doc_ == MetricsDoc::Json) {
            obs::write_metrics_json(out, metrics, overhead_ptr);
        } else if (doc_ == MetricsDoc::Prometheus) {
            obs::write_metrics_prometheus(out, metrics, overhead_ptr);
        }
        if (out_path_.empty()) return true;
        if (obs::write_metrics_json_file(out_path_, metrics, overhead_ptr)) {
            err << "Wrote metrics to " << out_path_ << '\n';
            return true;
        }
        err << "Failed to write metrics to " << out_path_ << '\n';
        return false;
    }

private:
    MetricsDoc doc_;
    std::string out_path_;
};

}  // namespace

std::vector<std::unique_ptr<ReportSink>> build_sinks(
    const OutputSelection& outputs) {
    std::vector<std::unique_ptr<ReportSink>> sinks;
    if (outputs.summary) sinks.push_back(std::make_unique<SummarySink>());
    if (outputs.report) sinks.push_back(std::make_unique<UseCaseReportSink>());
    if (outputs.plan) sinks.push_back(std::make_unique<TransformPlanSink>());
    if (outputs.advice) sinks.push_back(std::make_unique<AdviceSink>());
    if (outputs.json) sinks.push_back(std::make_unique<JsonSink>());
    if (outputs.csv_usecases)
        sinks.push_back(std::make_unique<CsvUseCasesSink>());
    if (outputs.csv_instances)
        sinks.push_back(std::make_unique<CsvInstancesSink>());
    if (outputs.csv_patterns)
        sinks.push_back(std::make_unique<CsvPatternsSink>());
    if (!outputs.html_path.empty())
        sinks.push_back(std::make_unique<HtmlSink>(outputs.html_path));
    if (outputs.metrics_doc != MetricsDoc::None || !outputs.metrics_out.empty())
        sinks.push_back(std::make_unique<MetricsSink>(outputs.metrics_doc,
                                                      outputs.metrics_out));
    return sinks;
}

bool emit_reports(const OutputSelection& outputs, const RunOutcome& outcome,
                  std::ostream& out, std::ostream& err) {
    bool ok = true;
    for (const std::unique_ptr<ReportSink>& sink : build_sinks(outputs)) {
        if (!outcome.analysis && !sink->supports_stream()) continue;
        ok = sink->emit(outcome, out, err) && ok;
    }
    return ok;
}

bool write_trace_spans(const std::string& path, std::ostream& err) {
    if (path.empty()) return true;
    const std::vector<obs::SpanRecord> spans =
        obs::TraceRecorder::global().snapshot();
    if (obs::write_trace_json_file(path, spans)) {
        err << "Wrote trace spans to " << path << '\n';
        return true;
    }
    err << "Failed to write trace spans to " << path << '\n';
    return false;
}

}  // namespace dsspy::pipeline
