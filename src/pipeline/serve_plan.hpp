// Declarative descriptions of the two serve-layer jobs (DESIGN.md §12):
// hosting the profiling daemon and pushing a trace into one.
//
// Shaped exactly like RunPlan (run_plan.hpp): the CLI parses flags into a
// plan, a run_* function executes it and returns the process exit code.
// Keeping the daemon behind a plan keeps tools/dsspy_cli.cpp a parser and
// lets tests drive the daemon in-process with no subprocess machinery.
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <string>

#include "core/detector_config.hpp"

namespace dsspy::pipeline {

/// `dsspy serve`: host the multi-tenant daemon until `stop` is raised
/// (the CLI raises it from SIGINT/SIGTERM).
struct ServePlan {
    std::string listen = "unix:dsspy.sock";
    std::size_t max_tenants = 64;
    std::size_t max_finished_tenants = 128;
    std::size_t max_frame_bytes = 1u << 20;
    std::size_t max_tenant_instances = 1u << 16;
    int client_timeout_ms = 30000;
    int slow_op_ms = 0;           ///< [slow-op] log threshold; 0 = off.
    std::string trace_spans_out;  ///< Span JSON written after shutdown.
    core::DetectorConfig config;  ///< Thresholds for every tenant.
};

/// `dsspy push`: send a recorded trace to a daemon and print its verdict.
struct PushPlan {
    std::string connect = "unix:dsspy.sock";
    std::string trace_path;
    std::string tenant_name;  ///< Empty: the trace filename.
    std::size_t frame_bytes = 256 << 10;
};

/// Run the daemon in the foreground.  Prints "listening on <address>" to
/// `out` once ready (tests and scripts poll for that line), then blocks
/// until `stop`; a final tenant summary goes to `out` on shutdown.
/// Returns kExitOk, kExitUsageError for a malformed listen spec, or
/// kExitRuntimeError when the bind fails.
int run_serve(const ServePlan& plan, std::ostream& out, std::ostream& err,
              const std::atomic<bool>& stop);

/// Push one trace.  Prints the daemon's result line to `out`.  Returns
/// kExitOk, kExitUsageError for a malformed connect spec, or
/// kExitRuntimeError when the file, connection, or stream fails.
int run_push(const PushPlan& plan, std::ostream& out, std::ostream& err);

}  // namespace dsspy::pipeline
