// Pluggable report emitters for pipeline run outcomes.
//
// The seed CLI grew three divergent emitters (emit_outputs for post-mortem
// results, emit_stream_outputs for streaming reports, emit_metrics for the
// self-telemetry documents).  ReportSink unifies them: every output format
// is one sink; build_sinks() assembles the sinks a plan requests in the
// canonical emission order, and emit_reports() runs them over an outcome.
// Sinks render whichever typed result the outcome carries — post-mortem
// sinks declare supports_stream() == false and are skipped (plan
// validation rejects such combinations up front) when only a streaming
// report is available.
#pragma once

#include <iosfwd>
#include <memory>
#include <string_view>
#include <vector>

#include "pipeline/run_plan.hpp"

namespace dsspy::pipeline {

/// One output format.  Sinks are stateless between jobs apart from their
/// construction parameters (e.g. an HTML file path), so one sink list can
/// be reused across outcomes.
class ReportSink {
public:
    virtual ~ReportSink() = default;

    /// Stable name for diagnostics ("report", "json", "html", ...).
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

    /// False when the sink needs the materialized post-mortem analysis.
    [[nodiscard]] virtual bool supports_stream() const noexcept {
        return true;
    }

    /// Render the outcome.  `out` is the job's primary stream (stdout for
    /// the CLI); `err` carries side-channel notes ("Wrote FILE").
    /// Returns false when the sink failed (e.g. an unwritable HTML path);
    /// emit_reports() folds failures into the job exit code.
    virtual bool emit(const RunOutcome& outcome, std::ostream& out,
                      std::ostream& err) = 0;
};

/// The sinks `outputs` requests, in canonical emission order (summary,
/// report, plan, advice, json, csv-usecases, csv-instances, csv-patterns,
/// html, metrics) — the order the seed CLI emitted, so output stays
/// byte-identical.
[[nodiscard]] std::vector<std::unique_ptr<ReportSink>> build_sinks(
    const OutputSelection& outputs);

/// Run every requested sink over `outcome`.  Returns false when any sink
/// failed.  Sinks that cannot render a streaming-only outcome are skipped.
bool emit_reports(const OutputSelection& outputs, const RunOutcome& outcome,
                  std::ostream& out, std::ostream& err);

/// Write the global TraceRecorder's span snapshot to `path` as Chrome
/// trace-event JSON ("Wrote trace spans to PATH" on `err`).  Call AFTER
/// the job's root span has closed so the tree is complete.  Returns false
/// (and notes the failure on `err`) when the file cannot be written; a
/// no-op returning true when `path` is empty.
bool write_trace_spans(const std::string& path, std::ostream& err);

}  // namespace dsspy::pipeline
