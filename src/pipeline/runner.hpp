// PipelineRunner: execute one RunPlan end to end.
//
// Owns the whole session/trace/engine wiring the seed CLI repeated inside
// every subcommand: create a ProfilingSession (or open a trace), run the
// workload, stop/drain, re-emit the trace when asked, run the requested
// analysis engine, and emit every requested report through the sink layer.
// Returns a typed RunOutcome so callers (CLI, batch driver, tests,
// embedders) never scrape text.
//
// Concurrency: a runner is stateless apart from its analysis pool pointer;
// run() may be called from many threads at once, each call driving its own
// ProfilingSession.  Sessions are fully independent — the only process
// state they share is the monotonic session-token counter, the optional
// global metrics registry (sharded, lock-free), and the shared analysis
// ThreadPool (safe: parallel sections wait on per-call latches, never on
// pool-wide idleness).  The batch driver (batch.hpp) leans on exactly this.
#pragma once

#include <functional>
#include <iosfwd>

#include "pipeline/run_plan.hpp"

namespace dsspy::par {
class ThreadPool;
}

namespace dsspy::pipeline {

/// One live-snapshot observation delivered to the watch callback.
struct WatchTick {
    const core::StreamReport& snapshot;
    std::uint64_t events_captured = 0;  ///< Recorded by the session so far.
    std::uint64_t events_folded = 0;    ///< Absorbed by the analyzer so far.
};

/// Invoked once per snapshot interval while a watch plan's workload runs.
using WatchCallback = std::function<void(const WatchTick&)>;

class PipelineRunner {
public:
    /// `analysis_pool` parallelizes trace decode and per-instance analysis
    /// (results are bit-identical to sequential); nullptr selects the
    /// process-wide default pool, whose width `--threads` configures.
    explicit PipelineRunner(par::ThreadPool* analysis_pool = nullptr)
        : analysis_pool_(analysis_pool) {}

    /// Validate a plan without running it.  Returns an empty string when
    /// the plan is executable, otherwise the usage diagnostic (the plan
    /// would exit kExitUsageError).
    [[nodiscard]] static std::string validate(const RunPlan& plan);

    /// Execute `plan`.  Reports go to `out`, diagnostics and session
    /// summaries to `err` (the CLI passes std::cout/std::cerr; the batch
    /// driver passes per-job buffers).  `on_tick` fires between snapshot
    /// intervals for watch plans and is ignored otherwise.
    [[nodiscard]] RunOutcome run(const RunPlan& plan, std::ostream& out,
                                 std::ostream& err,
                                 const WatchCallback& on_tick = {}) const;

private:
    [[nodiscard]] par::ThreadPool& pool() const;

    RunOutcome run_trace(const RunPlan& plan, std::ostream& out,
                         std::ostream& err) const;
    RunOutcome run_live(const RunPlan& plan, std::ostream& out,
                        std::ostream& err, const WatchCallback& on_tick) const;

    par::ThreadPool* analysis_pool_;
};

}  // namespace dsspy::pipeline
