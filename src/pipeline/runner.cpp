#include "pipeline/runner.hpp"

#include <atomic>
#include <chrono>
#include <ostream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "apps/app_registry.hpp"
#include "corpus/program_model.hpp"
#include "corpus/workload.hpp"
#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "pipeline/report_sink.hpp"
#include "support/stopwatch.hpp"

namespace dsspy::pipeline {

namespace {

/// Feeds a streamed trace into the incremental analyzer, collecting the
/// instance table on the way.  Trace files written by write_trace emit
/// each instance's events in seq order, which is exactly the fold order
/// the analyzer requires.
class AnalyzerTraceSink final : public runtime::TraceSink {
public:
    explicit AnalyzerTraceSink(core::IncrementalAnalyzer& analyzer)
        : analyzer_(analyzer) {}

    void on_instance(const runtime::InstanceInfo& info) override {
        instances.push_back(info);
        analyzer_.declare_instance(info);
    }

    void on_events(std::span<const runtime::AccessEvent> events) override {
        analyzer_.fold(events);
    }

    std::vector<runtime::InstanceInfo> instances;

private:
    core::IncrementalAnalyzer& analyzer_;
};

/// The session summary line live app runs print to stderr; orphan
/// (store-only) events are surfaced when present — they indicate events
/// recorded against ids the registry never issued.
void print_session_summary(std::ostream& err, const std::string& name,
                           double checksum,
                           const runtime::ProfilingSession& session) {
    err << name << ": checksum " << checksum << ", "
        << session.store().total_events() << " events";
    const std::size_t orphans = session.orphan_events();
    if (orphans > 0) err << ", " << orphans << " orphan";
    err << '\n';
}

RunOutcome fail_runtime(std::string label, std::string message,
                        std::ostream& err) {
    err << message << '\n';
    RunOutcome outcome;
    outcome.exit_code = kExitRuntimeError;
    outcome.label = std::move(label);
    outcome.error = std::move(message);
    return outcome;
}

/// The on-disk encoding a plan's trace re-emission uses: convert defaults
/// to the compact binary format, `--trace` side-writes default to CSV.
runtime::TraceFormat trace_out_format(const RunPlan& plan) {
    return plan.trace_format.value_or(
        plan.trace_note == TraceNoteStyle::ConvertNote
            ? runtime::TraceFormat::Binary
            : runtime::TraceFormat::Csv);
}

}  // namespace

par::ThreadPool& PipelineRunner::pool() const {
    return analysis_pool_ != nullptr ? *analysis_pool_
                                     : par::ThreadPool::default_pool();
}

std::string PipelineRunner::validate(const RunPlan& plan) {
    if (plan.target.empty()) return "missing target for the run plan";
    if (plan.watch && plan.input != InputKind::App)
        return "watch requires an app target (try `dsspy list`)";
    const EngineChoice engine = plan.resolved_engine();
    if (engine == EngineChoice::Incremental &&
        plan.outputs.needs_postmortem())
        return "--json/--html/--csv-patterns/--plan need the post-mortem "
               "engine (drop --incremental)";
    if (engine == EngineChoice::Incremental && !plan.trace_out.empty())
        return "--trace needs the post-mortem engine (drop --incremental)";
    return {};
}

RunOutcome PipelineRunner::run(const RunPlan& plan, std::ostream& out,
                               std::ostream& err,
                               const WatchCallback& on_tick) const {
    const std::uint64_t start_ns = support::now_ns();
    RunOutcome outcome;
    if (std::string problem = validate(plan); !problem.empty()) {
        err << problem << '\n';
        outcome.exit_code = kExitUsageError;
        outcome.label = plan.display_name();
        outcome.error = std::move(problem);
        return outcome;
    }
    {
        // One root span per run; every capture/trace-IO/analysis span
        // below nests under it (pool shards via explicit contexts).  The
        // scope closes before the span file is written so the exported
        // tree is complete.
        static const obs::MetricId run_metric = obs::span_metric("run");
        obs::ScopedSpan run_span("run", run_metric);
        run_span.annotate("target", plan.display_name());
        outcome = plan.input == InputKind::TraceFile
                      ? run_trace(plan, out, err)
                      : run_live(plan, out, err, on_tick);
    }
    write_trace_spans(plan.outputs.trace_spans_out, err);
    outcome.wall_ns = support::now_ns() - start_ns;
    return outcome;
}

RunOutcome PipelineRunner::run_trace(const RunPlan& plan, std::ostream& out,
                                     std::ostream& err) const {
    RunOutcome outcome;
    outcome.label = plan.display_name();

    if (plan.resolved_engine() == EngineChoice::Incremental) {
        // Default path: stream the trace chunk-by-chunk through the
        // incremental analyzer — memory stays bounded by the live-instance
        // state, not the trace size.
        core::IncrementalAnalyzer incremental(plan.config);
        AnalyzerTraceSink sink(incremental);
        std::size_t events = 0;
        try {
            events = runtime::read_trace_stream_file(plan.target, sink);
        } catch (const std::runtime_error& e) {
            return fail_runtime(outcome.label,
                                "Cannot read trace " + plan.target + ": " +
                                    e.what(),
                                err);
        }
        if (sink.instances.empty() && events == 0)
            return fail_runtime(outcome.label,
                                "No trace data in " + plan.target, err);
        outcome.events = events;
        outcome.stream = incremental.finish(sink.instances);
        if (!emit_reports(plan.outputs, outcome, out, err))
            outcome.exit_code = kExitRuntimeError;
        return outcome;
    }

    // Post-mortem DST1 analysis that never touches event-level outputs
    // (no trace re-emission, no HTML event timeline) can skip the AoS
    // store entirely: mmap the file and decode straight into columns.
    // Half the peak memory, and the analysis runs on the same columnar
    // kernels either way, so verdicts are identical.
    if (plan.trace_out.empty() && plan.outputs.html_path.empty() &&
        runtime::is_binary_trace_file(plan.target)) {
        auto columns = std::make_unique<runtime::ColumnTrace>();
        try {
            *columns = runtime::read_trace_columns_file(plan.target, &pool());
        } catch (const std::runtime_error& e) {
            return fail_runtime(outcome.label,
                                "Cannot read trace " + plan.target + ": " +
                                    e.what(),
                                err);
        }
        if (columns->instances.empty() &&
            columns->columns.total_events() == 0)
            return fail_runtime(outcome.label,
                                "No trace data in " + plan.target, err);
        outcome.events = columns->columns.total_events();
        if (plan.outputs.any_analysis_output()) {
            const core::Dsspy analyzer(plan.config);
            outcome.analysis = analyzer.analyze(columns->instances,
                                                columns->columns, &pool());
        }
        outcome.column_trace = std::move(columns);
        if (!emit_reports(plan.outputs, outcome, out, err))
            outcome.exit_code = kExitRuntimeError;
        return outcome;
    }

    auto trace = std::make_unique<runtime::Trace>();
    try {
        *trace = runtime::read_trace_file(plan.target, &pool());
    } catch (const std::runtime_error& e) {
        return fail_runtime(outcome.label,
                            "Cannot read trace " + plan.target + ": " +
                                e.what(),
                            err);
    }
    if (trace->instances.empty() && trace->store.total_events() == 0)
        return fail_runtime(outcome.label, "No trace data in " + plan.target,
                            err);
    outcome.events = trace->store.total_events();

    if (!plan.trace_out.empty()) {
        const runtime::TraceFormat format = trace_out_format(plan);
        const bool wrote = runtime::write_trace_file(
            plan.trace_out, trace->instances, trace->store, format);
        if (plan.trace_note == TraceNoteStyle::ConvertNote) {
            // Re-encoding is the whole job: a failed write is terminal.
            if (!wrote)
                return fail_runtime(outcome.label,
                                    "Failed to write " + plan.trace_out, err);
            err << "Wrote " << trace->store.total_events() << " events ("
                << (format == runtime::TraceFormat::Binary ? "binary" : "csv")
                << ") to " << plan.trace_out << '\n';
        } else if (wrote) {
            err << "Wrote trace to " << plan.trace_out << '\n';
        } else {
            err << "Failed to write trace to " << plan.trace_out << '\n';
            outcome.exit_code = kExitRuntimeError;
            outcome.error = "Failed to write trace to " + plan.trace_out;
        }
    }

    if (plan.outputs.any_analysis_output()) {
        const core::Dsspy analyzer(plan.config);
        outcome.analysis =
            analyzer.analyze(trace->instances, trace->store, &pool());
    }
    outcome.trace = std::move(trace);
    if (!emit_reports(plan.outputs, outcome, out, err))
        outcome.exit_code = kExitRuntimeError;
    return outcome;
}

RunOutcome PipelineRunner::run_live(const RunPlan& plan, std::ostream& out,
                                    std::ostream& err,
                                    const WatchCallback& on_tick) const {
    RunOutcome outcome;
    outcome.label = plan.display_name();

    const apps::AppInfo* app = nullptr;
    const corpus::ProgramModel* program = nullptr;
    if (plan.input == InputKind::App) {
        app = apps::find_app(plan.target);
        if (app == nullptr)
            return fail_runtime(outcome.label,
                                "Unknown app: " + plan.target +
                                    " (try `dsspy list`)",
                                err);
    } else {
        for (const corpus::ProgramModel& m : corpus::all_programs())
            if (m.name == plan.target) program = &m;
        if (program == nullptr)
            return fail_runtime(outcome.label,
                                "Unknown corpus program: " + plan.target +
                                    " (try `dsspy list`)",
                                err);
    }

    const auto run_workload = [&](runtime::ProfilingSession* session) {
        if (app != nullptr) {
            outcome.checksum = app->run_sequential(session).checksum;
            outcome.has_checksum = true;
        } else if (program->in_eval23) {
            corpus::run_eval_workload(*program, session);
        } else {
            corpus::run_study15_workload(*program, session);
        }
    };

    if (plan.resolved_engine() == EngineChoice::Incremental) {
        // Streaming capture with the analyzer folding as events drain;
        // AnalysisMode::Incremental keeps the store empty — memory stays
        // bounded however long the workload runs.  Watch plans drain live
        // through the collector; plain incremental runs merge at stop().
        auto session = std::make_unique<runtime::ProfilingSession>(
            plan.watch ? runtime::CaptureMode::Streaming
                       : runtime::CaptureMode::Buffered,
            64 * 1024, runtime::AnalysisMode::Incremental);
        core::IncrementalAnalyzer incremental(plan.config);
        core::attach_incremental(*session, incremental);

        if (plan.watch) {
            std::atomic<bool> done{false};
            std::thread worker([&] {
                run_workload(session.get());
                done.store(true, std::memory_order_release);
            });
            const auto interval =
                std::chrono::milliseconds(plan.snapshot_interval_ms);
            while (!done.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(interval);
                if (!on_tick) continue;
                const core::StreamReport snap =
                    core::Dsspy::snapshot(incremental, *session);
                on_tick(WatchTick{snap, session->events_recorded(),
                                  incremental.events_folded()});
            }
            worker.join();
        } else {
            run_workload(session.get());
        }
        session->stop();
        if (app != nullptr)
            err << app->name << ": checksum " << outcome.checksum << ", "
                << incremental.events_folded() << " events\n";
        outcome.events = incremental.events_folded();
        outcome.stream = core::Dsspy::finish(incremental, *session);
        outcome.session = std::move(session);
        if (!emit_reports(plan.outputs, outcome, out, err))
            outcome.exit_code = kExitRuntimeError;
        return outcome;
    }

    auto session = std::make_unique<runtime::ProfilingSession>();
    run_workload(session.get());
    session->stop();
    outcome.events = session->store().total_events();
    outcome.orphan_events = session->orphan_events();
    if (app != nullptr) {
        print_session_summary(err, app->name, outcome.checksum, *session);
    } else if (outcome.orphan_events > 0) {
        err << program->name << ": " << outcome.orphan_events
            << " orphan events\n";
    }

    if (!plan.trace_out.empty()) {
        if (runtime::write_trace_file(plan.trace_out, *session,
                                      trace_out_format(plan))) {
            err << "Wrote trace to " << plan.trace_out << '\n';
        } else {
            err << "Failed to write trace to " << plan.trace_out << '\n';
            outcome.exit_code = kExitRuntimeError;
            outcome.error = "Failed to write trace to " + plan.trace_out;
        }
    }

    // Live post-mortem plans always analyze, even with no analysis output
    // selected (`dsspy metrics`): the run fills the analyze-stage span
    // histograms the metrics document reports on.
    const core::Dsspy analyzer(plan.config);
    outcome.analysis = analyzer.analyze(*session, &pool());
    outcome.session = std::move(session);
    if (!emit_reports(plan.outputs, outcome, out, err))
        outcome.exit_code = kExitRuntimeError;
    return outcome;
}

}  // namespace dsspy::pipeline
