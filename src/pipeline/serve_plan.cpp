#include "pipeline/serve_plan.hpp"

#include <chrono>
#include <ostream>
#include <thread>

#include "pipeline/report_sink.hpp"
#include "pipeline/run_plan.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/socket.hpp"

namespace dsspy::pipeline {

int run_serve(const ServePlan& plan, std::ostream& out, std::ostream& err,
              const std::atomic<bool>& stop) {
    std::string error;
    if (!serve::parse_address(plan.listen, &error).has_value()) {
        err << "serve: " << error << '\n';
        return kExitUsageError;
    }
    serve::DaemonOptions options;
    options.listen = plan.listen;
    options.max_tenants = plan.max_tenants;
    options.max_finished_tenants = plan.max_finished_tenants;
    options.max_frame_bytes = plan.max_frame_bytes;
    options.max_tenant_instances = plan.max_tenant_instances;
    options.client_timeout_ms = plan.client_timeout_ms;
    options.slow_op_ms = plan.slow_op_ms;
    options.config = plan.config;
    serve::Daemon daemon(options);
    if (!daemon.start(&error)) {
        err << "serve: " << error << '\n';
        return kExitRuntimeError;
    }
    out << "dsspy serve: listening on " << daemon.address().to_string()
        << " (max " << plan.max_tenants << " tenants)" << std::endl;
    while (!stop.load(std::memory_order_acquire))
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    daemon.stop();
    const serve::DaemonStats stats = daemon.stats();
    out << "dsspy serve: shut down after " << stats.connections
        << " connections (" << stats.http_requests << " http, "
        << stats.rejected << " rejected, " << stats.malformed
        << " malformed)\n";
    for (const serve::TenantSummary& tenant : daemon.tenants())
        out << "  tenant " << tenant.id << " (" << tenant.name << "): "
            << serve::tenant_state_name(tenant.state) << ", "
            << tenant.events << " events, " << tenant.flagged
            << " flagged, " << tenant.orphan_events << " orphan\n";
    // After stop() every connection thread has joined, so the snapshot is
    // complete and every tenant root span has ended.
    write_trace_spans(plan.trace_spans_out, err);
    return kExitOk;
}

int run_push(const PushPlan& plan, std::ostream& out, std::ostream& err) {
    std::string error;
    const auto address = serve::parse_address(plan.connect, &error);
    if (!address.has_value()) {
        err << "push: " << error << '\n';
        return kExitUsageError;
    }
    const serve::ClientResult result = serve::push_trace_file(
        *address, plan.trace_path, plan.tenant_name, plan.frame_bytes);
    if (!result.ok) {
        err << "push: " << result.error << '\n';
        return kExitRuntimeError;
    }
    out << result.summary << '\n';
    return kExitOk;
}

}  // namespace dsspy::pipeline
