// Concurrent multi-plan batch driver (`dsspy batch`).
//
// Executes N RunPlans concurrently, each on its own ProfilingSession, over
// a dedicated ThreadPool — many profiling/analysis jobs in one process
// instead of one hand-wired job per invocation.  Per-job stdout/stderr are
// buffered and flushed in submission order once every job has finished, so
// the batch's primary stream is the exact concatenation of what the same
// jobs would print run sequentially (the differential tests hold it to
// byte-identity).
//
// The driver pool is deliberately separate from the analysis pool: jobs
// block inside parallel sections (store finalize, per-instance analysis),
// and running those sections on the pool that also runs the jobs could
// starve — every worker parked in a job waiting for chunk tasks that no
// free worker can pick up.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "pipeline/run_plan.hpp"
#include "pipeline/runner.hpp"

namespace dsspy::pipeline {

/// One finished batch job: the typed outcome plus the exact text the job
/// wrote to its buffered out/err streams.
struct BatchJobResult {
    RunOutcome outcome;
    std::string out_text;
    std::string err_text;
};

struct BatchSummary {
    int exit_code = kExitOk;   ///< kExitOk, or kExitRuntimeError if any job failed.
    std::size_t jobs = 0;
    std::size_t failed = 0;
    /// Peak number of jobs observed in flight at once (telemetry for tests
    /// and the batch trailer line; bounded by min(concurrency, jobs)).
    std::size_t max_concurrent = 0;
    std::uint64_t wall_ns = 0;
};

/// Execute every plan concurrently (at most `concurrency` in flight;
/// 0 = the pool default, i.e. --threads or hardware concurrency) and
/// return the per-job results in plan order.  `runner` is shared across
/// jobs — PipelineRunner::run is safe to call from many threads at once.
[[nodiscard]] std::vector<BatchJobResult> run_batch_jobs(
    const PipelineRunner& runner, const std::vector<RunPlan>& plans,
    unsigned concurrency, BatchSummary& summary);

/// run_batch_jobs + ordered flush: each job's buffered streams are
/// replayed onto `out`/`err` in plan order, with a one-line job header and
/// a final batch trailer on `err`.
BatchSummary run_batch(const PipelineRunner& runner,
                       const std::vector<RunPlan>& plans,
                       unsigned concurrency, std::ostream& out,
                       std::ostream& err);

}  // namespace dsspy::pipeline
