#include "pipeline/batch.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <ostream>
#include <sstream>

#include "obs/trace.hpp"
#include "parallel/thread_pool.hpp"
#include "support/stopwatch.hpp"

namespace dsspy::pipeline {

std::vector<BatchJobResult> run_batch_jobs(const PipelineRunner& runner,
                                           const std::vector<RunPlan>& plans,
                                           unsigned concurrency,
                                           BatchSummary& summary) {
    const std::uint64_t start_ns = support::now_ns();
    std::vector<BatchJobResult> results(plans.size());
    summary.jobs = plans.size();
    if (plans.empty()) {
        summary.wall_ns = support::now_ns() - start_ns;
        return results;
    }

    // Dedicated driver pool (see the header): never the shared analysis
    // pool the jobs' parallel sections run on.
    const unsigned width = static_cast<unsigned>(std::min<std::size_t>(
        concurrency != 0 ? concurrency
                         : par::ThreadPool::effective_default_threads(),
        plans.size()));
    par::ThreadPool driver_pool(std::max(1u, width));

    // One batch root span; each job opens a sibling child on its driver
    // thread (explicit parent: pool threads carry no TLS context), and the
    // job's own "run" root nests under that child.  The span stays open
    // until wait_idle() returns, covering every job.
    static const obs::MetricId batch_metric = obs::span_metric("batch");
    const obs::ScopedSpan batch_span("batch", batch_metric);
    const obs::TraceContext batch_ctx = obs::current_trace_context();
    static const obs::MetricId job_metric = obs::span_metric("batch.job");

    std::atomic<std::size_t> running{0};
    std::atomic<std::size_t> peak{0};
    for (std::size_t i = 0; i < plans.size(); ++i) {
        driver_pool.submit([&, i] {
            obs::ScopedSpan job_span("batch.job", batch_ctx, job_metric);
            job_span.annotate("target", plans[i].display_name());
            const std::size_t now =
                running.fetch_add(1, std::memory_order_acq_rel) + 1;
            std::size_t seen = peak.load(std::memory_order_relaxed);
            while (now > seen &&
                   !peak.compare_exchange_weak(seen, now,
                                               std::memory_order_relaxed)) {
            }
            std::ostringstream job_out;
            std::ostringstream job_err;
            try {
                results[i].outcome = runner.run(plans[i], job_out, job_err);
            } catch (const std::exception& e) {
                job_err << "Job failed: " << e.what() << '\n';
                results[i].outcome.exit_code = kExitRuntimeError;
                results[i].outcome.label = plans[i].display_name();
                results[i].outcome.error = e.what();
            }
            results[i].out_text = std::move(job_out).str();
            results[i].err_text = std::move(job_err).str();
            running.fetch_sub(1, std::memory_order_acq_rel);
        });
    }
    driver_pool.wait_idle();

    summary.max_concurrent = peak.load(std::memory_order_relaxed);
    for (const BatchJobResult& job : results)
        if (!job.outcome.ok()) ++summary.failed;
    summary.exit_code = summary.failed == 0 ? kExitOk : kExitRuntimeError;
    summary.wall_ns = support::now_ns() - start_ns;
    return results;
}

BatchSummary run_batch(const PipelineRunner& runner,
                       const std::vector<RunPlan>& plans,
                       unsigned concurrency, std::ostream& out,
                       std::ostream& err) {
    BatchSummary summary;
    const std::vector<BatchJobResult> results =
        run_batch_jobs(runner, plans, concurrency, summary);
    for (std::size_t i = 0; i < results.size(); ++i) {
        const BatchJobResult& job = results[i];
        err << "[batch] job " << (i + 1) << '/' << results.size() << ": "
            << job.outcome.label << " (exit " << job.outcome.exit_code << ", "
            << job.outcome.wall_ns / 1000000 << " ms)\n";
        err << job.err_text;
        out << job.out_text;
    }
    err << "[batch] " << summary.jobs << " jobs, " << summary.failed
        << " failed, peak " << summary.max_concurrent << " concurrent, "
        << summary.wall_ns / 1000000 << " ms\n";
    return summary;
}

}  // namespace dsspy::pipeline
